// Unit tests for the UML metamodel: construction, ownership, lookup,
// profiles, instances, traversal.
#include <gtest/gtest.h>

#include "uml/instance.hpp"
#include "uml/query.hpp"
#include "uml/synthetic.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {
namespace {

TEST(Model, RootRegistersItself) {
  Model model("Soc");
  EXPECT_TRUE(model.id().valid());
  EXPECT_EQ(model.find(model.id()), &model);
  EXPECT_EQ(model.element_count(), 1u);
  EXPECT_EQ(model.owner(), nullptr);
  EXPECT_EQ(&model.model(), &model);
}

TEST(Model, FactoryAssignsIdsAndOwnership) {
  Model model("Soc");
  Package& pkg = model.add_package("ip");
  Class& cls = pkg.add_class("Uart");
  Property& prop = cls.add_property("baud");

  EXPECT_EQ(pkg.owner(), &model);
  EXPECT_EQ(cls.owner(), &pkg);
  EXPECT_EQ(prop.owner(), &cls);
  EXPECT_EQ(model.find(prop.id()), &prop);
  EXPECT_EQ(model.element_count(), 4u);
  EXPECT_NE(pkg.id(), cls.id());
}

TEST(Model, QualifiedNames) {
  Model model("Soc");
  Class& cls = model.add_package("ip").add_class("Uart");
  Property& prop = cls.add_property("baud");
  EXPECT_EQ(prop.qualified_name(), "Soc.ip.Uart.baud");
}

TEST(Model, FindByQualifiedName) {
  Model model("Soc");
  Package& pkg = model.add_package("ip");
  Class& cls = pkg.add_class("Uart");
  EXPECT_EQ(find_by_qualified_name(model, "ip.Uart"), &cls);
  EXPECT_EQ(find_by_qualified_name(model, "ip"), &pkg);
  EXPECT_EQ(find_by_qualified_name(model, "ip.Missing"), nullptr);
  EXPECT_EQ(find_by_qualified_name(model, "nope.Uart"), nullptr);
}

TEST(Model, PrimitiveTypesAreInterned) {
  Model model("Soc");
  PrimitiveType& a = model.primitive("Integer", 32);
  PrimitiveType& b = model.primitive("Integer");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bit_width(), 32);
  PrimitiveType& bit = model.primitive("Bit", 1);
  EXPECT_NE(&a, &bit);
}

TEST(Class, FeatureLookup) {
  Model model("M");
  Class& cls = model.add_package("p").add_class("C");
  Property& x = cls.add_property("x");
  Operation& f = cls.add_operation("f");
  Port& clk = cls.add_port("clk", PortDirection::kIn);
  EXPECT_EQ(cls.find_property("x"), &x);
  EXPECT_EQ(cls.find_operation("f"), &f);
  EXPECT_EQ(cls.find_port("clk"), &clk);
  EXPECT_EQ(cls.find_property("y"), nullptr);
}

TEST(Class, InheritedFeatures) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& base = pkg.add_class("Base");
  base.add_property("a");
  base.add_operation("f");
  Class& mid = pkg.add_class("Mid");
  mid.add_generalization(base);
  mid.add_property("b");
  Class& leaf = pkg.add_class("Leaf");
  leaf.add_generalization(mid);
  leaf.add_property("c");

  std::vector<Property*> all = leaf.all_properties();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name(), "c");  // Most-derived first.
  EXPECT_EQ(leaf.all_operations().size(), 1u);
}

TEST(Class, DiamondInheritanceCollectsOnce) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& top = pkg.add_class("Top");
  top.add_property("t");
  Class& left = pkg.add_class("L");
  Class& right = pkg.add_class("R");
  left.add_generalization(top);
  right.add_generalization(top);
  Class& bottom = pkg.add_class("B");
  bottom.add_generalization(left);
  bottom.add_generalization(right);
  EXPECT_EQ(bottom.all_properties().size(), 1u);
}

TEST(Classifier, ConformsTo) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& base = pkg.add_class("Base");
  Class& derived = pkg.add_class("Derived");
  derived.add_generalization(base);
  EXPECT_TRUE(derived.conforms_to(base));
  EXPECT_TRUE(derived.conforms_to(derived));
  EXPECT_FALSE(base.conforms_to(derived));
}

TEST(Classifier, ConformsToIsCycleSafe) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Class& b = pkg.add_class("B");
  a.add_generalization(b);
  b.add_generalization(a);  // Illegal, but must not hang.
  EXPECT_TRUE(a.conforms_to(b));
  EXPECT_FALSE(a.conforms_to(*static_cast<Classifier*>(&pkg.add_class("C"))));
}

TEST(Operation, ReturnTypeHandling) {
  Model model("M");
  Class& cls = model.add_package("p").add_class("C");
  Operation& f = cls.add_operation("f");
  EXPECT_EQ(f.return_type(), nullptr);
  f.set_return_type(model.primitive("Integer", 32));
  EXPECT_EQ(f.return_type()->name(), "Integer");
  // Setting again replaces, not duplicates.
  f.set_return_type(model.primitive("Boolean", 1));
  EXPECT_EQ(f.return_type()->name(), "Boolean");
  int return_count = 0;
  for (const auto& p : f.parameters()) {
    if (p->direction() == ParameterDirection::kReturn) ++return_count;
  }
  EXPECT_EQ(return_count, 1);
}

TEST(Association, OppositeEnd) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Class& b = pkg.add_class("B");
  Association& assoc = pkg.add_association("ab");
  Property& ea = assoc.add_end("a", a);
  Property& eb = assoc.add_end("b", b);
  EXPECT_TRUE(assoc.is_binary());
  EXPECT_EQ(assoc.opposite(ea), &eb);
  EXPECT_EQ(assoc.opposite(eb), &ea);
}

TEST(Multiplicity, Validity) {
  EXPECT_TRUE((Multiplicity{0, Multiplicity::kUnlimited}).is_valid());
  EXPECT_TRUE((Multiplicity{1, 1}).is_valid());
  EXPECT_FALSE((Multiplicity{2, 1}).is_valid());
  EXPECT_FALSE((Multiplicity{-1, 1}).is_valid());
  EXPECT_EQ((Multiplicity{0, Multiplicity::kUnlimited}).str(), "*");
  EXPECT_EQ((Multiplicity{1, 1}).str(), "1");
  EXPECT_EQ((Multiplicity{2, 4}).str(), "2..4");
}

TEST(Profile, StereotypeApplication) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");
  Stereotype& hw = profile.add_stereotype("HwModule");
  hw.add_extended_metaclass(ElementKind::kClass);
  hw.add_tag_definition("clockMHz", "100");
  model.apply_profile(profile);

  Class& cls = model.add_package("p").add_class("Uart");
  cls.apply_stereotype(hw);
  EXPECT_TRUE(cls.has_stereotype(hw));
  EXPECT_TRUE(cls.has_stereotype("HwModule"));
  EXPECT_FALSE(cls.has_stereotype("SwTask"));
  // Tag defaults come from the definition.
  EXPECT_EQ(cls.tagged_value(hw, "clockMHz"), "100");
  cls.set_tagged_value(hw, "clockMHz", "200");
  EXPECT_EQ(cls.tagged_value(hw, "clockMHz"), "200");
  // Re-application does not duplicate.
  cls.apply_stereotype(hw);
  EXPECT_EQ(cls.stereotype_applications().size(), 1u);
}

TEST(Instance, SlotsAndReferences) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& cls = pkg.add_class("C");
  Property& x = cls.add_property("x", &model.primitive("Integer", 32));
  Property& next = cls.add_property("next", &cls);

  InstanceSpecification& i1 = pkg.add_instance("i1", &cls);
  InstanceSpecification& i2 = pkg.add_instance("i2", &cls);
  i1.set_slot(x, "42");
  i1.set_slot_reference(next, i2);

  ASSERT_NE(i1.find_slot("x"), nullptr);
  EXPECT_EQ(i1.find_slot("x")->value, "42");
  EXPECT_EQ(i1.find_slot("next")->reference, &i2);
  EXPECT_EQ(i1.find_slot("missing"), nullptr);
  // Overwriting a slot replaces it in place.
  i1.set_slot(x, "43");
  EXPECT_EQ(i1.find_slot("x")->value, "43");
  EXPECT_EQ(i1.slots().size(), 2u);
}

TEST(Traversal, WalkVisitsEverything) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& cls = pkg.add_class("C");
  cls.add_property("x");
  cls.add_operation("f").add_parameter("a");

  struct Counter final : ElementVisitor {
    int classes = 0, properties = 0, operations = 0, parameters = 0, packages = 0;
    void visit(Class&) override { ++classes; }
    void visit(Property&) override { ++properties; }
    void visit(Operation&) override { ++operations; }
    void visit(Parameter&) override { ++parameters; }
    void visit(Package&) override { ++packages; }
  } counter;
  walk(model, counter);
  EXPECT_EQ(counter.classes, 1);
  EXPECT_EQ(counter.properties, 1);
  EXPECT_EQ(counter.operations, 1);
  EXPECT_EQ(counter.parameters, 1);
  EXPECT_EQ(counter.packages, 1);  // Model dispatches to visit(Model&).
}

TEST(Query, StatsCountKindsAndDepth) {
  Model model("M");
  Class& cls = model.add_package("p").add_class("C");
  cls.add_operation("f").add_parameter("a");
  ModelStats stats = compute_stats(model);
  EXPECT_EQ(stats.count(ElementKind::kClass), 1u);
  EXPECT_EQ(stats.count(ElementKind::kParameter), 1u);
  EXPECT_EQ(stats.total, model.element_count());
  EXPECT_EQ(stats.max_depth, 4u);  // model > pkg > class > op > param.
}

TEST(Query, CollectFindsAllOfType) {
  auto model = make_synthetic_model(SyntheticSpec{});
  std::vector<Class*> classes = collect<Class>(*model);
  SyntheticSpec spec;
  EXPECT_EQ(classes.size(), spec.packages * spec.classes_per_package);
}

TEST(Synthetic, DeterministicAcrossCalls) {
  SyntheticSpec spec;
  spec.seed = 77;
  auto a = make_synthetic_model(spec);
  auto b = make_synthetic_model(spec);
  EXPECT_EQ(a->element_count(), b->element_count());
  ModelStats sa = compute_stats(*a);
  ModelStats sb = compute_stats(*b);
  EXPECT_EQ(sa.by_kind, sb.by_kind);
}

TEST(Synthetic, ScalesWithSpec) {
  SyntheticSpec small;
  small.packages = 1;
  SyntheticSpec large;
  large.packages = 8;
  auto a = make_synthetic_model(small);
  auto b = make_synthetic_model(large);
  EXPECT_GT(b->element_count(), a->element_count());
}

}  // namespace
}  // namespace umlsoc::uml
