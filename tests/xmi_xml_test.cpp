// Tests for the XML document model, writer and parser.
#include <gtest/gtest.h>

#include "xmi/xml.hpp"

namespace umlsoc::xmi {
namespace {

std::unique_ptr<XmlNode> parse_ok(std::string_view text) {
  support::DiagnosticSink sink;
  std::unique_ptr<XmlNode> node = parse_xml(text, sink);
  EXPECT_NE(node, nullptr) << sink.str();
  return node;
}

void parse_fails(std::string_view text, std::string_view expected_message) {
  support::DiagnosticSink sink;
  std::unique_ptr<XmlNode> node = parse_xml(text, sink);
  EXPECT_EQ(node, nullptr);
  EXPECT_NE(sink.str().find(expected_message), std::string::npos)
      << "got diagnostics:\n"
      << sink.str();
}

TEST(Xml, NodeAttributesKeepOrderAndOverwrite) {
  XmlNode node("a");
  node.set_attribute("x", "1");
  node.set_attribute("y", "2");
  node.set_attribute("x", "3");
  ASSERT_EQ(node.attributes().size(), 2u);
  EXPECT_EQ(node.attributes()[0].first, "x");
  EXPECT_EQ(*node.attribute("x"), "3");
  EXPECT_EQ(node.attribute("z"), nullptr);
  EXPECT_EQ(node.attribute_or("z", "d"), "d");
}

TEST(Xml, ChildLookup) {
  XmlNode node("root");
  node.add_child("a");
  node.add_child("b");
  node.add_child("a");
  EXPECT_NE(node.child("a"), nullptr);
  EXPECT_EQ(node.child("c"), nullptr);
  EXPECT_EQ(node.children_named("a").size(), 2u);
}

TEST(Xml, WriteSelfClosing) {
  XmlNode node("empty");
  node.set_attribute("k", "v");
  EXPECT_EQ(node.str(), "<empty k=\"v\"/>\n");
}

TEST(Xml, WriteEscapesAttributeValues) {
  XmlNode node("n");
  node.set_attribute("k", "a<b & \"c\"");
  EXPECT_NE(node.str().find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
}

TEST(Xml, ParseMinimalDocument) {
  auto root = parse_ok("<root/>");
  EXPECT_EQ(root->name(), "root");
  EXPECT_TRUE(root->children().empty());
}

TEST(Xml, ParseDeclarationAndComments) {
  auto root = parse_ok(
      "<?xml version=\"1.0\"?>\n"
      "<!-- header comment -->\n"
      "<root><!-- inner --><child/></root>\n"
      "<!-- trailing -->");
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(Xml, ParseAttributesBothQuoteStyles) {
  auto root = parse_ok("<r a=\"1\" b='two'/>");
  EXPECT_EQ(*root->attribute("a"), "1");
  EXPECT_EQ(*root->attribute("b"), "two");
}

TEST(Xml, ParseNestedElementsAndText) {
  auto root = parse_ok("<a><b>hello</b><c><d/></c></a>");
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->child("b")->text(), "hello");
  EXPECT_NE(root->child("c")->child("d"), nullptr);
}

TEST(Xml, ParseEntities) {
  auto root = parse_ok("<a k=\"&lt;&gt;&amp;&quot;&apos;\">&amp;text</a>");
  EXPECT_EQ(*root->attribute("k"), "<>&\"'");
  EXPECT_EQ(root->text(), "&text");
}

TEST(Xml, RoundTripThroughWriter) {
  XmlNode original("Model");
  original.set_attribute("name", "M<&>");
  XmlNode& child = original.add_child("Class");
  child.set_attribute("name", "C");
  child.add_child("Property").set_attribute("name", "p'q");

  auto reparsed = parse_ok(original.str());
  EXPECT_EQ(*reparsed->attribute("name"), "M<&>");
  EXPECT_EQ(*reparsed->child("Class")->child("Property")->attribute("name"), "p'q");
}

TEST(Xml, ErrorMismatchedClosingTag) { parse_fails("<a><b></a></b>", "mismatched closing tag"); }

TEST(Xml, ErrorUnterminatedElement) { parse_fails("<a><b>", "unterminated element"); }

TEST(Xml, ErrorTrailingContent) { parse_fails("<a/><b/>", "trailing content"); }

TEST(Xml, ErrorMissingAttributeValue) { parse_fails("<a k=/>", "quoted attribute value"); }

TEST(Xml, ErrorUnterminatedAttribute) { parse_fails("<a k=\"v/>", "unterminated attribute"); }

TEST(Xml, ErrorUnterminatedComment) { parse_fails("<!-- never ends", "unterminated comment"); }

TEST(Xml, ErrorUnknownEntity) { parse_fails("<a k=\"&bogus;\"/>", "unknown entity"); }

TEST(Xml, ErrorGarbage) { parse_fails("not xml at all", "expected element start"); }

TEST(Xml, ErrorReportsLineNumber) {
  support::DiagnosticSink sink;
  EXPECT_EQ(parse_xml("<a>\n\n<b></c>\n</a>", sink), nullptr);
  EXPECT_NE(sink.str().find("line 3"), std::string::npos) << sink.str();
}

}  // namespace
}  // namespace umlsoc::xmi
