// MDA transformation tests: SW and HW mappings, trace links, memory map.
#include <gtest/gtest.h>

#include "mda/transform.hpp"
#include "soc/validate.hpp"
#include "uml/query.hpp"
#include "uml/validate.hpp"

namespace umlsoc::mda {
namespace {

/// PIM with one «SwTask», one «HwModule» with registers, an association,
/// an interface and an enumeration.
struct PimFixture {
  uml::Model pim{"Design"};
  soc::SocProfile profile = soc::SocProfile::install(pim);
  uml::Package& pkg = pim.add_package("app");
  uml::Class* controller = nullptr;
  uml::Class* uart = nullptr;

  PimFixture() {
    uml::Enumeration& mode = pkg.add_enumeration("Mode");
    mode.add_literal("IDLE");
    mode.add_literal("BUSY");

    uml::Interface& istream = pkg.add_interface("IStream");
    istream.add_operation("read").set_return_type(pim.primitive("Byte", 8));

    controller = &pkg.add_class("Controller");
    controller->apply_stereotype(*profile.sw_task);
    controller->set_tagged_value(*profile.sw_task, "priority", "7");
    controller->add_property("mode", &mode);
    uml::Operation& tick = controller->add_operation("tick");
    tick.set_body("self.count := self.count + 1;");
    controller->add_interface_realization(istream);

    uart = &pkg.add_class("Uart");
    uart->apply_stereotype(*profile.hw_module);
    uart->set_tagged_value(*profile.hw_module, "clockMHz", "50");
    auto add_register = [&](const char* name, const char* address, const char* access) {
      uml::Property& reg = uart->add_property(name, &pim.primitive("Word", 32));
      reg.apply_stereotype(*profile.hw_register);
      reg.set_tagged_value(*profile.hw_register, "address", address);
      reg.set_tagged_value(*profile.hw_register, "access", access);
    };
    add_register("tx_data", "0x0", "w");
    add_register("status", "0x4", "r");
    add_register("ctrl", "0x8", "rw");
    uart->add_port("rx", uml::PortDirection::kIn);

    uml::Association& assoc = pkg.add_association("drives");
    assoc.add_end("owner", *controller);
    assoc.add_end("device", *uart).set_multiplicity({1, 1});
  }
};

TEST(MdaSoftware, ProducesValidPsm) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::software(), sink);
  ASSERT_NE(result.psm, nullptr);
  support::DiagnosticSink validate_sink;
  EXPECT_TRUE(uml::validate(*result.psm, validate_sink)) << validate_sink.str();
}

TEST(MdaSoftware, SwTaskBecomesActiveClass) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::software(), sink);
  auto* task = dynamic_cast<uml::Class*>(
      uml::find_by_qualified_name(*result.psm, "app.Controller"));
  ASSERT_NE(task, nullptr);
  EXPECT_TRUE(task->is_active());
  EXPECT_NE(task->find_operation("tick"), nullptr);
  EXPECT_FALSE(task->find_operation("tick")->body().empty());
  // Enumeration-typed property survives with a mapped type.
  ASSERT_NE(task->find_property("mode"), nullptr);
  ASSERT_NE(task->find_property("mode")->type(), nullptr);
  EXPECT_EQ(task->find_property("mode")->type()->name(), "Mode");
}

TEST(MdaSoftware, HwModuleBecomesDriver) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::software(), sink);
  auto* driver = dynamic_cast<uml::Class*>(
      uml::find_by_qualified_name(*result.psm, "app.UartDriver"));
  ASSERT_NE(driver, nullptr);
  // Offsets as static read-only constants.
  const uml::Property* offset = driver->find_property("status_offset");
  ASSERT_NE(offset, nullptr);
  EXPECT_TRUE(offset->is_read_only());
  EXPECT_TRUE(offset->is_static());
  EXPECT_EQ(offset->default_value(), "4");
  // Access modes respected: status is read-only -> no write op.
  EXPECT_NE(driver->find_operation("read_status"), nullptr);
  EXPECT_EQ(driver->find_operation("write_status"), nullptr);
  EXPECT_NE(driver->find_operation("write_tx_data"), nullptr);
  EXPECT_EQ(driver->find_operation("read_tx_data"), nullptr);
  EXPECT_NE(driver->find_operation("read_ctrl"), nullptr);
  EXPECT_NE(driver->find_operation("write_ctrl"), nullptr);
  // Generated body references the base register.
  EXPECT_NE(driver->find_operation("read_ctrl")->body().find("bus_read(self.base + 8)"),
            std::string::npos);
}

TEST(MdaSoftware, AssociationBecomesReferences) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::software(), sink);
  auto* task = dynamic_cast<uml::Class*>(
      uml::find_by_qualified_name(*result.psm, "app.Controller"));
  ASSERT_NE(task, nullptr);
  const uml::Property* device = task->find_property("device");
  ASSERT_NE(device, nullptr);
  ASSERT_NE(device->type(), nullptr);
  EXPECT_EQ(device->type()->name(), "UartDriver");
}

TEST(MdaSoftware, TraceLinksRecorded) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::software(), sink);
  const TraceLink* link = result.find_link_for("Design.app.Uart");
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->rule, "hw-module-to-driver");
  EXPECT_NE(link->psm_element.find("UartDriver"), std::string::npos);
  EXPECT_NE(result.find_link_for("Design.app.Controller"), nullptr);
  EXPECT_EQ(result.find_link_for("Design.app.DoesNotExist"), nullptr);
}

TEST(MdaHardware, ProducesValidProfiledPsm) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  ASSERT_NE(result.psm, nullptr);
  support::DiagnosticSink validate_sink;
  EXPECT_TRUE(uml::validate(*result.psm, validate_sink)) << validate_sink.str();
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*result.psm);
  ASSERT_TRUE(psm_profile.has_value());
  EXPECT_TRUE(soc::validate_soc(*result.psm, *psm_profile, validate_sink))
      << validate_sink.str();
}

TEST(MdaHardware, SwTaskDropped) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  EXPECT_EQ(uml::find_by_qualified_name(*result.psm, "app.Controller"), nullptr);
  EXPECT_NE(sink.str().find("not mapped to hardware"), std::string::npos);
}

TEST(MdaHardware, ModuleGetsInfrastructurePorts) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  auto* module =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*result.psm, "app.Uart"));
  ASSERT_NE(module, nullptr);
  EXPECT_NE(module->find_port("clk"), nullptr);
  EXPECT_NE(module->find_port("rst_n"), nullptr);
  EXPECT_NE(module->find_port("s_axi"), nullptr);
  EXPECT_NE(module->find_port("rx"), nullptr);  // Original port kept.
  EXPECT_EQ(module->find_port("clk")->direction(), uml::PortDirection::kIn);
}

TEST(MdaHardware, RegistersKeepAddressesAndAccess) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(*result.psm);
  auto* module =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*result.psm, "app.Uart"));
  ASSERT_NE(module, nullptr);
  const uml::Property* status = module->find_property("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(profile->register_address(*status), 0x4u);
  EXPECT_EQ(profile->register_access(*status), "r");
}

TEST(MdaHardware, TopLevelStructureSynthesized) {
  PimFixture f;
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  auto* top =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*result.psm, "top.Top"));
  ASSERT_NE(top, nullptr);
  // Parts: bus + uart.
  EXPECT_EQ(top->properties().size(), 2u);
  EXPECT_EQ(top->connectors().size(), 1u);
  const uml::Connector& wire = *top->connectors().front();
  ASSERT_EQ(wire.ends().size(), 2u);
  EXPECT_NE(wire.ends()[0].port, nullptr);
  EXPECT_NE(wire.ends()[1].port, nullptr);
}

TEST(MdaHardware, MemoryMapAssignsDisjointWindows) {
  PimFixture f;
  // Add a second HW module to get two windows.
  uml::Class& dma = f.pkg.add_class("Dma");
  dma.apply_stereotype(*f.profile.hw_module);
  uml::Property& reg = dma.add_property("ctrl", &f.pim.primitive("Word", 32));
  reg.apply_stereotype(*f.profile.hw_register);
  reg.set_tagged_value(*f.profile.hw_register, "address", "0x0");

  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, PlatformDescription::hardware(), sink);
  ASSERT_EQ(result.memory_map.size(), 2u);
  const MemoryWindow& first = result.memory_map[0];
  const MemoryWindow& second = result.memory_map[1];
  EXPECT_EQ(first.base, 0x40000000u);
  EXPECT_GE(second.base, first.base + first.span);
  EXPECT_GT(first.span, 0u);
}

TEST(MdaHardware, MissingRegisterAddressAutoAssigned) {
  uml::Model pim("P");
  soc::SocProfile profile = soc::SocProfile::install(pim);
  uml::Package& pkg = pim.add_package("hw");
  uml::Class& blk = pkg.add_class("Blk");
  blk.apply_stereotype(*profile.hw_module);
  // Plain typed property, not stereotyped: still becomes a register.
  blk.add_property("a", &pim.primitive("Word", 32));
  blk.add_property("b", &pim.primitive("Word", 32));

  support::DiagnosticSink sink;
  MdaResult result = transform(pim, PlatformDescription::hardware(), sink);
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*result.psm);
  auto* module =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*result.psm, "hw.Blk"));
  ASSERT_NE(module, nullptr);
  EXPECT_EQ(psm_profile->register_address(*module->find_property("a")), 0x0u);
  EXPECT_EQ(psm_profile->register_address(*module->find_property("b")), 0x4u);
}

TEST(MdaHardware, PlatformParametersRespected) {
  PimFixture f;
  PlatformDescription platform = PlatformDescription::hardware();
  platform.parameters["bus_base"] = "0x80000000";
  platform.parameters["module_stride"] = "0x2000";
  support::DiagnosticSink sink;
  MdaResult result = transform(f.pim, platform, sink);
  ASSERT_FALSE(result.memory_map.empty());
  EXPECT_EQ(result.memory_map.front().base, 0x80000000u);
}

TEST(Mda, PimIsNotModified) {
  PimFixture f;
  const std::size_t elements_before = f.pim.element_count();
  support::DiagnosticSink sink;
  (void)transform(f.pim, PlatformDescription::software(), sink);
  (void)transform(f.pim, PlatformDescription::hardware(), sink);
  EXPECT_EQ(f.pim.element_count(), elements_before);
}

TEST(Mda, PlatformDescriptions) {
  PlatformDescription sw = PlatformDescription::software();
  EXPECT_EQ(sw.kind, PlatformKind::kSoftware);
  EXPECT_EQ(sw.parameter("language", ""), "c++");
  EXPECT_EQ(sw.parameter("missing", "x"), "x");
  EXPECT_EQ(to_string(PlatformKind::kHardware), "hardware");
}

}  // namespace
}  // namespace umlsoc::mda
