// Use case model tests: structure, validation, scenario coverage.
#include <gtest/gtest.h>

#include "interaction/model.hpp"
#include "usecase/model.hpp"

namespace umlsoc::usecase {
namespace {

TEST(UseCase, BuildAndLookup) {
  UseCaseModel model("SocDesigner");
  Actor& designer = model.add_actor("Designer");
  UseCase& edit = model.add_use_case("EditModel");
  edit.add_actor(designer);
  EXPECT_EQ(model.find_actor("Designer"), &designer);
  EXPECT_EQ(model.find_use_case("EditModel"), &edit);
  EXPECT_EQ(model.find_actor("Nobody"), nullptr);
  EXPECT_EQ(model.find_use_case("Nothing"), nullptr);
}

TEST(UseCase, ValidModelPasses) {
  UseCaseModel model("Soc");
  Actor& user = model.add_actor("User");
  UseCase& configure = model.add_use_case("Configure");
  configure.add_actor(user);
  UseCase& load = model.add_use_case("LoadFirmware");
  configure.add_include(load);  // Included: reachable through Configure.
  UseCase& debug = model.add_use_case("Debug");
  debug.add_extend(configure, "on error");

  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink)) << sink.str();
  EXPECT_EQ(sink.warning_count(), 0u) << sink.str();
}

TEST(UseCase, DuplicateNamesAreErrors) {
  UseCaseModel model("Soc");
  model.add_use_case("X");
  model.add_use_case("X");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("duplicate name"), std::string::npos);
}

TEST(UseCase, IncludeCycleIsError) {
  UseCaseModel model("Soc");
  Actor& user = model.add_actor("User");
  UseCase& a = model.add_use_case("A");
  UseCase& b = model.add_use_case("B");
  a.add_actor(user);
  a.add_include(b);
  b.add_include(a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("include cycle"), std::string::npos);
}

TEST(UseCase, SelfExtendIsError) {
  UseCaseModel model("Soc");
  Actor& user = model.add_actor("User");
  UseCase& a = model.add_use_case("A");
  a.add_actor(user);
  a.add_extend(a, "never");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("extends itself"), std::string::npos);
}

TEST(UseCase, EmptyExtendConditionWarns) {
  UseCaseModel model("Soc");
  Actor& user = model.add_actor("User");
  UseCase& a = model.add_use_case("A");
  UseCase& b = model.add_use_case("B");
  a.add_actor(user);
  b.add_extend(a, "");
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink));
  EXPECT_NE(sink.str().find("no condition"), std::string::npos);
}

TEST(UseCase, ActorUnreachableUseCaseWarns) {
  UseCaseModel model("Soc");
  model.add_actor("User");
  model.add_use_case("Orphaned");  // No actor association at all.
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink));
  EXPECT_NE(sink.str().find("no actor can reach"), std::string::npos);
}

TEST(UseCase, ActorInheritanceGrantsReach) {
  UseCaseModel model("Soc");
  Actor& operator_actor = model.add_actor("Operator");
  Actor& admin = model.add_actor("Admin");
  admin.add_generalization(operator_actor);
  UseCase& tune = model.add_use_case("Tune");
  tune.add_actor(admin);
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink)) << sink.str();
  EXPECT_EQ(sink.warning_count(), 0u);
}

TEST(UseCase, CoverageReport) {
  UseCaseModel model("Soc");
  Actor& user = model.add_actor("User");
  UseCase& covered = model.add_use_case("Covered");
  UseCase& uncovered = model.add_use_case("Uncovered");
  covered.add_actor(user);
  uncovered.add_actor(user);

  interaction::Interaction scenario("happy_path");
  covered.add_scenario(scenario);

  support::DiagnosticSink sink;
  EXPECT_EQ(report_coverage(model, sink), 1u);
  EXPECT_NE(sink.str().find("Uncovered"), std::string::npos);
  EXPECT_EQ(sink.str().find("\"Covered\""), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::usecase
