// Interpreter semantics tests: RTC steps, hierarchy, orthogonality, history,
// choice, completion, internal transitions, entry/exit ordering.
#include <gtest/gtest.h>

#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"

namespace umlsoc::statechart {
namespace {

TEST(Exec, SimpleTransition) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go");

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_TRUE(instance.is_active(a));
  EXPECT_TRUE(instance.dispatch({"go"}));
  EXPECT_TRUE(instance.is_active(b));
  EXPECT_FALSE(instance.is_active(a));
  EXPECT_EQ(instance.transitions_fired(), 1u);
}

TEST(Exec, UnmatchedEventIsDiscarded) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_transition(initial, a);

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_FALSE(instance.dispatch({"nothing"}));
  EXPECT_TRUE(instance.is_active(a));
  bool found_discard = false;
  for (const std::string& entry : instance.trace()) {
    if (entry == "discard:nothing") found_discard = true;
  }
  EXPECT_TRUE(found_discard);
}

TEST(Exec, GuardBlocksTransition) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go").set_guard("enabled", [](const ActionContext& ctx) {
    return ctx.instance.variable("enabled") != 0;
  });

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_FALSE(instance.dispatch({"go"}));
  EXPECT_TRUE(instance.is_active(a));
  instance.set_variable("enabled", 1);
  EXPECT_TRUE(instance.dispatch({"go"}));
  EXPECT_TRUE(instance.is_active(b));
}

TEST(Exec, GuardSeesEventData) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("v").set_guard(
      "data>10", [](const ActionContext& ctx) { return ctx.event->data > 10; });

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_FALSE(instance.dispatch({"v", 5}));
  EXPECT_TRUE(instance.dispatch({"v", 11}));
}

TEST(Exec, EffectRunsBetweenExitAndEntry) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);

  std::vector<std::string> order;
  a.set_exit(Behavior{"xA", [&](ActionContext&) { order.push_back("exitA"); }});
  b.set_entry(Behavior{"eB", [&](ActionContext&) { order.push_back("enterB"); }});
  top.add_transition(a, b).set_trigger("go").set_effect(
      "fx", [&](ActionContext&) { order.push_back("effect"); });

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"go"});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "exitA");
  EXPECT_EQ(order[1], "effect");
  EXPECT_EQ(order[2], "enterB");
}

TEST(Exec, CompositeDefaultEntryEnterOrderIsOuterFirst) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& outer = top.add_state("Outer");
  top.add_transition(initial, outer);
  Region& inner_region = outer.add_region("r");
  Pseudostate& inner_initial = inner_region.add_initial();
  State& inner = inner_region.add_state("Inner");
  inner_region.add_transition(inner_initial, inner);

  std::vector<std::string> order;
  outer.set_entry(Behavior{"", [&](ActionContext&) { order.push_back("Outer"); }});
  inner.set_entry(Behavior{"", [&](ActionContext&) { order.push_back("Inner"); }});

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_TRUE(instance.is_active(outer));
  EXPECT_TRUE(instance.is_active(inner));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "Outer");
  EXPECT_EQ(order[1], "Inner");
}

TEST(Exec, ExitOrderIsInnerFirst) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& outer = top.add_state("Outer");
  State& elsewhere = top.add_state("Elsewhere");
  top.add_transition(initial, outer);
  Region& inner_region = outer.add_region("r");
  Pseudostate& inner_initial = inner_region.add_initial();
  State& inner = inner_region.add_state("Inner");
  inner_region.add_transition(inner_initial, inner);
  top.add_transition(outer, elsewhere).set_trigger("leave");

  std::vector<std::string> order;
  outer.set_exit(Behavior{"", [&](ActionContext&) { order.push_back("Outer"); }});
  inner.set_exit(Behavior{"", [&](ActionContext&) { order.push_back("Inner"); }});

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"leave"});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "Inner");
  EXPECT_EQ(order[1], "Outer");
  EXPECT_TRUE(instance.is_active(elsewhere));
}

TEST(Exec, InnerTransitionHasPriorityOverOuter) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& outer = top.add_state("Outer");
  State& out_target = top.add_state("OutTarget");
  top.add_transition(initial, outer);
  Region& inner_region = outer.add_region("r");
  Pseudostate& inner_initial = inner_region.add_initial();
  State& i1 = inner_region.add_state("I1");
  State& i2 = inner_region.add_state("I2");
  inner_region.add_transition(inner_initial, i1);

  top.add_transition(outer, out_target).set_trigger("e");  // Outer handler.
  inner_region.add_transition(i1, i2).set_trigger("e");    // Inner handler wins.

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"e"});
  EXPECT_TRUE(instance.is_active(i2));
  EXPECT_TRUE(instance.is_active(outer));
  EXPECT_FALSE(instance.is_active(out_target));

  // From I2 there is no inner handler: the outer one fires.
  instance.dispatch({"e"});
  EXPECT_TRUE(instance.is_active(out_target));
  EXPECT_FALSE(instance.is_active(outer));
}

TEST(Exec, OuterFiresWhenInnerGuardClosed) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& outer = top.add_state("Outer");
  State& out_target = top.add_state("OutTarget");
  top.add_transition(initial, outer);
  Region& inner_region = outer.add_region("r");
  Pseudostate& inner_initial = inner_region.add_initial();
  State& i1 = inner_region.add_state("I1");
  State& i2 = inner_region.add_state("I2");
  inner_region.add_transition(inner_initial, i1);

  inner_region.add_transition(i1, i2).set_trigger("e").set_guard(
      "never", [](const ActionContext&) { return false; });
  top.add_transition(outer, out_target).set_trigger("e");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"e"});
  EXPECT_TRUE(instance.is_active(out_target));
}

TEST(Exec, SelfTransitionExitsAndReenters) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_transition(initial, a);
  top.add_transition(a, a).set_trigger("again");

  int entries = 0;
  int exits = 0;
  a.set_entry(Behavior{"", [&](ActionContext&) { ++entries; }});
  a.set_exit(Behavior{"", [&](ActionContext&) { ++exits; }});

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_EQ(entries, 1);
  instance.dispatch({"again"});
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(entries, 2);
  EXPECT_TRUE(instance.is_active(a));
}

TEST(Exec, InternalTransitionDoesNotExit) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_transition(initial, a);

  int entries = 0;
  int effects = 0;
  a.set_entry(Behavior{"", [&](ActionContext&) { ++entries; }});
  top.add_transition(a, a)
      .set_trigger("poke")
      .set_internal(true)
      .set_effect("fx", [&](ActionContext&) { ++effects; });

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"poke"});
  instance.dispatch({"poke"});
  EXPECT_EQ(entries, 1);  // Never re-entered.
  EXPECT_EQ(effects, 2);
  EXPECT_EQ(instance.transitions_fired(), 2u);
}

TEST(Exec, OrthogonalRegionsEnterTogetherAndFireTogether) {
  auto machine = make_orthogonal_machine(3, 4);
  StateMachineInstance instance(*machine);
  instance.start();
  EXPECT_TRUE(instance.is_in("q0_0"));
  EXPECT_TRUE(instance.is_in("q1_0"));
  EXPECT_TRUE(instance.is_in("q2_0"));

  // "tick" advances all three regions in one RTC step.
  instance.dispatch({"tick"});
  EXPECT_TRUE(instance.is_in("q0_1"));
  EXPECT_TRUE(instance.is_in("q1_1"));
  EXPECT_TRUE(instance.is_in("q2_1"));
  EXPECT_EQ(instance.transitions_fired(), 3u);

  // A region-specific event advances only that region.
  instance.dispatch({"r1"});
  EXPECT_TRUE(instance.is_in("q0_1"));
  EXPECT_TRUE(instance.is_in("q1_2"));
  EXPECT_TRUE(instance.is_in("q2_1"));
}

TEST(Exec, TransitionOutOfOrthogonalExitsAllRegions) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& parallel = top.add_state("P");
  State& done = top.add_state("Done");
  top.add_transition(initial, parallel);
  top.add_transition(parallel, done).set_trigger("abort");

  std::vector<std::string> exited;
  for (int r = 0; r < 2; ++r) {
    Region& region = parallel.add_region("r" + std::to_string(r));
    Pseudostate& region_initial = region.add_initial();
    State& s = region.add_state("w" + std::to_string(r));
    region.add_transition(region_initial, s);
    s.set_exit(Behavior{"", [&exited, r](ActionContext&) {
                          exited.push_back("w" + std::to_string(r));
                        }});
  }

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_EQ(instance.configuration().size(), 3u);  // P + two region states.
  instance.dispatch({"abort"});
  EXPECT_TRUE(instance.is_active(done));
  EXPECT_EQ(instance.configuration().size(), 1u);
  EXPECT_EQ(exited.size(), 2u);
}

TEST(Exec, ChoicePseudostateRoutesByGuard) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  Pseudostate& choice = top.add_pseudostate(VertexKind::kChoice, "c");
  State& low = top.add_state("Low");
  State& high = top.add_state("High");
  top.add_transition(initial, a);
  top.add_transition(a, choice).set_trigger("val");
  top.add_transition(choice, high).set_guard("data>=100", [](const ActionContext& ctx) {
    return ctx.event != nullptr && ctx.event->data >= 100;
  });
  top.add_transition(choice, low).set_guard(Guard{"else", nullptr});

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"val", 42});
  EXPECT_TRUE(instance.is_active(low));
}

TEST(Exec, ChoiceTakesFirstOpenBranch) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  Pseudostate& choice = top.add_pseudostate(VertexKind::kChoice, "c");
  State& b = top.add_state("B");
  State& c = top.add_state("C");
  top.add_transition(initial, a);
  top.add_transition(a, choice).set_trigger("go");
  top.add_transition(choice, b);  // Unguarded: always taken.
  top.add_transition(choice, c).set_guard(Guard{"else", nullptr});

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"go", 500});
  EXPECT_TRUE(instance.is_active(b));
}

TEST(Exec, SegmentEffectsRunInOrder) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  Pseudostate& junction = top.add_pseudostate(VertexKind::kJunction, "j");
  State& b = top.add_state("B");
  top.add_transition(initial, a);

  std::vector<int> order;
  top.add_transition(a, junction).set_trigger("go").set_effect(
      "seg1", [&](ActionContext&) { order.push_back(1); });
  top.add_transition(junction, b).set_effect("seg2",
                                             [&](ActionContext&) { order.push_back(2); });

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"go"});
  EXPECT_TRUE(instance.is_active(b));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(order[0], order[1]);
}

TEST(Exec, ShallowHistoryRestoresDirectChild) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& paused = top.add_state("Paused");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& w1 = wr.add_state("W1");
  State& w2 = wr.add_state("W2");
  Pseudostate& history = wr.add_pseudostate(VertexKind::kShallowHistory, "H");
  wr.add_transition(winit, w1);
  wr.add_transition(w1, w2).set_trigger("next");
  top.add_transition(work, paused).set_trigger("pause");
  top.add_transition(paused, history).set_trigger("resume");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"next"});
  EXPECT_TRUE(instance.is_active(w2));
  instance.dispatch({"pause"});
  EXPECT_TRUE(instance.is_active(paused));
  instance.dispatch({"resume"});
  EXPECT_TRUE(instance.is_active(work));
  EXPECT_TRUE(instance.is_active(w2));  // Resumed where we left off.
  EXPECT_FALSE(instance.is_active(w1));
}

TEST(Exec, ShallowHistoryDefaultWhenEmpty) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& idle = top.add_state("Idle");
  State& work = top.add_state("Work");
  top.add_transition(initial, idle);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& w1 = wr.add_state("W1");
  State& w2 = wr.add_state("W2");
  Pseudostate& history = wr.add_pseudostate(VertexKind::kShallowHistory, "H");
  wr.add_transition(winit, w1);
  wr.add_transition(history, w2);  // History default goes to W2.
  top.add_transition(idle, history).set_trigger("begin");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"begin"});  // No stored history: default transition.
  EXPECT_TRUE(instance.is_active(w2));
  EXPECT_FALSE(instance.is_active(w1));
}

TEST(Exec, ShallowHistoryIsShallow) {
  // Nested composite inside the remembered child re-enters via default.
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& paused = top.add_state("Paused");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& sub = wr.add_state("Sub");
  Pseudostate& history = wr.add_pseudostate(VertexKind::kShallowHistory, "H");
  wr.add_transition(winit, sub);
  Region& sr = sub.add_region("sr");
  Pseudostate& sinit = sr.add_initial();
  State& d1 = sr.add_state("D1");
  State& d2 = sr.add_state("D2");
  sr.add_transition(sinit, d1);
  sr.add_transition(d1, d2).set_trigger("deep");
  top.add_transition(work, paused).set_trigger("pause");
  top.add_transition(paused, history).set_trigger("resume");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"deep"});
  EXPECT_TRUE(instance.is_active(d2));
  instance.dispatch({"pause"});
  instance.dispatch({"resume"});
  EXPECT_TRUE(instance.is_active(sub));
  EXPECT_TRUE(instance.is_active(d1));  // Shallow: nested region reset.
  EXPECT_FALSE(instance.is_active(d2));
}

TEST(Exec, DeepHistoryRestoresLeaves) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& paused = top.add_state("Paused");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& sub = wr.add_state("Sub");
  Pseudostate& history = wr.add_pseudostate(VertexKind::kDeepHistory, "DH");
  wr.add_transition(winit, sub);
  Region& sr = sub.add_region("sr");
  Pseudostate& sinit = sr.add_initial();
  State& d1 = sr.add_state("D1");
  State& d2 = sr.add_state("D2");
  sr.add_transition(sinit, d1);
  sr.add_transition(d1, d2).set_trigger("deep");
  top.add_transition(work, paused).set_trigger("pause");
  top.add_transition(paused, history).set_trigger("resume");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"deep"});
  instance.dispatch({"pause"});
  instance.dispatch({"resume"});
  EXPECT_TRUE(instance.is_active(sub));
  EXPECT_TRUE(instance.is_active(d2));  // Deep: exact leaf restored.
  EXPECT_FALSE(instance.is_active(d1));
}

TEST(Exec, DeepHistoryRestoresOrthogonalLeaves) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& paused = top.add_state("Paused");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& par = wr.add_state("Par");
  Pseudostate& history = wr.add_pseudostate(VertexKind::kDeepHistory, "DH");
  wr.add_transition(winit, par);
  Region& ra = par.add_region("ra");
  Pseudostate& ia = ra.add_initial();
  State& a1 = ra.add_state("A1");
  State& a2 = ra.add_state("A2");
  ra.add_transition(ia, a1);
  ra.add_transition(a1, a2).set_trigger("ea");
  Region& rb = par.add_region("rb");
  Pseudostate& ib = rb.add_initial();
  State& b1 = rb.add_state("B1");
  State& b2 = rb.add_state("B2");
  rb.add_transition(ib, b1);
  rb.add_transition(b1, b2).set_trigger("eb");
  top.add_transition(work, paused).set_trigger("pause");
  top.add_transition(paused, history).set_trigger("resume");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"ea"});  // A2, B1 active.
  instance.dispatch({"pause"});
  instance.dispatch({"resume"});
  EXPECT_TRUE(instance.is_active(a2));
  EXPECT_TRUE(instance.is_active(b1));  // B-region restored, not defaulted...
  EXPECT_FALSE(instance.is_active(a1));
  EXPECT_FALSE(instance.is_active(b2));
}

TEST(Exec, CompletionTransitionFiresImmediately) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  State& c = top.add_state("C");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go");
  top.add_transition(b, c);  // Completion: B is transient.

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"go"});
  EXPECT_TRUE(instance.is_active(c));
  EXPECT_FALSE(instance.is_active(b));
  EXPECT_EQ(instance.transitions_fired(), 2u);
}

TEST(Exec, CompositeCompletionWaitsForFinal) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& done = top.add_state("Done");
  top.add_transition(initial, work);
  top.add_transition(work, done);  // Completion out of composite.
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& step1 = wr.add_state("Step1");
  FinalState& final_state = wr.add_final();
  wr.add_transition(winit, step1);
  wr.add_transition(step1, final_state).set_trigger("finish");

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_TRUE(instance.is_active(work));  // Not completed yet.
  EXPECT_FALSE(instance.is_active(done));
  instance.dispatch({"finish"});
  EXPECT_TRUE(instance.is_active(done));  // Final reached -> completion fires.
  EXPECT_FALSE(instance.is_active(work));
}

TEST(Exec, TopFinalStateTerminatesMachine) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  FinalState& end = top.add_final();
  top.add_transition(initial, a);
  top.add_transition(a, end).set_trigger("quit");

  StateMachineInstance instance(machine);
  instance.start();
  EXPECT_FALSE(instance.is_in_final_state());
  instance.dispatch({"quit"});
  EXPECT_TRUE(instance.is_in_final_state());
  EXPECT_TRUE(instance.configuration().empty());
}

TEST(Exec, ActionsCanRaiseInternalEvents) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  State& c = top.add_state("C");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go").set_effect(
      "raise done", [](ActionContext& ctx) { ctx.instance.post({"done"}); });
  top.add_transition(b, c).set_trigger("done");

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"go"});
  EXPECT_TRUE(instance.is_active(c));  // Internal event processed same run.
}

TEST(Exec, CompletionLivelockThrows) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b);  // Completion ping-pong forever.
  top.add_transition(b, a);

  StateMachineInstance instance(machine);
  instance.set_trace_enabled(false);
  EXPECT_THROW(instance.start(), std::runtime_error);
}

TEST(Exec, TransitionToInnerStateOfComposite) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& idle = top.add_state("Idle");
  State& work = top.add_state("Work");
  top.add_transition(initial, idle);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& w1 = wr.add_state("W1");
  State& w2 = wr.add_state("W2");
  wr.add_transition(winit, w1);
  top.add_transition(idle, w2).set_trigger("jump");  // Direct deep entry.

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"jump"});
  EXPECT_TRUE(instance.is_active(work));  // Ancestor entered implicitly.
  EXPECT_TRUE(instance.is_active(w2));
  EXPECT_FALSE(instance.is_active(w1));   // Initial NOT taken on explicit entry.
}

TEST(Exec, ExitFromDeepInnerStateToOutside) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& out = top.add_state("Out");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  State& w1 = wr.add_state("W1");
  wr.add_transition(winit, w1);
  wr.add_transition(w1, out).set_trigger("escape");  // Cross-boundary.

  StateMachineInstance instance(machine);
  instance.start();
  instance.dispatch({"escape"});
  EXPECT_TRUE(instance.is_active(out));
  EXPECT_FALSE(instance.is_active(work));
  EXPECT_FALSE(instance.is_active(w1));
}

TEST(Exec, ChainMachineStepsDeterministically) {
  auto machine = make_chain_machine(10);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (int i = 0; i < 25; ++i) instance.dispatch({"e"});
  EXPECT_TRUE(instance.is_in("s5"));  // 25 mod 10.
  EXPECT_EQ(instance.transitions_fired(), 25u);
  EXPECT_EQ(instance.events_processed(), 25u);
}

TEST(Exec, NestedMachineStepAndReset) {
  auto machine = make_nested_machine(4, 3);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  EXPECT_TRUE(instance.is_in("leaf_L3_0"));
  instance.dispatch({"step"});
  EXPECT_TRUE(instance.is_in("leaf_L3_1"));
  instance.dispatch({"reset"});  // Handled at the outermost composite.
  EXPECT_TRUE(instance.is_in("leaf_L3_0"));
}

TEST(Exec, ActiveLeafNamesSortedAndCorrect) {
  auto machine = make_orthogonal_machine(2, 2);
  StateMachineInstance instance(*machine);
  instance.start();
  std::vector<std::string> leaves = instance.active_leaf_names();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], "q0_0");
  EXPECT_EQ(leaves[1], "q1_0");
}

// Determinism guard: two structurally identical machines (separately built,
// so vertex addresses differ) must drive their instances through identical
// transition sequences. Sibling orthogonal regions deliberately reuse state
// names at the same depth — a name-keyed or address-keyed tie-break would
// make the firing/exit order diverge between the builds; only document
// order (pre-order index) is stable.
std::unique_ptr<StateMachine> make_twin_region_machine() {
  auto machine = std::make_unique<StateMachine>("Twin");
  Region& top = machine->top();
  State& work = top.add_state("Work");
  top.add_transition(top.add_initial(), work);
  State& out = top.add_state("Out");
  for (int r = 0; r < 3; ++r) {
    Region& region = work.add_region("r" + std::to_string(r));
    Pseudostate& initial = region.add_initial();
    State& ping = region.add_state("Ping");  // Same names in every region.
    State& pong = region.add_state("Pong");
    region.add_transition(initial, ping);
    region.add_transition(ping, pong).set_trigger("flip");
    region.add_transition(pong, ping).set_trigger("flip");
  }
  top.add_transition(work, out).set_trigger("escape");
  return machine;
}

TEST(Exec, IdenticalModelsDispatchIdentically) {
  auto first_machine = make_twin_region_machine();
  auto second_machine = make_twin_region_machine();
  StateMachineInstance first(*first_machine);
  StateMachineInstance second(*second_machine);
  first.start();
  second.start();
  for (const char* event : {"flip", "flip", "flip", "escape"}) {
    first.dispatch({event});
    second.dispatch({event});
    EXPECT_EQ(first.active_leaf_names(), second.active_leaf_names());
    EXPECT_EQ(first.capture(), second.capture());
  }
  EXPECT_EQ(first.trace(), second.trace());
  EXPECT_EQ(first.transitions_fired(), second.transitions_fired());
}

TEST(Exec, VariablesDefaultToZero) {
  StateMachine machine("m");
  StateMachineInstance instance(machine);
  EXPECT_EQ(instance.variable("unset"), 0);
  instance.set_variable("x", -5);
  EXPECT_EQ(instance.variable("x"), -5);
}

// Property sweep: in a chain machine, after N dispatches exactly N
// transitions have fired and the active state index is N mod length.
class ChainProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChainProperty, FiringCountMatchesDispatchCount) {
  auto [length, dispatches] = GetParam();
  auto machine = make_chain_machine(static_cast<std::size_t>(length));
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (int i = 0; i < dispatches; ++i) instance.dispatch({"e"});
  EXPECT_EQ(instance.transitions_fired(), static_cast<std::uint64_t>(dispatches));
  EXPECT_TRUE(instance.is_in("s" + std::to_string(dispatches % length)));
  // Invariant: exactly one leaf active in a chain machine.
  EXPECT_EQ(instance.active_leaf_names().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainProperty,
                         ::testing::Combine(::testing::Values(1, 2, 5, 16),
                                            ::testing::Values(0, 1, 7, 40)));

// Property: configuration is always a legal tree cut — every active
// non-top state's parent is active, and no two sibling states of the same
// region are simultaneously active.
class ConfigurationInvariant : public ::testing::TestWithParam<int> {};

TEST_P(ConfigurationInvariant, HoldsThroughRandomEventSequences) {
  auto machine = make_orthogonal_machine(3, 3);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();

  const std::vector<std::string> events = {"tick", "r0", "r1", "r2", "noise"};
  unsigned seed = static_cast<unsigned>(GetParam());
  for (int i = 0; i < 200; ++i) {
    seed = seed * 1664525u + 1013904223u;
    instance.dispatch({events[seed % events.size()]});

    for (const State* state : instance.configuration()) {
      if (State* parent = state->containing_state()) {
        EXPECT_TRUE(instance.is_active(*parent))
            << state->name() << " active without its parent";
      }
      // Sibling exclusivity within the same region.
      for (const auto& vertex : state->container()->vertices()) {
        const auto* sibling = dynamic_cast<const State*>(vertex.get());
        if (sibling != nullptr && sibling != state) {
          EXPECT_FALSE(instance.is_active(*sibling))
              << state->name() << " and " << sibling->name() << " both active";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigurationInvariant, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace umlsoc::statechart
