// Interaction trace semantics: enumeration and MSC conformance checking.
#include <gtest/gtest.h>

#include <algorithm>

#include "interaction/trace.hpp"

namespace umlsoc::interaction {
namespace {

/// req/ack handshake used in several tests.
std::unique_ptr<Interaction> make_handshake() {
  auto diagram = std::make_unique<Interaction>("handshake");
  Lifeline& cpu = diagram->add_lifeline("Cpu");
  Lifeline& bus = diagram->add_lifeline("Bus");
  diagram->add_message(cpu, bus, "req");
  diagram->add_message(bus, cpu, "ack", MessageKind::kReply);
  return diagram;
}

TEST(Interaction, MessageLabels) {
  auto diagram = make_handshake();
  EXPECT_EQ(diagram->fragments().front()->label(), "Cpu->Bus:req");
  EXPECT_EQ(diagram->fragments().back()->label(), "Bus->Cpu:ack");
  EXPECT_NE(diagram->find_lifeline("Cpu"), nullptr);
  EXPECT_EQ(diagram->find_lifeline("Nope"), nullptr);
}

TEST(Interaction, EnumerateSimpleSequence) {
  auto diagram = make_handshake();
  EnumerationResult result = enumerate_traces(*diagram);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.traces[0], (Trace{"Cpu->Bus:req", "Bus->Cpu:ack"}));
}

TEST(Interaction, ConformanceOnSimpleSequence) {
  auto diagram = make_handshake();
  ConformanceChecker checker(*diagram);
  EXPECT_TRUE(checker.conforms({"Cpu->Bus:req", "Bus->Cpu:ack"}));
  EXPECT_FALSE(checker.conforms({"Cpu->Bus:req"}));            // Incomplete.
  EXPECT_FALSE(checker.conforms({"Bus->Cpu:ack", "Cpu->Bus:req"}));  // Reordered.
  EXPECT_FALSE(checker.conforms({}));
  EXPECT_TRUE(checker.is_prefix({"Cpu->Bus:req"}));
  EXPECT_TRUE(checker.is_prefix({}));
  EXPECT_FALSE(checker.is_prefix({"Bus->Cpu:ack"}));
}

TEST(Interaction, AltChoosesOneBranch) {
  Interaction diagram("alt");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& alt = diagram.add_combined(InteractionOperator::kAlt);
  Operand& ok = alt.add_operand("ok");
  ok.add_message(a, b, "yes");
  Operand& fail = alt.add_operand("else");
  fail.add_message(a, b, "no");

  EnumerationResult result = enumerate_traces(diagram);
  EXPECT_EQ(result.traces.size(), 2u);

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:yes"}));
  EXPECT_TRUE(checker.conforms({"A->B:no"}));
  EXPECT_FALSE(checker.conforms({"A->B:yes", "A->B:no"}));
}

TEST(Interaction, OptIsOptional) {
  Interaction diagram("opt");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  diagram.add_message(a, b, "start");
  Fragment& opt = diagram.add_combined(InteractionOperator::kOpt);
  opt.add_operand("verbose").add_message(a, b, "log");
  diagram.add_message(a, b, "end");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:start", "A->B:end"}));
  EXPECT_TRUE(checker.conforms({"A->B:start", "A->B:log", "A->B:end"}));
  EXPECT_FALSE(checker.conforms({"A->B:start", "A->B:log", "A->B:log", "A->B:end"}));
  EXPECT_EQ(enumerate_traces(diagram).traces.size(), 2u);
}

TEST(Interaction, BoundedLoop) {
  Interaction diagram("loop");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(1, 3);
  loop.add_operand().add_message(a, b, "beat");

  ConformanceChecker checker(diagram);
  EXPECT_FALSE(checker.conforms({}));
  EXPECT_TRUE(checker.conforms({"A->B:beat"}));
  EXPECT_TRUE(checker.conforms({"A->B:beat", "A->B:beat", "A->B:beat"}));
  EXPECT_FALSE(checker.conforms(Trace(4, "A->B:beat")));
  EXPECT_EQ(enumerate_traces(diagram).traces.size(), 3u);
}

TEST(Interaction, UnboundedLoopMatchesAnyCount) {
  Interaction diagram("loop*");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(0, -1);
  loop.add_operand().add_message(a, b, "beat");
  diagram.add_message(a, b, "stop");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:stop"}));
  EXPECT_TRUE(checker.conforms(
      {"A->B:beat", "A->B:beat", "A->B:beat", "A->B:beat", "A->B:beat", "A->B:stop"}));
  EXPECT_FALSE(checker.conforms({"A->B:beat"}));
  // Enumeration is bounded by loop_unroll.
  EnumerateOptions options;
  options.loop_unroll = 2;
  EXPECT_EQ(enumerate_traces(diagram, options).traces.size(), 3u);
}

TEST(Interaction, ParInterleavesOperands) {
  Interaction diagram("par");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& par = diagram.add_combined(InteractionOperator::kPar);
  par.add_operand().add_message(a, b, "x");
  par.add_operand().add_message(a, b, "y");

  EnumerationResult result = enumerate_traces(diagram);
  EXPECT_EQ(result.traces.size(), 2u);  // xy and yx.

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:x", "A->B:y"}));
  EXPECT_TRUE(checker.conforms({"A->B:y", "A->B:x"}));
  EXPECT_FALSE(checker.conforms({"A->B:x"}));
  EXPECT_TRUE(checker.is_prefix({"A->B:y"}));
}

TEST(Interaction, ParPreservesOperandInternalOrder) {
  Interaction diagram("par2");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& par = diagram.add_combined(InteractionOperator::kPar);
  Operand& first = par.add_operand();
  first.add_message(a, b, "x1");
  first.add_message(a, b, "x2");
  Operand& second = par.add_operand();
  second.add_message(a, b, "y");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:x1", "A->B:x2", "A->B:y"}));
  EXPECT_TRUE(checker.conforms({"A->B:x1", "A->B:y", "A->B:x2"}));
  EXPECT_TRUE(checker.conforms({"A->B:y", "A->B:x1", "A->B:x2"}));
  EXPECT_FALSE(checker.conforms({"A->B:x2", "A->B:x1", "A->B:y"}));  // Order broken.
  EXPECT_EQ(enumerate_traces(diagram).traces.size(), 3u);  // C(3,1) positions for y.
}

TEST(Interaction, StrictGroupsSequences) {
  Interaction diagram("strict");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& strict = diagram.add_combined(InteractionOperator::kStrict);
  strict.add_operand().add_message(a, b, "first");
  strict.add_operand().add_message(a, b, "second");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:first", "A->B:second"}));
  EXPECT_FALSE(checker.conforms({"A->B:second", "A->B:first"}));
}

TEST(Interaction, NestedCombinedFragments) {
  // loop(0..2) { alt { a | b } } end
  Interaction diagram("nested");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(0, 2);
  Operand& body = loop.add_operand();
  Fragment& alt = body.add_combined(InteractionOperator::kAlt);
  alt.add_operand("g1").add_message(a, b, "m1");
  alt.add_operand("else").add_message(a, b, "m2");
  diagram.add_message(a, b, "end");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:end"}));
  EXPECT_TRUE(checker.conforms({"A->B:m1", "A->B:end"}));
  EXPECT_TRUE(checker.conforms({"A->B:m2", "A->B:m1", "A->B:end"}));
  EXPECT_FALSE(checker.conforms({"A->B:m1", "A->B:m2", "A->B:m1", "A->B:end"}));
  // 1 + 2 + 4 loop bodies, each followed by end.
  EXPECT_EQ(enumerate_traces(diagram).traces.size(), 7u);
}

TEST(Interaction, ParInsideLoopConformance) {
  Interaction diagram("pl");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(1, 2);
  Operand& body = loop.add_operand();
  Fragment& par = body.add_combined(InteractionOperator::kPar);
  par.add_operand().add_message(a, b, "p");
  par.add_operand().add_message(b, a, "q");

  ConformanceChecker checker(diagram);
  EXPECT_TRUE(checker.conforms({"A->B:p", "B->A:q"}));
  EXPECT_TRUE(checker.conforms({"B->A:q", "A->B:p", "A->B:p", "B->A:q"}));
  EXPECT_FALSE(checker.conforms({"A->B:p", "A->B:p", "B->A:q"}));  // Unbalanced.
}

TEST(Interaction, EnumerationTruncatesAtCap) {
  Interaction diagram("blowup");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  // 2^10 alt combinations.
  for (int i = 0; i < 10; ++i) {
    Fragment& alt = diagram.add_combined(InteractionOperator::kAlt);
    alt.add_operand().add_message(a, b, "l" + std::to_string(i));
    alt.add_operand().add_message(a, b, "r" + std::to_string(i));
  }
  EnumerateOptions options;
  options.max_traces = 100;
  EnumerationResult result = enumerate_traces(diagram, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.traces.size(), 100u);
}

TEST(Interaction, CheckerAgreesWithEnumeration) {
  // Property: every enumerated trace conforms; mutations mostly do not.
  Interaction diagram("agree");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  diagram.add_message(a, b, "open");
  Fragment& alt = diagram.add_combined(InteractionOperator::kAlt);
  alt.add_operand().add_message(a, b, "read");
  Operand& write_branch = alt.add_operand();
  write_branch.add_message(a, b, "write");
  write_branch.add_message(b, a, "ok");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(0, 2);
  loop.add_operand().add_message(a, b, "poll");
  diagram.add_message(a, b, "close");

  EnumerationResult result = enumerate_traces(*&diagram);
  ConformanceChecker checker(diagram);
  ASSERT_FALSE(result.traces.empty());
  for (const Trace& trace : result.traces) {
    EXPECT_TRUE(checker.conforms(trace));
    // Dropping the final event leaves a strict prefix.
    Trace prefix(trace.begin(), trace.end() - 1);
    EXPECT_TRUE(checker.is_prefix(prefix));
    // Appending garbage breaks conformance.
    Trace extended = trace;
    extended.push_back("A->B:bogus");
    EXPECT_FALSE(checker.conforms(extended));
  }
}

}  // namespace
}  // namespace umlsoc::interaction
