// Unit tests for the AOT statechart compiler (statechart/compile.hpp):
// the fallback contract (unsupported machines are rejected with a
// diagnostic and run on the interpreter), plan-table introspection used by
// the codegen/software emitter, AOT seeding, and snapshot validation.
// Semantic equivalence with the interpreter is covered separately by
// statechart_differential_test.cpp.
#include <gtest/gtest.h>

#include "statechart/compile.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {
namespace {

TEST(Compile, ChainMachineCompilesAndRuns) {
  auto machine = make_chain_machine(4);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  compiled->start();
  EXPECT_TRUE(compiled->started());
  EXPECT_TRUE(compiled->is_in("s0"));
  EXPECT_TRUE(compiled->dispatch(Event{"e"}));
  EXPECT_TRUE(compiled->is_in("s1"));
  EXPECT_FALSE(compiled->dispatch(Event{"unknown"}));
  EXPECT_EQ(compiled->transitions_fired(), 1u);
  EXPECT_EQ(compiled->events_processed(), 2u);
}

TEST(Compile, CanReactAnswersFromThePlanTable) {
  StateMachine machine("hint");
  Region& top = machine.top();
  State& idle = top.add_state("Idle");
  State& wait = top.add_state("Wait");
  idle.add_deferred("late");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, wait).set_trigger("go");
  top.add_transition(wait, idle).set_trigger("back");

  support::DiagnosticSink sink;
  auto compiled = compile(machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  // Before start nothing reacts; dispatch would be dropped.
  EXPECT_FALSE(compiled->can_react(Event{"go"}));

  compiled->start();
  EXPECT_TRUE(compiled->can_react(Event{"go"}));       // Enabled transition.
  EXPECT_FALSE(compiled->can_react(Event{"back"}));    // Wrong configuration.
  EXPECT_TRUE(compiled->can_react(Event{"late"}));     // Deferral parks it.
  EXPECT_FALSE(compiled->can_react(Event{"unknown"})); // Dropped silently.

  ASSERT_TRUE(compiled->dispatch(Event{"go"}));
  EXPECT_FALSE(compiled->can_react(Event{"go"}));
  EXPECT_TRUE(compiled->can_react(Event{"back"}));
  EXPECT_FALSE(compiled->can_react(Event{"late"}));    // Wait does not defer.

  // Queued work makes any delivery reactive regardless of the plan.
  compiled->post(Event{"back"});
  EXPECT_TRUE(compiled->can_react(Event{"unknown"}));
  compiled->run_to_quiescence();
  EXPECT_FALSE(compiled->can_react(Event{"unknown"}));

  // The base Engine default stays conservatively true.
  StateMachineInstance interpreter(machine);
  interpreter.start();
  statechart::Engine& engine = interpreter;
  EXPECT_TRUE(engine.can_react(Event{"unknown"}));
}

TEST(Compile, RejectsChoicePseudostates) {
  StateMachine machine("choosy");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  Pseudostate& choice = top.add_pseudostate(VertexKind::kChoice, "pick");
  top.add_transition(initial, a);
  top.add_transition(a, choice).set_trigger("go");
  top.add_transition(choice, b).set_guard("else", nullptr);

  support::DiagnosticSink sink;
  EXPECT_EQ(compile(machine, sink), nullptr);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_NE(sink.str().find("choice"), std::string::npos) << sink.str();

  // Fallback contract: the same machine runs on the interpreter.
  StateMachineInstance interpreter(machine);
  interpreter.start();
  EXPECT_TRUE(interpreter.dispatch(Event{"go"}));
  EXPECT_TRUE(interpreter.is_in("B"));
}

TEST(Compile, RejectsJunctionPseudostates) {
  StateMachine machine("junctional");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  Pseudostate& junction = top.add_pseudostate(VertexKind::kJunction, "j");
  top.add_transition(initial, a);
  top.add_transition(a, junction).set_trigger("go");
  top.add_transition(junction, b);

  support::DiagnosticSink sink;
  EXPECT_EQ(compile(machine, sink), nullptr);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Compile, SeedsReachablePlansAheadOfTime) {
  auto machine = make_nested_machine(4, 3);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  // The guard-free closure covers the full step/reset alphabet from the
  // start configuration before the first dispatch.
  const std::size_t seeded_plans = compiled->plan_table().size();
  const std::size_t seeded_configs = compiled->configuration_count();
  EXPECT_GE(seeded_plans, 3u * 3u);  // >= |alphabet+completion| per config.
  EXPECT_GE(seeded_configs, 3u);     // Empty + one per leaf in the cycle.

  compiled->start();
  for (int i = 0; i < 50; ++i) {
    compiled->dispatch(Event{i % 5 == 0 ? "reset" : "step"});
  }
  // Steady state: nothing new was interned by dispatching seeded events.
  EXPECT_EQ(compiled->plan_table().size(), seeded_plans);
  EXPECT_EQ(compiled->configuration_count(), seeded_configs);

  // An unknown event extends the tables lazily (one new plan, no config).
  compiled->dispatch(Event{"never-seen"});
  EXPECT_EQ(compiled->plan_table().size(), seeded_plans + 1);
}

TEST(Compile, IntrospectionExposesPlanTables) {
  auto machine = make_orthogonal_machine(2, 3);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  EXPECT_EQ(compiled->vertex_count(), machine->all_vertices().size());
  EXPECT_EQ(compiled->region_count(), machine->all_regions().size());
  EXPECT_EQ(compiled->transition_table().size(), machine->all_transitions().size());
  EXPECT_GE(compiled->words(), 1u);
  EXPECT_FALSE(compiled->plan_table().empty());
  EXPECT_FALSE(compiled->step_table().empty());
  EXPECT_GT(compiled->table_bytes(), 0u);
  EXPECT_EQ(compiled->event_name(0), "");  // Completion pseudo-event.

  // Candidate claims are words()-wide masks into the claim pool.
  for (const auto& candidate : compiled->candidate_table()) {
    EXPECT_LE(candidate.claim_offset + compiled->words(), compiled->claim_pool().size());
  }
  // Every plan's candidate range is in bounds.
  for (const auto& plan : compiled->plan_table()) {
    EXPECT_LE(plan.first_candidate + plan.candidate_count, compiled->candidate_table().size());
  }

  compiled->start();
  const auto members = compiled->configuration_members(compiled->current_configuration());
  EXPECT_EQ(members.size(), 3u);  // "parallel" + one leaf per region.
}

TEST(Compile, RestoreValidatesBeforeMutating) {
  auto machine = make_chain_machine(3);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();
  compiled->start();
  const InstanceSnapshot before = compiled->capture();

  InstanceSnapshot bogus = before;
  bogus.active_states = {9999};
  support::DiagnosticSink reject;
  EXPECT_FALSE(compiled->restore(bogus, reject));
  EXPECT_TRUE(reject.has_errors());
  EXPECT_EQ(compiled->capture(), before);  // Unchanged on rejection.

  InstanceSnapshot wrong_kind = before;
  wrong_kind.active_states = {0};  // Vertex 0 is the initial pseudostate.
  support::DiagnosticSink reject_kind;
  EXPECT_FALSE(compiled->restore(wrong_kind, reject_kind));
  EXPECT_EQ(compiled->capture(), before);

  InstanceSnapshot dead = before;
  dead.terminated = true;  // Terminated machines have no active states.
  support::DiagnosticSink reject_dead;
  EXPECT_FALSE(compiled->restore(dead, reject_dead));

  support::DiagnosticSink accept;
  EXPECT_TRUE(compiled->restore(before, accept)) << accept.str();
  EXPECT_EQ(compiled->capture(), before);
}

TEST(Compile, DispatchKeepsEngineSurfaceConsistent) {
  auto machine = make_nested_machine(3, 2);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  int enters = 0;
  int exits = 0;
  compiled->set_state_listener([&](const State&, bool entered) {
    (entered ? enters : exits)++;
  });
  compiled->start();
  EXPECT_EQ(enters, 4);  // c_L0..c_L2 + leaf.
  EXPECT_EQ(exits, 0);
  EXPECT_FALSE(compiled->is_in_final_state());
  EXPECT_FALSE(compiled->is_terminated());
  ASSERT_EQ(compiled->active_leaf_names().size(), 1u);

  compiled->dispatch(Event{"step"});
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(enters, 5);
  compiled->dispatch(Event{"reset"});  // Re-enters the whole hierarchy.
  EXPECT_EQ(exits, 1 + 4);
  EXPECT_EQ(enters, 5 + 4);
}

}  // namespace
}  // namespace umlsoc::statechart
