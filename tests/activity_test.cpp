// Activity token-game tests: firing rules, fork/join conservation, decision
// routing, termination, soundness analysis, and property sweeps.
#include <gtest/gtest.h>

#include "activity/analysis.hpp"
#include "activity/interpreter.hpp"
#include "activity/synthetic.hpp"

namespace umlsoc::activity {
namespace {

TEST(Activity, SequentialRunTerminates) {
  auto activity = make_sequential(5);
  ActivityExecution execution(*activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
  EXPECT_TRUE(execution.terminated());
  EXPECT_EQ(execution.firings(), 6u);  // 5 actions + final.
  EXPECT_EQ(execution.token_count(), 0u);
}

TEST(Activity, ActionsFireInChainOrder) {
  auto activity = make_sequential(3);
  std::vector<std::string> order;
  for (const auto& node : activity->nodes()) {
    if (node->node_kind() == NodeKind::kAction) {
      ActivityNode* raw = node.get();
      raw->set_behavior([&order, raw](ActionFiring&) { order.push_back(raw->name()); });
    }
  }
  ActivityExecution execution(*activity);
  execution.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a0");
  EXPECT_EQ(order[1], "a1");
  EXPECT_EQ(order[2], "a2");
}

TEST(Activity, ActionTransformsTokenValue) {
  Activity activity("calc");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& doubler = activity.add_action("double");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, doubler);
  activity.add_edge(doubler, final_node, /*object_flow=*/true);
  doubler.set_behavior([](ActionFiring& firing) {
    firing.output = firing.inputs.front().value * 2 + 7;
  });

  ActivityExecution execution(activity);
  execution.run();
  ASSERT_EQ(execution.outputs().size(), 1u);
  EXPECT_EQ(execution.outputs().front(), 7);  // Start token value 0 -> 0*2+7.
}

TEST(Activity, ForkDuplicatesJoinSynchronizes) {
  auto activity = make_fork_join(3, 2);
  ActivityExecution execution(*activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
  // fork fired once, join once, 3*2 branch actions once each, final once.
  EXPECT_EQ(execution.firings(), 1u + 1u + 6u + 1u);
  for (const auto& node : activity->nodes()) {
    if (node->node_kind() == NodeKind::kAction) {
      EXPECT_EQ(execution.firings_of(*node), 1u) << node->name();
    }
  }
}

TEST(Activity, JoinWaitsForAllBranches) {
  Activity activity("j");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  ActivityNode& b = activity.add_action("b");
  ActivityNode& join = activity.add_node(NodeKind::kJoin, "join");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, a);
  ActivityEdge& a_to_join = activity.add_edge(a, join);
  ActivityEdge& b_to_join = activity.add_edge(b, join);
  activity.add_edge(join, final_node);
  (void)a_to_join;

  ActivityExecution execution(activity);
  execution.start();
  execution.step();  // a fires, token on a->join.
  EXPECT_FALSE(execution.step());  // join NOT enabled: b never got a token.
  EXPECT_FALSE(execution.terminated());

  execution.place_token(b_to_join, Token{});
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
}

TEST(Activity, DecisionRoutesByGuard) {
  Activity activity("d");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& produce = activity.add_action("produce");
  ActivityNode& decision = activity.add_node(NodeKind::kDecision, "check");
  ActivityNode& high = activity.add_action("high");
  ActivityNode& low = activity.add_action("low");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, produce);
  activity.add_edge(produce, decision, true);
  activity.add_edge(decision, high, true)
      .set_guard("v>=10", [](const Token& t) { return t.value >= 10; });
  activity.add_edge(decision, low, true).set_guard(EdgeGuard{"else", nullptr});
  activity.add_edge(high, final_node);
  activity.add_edge(low, final_node);

  produce.set_behavior([](ActionFiring& firing) { firing.output = 42; });

  ActivityExecution execution(activity);
  execution.run();
  EXPECT_EQ(execution.firings_of(high), 1u);
  EXPECT_EQ(execution.firings_of(low), 0u);
}

TEST(Activity, DecisionElseTaken) {
  Activity activity("d");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& decision = activity.add_node(NodeKind::kDecision, "check");
  ActivityNode& high = activity.add_action("high");
  ActivityNode& low = activity.add_action("low");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, decision);
  activity.add_edge(decision, high).set_guard("v>=10",
                                              [](const Token& t) { return t.value >= 10; });
  activity.add_edge(decision, low).set_guard(EdgeGuard{"else", nullptr});
  activity.add_edge(high, final_node);
  activity.add_edge(low, final_node);

  ActivityExecution execution(activity);
  execution.run();
  EXPECT_EQ(execution.firings_of(low), 1u);
}

TEST(Activity, DecisionWithNoOpenBranchIsNotEnabled) {
  Activity activity("d");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& decision = activity.add_node(NodeKind::kDecision, "check");
  ActivityNode& sink_node = activity.add_action("sink");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, decision);
  activity.add_edge(decision, sink_node).set_guard("never", [](const Token&) { return false; });
  activity.add_edge(sink_node, final_node);

  ActivityExecution execution(activity);
  EXPECT_EQ(execution.run(), RunStatus::kQuiescent);  // Token stuck, no livelock.
  EXPECT_EQ(execution.token_count(), 1u);
}

TEST(Activity, MergeForwardsFromEitherBranch) {
  Activity activity("m");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& merge = activity.add_node(NodeKind::kMerge, "merge");
  ActivityNode& after = activity.add_action("after");
  ActivityNode& final_node = activity.add_final();
  ActivityNode& other = activity.add_action("other");
  activity.add_edge(initial, merge);
  ActivityEdge& other_in = activity.add_edge(other, merge);
  activity.add_edge(merge, after);
  activity.add_edge(after, final_node);

  ActivityExecution execution(activity);
  execution.start();
  execution.place_token(other_in, Token{5});
  execution.run();
  EXPECT_EQ(execution.firings_of(merge), 2u);  // One per arriving token.
  EXPECT_EQ(execution.firings_of(after), 2u);
}

TEST(Activity, FlowFinalDestroysOnlyItsToken) {
  Activity activity("ff");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& fork = activity.add_node(NodeKind::kFork, "fork");
  ActivityNode& work = activity.add_action("work");
  ActivityNode& flow_final = activity.add_node(NodeKind::kFlowFinal, "drop");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, fork);
  activity.add_edge(fork, flow_final);
  activity.add_edge(fork, work);
  activity.add_edge(work, final_node);

  ActivityExecution execution(activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
  EXPECT_EQ(execution.firings_of(work), 1u);  // Flow-final did not kill it.
}

TEST(Activity, ActivityFinalKillsAllTokens) {
  Activity activity("af");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& fork = activity.add_node(NodeKind::kFork, "fork");
  ActivityNode& fast = activity.add_action("fast");
  ActivityNode& slow1 = activity.add_action("slow1");
  ActivityNode& slow2 = activity.add_action("slow2");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, fork);
  activity.add_edge(fork, fast);
  activity.add_edge(fork, slow1);
  activity.add_edge(fast, final_node);
  activity.add_edge(slow1, slow2);
  activity.add_edge(slow2, activity.add_node(NodeKind::kFlowFinal, "drop"));

  ActivityExecution execution(activity);
  execution.run();
  EXPECT_TRUE(execution.terminated());
  EXPECT_EQ(execution.token_count(), 0u);
}

TEST(Activity, EdgeWeightRequiresMultipleTokens) {
  Activity activity("w");
  ActivityNode& src = activity.add_action("src");
  ActivityNode& dst = activity.add_action("dst");
  ActivityNode& final_node = activity.add_final();
  ActivityEdge& weighted = activity.add_edge(src, dst);
  weighted.set_weight(3);
  activity.add_edge(dst, final_node);
  activity.add_initial();  // No start edge: we inject manually.

  ActivityExecution execution(activity);
  execution.place_token(weighted, Token{1});
  execution.place_token(weighted, Token{2});
  EXPECT_FALSE(execution.step());  // 2 < weight 3.
  execution.place_token(weighted, Token{3});
  EXPECT_TRUE(execution.step());
  EXPECT_EQ(execution.firings_of(dst), 1u);
  EXPECT_EQ(execution.tokens_consumed(), 3u);
}

TEST(Activity, BufferPassesTokensThrough) {
  Activity activity("buf");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& buffer = activity.add_node(NodeKind::kBuffer, "store");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, buffer, true);
  activity.add_edge(buffer, final_node, true);
  ActivityExecution execution(activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
}

// --- Validation / soundness ----------------------------------------------------

TEST(ActivityValidate, SyntheticGraphsAreValidAndSound) {
  support::DiagnosticSink sink;
  for (auto activity : {make_sequential(4).get(), make_fork_join(2, 3).get()}) {
    (void)activity;
  }
  auto seq = make_sequential(4);
  EXPECT_TRUE(validate(*seq, sink)) << sink.str();
  EXPECT_TRUE(check_soundness(*seq, sink)) << sink.str();
  auto fj = make_fork_join(3, 2);
  EXPECT_TRUE(validate(*fj, sink)) << sink.str();
  EXPECT_TRUE(check_soundness(*fj, sink)) << sink.str();
  auto media = make_media_pipeline();
  EXPECT_TRUE(validate(*media, sink)) << sink.str();
  EXPECT_TRUE(check_soundness(*media, sink)) << sink.str();
}

TEST(ActivityValidate, InitialWithIncomingIsError) {
  Activity activity("bad");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  activity.add_edge(initial, a);
  activity.add_edge(a, initial);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(activity, sink));
  EXPECT_NE(sink.str().find("initial node has incoming"), std::string::npos);
}

TEST(ActivityValidate, TwoInitialsIsError) {
  Activity activity("bad");
  activity.add_initial();
  activity.add_node(NodeKind::kInitial, "initial2");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(activity, sink));
  EXPECT_NE(sink.str().find("more than one initial"), std::string::npos);
}

TEST(ActivityValidate, ForkArity) {
  Activity activity("bad");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  ActivityNode& fork = activity.add_node(NodeKind::kFork, "fork");
  activity.add_edge(initial, fork);
  activity.add_edge(a, fork);  // Second incoming: illegal.
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(activity, sink));
  EXPECT_NE(sink.str().find("fork must have exactly one incoming"), std::string::npos);
}

TEST(ActivityValidate, ZeroWeightEdgeIsError) {
  Activity activity("bad");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  activity.add_edge(initial, a).set_weight(0);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(activity, sink));
  EXPECT_NE(sink.str().find("weight < 1"), std::string::npos);
}

TEST(ActivitySoundness, DetectsDeadEndNode) {
  Activity activity("deadend");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  ActivityNode& stranded = activity.add_action("stranded");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, a);
  activity.add_edge(a, final_node);
  activity.add_edge(a, stranded);  // stranded never reaches a final.
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_soundness(activity, sink));
  EXPECT_NE(sink.str().find("cannot reach a final"), std::string::npos);
}

TEST(ActivitySoundness, DetectsUnreachableNode) {
  Activity activity("orphan");
  ActivityNode& initial = activity.add_initial();
  ActivityNode& a = activity.add_action("a");
  ActivityNode& orphan = activity.add_action("orphan");
  ActivityNode& final_node = activity.add_final();
  activity.add_edge(initial, a);
  activity.add_edge(a, final_node);
  activity.add_edge(orphan, final_node);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_soundness(activity, sink));
  EXPECT_NE(sink.str().find("unreachable"), std::string::npos);
}

// --- Property sweeps -------------------------------------------------------------

// Token conservation through fork/join: at every step of a fork-join
// activity, (tokens produced - consumed - in flight - outputs) == 0 is too
// strong across duplication, so we check the invariants that do hold:
// join fires exactly once, and the run always terminates token-free.
class ForkJoinProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ForkJoinProperty, TerminatesCleanlyWithSingleJoinFiring) {
  auto [width, depth] = GetParam();
  auto activity = make_fork_join(static_cast<std::size_t>(width),
                                 static_cast<std::size_t>(depth));
  ActivityExecution execution(*activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
  EXPECT_EQ(execution.token_count(), 0u);
  const ActivityNode* join = activity->find_node("join");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(execution.firings_of(*join), 1u);
  // Every branch action fired exactly once.
  for (const auto& node : activity->nodes()) {
    if (node->node_kind() == NodeKind::kAction) {
      EXPECT_EQ(execution.firings_of(*node), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ForkJoinProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 3, 6)));

// Series-parallel DAGs are always valid, sound, and terminate with every
// action firing exactly once.
class SeriesParallelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeriesParallelProperty, ValidSoundAndSingleFire) {
  auto activity = make_series_parallel(GetParam(), 20);
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(*activity, sink)) << sink.str();
  EXPECT_TRUE(check_soundness(*activity, sink)) << sink.str();

  ActivityExecution execution(*activity);
  EXPECT_EQ(execution.run(), RunStatus::kTerminated);
  EXPECT_EQ(execution.token_count(), 0u);
  for (const auto& node : activity->nodes()) {
    if (node->node_kind() == NodeKind::kAction) {
      EXPECT_EQ(execution.firings_of(*node), 1u) << node->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeriesParallelProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20, 40));

}  // namespace
}  // namespace umlsoc::activity
