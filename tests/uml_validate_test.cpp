// Tests for structural well-formedness validation.
#include <gtest/gtest.h>

#include "uml/instance.hpp"
#include "uml/synthetic.hpp"
#include "uml/validate.hpp"

namespace umlsoc::uml {
namespace {

TEST(Validate, EmptyModelIsValid) {
  Model model("M");
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink));
  EXPECT_FALSE(sink.has_errors());
}

TEST(Validate, SyntheticModelsAreValid) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    SyntheticSpec spec;
    spec.seed = seed;
    auto model = make_synthetic_model(spec);
    support::DiagnosticSink sink;
    EXPECT_TRUE(validate(*model, sink)) << "seed " << seed << "\n" << sink.str();
  }
}

TEST(Validate, DuplicateMemberNames) {
  Model model("M");
  Package& pkg = model.add_package("p");
  pkg.add_class("C");
  pkg.add_class("C");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("duplicate member name 'C'"), std::string::npos);
}

TEST(Validate, EmptyNameIsError) {
  Model model("M");
  model.add_package("p").add_class("");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("empty name"), std::string::npos);
}

TEST(Validate, GeneralizationCycle) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Class& b = pkg.add_class("B");
  a.add_generalization(b);
  b.add_generalization(a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("generalization cycle"), std::string::npos);
}

TEST(Validate, SelfGeneralization) {
  Model model("M");
  Class& a = model.add_package("p").add_class("A");
  a.add_generalization(a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
}

TEST(Validate, ClassCannotSpecializeInterface) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Interface& i = pkg.add_interface("I");
  a.add_generalization(i);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("non-class"), std::string::npos);
}

TEST(Validate, InterfaceCannotSpecializeClass) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Interface& i = pkg.add_interface("I");
  i.add_generalization(pkg.add_class("A"));
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("non-interface"), std::string::npos);
}

TEST(Validate, InvalidMultiplicity) {
  Model model("M");
  Class& cls = model.add_package("p").add_class("C");
  Property& prop = cls.add_property("x", &model.primitive("Integer", 32));
  prop.set_multiplicity({3, 1});
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("invalid multiplicity"), std::string::npos);
}

TEST(Validate, UntypedPropertyIsOnlyWarning) {
  Model model("M");
  model.add_package("p").add_class("C").add_property("x");
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink));
  EXPECT_EQ(sink.warning_count(), 1u);
}

TEST(Validate, AssociationNeedsTwoEnds) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Association& assoc = pkg.add_association("bad");
  assoc.add_end("only", a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("at least two ends"), std::string::npos);
}

TEST(Validate, OperationSingleReturn) {
  Model model("M");
  Operation& f = model.add_package("p").add_class("C").add_operation("f");
  f.add_parameter("r1", &model.primitive("Integer", 32), ParameterDirection::kReturn);
  f.add_parameter("r2", &model.primitive("Integer", 32), ParameterDirection::kReturn);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("return parameter"), std::string::npos);
}

TEST(Validate, PortWidthPositive) {
  Model model("M");
  Class& cls = model.add_package("p").add_class("C");
  cls.add_port("data", PortDirection::kIn).set_width(0);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("port width"), std::string::npos);
}

TEST(Validate, ConnectorEndMustBeLocalPart) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& outer = pkg.add_class("Outer");
  Class& inner = pkg.add_class("Inner");
  Class& other = pkg.add_class("Other");
  Property& foreign_part = other.add_property("sub", &inner);
  foreign_part.set_aggregation(AggregationKind::kComposite);

  Connector& connector = outer.add_connector("c");
  connector.add_end(ConnectorEnd{&foreign_part, nullptr});
  connector.add_end(ConnectorEnd{&foreign_part, nullptr});
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("not a part of the owning class"), std::string::npos);
}

TEST(Validate, ConnectorBoundaryPortMustBeOwned) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& outer = pkg.add_class("Outer");
  Class& other = pkg.add_class("Other");
  Port& foreign_port = other.add_port("q");
  Connector& connector = outer.add_connector("c");
  connector.add_end(ConnectorEnd{nullptr, &foreign_port});
  connector.add_end(ConnectorEnd{nullptr, &foreign_port});
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("not owned by the class"), std::string::npos);
}

TEST(Validate, ValidCompositeStructure) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& inner = pkg.add_class("Inner");
  Port& inner_port = inner.add_port("io");
  Class& outer = pkg.add_class("Outer");
  Property& part = outer.add_property("sub", &inner);
  part.set_aggregation(AggregationKind::kComposite);
  Port& boundary = outer.add_port("ext");
  Connector& connector = outer.add_connector("c");
  connector.add_end(ConnectorEnd{&part, &inner_port});
  connector.add_end(ConnectorEnd{nullptr, &boundary});
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink)) << sink.str();
  EXPECT_TRUE(part.is_part());
}

TEST(Validate, StereotypeMetaclassMismatch) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");
  Stereotype& hw = profile.add_stereotype("HwModule");
  hw.add_extended_metaclass(ElementKind::kClass);
  model.apply_profile(profile);

  Package& pkg = model.add_package("p");
  pkg.apply_stereotype(hw);  // Package is not extended by HwModule.
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("does not extend metaclass"), std::string::npos);
}

TEST(Validate, StereotypeFromUnappliedProfile) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");  // Defined but NOT applied.
  Stereotype& hw = profile.add_stereotype("HwModule");
  hw.add_extended_metaclass(ElementKind::kClass);
  model.add_package("p").add_class("C").apply_stereotype(hw);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("not applied"), std::string::npos);
}

TEST(Validate, UndeclaredTaggedValue) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");
  Stereotype& hw = profile.add_stereotype("HwModule");
  hw.add_extended_metaclass(ElementKind::kClass);
  model.apply_profile(profile);
  Class& cls = model.add_package("p").add_class("C");
  cls.set_tagged_value(hw, "bogus", "1");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("not declared"), std::string::npos);
}

TEST(Validate, InstanceSlotMustMatchClassifier) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& a = pkg.add_class("A");
  Class& b = pkg.add_class("B");
  Property& bx = b.add_property("x", &model.primitive("Integer", 32));
  InstanceSpecification& instance = pkg.add_instance("i", &a);
  instance.set_slot(bx, "1");  // x belongs to B, not A.
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("not a property of classifier"), std::string::npos);
}

TEST(Validate, InstanceWithoutClassifier) {
  Model model("M");
  model.add_package("p").add_instance("i");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("no classifier"), std::string::npos);
}

TEST(Validate, DuplicateEnumLiterals) {
  Model model("M");
  Enumeration& e = model.add_package("p").add_enumeration("E");
  e.add_literal("A");
  e.add_literal("A");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(model, sink));
  EXPECT_NE(sink.str().find("duplicate literal"), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::uml
