// Tests for the statechart metamodel, validation, and flattening.
#include <gtest/gtest.h>

#include "statechart/flatten.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "statechart/validate.hpp"

namespace umlsoc::statechart {
namespace {

TEST(ScModel, VertexHierarchyQueries) {
  StateMachine machine("m");
  Region& top = machine.top();
  State& outer = top.add_state("Outer");
  Region& inner_region = outer.add_region("r");
  State& inner = inner_region.add_state("Inner");

  EXPECT_EQ(outer.depth(), 0u);
  EXPECT_EQ(inner.depth(), 1u);
  EXPECT_EQ(inner.containing_state(), &outer);
  EXPECT_EQ(outer.containing_state(), nullptr);
  EXPECT_TRUE(inner.is_within(outer));
  EXPECT_TRUE(inner.is_within(inner));
  EXPECT_FALSE(outer.is_within(inner));
  EXPECT_EQ(inner.qualified_name(), "m.Outer.Inner");
  EXPECT_TRUE(outer.is_composite());
  EXPECT_FALSE(outer.is_orthogonal());
  EXPECT_TRUE(inner.is_simple());
}

TEST(ScModel, TransitionWiringAndStr) {
  StateMachine machine("m");
  Region& top = machine.top();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  Transition& t = top.add_transition(a, b);
  t.set_trigger("go").set_guard("x>0", nullptr).set_effect("act", nullptr);

  ASSERT_EQ(a.outgoing().size(), 1u);
  ASSERT_EQ(b.incoming().size(), 1u);
  EXPECT_EQ(a.outgoing().front(), &t);
  EXPECT_EQ(t.str(), "A -> B on go [x>0] / act");
}

TEST(ScModel, RegionLookup) {
  StateMachine machine("m");
  Region& top = machine.top();
  State& a = top.add_state("A");
  Region& ar = a.add_region("r");
  State& deep = ar.add_state("Deep");
  top.add_initial();

  EXPECT_EQ(top.find_vertex("A"), &a);
  EXPECT_EQ(top.find_vertex("nope"), nullptr);
  EXPECT_EQ(top.find_state("Deep"), &deep);
  EXPECT_NE(top.initial(), nullptr);
}

TEST(ScModel, AllStatesAndTransitions) {
  auto machine = make_nested_machine(3, 2);
  // Levels: 3 composites-chain; innermost has 2 leaves => states: 3 + 2.
  EXPECT_EQ(machine->all_states().size(), 5u);
  EXPECT_FALSE(machine->all_transitions().empty());
}

TEST(ScValidate, SyntheticMachinesAreValid) {
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(*make_chain_machine(5), sink)) << sink.str();
  EXPECT_TRUE(validate(*make_nested_machine(3, 3), sink)) << sink.str();
  EXPECT_TRUE(validate(*make_orthogonal_machine(2, 4), sink)) << sink.str();
}

TEST(ScValidate, MissingInitialIsError) {
  StateMachine machine("m");
  machine.top().add_state("A");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("no initial pseudostate"), std::string::npos);
}

TEST(ScValidate, MultipleInitialsIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  State& a = top.add_state("A");
  Pseudostate& i1 = top.add_pseudostate(VertexKind::kInitial, "i1");
  Pseudostate& i2 = top.add_pseudostate(VertexKind::kInitial, "i2");
  top.add_transition(i1, a);
  top.add_transition(i2, a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("multiple initial"), std::string::npos);
}

TEST(ScValidate, InitialWithTriggerOrGuardIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_transition(initial, a).set_trigger("oops");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("must not have a trigger"), std::string::npos);
}

TEST(ScValidate, InitialIncomingIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_transition(initial, a);
  top.add_transition(a, initial).set_trigger("back");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
}

TEST(ScValidate, FinalWithOutgoingIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  FinalState& end = top.add_final();
  top.add_transition(initial, a);
  top.add_transition(a, end).set_trigger("x");
  top.add_transition(end, a).set_trigger("undead");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("final state has outgoing"), std::string::npos);
}

TEST(ScValidate, DuplicateVertexNames) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a1 = top.add_state("A");
  top.add_state("A");
  top.add_transition(initial, a1);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("duplicate vertex name"), std::string::npos);
}

TEST(ScValidate, ChoiceWithoutBranchesIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  Pseudostate& choice = top.add_pseudostate(VertexKind::kChoice, "c");
  top.add_transition(initial, a);
  top.add_transition(a, choice).set_trigger("go");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("no outgoing transitions"), std::string::npos);
}

TEST(ScValidate, ChoiceWithoutElseWarns) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  Pseudostate& choice = top.add_pseudostate(VertexKind::kChoice, "c");
  top.add_transition(initial, a);
  top.add_transition(a, choice).set_trigger("go");
  top.add_transition(choice, b).set_guard("x>0", [](const ActionContext&) { return true; });
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(machine, sink));
  EXPECT_GE(sink.warning_count(), 1u);
}

TEST(ScValidate, InternalTransitionMustBeSelf) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("x").set_internal(true);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("internal transition"), std::string::npos);
}

TEST(ScValidate, UnreachableStateWarns) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_state("Orphan");
  top.add_transition(initial, a);
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(machine, sink));
  EXPECT_NE(sink.str().find("unreachable"), std::string::npos);
}

TEST(ScValidate, NondeterminismWarns) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  State& c = top.add_state("C");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("e");
  top.add_transition(a, c).set_trigger("e");
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(machine, sink));
  EXPECT_NE(sink.str().find("multiple unguarded transitions"), std::string::npos);
}

TEST(ScValidate, HistoryWithTwoDefaultsIsError) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  Pseudostate& history = top.add_pseudostate(VertexKind::kShallowHistory, "H");
  top.add_transition(initial, a);
  top.add_transition(history, a);
  top.add_transition(history, b);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("more than one default"), std::string::npos);
}

// --- Flattening ---------------------------------------------------------------

TEST(Flatten, ChainMachine) {
  auto machine = make_chain_machine(4);
  support::DiagnosticSink sink;
  auto flat = flatten(*machine, sink);
  ASSERT_TRUE(flat.has_value()) << sink.str();
  EXPECT_EQ(flat->states.size(), 4u);
  EXPECT_EQ(flat->transitions.size(), 4u);
  EXPECT_EQ(flat->state_names[flat->initial_state], "chain4.s0");
}

TEST(Flatten, NestedMachineInheritsOuterHandlers) {
  auto machine = make_nested_machine(3, 2);
  support::DiagnosticSink sink;
  auto flat = flatten(*machine, sink);
  ASSERT_TRUE(flat.has_value()) << sink.str();
  // Leaves only: the 2 innermost states.
  EXPECT_EQ(flat->states.size(), 2u);
  // Each leaf has its own "step" row plus the inherited outer "reset" row.
  bool found_reset = false;
  for (const FlatTransition& row : flat->transitions) {
    if (row.trigger == "reset") found_reset = true;
  }
  EXPECT_TRUE(found_reset);
}

TEST(Flatten, RejectsOrthogonal) {
  auto machine = make_orthogonal_machine(2, 2);
  support::DiagnosticSink sink;
  EXPECT_FALSE(flatten(*machine, sink).has_value());
  EXPECT_NE(sink.str().find("orthogonal"), std::string::npos);
}

TEST(Flatten, RejectsHistory) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  top.add_pseudostate(VertexKind::kShallowHistory, "H");
  top.add_transition(initial, a);
  support::DiagnosticSink sink;
  EXPECT_FALSE(flatten(machine, sink).has_value());
}

TEST(Flatten, RejectsCompletionTransitions) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b);  // Completion.
  support::DiagnosticSink sink;
  EXPECT_FALSE(flatten(machine, sink).has_value());
  EXPECT_NE(sink.str().find("completion"), std::string::npos);
}

TEST(Flatten, FinalStatesBecomeSinkLeaves) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  FinalState& end = top.add_final();
  top.add_transition(initial, a);
  top.add_transition(a, end).set_trigger("quit");
  support::DiagnosticSink sink;
  auto flat = flatten(machine, sink);
  ASSERT_TRUE(flat.has_value()) << sink.str();
  EXPECT_EQ(flat->states.size(), 2u);

  FlatExecutor executor(*flat);
  EXPECT_TRUE(executor.dispatch({"quit"}));
  EXPECT_FALSE(executor.dispatch({"quit"}));  // Sink: nothing fires.
}

TEST(Flatten, ExecutorHonorsGuardsViaHost) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go").set_guard("flag", [](const ActionContext& ctx) {
    return ctx.instance.variable("flag") != 0;
  });
  support::DiagnosticSink sink;
  auto flat = flatten(machine, sink);
  ASSERT_TRUE(flat.has_value()) << sink.str();

  StateMachineInstance host(machine);
  FlatExecutor executor(*flat, &host);
  EXPECT_FALSE(executor.dispatch({"go"}));
  host.set_variable("flag", 1);
  EXPECT_TRUE(executor.dispatch({"go"}));
  EXPECT_EQ(executor.current_name(), "m.B");
}

// Property: flat executor and hierarchical interpreter agree on the active
// leaf through random event sequences on flattenable machines.
class FlatEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FlatEquivalence, AgreesWithInterpreter) {
  auto [depth, width] = GetParam();
  auto machine = make_nested_machine(static_cast<std::size_t>(depth),
                                     static_cast<std::size_t>(width));
  support::DiagnosticSink sink;
  auto flat = flatten(*machine, sink);
  ASSERT_TRUE(flat.has_value()) << sink.str();

  StateMachineInstance interpreter(*machine);
  interpreter.set_trace_enabled(false);
  interpreter.start();
  FlatExecutor executor(*flat);

  const std::vector<std::string> events = {"step", "reset", "noise"};
  unsigned seed = 42;
  for (int i = 0; i < 300; ++i) {
    seed = seed * 1664525u + 1013904223u;
    Event event{events[seed % events.size()]};
    bool interpreter_fired = interpreter.dispatch(event);
    bool flat_fired = executor.dispatch(event);
    EXPECT_EQ(interpreter_fired, flat_fired) << "event " << event.name << " step " << i;

    std::vector<std::string> leaves = interpreter.active_leaf_names();
    ASSERT_EQ(leaves.size(), 1u);
    // Flat names are qualified; interpreter leaf names are simple.
    EXPECT_NE(executor.current_name().find(leaves[0]), std::string::npos)
        << "divergence at step " << i;
  }
  EXPECT_EQ(interpreter.transitions_fired(), executor.transitions_fired());
}

INSTANTIATE_TEST_SUITE_P(Shapes, FlatEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(2, 3, 5)));

}  // namespace
}  // namespace umlsoc::statechart
