// Explicit-state verification engine tests: canonical encoding round-trips,
// the hashed visited store (forced fingerprint collisions, memory-budget
// exhaustion, exact revisit accounting), BFS/DFS exploration, safety
// properties (invariants, never-in, unhandled-error freedom, deadlock
// freedom), and the counterexample contract — kernel-replayed schedules and
// sequence-diagram rendering.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codegen/plantuml.hpp"
#include "interaction/trace.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/model.hpp"
#include "verify/counterexample.hpp"
#include "verify/explore.hpp"
#include "verify/property.hpp"
#include "verify/statespace.hpp"

namespace umlsoc::verify {
namespace {

using statechart::Event;
using statechart::StateMachine;
using statechart::StateMachineInstance;

// --- Machines -----------------------------------------------------------------

/// Diamond: A -a-> B, A -b-> C, B -go-> D, C -go-> D. With alphabet
/// {a, b, go} the reachable graph has exactly 4 states and 12 edges
/// (3 choices from each state; unfired choices are self-loops).
std::unique_ptr<StateMachine> make_diamond() {
  auto machine = std::make_unique<StateMachine>("Diamond");
  statechart::Region& top = machine->top();
  statechart::State& a = top.add_state("A");
  statechart::State& b = top.add_state("B");
  statechart::State& c = top.add_state("C");
  statechart::State& d = top.add_state("D");
  top.add_transition(top.add_initial(), a);
  top.add_transition(a, b).set_trigger("a");
  top.add_transition(a, c).set_trigger("b");
  top.add_transition(b, d).set_trigger("go");
  top.add_transition(c, d).set_trigger("go");
  return machine;
}

/// Linear counter 0..limit via "inc"; "reset" returns to 0 from anywhere.
std::unique_ptr<StateMachine> make_counter(int limit) {
  auto machine = std::make_unique<StateMachine>("Counter");
  statechart::Region& top = machine->top();
  statechart::State& run = top.add_state("Run");
  top.add_transition(top.add_initial(), run)
      .set_effect("n := 0", [](statechart::ActionContext& context) {
        context.instance.set_variable("n", 0);
      });
  top.add_transition(run, run)
      .set_trigger("inc")
      .set_internal(true)
      .set_guard("n < limit",
                 [limit](const statechart::ActionContext& context) {
                   return context.instance.variable("n") < limit;
                 })
      .set_effect("n := n + 1", [](statechart::ActionContext& context) {
        context.instance.set_variable("n", context.instance.variable("n") + 1);
      });
  top.add_transition(run, run)
      .set_trigger("reset")
      .set_internal(true)
      .set_effect("n := 0", [](statechart::ActionContext& context) {
        context.instance.set_variable("n", 0);
      });
  return machine;
}

/// Handshake: Idle -req-> Wait -ack-> Done -reset-> Idle.
std::unique_ptr<StateMachine> make_handshake() {
  auto machine = std::make_unique<StateMachine>("Handshake");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& wait = top.add_state("Wait");
  statechart::State& done = top.add_state("Done");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, wait).set_trigger("req");
  top.add_transition(wait, done).set_trigger("ack");
  top.add_transition(done, idle).set_trigger("reset");
  return machine;
}

struct SingleRig {
  std::unique_ptr<StateMachine> machine;
  std::unique_ptr<StateMachineInstance> instance;
  Network network;

  explicit SingleRig(std::unique_ptr<StateMachine> m, const char* name = "M")
      : machine(std::move(m)),
        instance(std::make_unique<StateMachineInstance>(*machine)) {
    instance->set_trace_enabled(false);
    instance->start();
    network.add_instance(name, *instance);
  }
};

// --- Encoding -----------------------------------------------------------------

TEST(VerifyEncoding, RoundTripsFullInstanceState) {
  auto machine = make_diamond();
  StateMachineInstance instance(*machine);
  instance.start();
  instance.set_variable("x", -7);
  instance.set_variable("y", 1234567890123LL);
  instance.post(Event("queued", 42, "tag"));
  instance.post(Event("second"));

  const std::vector<statechart::InstanceSnapshot> snapshots = {instance.capture()};
  const std::string encoding = encode_network(snapshots);

  std::vector<statechart::InstanceSnapshot> decoded;
  ASSERT_TRUE(decode_network(encoding, decoded));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].started, snapshots[0].started);
  EXPECT_EQ(decoded[0].terminated, snapshots[0].terminated);
  EXPECT_EQ(decoded[0].active_states, snapshots[0].active_states);
  EXPECT_EQ(decoded[0].active_finals, snapshots[0].active_finals);
  EXPECT_EQ(decoded[0].variables, snapshots[0].variables);
  ASSERT_EQ(decoded[0].queue.size(), 2u);
  EXPECT_EQ(decoded[0].queue[0].name, "queued");
  EXPECT_EQ(decoded[0].queue[0].data, 42);
  EXPECT_EQ(decoded[0].queue[0].tag, "tag");
  // Re-encoding the decoded snapshots is byte-identical: canonical.
  EXPECT_EQ(encode_network(decoded), encoding);
}

TEST(VerifyEncoding, ExcludesMonotonicCounters) {
  auto machine = make_diamond();
  StateMachineInstance one(*machine);
  StateMachineInstance two(*machine);
  one.start();
  two.start();
  // Drive `two` around the diamond and back is impossible (D is a sink), so
  // compare A-configurations with different history: deliver a no-match
  // event that only bumps events_processed.
  two.dispatch(Event("nonexistent"));
  EXPECT_NE(one.events_processed(), two.events_processed());
  EXPECT_EQ(encode_network({one.capture()}), encode_network({two.capture()}));
}

TEST(VerifyEncoding, RejectsMalformedEncodings) {
  auto machine = make_diamond();
  StateMachineInstance instance(*machine);
  instance.start();
  const std::string encoding = encode_network({instance.capture()});

  std::vector<statechart::InstanceSnapshot> decoded;
  EXPECT_FALSE(decode_network(encoding.substr(0, encoding.size() - 1), decoded));
  EXPECT_FALSE(decode_network(encoding + "x", decoded));
  EXPECT_FALSE(decode_network("", decoded));
  std::string corrupt = encoding;
  corrupt[0] = static_cast<char>(0xff);  // Instance count far beyond payload.
  EXPECT_FALSE(decode_network(corrupt, decoded));
}

// --- StateStore ---------------------------------------------------------------

TEST(VerifyStateStore, AssignsDenseIdsAndCountsRevisits) {
  StateStore store;
  EXPECT_EQ(store.insert("alpha").status, StateStore::Status::kNew);
  EXPECT_EQ(store.insert("beta", 0, 1).id, 1u);
  EXPECT_EQ(store.insert("alpha").status, StateStore::Status::kVisited);
  EXPECT_EQ(store.insert("alpha").id, 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.revisits(), 2u);
  EXPECT_EQ(store.depth(1), 1u);
  EXPECT_EQ(store.parent(1), 0u);
  EXPECT_EQ(store.action(1), 1u);
}

std::uint64_t constant_hash(std::string_view) { return 0x1234u; }

TEST(VerifyStateStore, CollidingFingerprintsKeepStatesDistinct) {
  StateStore::Config config;
  config.hash = &constant_hash;  // Every state collides with every other.
  StateStore store(config);

  std::vector<std::string> states;
  for (int i = 0; i < 50; ++i) states.push_back("state-" + std::to_string(i));
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(store.insert(states[i]).id, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(store.size(), states.size());
  EXPECT_GT(store.fingerprint_collisions(), 0u);
  // Every state is found again as itself, never conflated with a collider.
  for (std::size_t i = 0; i < states.size(); ++i) {
    const StateStore::InsertResult result = store.insert(states[i]);
    EXPECT_EQ(result.status, StateStore::Status::kVisited);
    EXPECT_EQ(result.id, static_cast<std::uint32_t>(i));
  }
}

TEST(VerifyStateStore, BudgetExhaustionIsStructuredNotFatal) {
  StateStore::Config config;
  config.memory_budget_bytes = 8 * 1024;
  StateStore store(config);

  const std::string filler(512, 'x');
  StateStore::InsertResult result{};
  int stored = 0;
  for (int i = 0; i < 1000; ++i) {
    result = store.insert(filler + std::to_string(i));
    if (result.status != StateStore::Status::kNew) break;
    ++stored;
  }
  EXPECT_EQ(result.status, StateStore::Status::kOutOfMemory);
  EXPECT_GT(stored, 0);
  // The store stays queryable after refusing the insert.
  EXPECT_EQ(store.size(), static_cast<std::size_t>(stored));
  EXPECT_EQ(store.insert(filler + "0").status, StateStore::Status::kVisited);
  EXPECT_LE(store.bytes_used(), config.memory_budget_bytes);
}

TEST(VerifyStateStore, PathActionsWalkDiscoveryParents) {
  StateStore store;
  (void)store.insert("s0");
  (void)store.insert("s1", 0, 7);
  (void)store.insert("s2", 1, 3);
  (void)store.insert("s3", 2, 9);
  EXPECT_TRUE(store.path_actions(0).empty());
  EXPECT_EQ(store.path_actions(3), (std::vector<std::uint32_t>{7, 3, 9}));
}

// --- Exploration --------------------------------------------------------------

TEST(VerifyExplore, DiamondHasExactStateAndRevisitCounts) {
  SingleRig rig(make_diamond());
  rig.network.add_choice("M", Event("a"));
  rig.network.add_choice("M", Event("b"));
  rig.network.add_choice("M", Event("go"));

  const ExploreResult result = explore(rig.network, {});
  EXPECT_EQ(result.termination, ExploreResult::Termination::kExhausted);
  EXPECT_TRUE(result.verified());
  EXPECT_EQ(result.stats.states, 4u);
  EXPECT_EQ(result.stats.transitions, 12u);
  EXPECT_EQ(result.stats.revisits, 9u);
  EXPECT_EQ(result.stats.max_depth_seen, 2u);
}

TEST(VerifyExplore, BfsAndDfsCoverTheSameSpace) {
  SingleRig bfs_rig(make_counter(5));
  bfs_rig.network.add_choice("M", Event("inc"));
  bfs_rig.network.add_choice("M", Event("reset"));
  const ExploreResult bfs = explore(bfs_rig.network, {});

  SingleRig dfs_rig(make_counter(5));
  dfs_rig.network.add_choice("M", Event("inc"));
  dfs_rig.network.add_choice("M", Event("reset"));
  ExploreOptions options;
  options.strategy = ExploreOptions::Strategy::kDfs;
  const ExploreResult dfs = explore(dfs_rig.network, {}, options);

  EXPECT_EQ(bfs.termination, ExploreResult::Termination::kExhausted);
  EXPECT_EQ(dfs.termination, ExploreResult::Termination::kExhausted);
  EXPECT_EQ(bfs.stats.states, 6u);  // n = 0..5.
  EXPECT_EQ(dfs.stats.states, bfs.stats.states);
  EXPECT_EQ(dfs.stats.transitions, bfs.stats.transitions);
}

TEST(VerifyExplore, StateCapTerminatesWithStateBound) {
  SingleRig rig(make_counter(1000));
  rig.network.add_choice("M", Event("inc"));
  ExploreOptions options;
  options.max_states = 10;
  const ExploreResult result = explore(rig.network, {}, options);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kStateBound);
  EXPECT_LE(result.stats.states, 10u);
}

TEST(VerifyExplore, DepthCapTerminatesWithStateBound) {
  SingleRig rig(make_counter(1000));
  rig.network.add_choice("M", Event("inc"));
  ExploreOptions options;
  options.max_depth = 3;
  const ExploreResult result = explore(rig.network, {}, options);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kStateBound);
  EXPECT_EQ(result.stats.max_depth_seen, 3u);  // Depth-3 states stored, not expanded.
}

TEST(VerifyExplore, MemoryBudgetTerminatesWithMemoryBound) {
  SingleRig rig(make_counter(100000));
  rig.network.add_choice("M", Event("inc"));
  ExploreOptions options;
  options.memory_budget_bytes = 16 * 1024;
  const ExploreResult result = explore(rig.network, {}, options);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kMemoryBound);
  EXPECT_GT(result.stats.states, 0u);
  EXPECT_LE(result.stats.bytes_used, options.memory_budget_bytes);
}

TEST(VerifyExplore, UnstartedInstanceIsASetupError) {
  auto machine = make_diamond();
  StateMachineInstance instance(*machine);  // Never started.
  Network network;
  network.add_instance("M", instance);
  support::DiagnosticSink sink;
  const ExploreResult result = explore(network, {}, {}, &sink);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kError);
  EXPECT_TRUE(sink.has_errors());
}

TEST(VerifyExplore, CrossInstancePostingBuildsProductSpace) {
  // Two handshakes; the first's "ack" effect posts "req" into the second,
  // so the second's protocol is driven (partly) by the first.
  auto leader_machine = std::make_unique<StateMachine>("Leader");
  StateMachineInstance* follower_slot = nullptr;
  {
    statechart::Region& top = leader_machine->top();
    statechart::State& idle = top.add_state("Idle");
    statechart::State& done = top.add_state("Done");
    top.add_transition(top.add_initial(), idle);
    top.add_transition(idle, done)
        .set_trigger("go")
        .set_effect("post req to follower", [&follower_slot](statechart::ActionContext&) {
          if (follower_slot != nullptr) follower_slot->post(Event("req"));
        });
    top.add_transition(done, idle).set_trigger("reset");
  }
  auto follower_machine = make_handshake();
  StateMachineInstance leader(*leader_machine);
  StateMachineInstance follower(*follower_machine);
  follower_slot = &follower;
  leader.set_trace_enabled(false);
  follower.set_trace_enabled(false);
  leader.start();
  follower.start();

  Network network;
  network.add_instance("Leader", leader);
  network.add_instance("Follower", follower);
  network.add_choice("Leader", Event("go"));
  network.add_choice("Leader", Event("reset"));
  network.add_choice("Follower", Event("ack"));
  network.add_choice("Follower", Event("reset"));

  const ExploreResult result = explore(network, {});
  EXPECT_EQ(result.termination, ExploreResult::Termination::kExhausted);
  // Leader has 2 local states, follower 3: the cross-post makes most of the
  // product reachable — strictly more than either machine alone.
  EXPECT_GT(result.stats.states, 3u);
  EXPECT_LE(result.stats.states, 6u);
}

TEST(VerifyExplore, ForcedCollisionHashStillConverges) {
  SingleRig rig(make_counter(5));
  rig.network.add_choice("M", Event("inc"));
  rig.network.add_choice("M", Event("reset"));
  ExploreOptions options;
  options.hash_override = &constant_hash;
  const ExploreResult result = explore(rig.network, {}, options);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kExhausted);
  EXPECT_EQ(result.stats.states, 6u);
  EXPECT_GT(result.stats.fingerprint_collisions, 0u);
}

// --- Properties ---------------------------------------------------------------

TEST(VerifyProperties, NeverInYieldsShortestBfsCounterexample) {
  SingleRig rig(make_diamond());
  rig.network.add_choice("M", Event("a"));
  rig.network.add_choice("M", Event("b"));
  rig.network.add_choice("M", Event("go"));

  std::vector<Property> properties;
  properties.push_back(Property::never_in("M", "D"));
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.termination, ExploreResult::Termination::kViolation);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].property, "never-in:M.D");
  // BFS: D is two steps away; no counterexample can be shorter.
  EXPECT_EQ(result.violations[0].path.size(), 2u);
  EXPECT_EQ(result.violations[0].path[1].event.name, "go");
}

TEST(VerifyProperties, InvariantViolationCarriesPath) {
  SingleRig rig(make_counter(5));
  rig.network.add_choice("M", Event("inc"));
  rig.network.add_choice("M", Event("reset"));
  std::vector<Property> properties;
  properties.push_back(Property::invariant("n-below-3", [](const PropertyContext& context) {
    return context.network.find("M")->variable("n") < 3;
  }));
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.termination, ExploreResult::Termination::kViolation);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].path.size(), 3u);  // inc, inc, inc.
}

TEST(VerifyProperties, UnhandledErrorFreedomCatchesMissingHandler) {
  // Handshake handles no error-channel events at all: the first fault
  // delivery is an unhandled error.
  SingleRig rig(make_handshake());
  rig.network.add_choice("M", Event("req"));
  rig.network.add_choice("M", Event("bus_fault"), /*is_error=*/true);
  std::vector<Property> properties;
  properties.push_back(Property::no_unhandled_errors());
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.termination, ExploreResult::Termination::kViolation);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].path.size(), 1u);
  EXPECT_TRUE(result.violations[0].path[0].is_error);
}

TEST(VerifyProperties, DeadlockFreedomFlagsStuckNonFinalState) {
  // Trap: Idle -go-> Stuck, and nothing is enabled in Stuck.
  auto machine = std::make_unique<StateMachine>("Trap");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& stuck = top.add_state("Stuck");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, stuck).set_trigger("go");
  SingleRig rig(std::move(machine));
  rig.network.add_choice("M", Event("go"));

  std::vector<Property> properties;
  properties.push_back(Property::deadlock_free());
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.termination, ExploreResult::Termination::kViolation);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].property, "deadlock-freedom");
  EXPECT_EQ(result.violations[0].path.size(), 1u);
}

TEST(VerifyProperties, DeadlockFreedomAcceptsFinalStates) {
  // Same shape, but the sink is a FinalState: quiescence there is
  // acceptance, not deadlock.
  auto machine = std::make_unique<StateMachine>("Finishes");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::FinalState& fin = top.add_final();
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, fin).set_trigger("go");
  SingleRig rig(std::move(machine));
  rig.network.add_choice("M", Event("go"));

  std::vector<Property> properties;
  properties.push_back(Property::deadlock_free());
  const ExploreResult result = explore(rig.network, properties);
  EXPECT_EQ(result.termination, ExploreResult::Termination::kExhausted);
  EXPECT_TRUE(result.verified());
}

// --- Counterexamples ----------------------------------------------------------

TEST(VerifyCounterexample, ReplaysThroughKernelWithVerifiedSchedule) {
  SingleRig rig(make_diamond());
  rig.network.add_choice("M", Event("a"));
  rig.network.add_choice("M", Event("b"));
  rig.network.add_choice("M", Event("go"));
  std::vector<Property> properties;
  properties.push_back(Property::never_in("M", "D"));
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.violations.size(), 1u);

  support::DiagnosticSink sink;
  const ReplayReport report = replay_counterexample(rig.network, result.initial,
                                                    result.violations[0], properties, sink);
  EXPECT_TRUE(report.reproduced) << report.str();
  EXPECT_TRUE(report.schedule_verified) << report.str();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.scheduled_steps, 2u);
}

TEST(VerifyCounterexample, DeadlockViolationReplays) {
  auto machine = std::make_unique<StateMachine>("Trap");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& stuck = top.add_state("Stuck");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, stuck).set_trigger("go");
  SingleRig rig(std::move(machine));
  rig.network.add_choice("M", Event("go"));
  std::vector<Property> properties;
  properties.push_back(Property::deadlock_free());
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.violations.size(), 1u);

  support::DiagnosticSink sink;
  const ReplayReport report = replay_counterexample(rig.network, result.initial,
                                                    result.violations[0], properties, sink);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(VerifyCounterexample, RendersAsConformingSequenceDiagram) {
  SingleRig rig(make_diamond(), "Device");
  rig.network.add_choice("Device", Event("a"));
  rig.network.add_choice("Device", Event("go"), /*is_error=*/true);
  std::vector<Property> properties;
  properties.push_back(Property::never_in("Device", "D"));
  const ExploreResult result = explore(rig.network, properties);
  ASSERT_EQ(result.violations.size(), 1u);
  const Violation& violation = result.violations[0];

  const interaction::Trace trace = counterexample_trace(rig.network, violation);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "env->Device:a");
  EXPECT_EQ(trace[1], "fault->Device:go");

  std::unique_ptr<interaction::Interaction> scenario =
      counterexample_interaction(rig.network, violation);
  ASSERT_NE(scenario, nullptr);
  EXPECT_TRUE(interaction::ConformanceChecker(*scenario).conforms(trace));

  const std::string diagram = codegen::to_plantuml_sequence(*scenario);
  EXPECT_NE(diagram.find("@startuml"), std::string::npos);
  EXPECT_NE(diagram.find("participant env"), std::string::npos);
  EXPECT_NE(diagram.find("participant fault"), std::string::npos);
  EXPECT_NE(diagram.find("participant Device"), std::string::npos);
  EXPECT_NE(diagram.find("go"), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::verify
