// Codesign tests: task graph extraction, schedule evaluation, and the four
// partitioning algorithms with optimality/feasibility properties.
#include <gtest/gtest.h>

#include "activity/synthetic.hpp"
#include "codesign/partition.hpp"

namespace umlsoc::codesign {
namespace {

/// Two parallel chains of two tasks each: a -> b, c -> d.
TaskGraph make_diamondless_graph() {
  TaskGraph graph;
  std::size_t a = graph.add_task({"a", 10, 2, 100, nullptr});
  std::size_t b = graph.add_task({"b", 20, 3, 200, nullptr});
  std::size_t c = graph.add_task({"c", 15, 4, 150, nullptr});
  std::size_t d = graph.add_task({"d", 5, 1, 50, nullptr});
  graph.add_precedence(a, b, 2.0);
  graph.add_precedence(c, d, 1.0);
  return graph;
}

TEST(TaskGraph, ExtractFromSequentialActivity) {
  auto activity = activity::make_sequential(4);
  TaskGraph graph = extract_task_graph(*activity);
  EXPECT_EQ(graph.size(), 4u);
  EXPECT_EQ(graph.graph().edge_count(), 3u);  // Chain a0->a1->a2->a3.
  auto order = graph.graph().topological_order();
  ASSERT_TRUE(order.has_value());
}

TEST(TaskGraph, ExtractSkipsControlNodes) {
  auto activity = activity::make_fork_join(3, 2);  // fork/join collapse away.
  TaskGraph graph = extract_task_graph(*activity);
  EXPECT_EQ(graph.size(), 6u);
  // Each first-stage action precedes its second-stage action; no edges
  // between parallel branches.
  EXPECT_EQ(graph.graph().edge_count(), 3u);
}

TEST(TaskGraph, ExtractMediaPipelineCosts) {
  auto activity = activity::make_media_pipeline();
  TaskGraph graph = extract_task_graph(*activity);
  EXPECT_EQ(graph.size(), 7u);
  double sw = graph.total_sw_cost();
  EXPECT_GT(sw, 100.0);
  EXPECT_GT(graph.total_hw_area(), 1000.0);
  // The DCT stages fork from color_convert and join into quantize.
  auto order = graph.graph().topological_order();
  ASSERT_TRUE(order.has_value());
}

TEST(Evaluate, AllSoftwareSerializesOnCpu) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  Partition all_sw(4, false);
  Evaluation eval = evaluate(graph, all_sw, model);
  // One CPU: 10+20+15+5 regardless of parallel structure.
  EXPECT_DOUBLE_EQ(eval.makespan, 50.0);
  EXPECT_DOUBLE_EQ(eval.area, 0.0);
  EXPECT_TRUE(eval.feasible);
}

TEST(Evaluate, AllHardwareRunsChainsInParallel) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  Partition all_hw(4, true);
  Evaluation eval = evaluate(graph, all_hw, model);
  // Chains (2+3) and (4+1) in parallel -> 5.
  EXPECT_DOUBLE_EQ(eval.makespan, 5.0);
  EXPECT_DOUBLE_EQ(eval.area, 500.0);
}

TEST(Evaluate, BoundaryPenaltyApplied) {
  TaskGraph graph;
  std::size_t a = graph.add_task({"a", 10, 2, 10, nullptr});
  std::size_t b = graph.add_task({"b", 10, 2, 10, nullptr});
  graph.add_precedence(a, b, 3.0);
  CostModel model;
  model.boundary_penalty = 7.0;

  Partition mixed{true, false};  // a in HW, b in SW: edge crosses.
  Evaluation eval = evaluate(graph, mixed, model);
  // a: 0..2 (hw), comm 3*7=21, b starts at 23, finishes 33.
  EXPECT_DOUBLE_EQ(eval.makespan, 33.0);

  Partition same{false, false};
  EXPECT_DOUBLE_EQ(evaluate(graph, same, model).makespan, 20.0);
}

TEST(Evaluate, AreaBudgetFeasibility) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  model.area_budget = 300.0;
  Partition all_hw(4, true);
  EXPECT_FALSE(evaluate(graph, all_hw, model).feasible);  // 500 > 300.
  Partition some_hw{true, false, true, false};            // 250 <= 300.
  EXPECT_TRUE(evaluate(graph, some_hw, model).feasible);
}

TEST(Evaluate, CyclicGraphThrows) {
  TaskGraph graph;
  std::size_t a = graph.add_task({"a", 1, 1, 1, nullptr});
  std::size_t b = graph.add_task({"b", 1, 1, 1, nullptr});
  graph.add_precedence(a, b);
  graph.add_precedence(b, a);
  EXPECT_THROW((void)evaluate(graph, Partition(2, false), CostModel{}),
               std::invalid_argument);
}

TEST(Schedule, RespectsPrecedences) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  Partition partition{true, true, false, false};
  std::vector<ScheduledTask> schedule = build_schedule(graph, partition, model);
  ASSERT_EQ(schedule.size(), 4u);
  auto find = [&](const std::string& name) -> const ScheduledTask& {
    for (const ScheduledTask& task : schedule) {
      if (task.name == name) return task;
    }
    throw std::runtime_error("missing " + name);
  };
  EXPECT_GE(find("b").start, find("a").finish);
  EXPECT_GE(find("d").start, find("c").finish);
  EXPECT_TRUE(find("a").hw);
  EXPECT_FALSE(find("c").hw);
}

TEST(Partition, BaselinesAndGreedy) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  model.area_budget = 350.0;

  PartitionResult sw = partition_all_software(graph, model);
  PartitionResult greedy = partition_greedy(graph, model);
  EXPECT_LE(greedy.evaluation.makespan, sw.evaluation.makespan);
  EXPECT_TRUE(greedy.evaluation.feasible);
  EXPECT_EQ(greedy.algorithm, "greedy");
  EXPECT_GT(greedy.evaluations, 1u);

  PartitionResult hw = partition_all_hardware(graph, model);
  EXPECT_FALSE(hw.evaluation.feasible);  // Over budget.
}

TEST(Partition, ExhaustiveIsOptimalLowerBound) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  model.area_budget = 350.0;

  PartitionResult exact = partition_exhaustive(graph, model);
  EXPECT_TRUE(exact.evaluation.feasible);
  for (const auto& result :
       {partition_greedy(graph, model), partition_kl(graph, model),
        partition_annealing(graph, model, 7, 5000)}) {
    EXPECT_GE(result.evaluation.makespan, exact.evaluation.makespan - 1e-9)
        << result.algorithm << " beat the optimum?!";
    EXPECT_TRUE(result.evaluation.feasible) << result.algorithm;
  }
}

TEST(Partition, KlNeverWorseThanAllSoftware) {
  auto activity = activity::make_series_parallel(5, 12);
  TaskGraph graph = extract_task_graph(*activity);
  CostModel model;
  model.area_budget = graph.total_hw_area() / 2.0;
  PartitionResult sw = partition_all_software(graph, model);
  PartitionResult kl = partition_kl(graph, model);
  EXPECT_LE(kl.evaluation.makespan, sw.evaluation.makespan);
  EXPECT_TRUE(kl.evaluation.feasible);
}

TEST(Partition, AnnealingDeterministicPerSeed) {
  TaskGraph graph = make_diamondless_graph();
  CostModel model;
  PartitionResult a = partition_annealing(graph, model, 42, 2000);
  PartitionResult b = partition_annealing(graph, model, 42, 2000);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_DOUBLE_EQ(a.evaluation.makespan, b.evaluation.makespan);
}

TEST(Partition, ExhaustiveRejectsLargeGraphs) {
  TaskGraph graph;
  for (int i = 0; i < 25; ++i) graph.add_task({"t" + std::to_string(i), 1, 1, 1, nullptr});
  EXPECT_THROW(partition_exhaustive(graph, CostModel{}), std::invalid_argument);
}

TEST(Pareto, FrontIsMonotone) {
  auto activity = activity::make_series_parallel(3, 10);
  TaskGraph graph = extract_task_graph(*activity);
  std::vector<ParetoPoint> front = pareto_front(graph, CostModel{});
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].area, front[i - 1].area);
    EXPECT_LT(front[i].makespan, front[i - 1].makespan);  // Strictly better.
  }
  // Extremes: the all-SW point has area 0.
  EXPECT_DOUBLE_EQ(front.front().area, 0.0);
}

// Property sweep: SA with enough iterations matches the exhaustive optimum
// on small graphs across seeds.
class SaQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaQuality, MatchesExhaustiveOnSmallGraphs) {
  auto activity = activity::make_series_parallel(GetParam(), 8);
  TaskGraph graph = extract_task_graph(*activity);
  CostModel model;
  model.area_budget = graph.total_hw_area() * 0.6;
  PartitionResult exact = partition_exhaustive(graph, model);
  PartitionResult sa = partition_annealing(graph, model, GetParam() * 13 + 1, 30000);
  EXPECT_TRUE(sa.evaluation.feasible);
  EXPECT_LE(sa.evaluation.makespan, exact.evaluation.makespan * 1.05 + 1e-9)
      << "SA more than 5% off optimum";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaQuality, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace umlsoc::codesign
