// Fault-injection and resilience tests: seeded determinism of the
// FaultPlan, the bus-level fault surface (errors, drops, latency,
// bit-flips), BusMasterPort timeout/retry/backoff, watchdog supervision,
// deadlock detection via kernel expectations, and the statechart error
// channel driven end-to-end by injected faults.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "codegen/swruntime.hpp"
#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/signal.hpp"
#include "statechart/interpreter.hpp"

namespace umlsoc::sim {
namespace {

struct Draw {
  FaultKind kind;
  std::uint64_t extra_ps;
  std::uint64_t flip_mask;

  bool operator==(const Draw&) const = default;
};

std::vector<Draw> draw_sequence(FaultPlan& plan, FaultSite site, int count) {
  std::vector<Draw> draws;
  for (int i = 0; i < count; ++i) {
    const FaultDecision decision = plan.consult(site);
    draws.push_back({decision.kind, decision.extra_latency.picoseconds(), decision.flip_mask});
  }
  return draws;
}

FaultPlan::SiteConfig mixed_rates() {
  FaultPlan::SiteConfig config;
  config.error_rate = 0.15;
  config.drop_rate = 0.15;
  config.extra_latency_rate = 0.15;
  config.bit_flip_rate = 0.15;
  return config;
}

TEST(FaultPlan, SameSeedReplaysSameSequence) {
  FaultPlan a(7);
  FaultPlan b(7);
  a.configure(FaultSite::kBusRead, mixed_rates());
  b.configure(FaultSite::kBusRead, mixed_rates());
  const auto seq_a = draw_sequence(a, FaultSite::kBusRead, 300);
  const auto seq_b = draw_sequence(b, FaultSite::kBusRead, 300);
  EXPECT_EQ(seq_a, seq_b);
  // The mixed config must actually exercise several kinds.
  EXPECT_GT(a.counters(FaultSite::kBusRead).errors, 0u);
  EXPECT_GT(a.counters(FaultSite::kBusRead).drops, 0u);
  EXPECT_GT(a.counters(FaultSite::kBusRead).delays, 0u);
  EXPECT_GT(a.counters(FaultSite::kBusRead).bit_flips, 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(7);
  FaultPlan b(8);
  a.configure(FaultSite::kBusRead, mixed_rates());
  b.configure(FaultSite::kBusRead, mixed_rates());
  EXPECT_NE(draw_sequence(a, FaultSite::kBusRead, 300),
            draw_sequence(b, FaultSite::kBusRead, 300));
}

TEST(FaultPlan, SitesDrawIndependentStreams) {
  // Consulting one site must not perturb another site's sequence: the
  // write-site sequence is identical whether or not reads are consulted
  // in between.
  FaultPlan quiet(99);
  FaultPlan busy(99);
  quiet.configure(FaultSite::kBusWrite, mixed_rates());
  busy.configure(FaultSite::kBusWrite, mixed_rates());
  busy.configure(FaultSite::kBusRead, mixed_rates());

  std::vector<Draw> quiet_writes = draw_sequence(quiet, FaultSite::kBusWrite, 100);
  std::vector<Draw> busy_writes;
  for (int i = 0; i < 100; ++i) {
    (void)busy.consult(FaultSite::kBusRead);
    const FaultDecision decision = busy.consult(FaultSite::kBusWrite);
    busy_writes.push_back(
        {decision.kind, decision.extra_latency.picoseconds(), decision.flip_mask});
  }
  EXPECT_EQ(quiet_writes, busy_writes);
}

TEST(FaultPlan, DisabledSiteDecidesNoneWithoutConsumingStream) {
  FaultPlan::SiteConfig always_error;
  always_error.error_rate = 1.0;

  FaultPlan plan(3);
  plan.configure(FaultSite::kBusRead, always_error);
  EXPECT_EQ(plan.consult(FaultSite::kBusRead).kind, FaultKind::kError);

  plan.set_enabled(FaultSite::kBusRead, false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plan.consult(FaultSite::kBusRead).kind, FaultKind::kNone);
  }
  EXPECT_EQ(plan.counters(FaultSite::kBusRead).consults, 1u);

  plan.set_enabled(FaultSite::kBusRead, true);
  EXPECT_EQ(plan.consult(FaultSite::kBusRead).kind, FaultKind::kError);
  EXPECT_EQ(plan.counters(FaultSite::kBusRead).errors, 2u);
}

TEST(FaultPlan, MaxFaultsCapsInjection) {
  FaultPlan::SiteConfig config;
  config.error_rate = 1.0;
  config.max_faults = 3;

  FaultPlan plan(5);
  plan.configure(FaultSite::kBusWrite, config);
  int injected = 0;
  for (int i = 0; i < 10; ++i) {
    if (plan.consult(FaultSite::kBusWrite).faulted()) ++injected;
  }
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(plan.counters(FaultSite::kBusWrite).errors, 3u);
  EXPECT_EQ(plan.counters(FaultSite::kBusWrite).consults, 10u);
  EXPECT_EQ(plan.total_injected(), 3u);
}

// --- Bus-level fault surface ------------------------------------------------

struct FaultyBusFixture {
  Kernel kernel;
  MemoryMappedBus bus{kernel, "axi", SimTime::ns(8)};
  FaultPlan plan{42};
  std::uint64_t mem[8] = {};
  std::uint64_t device_reads = 0;

  FaultyBusFixture() {
    bus.map_device(
        "ram", 0, sizeof(mem),
        [this](std::uint64_t a) {
          ++device_reads;
          return mem[(a / 8) % 8];
        },
        [this](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 8] = v; });
    bus.install_fault_plan(&plan);
  }

  void always(FaultSite site, FaultKind kind) {
    FaultPlan::SiteConfig config;
    switch (kind) {
      case FaultKind::kError:
        config.error_rate = 1.0;
        break;
      case FaultKind::kDropResponse:
        config.drop_rate = 1.0;
        break;
      case FaultKind::kExtraLatency:
        config.extra_latency_rate = 1.0;
        break;
      case FaultKind::kBitFlip:
        config.bit_flip_rate = 1.0;
        break;
      default:
        break;
    }
    plan.configure(site, config);
  }
};

TEST(BusFaults, InjectedErrorSkipsDeviceAndReportsStatus) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusRead, FaultKind::kError);
  BusStatus status = BusStatus::kOk;
  std::uint64_t value = 0;
  f.bus.read(0x8, [&](BusStatus s, std::uint64_t v) {
    status = s;
    value = v;
  });
  f.kernel.run();
  EXPECT_EQ(status, BusStatus::kError);
  EXPECT_EQ(value, MemoryMappedBus::kBusError);
  EXPECT_EQ(f.device_reads, 0u);  // Faulted transaction has no data phase.
  EXPECT_EQ(f.bus.stats().injected_errors, 1u);
  EXPECT_EQ(f.bus.stats().errors, 1u);
}

TEST(BusFaults, DroppedResponseNeverCompletes) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusWrite, FaultKind::kDropResponse);
  bool completed = false;
  f.bus.write(0x0, 77, [&](BusStatus) { completed = true; });
  f.kernel.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(f.mem[0], 0u);  // Hung device: no data phase either.
  EXPECT_EQ(f.bus.stats().injected_drops, 1u);
  EXPECT_EQ(f.bus.stats().dropped_completions, 1u);
}

TEST(BusFaults, ExtraLatencyDelaysButKeepsFifoOrder) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusRead, FaultKind::kExtraLatency);
  std::vector<int> completion_order;
  std::vector<std::uint64_t> completion_ps;
  for (int i = 0; i < 3; ++i) {
    f.bus.read(0x0, [&, i](BusStatus s, std::uint64_t) {
      EXPECT_EQ(s, BusStatus::kOk);
      completion_order.push_back(i);
      completion_ps.push_back(f.kernel.now().picoseconds());
    });
  }
  f.kernel.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(completion_ps.size(), 3u);
  EXPECT_GT(completion_ps[0], SimTime::ns(8).picoseconds());  // Delayed past base latency.
  EXPECT_LE(completion_ps[0], completion_ps[1]);
  EXPECT_LE(completion_ps[1], completion_ps[2]);
  EXPECT_EQ(f.bus.stats().injected_delays, 3u);
}

TEST(BusFaults, BitFlipCorruptsExactlyOneBitDeterministically) {
  auto flipped_read = [] {
    FaultyBusFixture f;
    f.always(FaultSite::kBusRead, FaultKind::kBitFlip);
    std::uint64_t value = 0;
    f.bus.read(0x0, [&](BusStatus s, std::uint64_t v) {
      EXPECT_EQ(s, BusStatus::kOk);  // Silent corruption, not an error.
      value = v;
    });
    f.kernel.run();
    return value;
  };
  const std::uint64_t first = flipped_read();
  EXPECT_EQ(std::popcount(first), 1);  // Device value 0, exactly one bit flipped.
  EXPECT_EQ(first, flipped_read());    // Same seed => same corruption.
}

TEST(BusFaults, UninstalledPlanIsUntouched) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusRead, FaultKind::kError);
  f.bus.install_fault_plan(nullptr);
  BusStatus status = BusStatus::kError;
  f.bus.read(0x0, [&](BusStatus s, std::uint64_t) { status = s; });
  f.kernel.run();
  EXPECT_EQ(status, BusStatus::kOk);
  EXPECT_EQ(f.plan.counters(FaultSite::kBusRead).consults, 0u);
}

// --- BusMasterPort: timeout, retry, backoff ---------------------------------

TEST(BusMasterPort, TimeoutRetryRecovers) {
  FaultyBusFixture f;
  FaultPlan::SiteConfig one_drop;
  one_drop.drop_rate = 1.0;
  one_drop.max_faults = 1;
  f.plan.configure(FaultSite::kBusWrite, one_drop);

  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 3;
  BusMasterPort port(f.kernel, f.bus, "cpu0", policy);

  BusStatus status = BusStatus::kError;
  port.write(0x0, 123, [&](BusStatus s) { status = s; });
  f.kernel.run();

  EXPECT_EQ(status, BusStatus::kOk);
  EXPECT_EQ(f.mem[0], 123u);
  EXPECT_EQ(port.stats().timeouts, 1u);
  EXPECT_EQ(port.stats().retries, 1u);
  EXPECT_EQ(port.stats().recovered, 1u);
  EXPECT_EQ(port.stats().exhausted, 0u);
  EXPECT_EQ(f.kernel.outstanding_expectations(), 0u);
  EXPECT_FALSE(f.kernel.quiescence_report().deadlocked());
}

TEST(BusMasterPort, RetriesExhaustAndReportTimeout) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusWrite, FaultKind::kDropResponse);

  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 3;
  BusMasterPort port(f.kernel, f.bus, "cpu0", policy);

  std::vector<BusMasterPort::Notice::Kind> notices;
  port.set_listener(
      [&](const BusMasterPort::Notice& notice) { notices.push_back(notice.kind); });

  BusStatus status = BusStatus::kOk;
  bool completed = false;
  port.write(0x0, 9, [&](BusStatus s) {
    status = s;
    completed = true;
  });
  f.kernel.run();

  EXPECT_TRUE(completed);  // Supervision guarantees an answer even for hangs.
  EXPECT_EQ(status, BusStatus::kTimeout);
  EXPECT_EQ(port.stats().timeouts, 3u);
  EXPECT_EQ(port.stats().retries, 2u);
  EXPECT_EQ(port.stats().exhausted, 1u);
  EXPECT_EQ(port.stats().recovered, 0u);
  using Kind = BusMasterPort::Notice::Kind;
  EXPECT_EQ(notices,
            (std::vector<Kind>{Kind::kTimeout, Kind::kRetry, Kind::kTimeout, Kind::kRetry,
                               Kind::kTimeout, Kind::kExhausted}));
  EXPECT_EQ(f.kernel.outstanding_expectations(), 0u);
}

TEST(BusMasterPort, BackoffStretchesDeadlines) {
  // 3 attempts at timeout 20ns with multiplier 2: give-up time is bounded
  // below by 20 + 40 + 80 = 140ns of supervision.
  FaultyBusFixture f;
  f.always(FaultSite::kBusWrite, FaultKind::kDropResponse);
  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 3;
  policy.backoff_multiplier = 2;
  BusMasterPort port(f.kernel, f.bus, "cpu0", policy);

  std::uint64_t finished_ps = 0;
  port.write(0x0, 9, [&](BusStatus) { finished_ps = f.kernel.now().picoseconds(); });
  f.kernel.run();
  EXPECT_GE(finished_ps, SimTime::ns(140).picoseconds());
}

TEST(BusMasterPort, RetryOnErrorPolicyRecoversFromInjectedError) {
  FaultyBusFixture f;
  FaultPlan::SiteConfig one_error;
  one_error.error_rate = 1.0;
  one_error.max_faults = 1;
  f.plan.configure(FaultSite::kBusRead, one_error);
  f.mem[0] = 55;

  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 2;
  policy.retry_on_error = true;
  BusMasterPort port(f.kernel, f.bus, "cpu0", policy);

  BusStatus status = BusStatus::kTimeout;
  std::uint64_t value = 0;
  port.read(0x0, [&](BusStatus s, std::uint64_t v) {
    status = s;
    value = v;
  });
  f.kernel.run();
  EXPECT_EQ(status, BusStatus::kOk);
  EXPECT_EQ(value, 55u);
  EXPECT_EQ(port.stats().retries, 1u);
  EXPECT_EQ(port.stats().recovered, 1u);
}

TEST(BusMasterPort, HungTransactionShowsInQuiescenceReport) {
  // No timeout supervision: the dropped response leaves the in-flight
  // expectation unresolved, and the drained run reports the deadlock.
  FaultyBusFixture f;
  f.always(FaultSite::kBusRead, FaultKind::kDropResponse);
  BusMasterPort port(f.kernel, f.bus, "cpu0", RetryPolicy{});

  bool completed = false;
  port.read(0x0, [&](BusStatus, std::uint64_t) { completed = true; });
  f.kernel.run();

  EXPECT_FALSE(completed);
  const QuiescenceReport& report = f.kernel.quiescence_report();
  EXPECT_TRUE(report.drained);
  EXPECT_TRUE(report.deadlocked());
  EXPECT_EQ(report.outstanding_total, 1u);
  ASSERT_EQ(report.outstanding.size(), 1u);
  EXPECT_EQ(report.outstanding[0].label, "axi.cpu0 in-flight");
  EXPECT_NE(report.str().find("axi.cpu0 in-flight"), std::string::npos);
}

TEST(BusMasterPort, CleanRunReportsNoDeadlock) {
  FaultyBusFixture f;
  BusMasterPort port(f.kernel, f.bus, "cpu0", RetryPolicy{});
  bool completed = false;
  port.write(0x0, 1, [&](BusStatus) { completed = true; });
  f.kernel.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(f.kernel.quiescence_report().drained);
  EXPECT_FALSE(f.kernel.quiescence_report().deadlocked());
  EXPECT_TRUE(f.kernel.quiescence_report().outstanding.empty());
}

// --- Watchdog ---------------------------------------------------------------

TEST(Watchdog, TripsWhenNotKicked) {
  Kernel kernel;
  bool fired = false;
  Watchdog dog(kernel, "main", SimTime::ns(10), [&] { fired = true; });
  dog.arm();
  kernel.run();
  EXPECT_TRUE(dog.tripped());
  EXPECT_FALSE(dog.armed());
  EXPECT_EQ(dog.trips(), 1u);
  EXPECT_TRUE(fired);
  EXPECT_EQ(kernel.now().picoseconds(), SimTime::ns(10).picoseconds());
  // The trip resolves the armed-expectation: no phantom deadlock.
  EXPECT_EQ(kernel.outstanding_expectations(), 0u);
  EXPECT_FALSE(kernel.quiescence_report().deadlocked());
}

TEST(Watchdog, KickPushesTripPointOut) {
  Kernel kernel;
  Watchdog dog(kernel, "main", SimTime::ns(10));
  dog.arm();
  kernel.schedule(SimTime::ns(8), kernel.register_process([&] { dog.kick(); }));
  kernel.run(SimTime::ns(15));
  EXPECT_FALSE(dog.tripped());  // Kick at 8ns moved the trip point to 18ns.
  kernel.run();
  EXPECT_TRUE(dog.tripped());
  EXPECT_EQ(kernel.now().picoseconds(), SimTime::ns(18).picoseconds());
  EXPECT_EQ(dog.kicks(), 1u);
  EXPECT_EQ(dog.trips(), 1u);
}

TEST(Watchdog, RepeatedKicksKeepItAlive) {
  Kernel kernel;
  Watchdog dog(kernel, "main", SimTime::ns(10));
  dog.arm();
  const ProcessId kicker = kernel.register_process([&] { dog.kick(); });
  for (int i = 1; i <= 5; ++i) {
    kernel.schedule(SimTime::ns(static_cast<std::uint64_t>(7 * i)), kicker);
  }
  kernel.run(SimTime::ns(40));
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(dog.kicks(), 5u);
  dog.disarm();
  kernel.run();
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(kernel.outstanding_expectations(), 0u);
}

TEST(Watchdog, DisarmPreventsTripAndResolvesExpectation) {
  Kernel kernel;
  Watchdog dog(kernel, "main", SimTime::ns(10));
  dog.arm();
  EXPECT_EQ(kernel.outstanding_expectations(), 1u);
  kernel.schedule(SimTime::ns(5), kernel.register_process([&] { dog.disarm(); }));
  kernel.run();
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(dog.trips(), 0u);
  EXPECT_EQ(kernel.outstanding_expectations(), 0u);
}

TEST(Watchdog, RearmAfterTripSupervisesAgain) {
  Kernel kernel;
  Watchdog dog(kernel, "main", SimTime::ns(10));
  dog.arm();
  kernel.run();
  EXPECT_TRUE(dog.tripped());
  dog.arm();
  EXPECT_FALSE(dog.tripped());
  kernel.run();
  EXPECT_TRUE(dog.tripped());
  EXPECT_EQ(dog.trips(), 2u);
}

// --- SignalGlitcher ---------------------------------------------------------

TEST(SignalGlitcher, InjectsPulsesAndRestores) {
  Kernel kernel;
  FaultPlan plan(11);
  FaultPlan::SiteConfig always_glitch;
  always_glitch.glitch_rate = 1.0;
  plan.configure(FaultSite::kSignal, always_glitch);

  Signal<bool> irq(kernel, "irq", false);
  int changes = 0;
  ProcessId watcher = kernel.register_process([&] { ++changes; });
  irq.value_changed().subscribe(watcher);

  SignalGlitcher glitcher(kernel, plan, irq, SimTime::ns(10), SimTime::ns(2));
  glitcher.start();
  kernel.run(SimTime::ns(35));
  glitcher.stop();
  kernel.run(SimTime::ns(60));

  EXPECT_EQ(glitcher.glitches(), 3u);  // Ticks at 10/20/30 ns, all glitch.
  EXPECT_EQ(changes, 6);               // Each pulse = rise + restore.
  EXPECT_FALSE(irq.read());            // Restored after every pulse.
}

// --- Statechart error channel ----------------------------------------------

void build_health_machine(statechart::StateMachine& machine, statechart::State** operational,
                          statechart::State** degraded, statechart::State** failed) {
  statechart::Region& top = machine.top();
  *operational = &top.add_state("Operational");
  *degraded = &top.add_state("Degraded");
  *failed = &top.add_state("Failed");
  top.add_transition(top.add_initial(), **operational);
  top.add_transition(**operational, **degraded).set_trigger("bus_timeout");
  top.add_transition(**degraded, **operational).set_trigger("bus_recovered");
  top.add_transition(**degraded, **failed).set_trigger("bus_failed");
}

TEST(ErrorChannel, ErrorEventsJumpTheQueueAndAreCounted) {
  statechart::State* operational = nullptr;
  statechart::State* degraded = nullptr;
  statechart::State* failed = nullptr;
  statechart::StateMachine machine("DriverHealth");
  build_health_machine(machine, &operational, &degraded, &failed);
  statechart::StateMachineInstance instance(machine);
  instance.start();

  EXPECT_TRUE(instance.dispatch_error({"bus_timeout"}));
  EXPECT_TRUE(instance.is_active(*degraded));
  EXPECT_EQ(instance.errors_raised(), 1u);
  EXPECT_EQ(instance.errors_unhandled(), 0u);

  // An error no state handles is counted, not silently discarded.
  EXPECT_FALSE(instance.dispatch_error({"brownout"}));
  EXPECT_EQ(instance.errors_raised(), 2u);
  EXPECT_EQ(instance.errors_unhandled(), 1u);

  EXPECT_TRUE(instance.dispatch({"bus_recovered"}));
  EXPECT_TRUE(instance.is_active(*operational));
}

TEST(ErrorChannel, BusTimeoutDrivesRecoveryStatesEndToEnd) {
  // The acceptance scenario: a dropped bus response times out, the retry
  // succeeds, and the driver's health statechart walks
  // Operational -> Degraded -> Operational off the port notices.
  FaultyBusFixture f;
  FaultPlan::SiteConfig one_drop;
  one_drop.drop_rate = 1.0;
  one_drop.max_faults = 1;
  f.plan.configure(FaultSite::kBusWrite, one_drop);

  statechart::State* operational = nullptr;
  statechart::State* degraded = nullptr;
  statechart::State* failed = nullptr;
  statechart::StateMachine machine("DriverHealth");
  build_health_machine(machine, &operational, &degraded, &failed);
  statechart::StateMachineInstance health(machine);
  health.start();

  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 3;
  codegen::BusMasterContext driver(f.kernel, f.bus, policy);
  driver.set_error_sink(&health);

  driver.run("bus_write(0, 434);");

  EXPECT_EQ(driver.last_status(), BusStatus::kOk);
  EXPECT_EQ(f.mem[0], 434u);
  EXPECT_TRUE(health.is_active(*operational));  // Recovered, not stuck in Degraded.
  EXPECT_FALSE(health.is_active(*failed));
  EXPECT_EQ(health.errors_raised(), 1u);   // The bus_timeout error event.
  EXPECT_EQ(health.errors_unhandled(), 0u);
  EXPECT_EQ(driver.port().stats().recovered, 1u);
}

TEST(ErrorChannel, ExhaustedRetriesReachFailedState) {
  FaultyBusFixture f;
  f.always(FaultSite::kBusWrite, FaultKind::kDropResponse);

  statechart::State* operational = nullptr;
  statechart::State* degraded = nullptr;
  statechart::State* failed = nullptr;
  statechart::StateMachine machine("DriverHealth");
  build_health_machine(machine, &operational, &degraded, &failed);
  statechart::StateMachineInstance health(machine);
  health.start();

  RetryPolicy policy;
  policy.timeout = SimTime::ns(20);
  policy.max_attempts = 2;
  codegen::BusMasterContext driver(f.kernel, f.bus, policy);
  driver.set_error_sink(&health);

  driver.run("bus_write(0, 1);");

  EXPECT_EQ(driver.last_status(), BusStatus::kTimeout);
  EXPECT_TRUE(health.is_active(*failed));
  EXPECT_EQ(driver.port().stats().exhausted, 1u);
}

}  // namespace
}  // namespace umlsoc::sim
