// Binary checkpointing tests: binary<->XML round-trip equality on a rig
// that exercises every section kind, a mutation-fuzz corpus for the binary
// decoder (truncation, bit-flips, duplicated sections, version skew),
// incremental delta chains, and the CheckpointStore recovery ladder
// (corrupt/version-skewed/missing files quarantined, write faults injected
// through FaultSite::kCheckpoint).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "replay/binary.hpp"
#include "replay/snapshot.hpp"
#include "replay/store.hpp"
#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/model.hpp"

namespace umlsoc::replay {
namespace {

using sim::SimTime;

std::unique_ptr<statechart::StateMachine> make_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("Rig");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, busy).set_trigger("go");
  top.add_transition(busy, idle).set_trigger("done");
  return machine;
}

/// A deterministic mini-SoC covering every snapshot section kind: kernel,
/// fault plan, recorder, statechart, bus, watchdog, supervisor (with a
/// restart pending mid-run), circuit breaker (driving bus writes), health
/// registry and a value bank. Constructed identically every time.
struct FullRig {
  static constexpr int kTicks = 40;
  static constexpr std::uint64_t kTickPs = 10000;  // 10ns.

  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  sim::FaultPlan plan;
  statechart::StateMachineInstance instance;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::BusMasterPort port;
  sim::CircuitBreaker breaker;
  sim::Supervisor supervisor;
  sim::HealthRegistry health;
  std::array<std::uint64_t, 8> memory{};
  sim::ProcessId ticker = sim::kInvalidProcess;
  sim::Supervisor::ChildId dma_child = 0;
  sim::HealthRegistry::UnitId dma_unit = sim::HealthRegistry::kInvalidUnit;
  int ticks = 0;
  int child_restarts = 0;
  std::uint64_t read_sum = 0;

  explicit FullRig(const statechart::StateMachine& machine)
      : bus(kernel, "mem", SimTime::ns(4)),
        plan(/*seed=*/7),
        instance(machine),
        watchdog(kernel, "rig", SimTime::us(1)),
        recorder(/*ring_capacity=*/0),
        port(kernel, bus, "port"),
        breaker(kernel, port, "dma", breaker_config()),
        supervisor(kernel, "soc", sim::RestartStrategy::kOneForOne, restart_policy()) {
    for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = 0x100 + i;
    bus.map_device(
        "ram", 0x0, memory.size() * 8,
        [this](std::uint64_t address) { return memory[address / 8]; },
        [this](std::uint64_t address, std::uint64_t value) { memory[address / 8] = value; });
    sim::FaultPlan::SiteConfig config;
    config.error_rate = 0.3;    // Timing-neutral faults only: completions
    config.bit_flip_rate = 0.2; // always land exactly one latency later.
    plan.configure(sim::FaultSite::kBusRead, config);
    bus.install_fault_plan(&plan);
    dma_unit = health.register_unit("dma");
    breaker.bind_health(&health, dma_unit);
    dma_child = supervisor.add_child("dma", [this] {
      ++child_restarts;
      return true;
    });
    instance.set_trace_enabled(false);
    instance.start();
    ticker = kernel.register_process([this] { tick(); }, "rig.ticker");
    kernel.set_recorder(&recorder);
    watchdog.arm();
    kernel.schedule(SimTime(kTickPs), ticker);
  }

  static sim::CircuitBreaker::Config breaker_config() {
    sim::CircuitBreaker::Config config;
    config.window = 4;
    config.min_samples = 2;
    config.failure_threshold = 0.5;
    config.open_duration = SimTime::ns(100);
    config.reopen_multiplier = 2;
    config.max_open_duration = SimTime::ns(300);
    return config;
  }

  static sim::RestartPolicy restart_policy() {
    sim::RestartPolicy policy;
    policy.backoff = SimTime::ns(100);
    policy.backoff_multiplier = 2;
    policy.max_backoff = SimTime::ns(350);
    policy.max_restarts = 3;
    policy.window = SimTime::us(50);
    return policy;
  }

  void tick() {
    ++ticks;
    watchdog.kick();
    bus.read((static_cast<std::uint64_t>(ticks) % memory.size()) * 8,
             sim::MemoryMappedBus::ReadCompletion(
                 [this](sim::BusStatus, std::uint64_t value) { read_sum += value; }));
    if (ticks % 2 == 1) {
      instance.dispatch(statechart::Event{"go", ticks});
    } else {
      instance.dispatch(statechart::Event{"done", ticks});
    }
    if (ticks == 1) {
      // A breaker-mediated write and a child failure whose restart stays
      // pending (due at 110ns) across every mid-run checkpoint instant.
      breaker.write(5 * 8, 0xAB, nullptr);
      supervisor.report_failure(dma_child, "tick-1 crash");
    }
    if (ticks == 3) breaker.write(6 * 8, 0xCD, nullptr);
    if (ticks == 2) instance.post(statechart::Event{"pending", 99, "tagged"});
    if (ticks < kTicks) kernel.schedule(SimTime(kTickPs), ticker);
  }

  void run(std::uint64_t end_ps = 0) {
    if (end_ps == 0) {
      kernel.run();
      watchdog.disarm();
    } else {
      kernel.run(SimTime(end_ps));
    }
  }

  [[nodiscard]] SnapshotTargets targets() {
    SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"rig", &instance});
    out.buses.push_back({"mem", &bus});
    out.watchdogs.push_back({"rig", &watchdog});
    out.supervisors.push_back({"soc", &supervisor});
    out.breakers.push_back({"dma", &breaker});
    out.health.push_back({"health", &health});
    out.banks.push_back(
        {"memory",
         [this] {
           std::vector<std::pair<std::string, std::uint64_t>> values;
           for (std::size_t i = 0; i < memory.size(); ++i) {
             values.emplace_back("w" + std::to_string(i), memory[i]);
           }
           values.emplace_back("ticks", static_cast<std::uint64_t>(ticks));
           values.emplace_back("restarts", static_cast<std::uint64_t>(child_restarts));
           values.emplace_back("read-sum", read_sum);
           return values;
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& sink) {
           for (const auto& [key, value] : values) {
             if (key == "ticks") {
               ticks = static_cast<int>(value);
             } else if (key == "restarts") {
               child_restarts = static_cast<int>(value);
             } else if (key == "read-sum") {
               read_sum = value;
             } else if (key.size() > 1 && key[0] == 'w') {
               memory[static_cast<std::size_t>(key[1] - '0')] = value;
             } else {
               sink.error("memory", "unknown key '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

constexpr std::size_t kSectionKinds = 10;  // Every kind FullRig serializes.

// Quiescent checkpoint instants: ticks land at multiples of 10ns, bus and
// breaker completions 4ns later, so N*10000 + 5000 is always between a
// completed transaction and the next tick.
constexpr std::uint64_t kMidRunPs = 25000;

void expect_same_outcome(FullRig& restored, FullRig& reference,
                         const std::vector<sim::RecordedEvent>& reference_log) {
  EXPECT_EQ(sim::first_divergence(reference_log, restored.recorder.log(), &restored.kernel),
            std::nullopt);
  EXPECT_EQ(restored.kernel.now(), reference.kernel.now());
  EXPECT_EQ(restored.kernel.events_processed(), reference.kernel.events_processed());
  EXPECT_EQ(restored.ticks, reference.ticks);
  EXPECT_EQ(restored.read_sum, reference.read_sum);
  EXPECT_EQ(restored.memory, reference.memory);
  EXPECT_EQ(restored.bus.stats().reads, reference.bus.stats().reads);
  EXPECT_EQ(restored.bus.stats().errors, reference.bus.stats().errors);
  EXPECT_EQ(restored.plan.str(), reference.plan.str());
  EXPECT_EQ(restored.watchdog.trips(), reference.watchdog.trips());
  EXPECT_EQ(restored.watchdog.kicks(), reference.watchdog.kicks());
  EXPECT_EQ(restored.instance.active_leaf_names(), reference.instance.active_leaf_names());
  EXPECT_EQ(restored.instance.events_processed(), reference.instance.events_processed());
  EXPECT_EQ(restored.breaker.stats().issued, reference.breaker.stats().issued);
  EXPECT_EQ(restored.breaker.stats().ok, reference.breaker.stats().ok);
  EXPECT_EQ(restored.child_restarts, reference.child_restarts);
  EXPECT_EQ(restored.supervisor.pending_restarts(), reference.supervisor.pending_restarts());
  EXPECT_EQ(restored.health.aggregate(), reference.health.aggregate());
}

// FNV-1a helpers matching the on-disk format, for surgically repairing the
// header checksum after a deliberate mutation.
constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::size_t kHeaderHashedBytes = 36;  // Everything before the checksum.
constexpr std::size_t kHeaderVersionOffset = 8;

std::uint64_t fnv1a(std::string_view data, std::uint64_t hash = kFnvOffsetBasis) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

void put_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
}

void put_u64(std::string& bytes, std::size_t offset, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
}

void patch_version(std::string& bytes, std::uint32_t version) {
  put_u32(bytes, kHeaderVersionOffset, version);
  put_u64(bytes, kHeaderHashedBytes,
          fnv1a(std::string_view(bytes).substr(0, kHeaderHashedBytes)));
}

class BinarySnapshotTest : public ::testing::Test {
 protected:
  std::unique_ptr<statechart::StateMachine> machine_ = make_machine();
};

TEST_F(BinarySnapshotTest, RoundTripIsBitIdentical) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();
  ASSERT_GT(reference_log.size(), 0u);

  FullRig source(*machine_);
  source.run(kMidRunPs);
  ASSERT_EQ(source.bus.pending_transactions(), 0u);
  ASSERT_EQ(source.supervisor.pending_restarts(), 1u) << "restart must be in flight";
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();
  EXPECT_EQ(snapshot.substr(0, kBinaryMagic.size()), kBinaryMagic);

  FullRig restored(*machine_);
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(restore_snapshot_binary(restored.targets(), snapshot, restore_sink))
      << restore_sink.str();
  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(BinarySnapshotTest, ConvertersAreLossless) {
  FullRig source(*machine_);
  source.run(kMidRunPs);

  std::string xml;
  std::string binary;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), xml, sink)) << sink.str();
  ASSERT_TRUE(save_snapshot_binary(source.targets(), binary, sink)) << sink.str();

  // xml -> binary meets the directly captured binary byte-for-byte ...
  std::string converted_binary;
  ASSERT_TRUE(xml_to_binary(xml, converted_binary, sink)) << sink.str();
  EXPECT_EQ(converted_binary, binary);

  // ... and binary -> xml reproduces the canonical document, checksums and
  // all, so the converter pair is lossless in both directions.
  std::string converted_xml;
  ASSERT_TRUE(binary_to_xml(binary, converted_xml, sink)) << sink.str();
  EXPECT_EQ(converted_xml, xml);
}

TEST_F(BinarySnapshotTest, EncodeAndRestoreUpdateSnapshotStats) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  ASSERT_EQ(source.kernel.stats().snapshot.encodes, 0u);

  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();
  const sim::Kernel::SnapshotStats& encoded = source.kernel.stats().snapshot;
  EXPECT_EQ(encoded.encodes, 1u);
  EXPECT_EQ(encoded.bytes_written, snapshot.size());
  EXPECT_EQ(encoded.sections_total, kSectionKinds);
  EXPECT_EQ(encoded.sections_dirty, kSectionKinds) << "a full snapshot is all-dirty";

  FullRig restored(*machine_);
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(restore_snapshot_binary(restored.targets(), snapshot, restore_sink))
      << restore_sink.str();
  EXPECT_EQ(restored.kernel.stats().snapshot.restores, 1u);
}

TEST_F(BinarySnapshotTest, TruncatedFilesAreRejectedAtEveryLength) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();

  std::size_t accepted = 0;
  std::size_t silent = 0;
  for (std::size_t length = 0; length < snapshot.size(); ++length) {
    SnapshotImage image;
    support::DiagnosticSink attempt;
    if (image_from_binary(std::string_view(snapshot).substr(0, length), image, attempt)) {
      ++accepted;
    } else if (!attempt.has_errors()) {
      ++silent;
    }
  }
  EXPECT_EQ(accepted, 0u) << "no strict prefix may decode";
  EXPECT_EQ(silent, 0u) << "every rejection must carry a diagnostic";
}

TEST_F(BinarySnapshotTest, EveryBitFlipIsRejected) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();

  // Frame checksums cover metadata and payload, the header checksum covers
  // the header, and magic/trailer are compared literally — so flipping any
  // single bit anywhere must fail the decode. Walk every byte, rotating the
  // flipped bit position.
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    std::string mutated = snapshot;
    mutated[i] ^= static_cast<char>(1u << (i % 8));
    SnapshotImage image;
    support::DiagnosticSink attempt;
    if (image_from_binary(mutated, image, attempt)) ++accepted;
  }
  EXPECT_EQ(accepted, 0u);
}

TEST_F(BinarySnapshotTest, CorruptSectionIsNamedInDiagnostics) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();

  // The byte just before the trailer sits in the bank payload (the last
  // section FullRig emits): the failure must name that section and offset.
  std::string mutated = snapshot;
  mutated[mutated.size() - kBinaryTrailer.size() - 1] ^= 0x01;
  SnapshotImage image;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary(mutated, image, attempt));
  EXPECT_NE(attempt.str().find("section checksum mismatch in <bank"), std::string::npos)
      << attempt.str();
  EXPECT_NE(attempt.str().find("at offset "), std::string::npos) << attempt.str();
}

TEST_F(BinarySnapshotTest, DuplicateSectionsAreRejected) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  SnapshotImage image;
  support::DiagnosticSink sink;
  ASSERT_TRUE(capture_image(source.targets(), image, sink)) << sink.str();
  ASSERT_EQ(image.machines.size(), 1u);
  image.machines.push_back(image.machines.front());

  const std::string binary = image_to_binary(image);
  SnapshotImage decoded;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary(binary, decoded, attempt));
  EXPECT_NE(attempt.str().find("duplicate"), std::string::npos) << attempt.str();
}

TEST_F(BinarySnapshotTest, GarbageInputsAreRejected) {
  const std::string inputs[] = {
      "",
      std::string(kBinaryMagic),
      "definitely not a snapshot",
      "<umlsoc-snapshot version=\"3\"/>",
      std::string(200, '\xff'),
  };
  for (const std::string& input : inputs) {
    SnapshotImage image;
    support::DiagnosticSink attempt;
    EXPECT_FALSE(image_from_binary(input, image, attempt));
    EXPECT_TRUE(attempt.has_errors());
  }
}

TEST_F(BinarySnapshotTest, VersionSkewIsRejectedWithStructuredMessage) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot_binary(source.targets(), snapshot, sink)) << sink.str();

  // Bump the version and repair the header checksum so the version check
  // itself — not the checksum — must catch the skew.
  std::string mutated = snapshot;
  patch_version(mutated, static_cast<std::uint32_t>(kSnapshotVersion) + 1);
  SnapshotImage image;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary(mutated, image, attempt));
  EXPECT_NE(attempt.str().find("unsupported snapshot version " +
                               std::to_string(kSnapshotVersion + 1)),
            std::string::npos)
      << attempt.str();

  BinarySnapshotInfo info;
  support::DiagnosticSink info_sink;
  EXPECT_FALSE(read_binary_info(mutated, info, info_sink));
}

TEST_F(BinarySnapshotTest, CleanDeltaIsEmptyAndTiny) {
  FullRig source(*machine_);
  // Run deep enough that the full snapshot carries a real event log; the
  // 5x claim is about amortized payload, not framing overhead.
  source.run(205000);

  IncrementalEncoder encoder;
  IncrementalEncoder::Result full;
  IncrementalEncoder::Result delta;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, full, sink)) << sink.str();
  EXPECT_FALSE(full.delta) << "the first encode has no base to chain to";
  EXPECT_EQ(full.sections_dirty, kSectionKinds);

  // Nothing ran in between: every section dedups to a reference frame.
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, delta, sink)) << sink.str();
  EXPECT_TRUE(delta.delta);
  EXPECT_EQ(delta.base_seq, full.seq);
  EXPECT_EQ(delta.sections_dirty, 0u);
  EXPECT_LT(delta.bytes.size() * 5, full.bytes.size())
      << "an all-clean delta must be at least 5x smaller than its base";

  // The resolved chain equals a direct capture, compared via canonical XML.
  SnapshotImage chained;
  ASSERT_TRUE(image_from_binary_chain({full.bytes, delta.bytes}, chained, sink)) << sink.str();
  std::string direct_xml;
  ASSERT_TRUE(save_snapshot(source.targets(), direct_xml, sink)) << sink.str();
  EXPECT_EQ(image_to_xml(chained), direct_xml);
}

TEST_F(BinarySnapshotTest, DeltaChainRestoresBitIdentically) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  FullRig source(*machine_);
  source.run(kMidRunPs);
  IncrementalEncoder encoder;
  IncrementalEncoder::Result full;
  IncrementalEncoder::Result delta;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/true, full, sink)) << sink.str();

  source.run(45000);
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, delta, sink)) << sink.str();
  EXPECT_TRUE(delta.delta);
  EXPECT_GT(delta.sections_dirty, 0u);
  EXPECT_LT(delta.sections_dirty, delta.sections_total)
      << "idle sections (supervisor, health) must dedup to references";
  EXPECT_LT(delta.bytes.size(), full.bytes.size());

  // Resolving the chain and applying it continues bit-identically — this
  // drives the recorder-append splice and reference verification paths.
  SnapshotImage image;
  ASSERT_TRUE(image_from_binary_chain({full.bytes, delta.bytes}, image, sink)) << sink.str();
  FullRig restored(*machine_);
  support::DiagnosticSink apply_sink;
  ASSERT_TRUE(apply_image(restored.targets(), image, apply_sink)) << apply_sink.str();
  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(BinarySnapshotTest, ChainMissingItsBaseIsRefused) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  IncrementalEncoder encoder;
  IncrementalEncoder::Result full;
  IncrementalEncoder::Result delta;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/true, full, sink)) << sink.str();
  source.run(45000);
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, delta, sink)) << sink.str();
  ASSERT_TRUE(delta.delta);

  SnapshotImage image;
  support::DiagnosticSink empty_attempt;
  EXPECT_FALSE(image_from_binary_chain({}, image, empty_attempt));
  EXPECT_NE(empty_attempt.str().find("empty checkpoint chain"), std::string::npos)
      << empty_attempt.str();

  // A delta at the front of the chain has no base to resolve against; the
  // refusal names the missing base so operators know which rung to fetch.
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary_chain({delta.bytes}, image, attempt));
  EXPECT_NE(attempt.str().find("is a delta (base " + std::to_string(full.seq) +
                               "); it cannot be restored without its chain"),
            std::string::npos)
      << attempt.str();
}

TEST_F(BinarySnapshotTest, OutOfOrderDeltaChainIsRefused) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  IncrementalEncoder encoder;
  IncrementalEncoder::Result full;
  IncrementalEncoder::Result delta1;
  IncrementalEncoder::Result delta2;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/true, full, sink)) << sink.str();
  source.run(45000);
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, delta1, sink)) << sink.str();
  source.run(65000);
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/false, delta2, sink)) << sink.str();
  ASSERT_EQ(delta2.base_seq, delta1.seq);

  // Swapping the deltas breaks the base linkage at the first out-of-order
  // element; the refusal names both the expected and the presented base.
  SnapshotImage image;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary_chain({full.bytes, delta2.bytes, delta1.bytes}, image, attempt));
  EXPECT_NE(attempt.str().find("chain break: delta " + std::to_string(delta2.seq) +
                               " expects base " + std::to_string(delta2.base_seq) +
                               ", chain holds " + std::to_string(full.seq)),
            std::string::npos)
      << attempt.str();
}

TEST_F(BinarySnapshotTest, FullSnapshotInDeltaPositionIsRefused) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  IncrementalEncoder encoder;
  IncrementalEncoder::Result first;
  IncrementalEncoder::Result second;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/true, first, sink)) << sink.str();
  source.run(45000);
  ASSERT_TRUE(encoder.encode(source.targets(), /*force_full=*/true, second, sink)) << sink.str();
  ASSERT_FALSE(second.delta);

  SnapshotImage image;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary_chain({first.bytes, second.bytes}, image, attempt));
  EXPECT_NE(attempt.str().find("chain element #1 is a full snapshot, expected a delta"),
            std::string::npos)
      << attempt.str();
}

TEST_F(BinarySnapshotTest, DeltaAgainstTheWrongBaseIsRefusedByReferenceChecksum) {
  // Two rigs encoded by two fresh encoders produce the same sequence
  // numbering, so a delta from rig A chains structurally onto rig B's full
  // snapshot — the per-section reference checksums are the only defense
  // against assembling a frankenstate.
  FullRig source(*machine_);
  source.run(kMidRunPs);
  IncrementalEncoder encoder_a;
  IncrementalEncoder::Result full_a;
  IncrementalEncoder::Result delta_a;
  support::DiagnosticSink sink;
  ASSERT_TRUE(encoder_a.encode(source.targets(), /*force_full=*/true, full_a, sink)) << sink.str();
  // No work between encodes: every section dedups to a reference frame, so
  // every section of the foreign base gets checksum-verified.
  ASSERT_TRUE(encoder_a.encode(source.targets(), /*force_full=*/false, delta_a, sink))
      << sink.str();
  ASSERT_EQ(delta_a.sections_dirty, 0u);

  FullRig other(*machine_);
  other.run(kMidRunPs + 20000);
  IncrementalEncoder encoder_b;
  IncrementalEncoder::Result full_b;
  ASSERT_TRUE(encoder_b.encode(other.targets(), /*force_full=*/true, full_b, sink)) << sink.str();
  ASSERT_EQ(full_b.seq, delta_a.base_seq) << "chain must be structurally valid to reach "
                                             "the checksum check";

  SnapshotImage image;
  support::DiagnosticSink attempt;
  EXPECT_FALSE(image_from_binary_chain({full_b.bytes, delta_a.bytes}, image, attempt));
  EXPECT_NE(attempt.str().find("reference checksum mismatch in"), std::string::npos)
      << attempt.str();
  EXPECT_NE(attempt.str().find("delta expects"), std::string::npos) << attempt.str();
}

TEST_F(BinarySnapshotTest, XmlSectionChecksumDiagnosticsNameTheSection) {
  FullRig source(*machine_);
  source.run(kMidRunPs);
  std::string xml;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), xml, sink)) << sink.str();

  // Corrupt one digit of an attribute inside the watchdog section: the
  // failure must name the section, not just the document.
  const std::size_t section = xml.find("<watchdog");
  ASSERT_NE(section, std::string::npos);
  const std::size_t field = xml.find("kicks=\"", section);
  ASSERT_NE(field, std::string::npos);
  std::string mutated = xml;
  char& digit = mutated[field + 7];
  ASSERT_TRUE(digit >= '0' && digit <= '9');
  digit = digit == '9' ? '3' : static_cast<char>(digit + 1);

  FullRig victim(*machine_);
  support::DiagnosticSink attempt;
  EXPECT_FALSE(restore_snapshot(victim.targets(), mutated, attempt));
  EXPECT_NE(attempt.str().find("checksum mismatch"), std::string::npos) << attempt.str();
  EXPECT_NE(attempt.str().find("section checksum mismatch in <watchdog"), std::string::npos)
      << attempt.str();
}

// --- CheckpointStore ---------------------------------------------------------

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool write_file(const std::filesystem::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

std::vector<std::filesystem::path> snapshot_files(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".usnap") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // Zero-padded names: seq order.
  return files;
}

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // System temp, not the working directory: a relative scratch root would
    // litter whatever directory ctest runs from. ctest runs cases as
    // parallel processes, so the pid isolates concurrent cases and lets
    // TearDown remove the whole per-process root without racing a sibling
    // test's live store.
    std::string scratch = "umlsoc-checkpoint-store-";
    scratch += std::to_string(::getpid());
    root_ = std::filesystem::temp_directory_path() / scratch;
    dir_ = root_ /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  CheckpointStoreConfig config(unsigned full_interval = 3, unsigned keep_fulls = 2) {
    CheckpointStoreConfig out;
    out.directory = dir_;
    out.full_interval = full_interval;
    out.keep_fulls = keep_fulls;
    return out;
  }

  /// Advances the rig through quiescent savepoints, writing one checkpoint
  /// at each.
  void write_checkpoints(FullRig& rig, CheckpointStore& store, int count, int first = 0) {
    for (int k = first; k < first + count; ++k) {
      rig.run(kMidRunPs + 20000 * static_cast<std::uint64_t>(k));
      CheckpointStore::WriteResult result;
      support::DiagnosticSink sink;
      ASSERT_TRUE(store.checkpoint(rig.targets(), result, sink)) << sink.str();
    }
  }

  std::filesystem::path root_;
  std::filesystem::path dir_;
  std::unique_ptr<statechart::StateMachine> machine_ = make_machine();
};

TEST_F(CheckpointStoreTest, RestoreLatestGoodContinuesBitIdentically) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  FullRig source(*machine_);
  CheckpointStore store(config());
  write_checkpoints(source, store, 5);
  EXPECT_EQ(store.stats().checkpoints, 5u);
  EXPECT_EQ(store.stats().fulls, 2u) << "full cadence: seq 1 and 4";
  EXPECT_EQ(store.stats().deltas, 3u);
  EXPECT_EQ(snapshot_files(dir_).size(), 5u);

  // A fresh store instance recovers purely from the on-disk ladder.
  FullRig restored(*machine_);
  CheckpointStore recovery(config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_EQ(recovery.stats().restored_seq, 5u);
  EXPECT_EQ(recovery.stats().quarantines, 0u);
  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(CheckpointStoreTest, LadderStepsPastCorruptNewest) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  FullRig source(*machine_);
  CheckpointStore store(config());
  write_checkpoints(source, store, 5);

  // Tear the newest checkpoint in half, as a crash mid-write would.
  const std::vector<std::filesystem::path> files = snapshot_files(dir_);
  ASSERT_EQ(files.size(), 5u);
  std::string bytes;
  ASSERT_TRUE(read_file(files.back(), bytes));
  bytes.resize(bytes.size() / 2);
  ASSERT_TRUE(write_file(files.back(), bytes));

  FullRig restored(*machine_);
  CheckpointStore recovery(config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_EQ(recovery.stats().quarantines, 1u);
  EXPECT_EQ(recovery.stats().restored_seq, 4u) << "one rung down the ladder";
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_EQ(recovery.quarantined().front().path, files.back());

  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(CheckpointStoreTest, VersionSkewedCheckpointIsQuarantined) {
  FullRig source(*machine_);
  CheckpointStore store(config());
  write_checkpoints(source, store, 5);

  const std::vector<std::filesystem::path> files = snapshot_files(dir_);
  std::string bytes;
  ASSERT_TRUE(read_file(files.back(), bytes));
  patch_version(bytes, static_cast<std::uint32_t>(kSnapshotVersion) + 1);
  ASSERT_TRUE(write_file(files.back(), bytes));

  FullRig restored(*machine_);
  CheckpointStore recovery(config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_EQ(recovery.stats().restored_seq, 4u);
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_NE(recovery.quarantined().front().reason.find("unsupported snapshot version"),
            std::string::npos)
      << recovery.quarantined().front().reason;
}

TEST_F(CheckpointStoreTest, ExhaustedLadderReportsAndFailsHealth) {
  FullRig source(*machine_);
  CheckpointStore store(config());
  write_checkpoints(source, store, 5);

  // Flip a bit in the middle of every checkpoint: nothing is restorable.
  for (const std::filesystem::path& path : snapshot_files(dir_)) {
    std::string bytes;
    ASSERT_TRUE(read_file(path, bytes));
    bytes[bytes.size() / 2] ^= 0x10;
    ASSERT_TRUE(write_file(path, bytes));
  }

  FullRig restored(*machine_);
  sim::HealthRegistry health;
  CheckpointStore recovery(config());
  recovery.bind_health(health);
  support::DiagnosticSink sink;
  EXPECT_FALSE(recovery.restore_latest_good(restored.targets(), sink));
  EXPECT_NE(sink.str().find("no restorable checkpoint"), std::string::npos) << sink.str();
  EXPECT_EQ(recovery.quarantined().size(), 5u) << "every file steps aside with a reason";
  EXPECT_EQ(health.aggregate(), sim::UnitHealth::kFailed);
  EXPECT_TRUE(snapshot_files(dir_).empty()) << "quarantined files leave the scan set";
  // The victim rig was never touched: it can still run from scratch.
  restored.run();
  EXPECT_EQ(restored.ticks, FullRig::kTicks);
}

TEST_F(CheckpointStoreTest, RotationPrunesOldChainsAndKeepsBases) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  FullRig source(*machine_);
  CheckpointStore store(config(/*full_interval=*/2, /*keep_fulls=*/2));
  write_checkpoints(source, store, 12);

  // Fulls at seq 1,3,5,7,9,11; retaining two keeps {9,11}, so only seq
  // 9..12 survive and every surviving delta still has its base on disk.
  const std::vector<std::filesystem::path> files = snapshot_files(dir_);
  EXPECT_EQ(files.size(), 4u);
  EXPECT_EQ(store.stats().pruned, 8u);
  EXPECT_EQ(files.front().filename().string(), "ckpt-00000009.usnap");

  FullRig restored(*machine_);
  CheckpointStore recovery(config(2, 2));
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_EQ(recovery.stats().restored_seq, 12u);
  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(CheckpointStoreTest, InjectedWriteFaultsRecoverViaLadder) {
  FullRig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  FullRig source(*machine_);
  CheckpointStore store(config());
  // First checkpoint lands clean so a good base is guaranteed, then every
  // later write rolls the dice on torn/lost/bit-flipped outcomes.
  write_checkpoints(source, store, 1);
  sim::FaultPlan corruption(/*seed=*/99);
  sim::FaultPlan::SiteConfig faults;
  faults.error_rate = 0.25;
  faults.drop_rate = 0.25;
  faults.bit_flip_rate = 0.25;
  corruption.configure(sim::FaultSite::kCheckpoint, faults);
  store.install_fault_plan(&corruption);
  write_checkpoints(source, store, 7, /*first=*/1);
  EXPECT_GT(store.stats().write_faults, 0u)
      << "seed 99 must actually injure some checkpoints";

  FullRig restored(*machine_);
  CheckpointStore recovery(config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_GE(recovery.stats().restored_seq, 1u);
  restored.run();
  expect_same_outcome(restored, reference, reference_log);
}

TEST_F(CheckpointStoreTest, StrayFilesAreIgnored) {
  FullRig source(*machine_);
  CheckpointStore store(config());
  write_checkpoints(source, store, 3);

  // Leftover tmp files, foreign prefixes and malformed names must neither
  // crash the scan nor shadow real checkpoints.
  ASSERT_TRUE(write_file(dir_ / "ckpt-00000099.usnap.tmp", "half-written junk"));
  ASSERT_TRUE(write_file(dir_ / "ckpt-0000000x.usnap", "bad digits"));
  ASSERT_TRUE(write_file(dir_ / "other-00000001.usnap", "foreign prefix"));
  ASSERT_TRUE(write_file(dir_ / "notes.txt", "not a checkpoint"));

  FullRig restored(*machine_);
  CheckpointStore recovery(config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovery.restore_latest_good(restored.targets(), sink)) << sink.str();
  EXPECT_EQ(recovery.stats().restored_seq, 3u);
  EXPECT_EQ(recovery.stats().quarantines, 0u);
}

}  // namespace
}  // namespace umlsoc::replay
