// Cross-process fleet (src/fleet/procpool + handoff): the supervised
// worker-process pool behind FleetDriver's process isolation. Covered here:
// the wire-protocol codecs (bit-exact RigOutcome round-trips, truncated-tail
// tolerance, corruption latching), the at-most-once HandoffLedger (claim
// order, duplicate rejection, death requeue, quarantine attribution), the
// worker-death matrix against real forked workers (SIGKILL mid-seed,
// nonzero exit, heartbeat silence via SIGSTOP, per-seed watchdog timeout,
// poisoned-seed quarantine), determinism parity between a chaos-killed
// process fleet and an in-process jobs=1 run, and the CheckpointStore's
// concurrent-worker hygiene (pid-scoped tmp names, stray-tmp sweep).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/driver.hpp"
#include "fleet/handoff.hpp"
#include "fleet/report.hpp"
#include "replay/store.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/supervise.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::fleet {
namespace {

/// Same miniature rig as fleet_test: one kernel, a seeded fault plan and a
/// health registry driven by a self-rescheduling process. The outcome is a
/// pure function of the seed, which is what the process-vs-thread parity
/// tests pin.
RigOutcome run_mini_rig(const RigJob& job) {
  sim::Kernel kernel;
  sim::FaultPlan plan(job.seed);
  sim::FaultPlan::SiteConfig site;
  site.error_rate = 0.05;
  site.drop_rate = 0.02;
  plan.configure(sim::FaultSite::kBusWrite, site);
  sim::HealthRegistry health;
  const sim::HealthRegistry::UnitId unit = health.register_unit("worker");

  RigOutcome outcome;
  std::uint64_t ticks = 0;
  sim::ProcessId worker = sim::kInvalidProcess;
  worker = kernel.register_process(
      [&] {
        ++ticks;
        ++outcome.slo.requests;
        const sim::FaultDecision decision = plan.consult(sim::FaultSite::kBusWrite);
        if (decision.faulted()) {
          ++outcome.slo.lost;
          health.set_health(unit, sim::UnitHealth::kDegraded, "fault");
        } else {
          ++outcome.slo.delivered;
          health.set_health(unit, sim::UnitHealth::kHealthy, "ok");
        }
        if (ticks < 100) kernel.schedule(sim::SimTime::ns(10), worker);
      },
      "procpool-test.worker");
  kernel.schedule(sim::SimTime::ns(10), worker);
  kernel.run();

  outcome.ok = true;
  outcome.sim_time_ps = kernel.now().picoseconds();
  outcome.events_processed = kernel.events_processed();
  outcome.health.add(health);
  reduce(outcome.kernel, kernel.stats());
  return outcome;
}

/// A RigOutcome with every field set to a distinct value, so a codec that
/// drops or reorders a field cannot round-trip it.
RigOutcome distinct_outcome() {
  RigOutcome out;
  out.seed = 101;
  out.ok = false;
  out.failure = "synthetic failure: \xff\x00 binary-safe?";
  out.failure[out.failure.size() - 2] = '\0';  // Embedded NUL survives.
  out.sim_time_ps = 102;
  out.events_processed = 103;
  std::uint64_t next = 200;
  for (std::uint64_t* field :
       {&out.slo.requests, &out.slo.delivered, &out.slo.lost, &out.slo.transactions,
        &out.slo.timeouts, &out.slo.retries, &out.slo.recovered, &out.slo.exhausted,
        &out.slo.errors_raised, &out.slo.errors_unhandled, &out.slo.restarts,
        &out.slo.escalations, &out.slo.give_ups, &out.slo.watchdog_trips,
        &out.slo.breaker_opens, &out.slo.breaker_closes, &out.slo.breaker_fast_failed,
        &out.slo.rollbacks, &out.slo.checkpoints_written,
        &out.slo.checkpoint_write_faults, &out.slo.rungs_quarantined,
        &out.slo.ladder_recoveries, &out.slo.crash_recoveries, &out.slo.seeds_poisoned,
        &out.slo.lost_work_ps_max, &out.health.healthy, &out.health.degraded,
        &out.health.failed, &out.kernel.timed_peak, &out.kernel.max_deltas_per_instant,
        &out.kernel.wheel_hits, &out.kernel.heap_hits, &out.kernel.cascades,
        &out.kernel.processes_registered, &out.kernel.collapsed_notifications,
        &out.kernel.snapshot.encodes, &out.kernel.snapshot.restores,
        &out.kernel.snapshot.bytes_written, &out.kernel.snapshot.sections_dirty,
        &out.kernel.snapshot.sections_total, &out.kernel.snapshot.encode_wall_ns,
        &out.kernel.snapshot.restore_wall_ns, &out.wall_ns, &out.resumed_from_seq}) {
    *field = next++;
  }
  out.fault_template = 3;
  out.attempts = 4;
  return out;
}

// --- Wire protocol -------------------------------------------------------------

TEST(HandoffCodec, ResultRoundTripsEveryFieldBitExactly) {
  const RigOutcome original = distinct_outcome();
  const std::string payload = encode_result(77, original);
  std::uint64_t index = 0;
  RigOutcome decoded;
  ASSERT_TRUE(decode_result(payload, index, decoded));
  EXPECT_EQ(index, 77u);
  EXPECT_EQ(decoded.seed, original.seed);
  EXPECT_EQ(decoded.ok, original.ok);
  EXPECT_EQ(decoded.failure, original.failure);
  EXPECT_EQ(decoded.sim_time_ps, original.sim_time_ps);
  EXPECT_EQ(decoded.events_processed, original.events_processed);
  EXPECT_EQ(decoded.slo, original.slo);
  EXPECT_EQ(decoded.health, original.health);
  EXPECT_EQ(decoded.fault_template, original.fault_template);
  EXPECT_EQ(decoded.wall_ns, original.wall_ns);
  EXPECT_EQ(decoded.attempts, original.attempts);
  EXPECT_EQ(decoded.resumed_from_seq, original.resumed_from_seq);
  EXPECT_TRUE(decoded.deterministic_equal(original));
}

TEST(HandoffCodec, DecodersRejectEveryTruncation) {
  const std::string result = encode_result(1, distinct_outcome());
  for (std::size_t length = 0; length < result.size(); ++length) {
    std::uint64_t index = 0;
    RigOutcome out;
    EXPECT_FALSE(decode_result(result.substr(0, length), index, out))
        << "truncated to " << length;
  }
  const std::string assign = encode_assign({Grant{1, 2, 3, 4}, Grant{5, 6, 7, 8}});
  for (std::size_t length = 0; length < assign.size(); ++length) {
    std::vector<Grant> grants;
    EXPECT_FALSE(decode_assign(assign.substr(0, length), grants));
  }
}

TEST(HandoffCodec, AssignRoundTrips) {
  const std::vector<Grant> grants = {Grant{9, 1009, 2, 3}, Grant{0, 1000, 0, 0}};
  std::vector<Grant> decoded;
  ASSERT_TRUE(decode_assign(encode_assign(grants), decoded));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].index, 9u);
  EXPECT_EQ(decoded[0].seed, 1009u);
  EXPECT_EQ(decoded[0].attempt, 2u);
  EXPECT_EQ(decoded[0].fault_template, 3u);
  EXPECT_EQ(decoded[1].index, 0u);
}

TEST(FrameReader, ReassemblesFramesFedByteByByte) {
  const std::string wire = encode_frame(FrameType::kStartSeed, encode_start_seed(5, 1)) +
                           encode_frame(FrameType::kHeartbeat, {}) +
                           encode_frame(FrameType::kResult, encode_result(5, distinct_outcome()));
  FrameReader reader;
  std::vector<Frame> frames;
  for (char byte : wire) {
    reader.feed(&byte, 1);
    Frame frame;
    while (reader.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kStartSeed);
  EXPECT_EQ(frames[1].type, FrameType::kHeartbeat);
  EXPECT_EQ(frames[2].type, FrameType::kResult);
  EXPECT_FALSE(reader.corrupt());
}

TEST(FrameReader, TruncatedTailIsPendingNotCorrupt) {
  const std::string wire = encode_frame(FrameType::kResult, encode_result(1, RigOutcome{}));
  FrameReader reader;
  reader.feed(wire.data(), wire.size() - 1);  // Worker killed mid-write.
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.corrupt());
  reader.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kResult);
}

TEST(FrameReader, BadMagicLatchesCorrupt) {
  FrameReader reader;
  const char garbage[] = "not a frame at all, definitely";
  reader.feed(garbage, sizeof garbage);
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
  // Feeding a valid frame afterwards cannot un-corrupt the stream.
  const std::string wire = encode_frame(FrameType::kHeartbeat, {});
  reader.feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
}

// --- HandoffLedger -------------------------------------------------------------

TEST(HandoffLedger, ClaimsFreshSeedsInIndexOrder) {
  HandoffLedger ledger(5, 3);
  const std::vector<std::uint64_t> first = ledger.claim(0, 2);
  ASSERT_EQ(first, (std::vector<std::uint64_t>{0, 1}));
  const std::vector<std::uint64_t> second = ledger.claim(1, 10);
  ASSERT_EQ(second, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_TRUE(ledger.drained());
  EXPECT_FALSE(ledger.settled());
  EXPECT_TRUE(ledger.claim(0, 1).empty());
}

TEST(HandoffLedger, AcceptsEachOutcomeAtMostOnce) {
  HandoffLedger ledger(2, 3);
  (void)ledger.claim(0, 2);
  ASSERT_TRUE(ledger.start(0, 0));
  EXPECT_TRUE(ledger.accept(0, 0));
  EXPECT_FALSE(ledger.accept(0, 0)) << "duplicate result must be dropped";
  EXPECT_FALSE(ledger.accept(1, 1)) << "result from a worker that holds no grant";
  EXPECT_TRUE(ledger.accept(0, 1)) << "assigned-but-not-started still accepts once";
  EXPECT_TRUE(ledger.settled());
  EXPECT_EQ(ledger.done(), 2u);
}

TEST(HandoffLedger, DeathRequeuesUnfinishedGrantsAndChargesInFlight) {
  HandoffLedger ledger(3, 3);
  (void)ledger.claim(0, 3);
  ASSERT_TRUE(ledger.start(0, 0));
  ASSERT_TRUE(ledger.accept(0, 0));
  ASSERT_TRUE(ledger.start(0, 1));  // In flight when the worker dies.
  const HandoffLedger::DeathReport report = ledger.on_worker_death(0);
  EXPECT_TRUE(report.poisoned.empty());
  ASSERT_EQ(report.requeued.size(), 2u);
  EXPECT_EQ(ledger.kills(1), 1u) << "in-flight seed charged with the kill";
  EXPECT_EQ(ledger.kills(2), 0u) << "assigned-not-started seed not blamed";
  // The requeued seeds go to the next claimer, in-flight first, with a
  // bumped attempt.
  const std::vector<std::uint64_t> reclaimed = ledger.claim(1, 10);
  ASSERT_EQ(reclaimed.size(), 2u);
  EXPECT_EQ(reclaimed[0], 1u);
  EXPECT_EQ(ledger.attempt(1), 1u);
  EXPECT_EQ(ledger.redispatches(), 2u);
  // A late result from the dead worker is rejected.
  EXPECT_FALSE(ledger.accept(0, 1));
  EXPECT_TRUE(ledger.accept(1, 1));
  EXPECT_TRUE(ledger.accept(1, 2));
  EXPECT_TRUE(ledger.settled());
}

TEST(HandoffLedger, QuarantinesSeedAfterThresholdKills) {
  HandoffLedger ledger(1, 2);
  for (unsigned round = 0; round < 2; ++round) {
    const std::vector<std::uint64_t> claimed = ledger.claim(round, 1);
    ASSERT_EQ(claimed.size(), 1u);
    ASSERT_TRUE(ledger.start(round, 0));
    const HandoffLedger::DeathReport report = ledger.on_worker_death(round);
    if (round == 0) {
      ASSERT_EQ(report.requeued.size(), 1u);
      EXPECT_TRUE(report.poisoned.empty());
    } else {
      EXPECT_TRUE(report.requeued.empty());
      ASSERT_EQ(report.poisoned.size(), 1u);
      EXPECT_EQ(report.poisoned[0], 0u);
    }
  }
  EXPECT_EQ(ledger.state(0), HandoffLedger::SeedState::kPoisoned);
  EXPECT_TRUE(ledger.settled());
  EXPECT_EQ(ledger.poisoned(), 1u);
  // Even a raced result for a poisoned seed is dropped.
  EXPECT_FALSE(ledger.accept(1, 0));
}

// --- Worker-death matrix (real forked workers) ---------------------------------

FleetConfig process_config(unsigned jobs) {
  FleetConfig config;
  config.jobs = jobs;
  config.isolation = Isolation::kProcess;
  config.chunk = 1;
  config.heartbeat_interval_ms = 25;
  config.heartbeat_deadline_ms = 2000;
  config.seed_timeout_ms = 60000;
  return config;
}

TEST(ProcPool, SigkillMidSeedRedispatchesAndCompletes) {
  FleetDriver driver(process_config(2));
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 8, [](const RigJob& job) {
        if (job.seed == 3 && job.attempt == 0) ::kill(::getpid(), SIGKILL);
        return run_mini_rig(job);
      });
  ASSERT_EQ(outcomes.size(), 8u);
  for (const RigOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << "seed " << outcome.seed << ": " << outcome.failure;
  }
  EXPECT_GE(outcomes[3].attempts, 2u) << "killed seed must have been re-dispatched";
  EXPECT_GE(driver.stats().pool.deaths, 1u);
  // No respawn assertion: the surviving worker may finish the re-dispatched
  // seed before the respawn backoff elapses, which is correct behavior.
  EXPECT_GE(driver.stats().pool.redispatches, 1u);
  EXPECT_EQ(driver.stats().pool.poisoned, 0u);
}

TEST(ProcPool, NonzeroExitIsADeathNotALostResult) {
  FleetDriver driver(process_config(2));
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 6, [](const RigJob& job) {
        if (job.seed == 1 && job.attempt == 0) ::_exit(3);
        return run_mini_rig(job);
      });
  for (const RigOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << "seed " << outcome.seed << ": " << outcome.failure;
  }
  EXPECT_GE(outcomes[1].attempts, 2u);
  EXPECT_GE(driver.stats().pool.deaths, 1u);
}

TEST(ProcPool, HeartbeatSilenceIsDetectedAndKilled) {
  FleetConfig config = process_config(2);
  config.heartbeat_interval_ms = 20;
  config.heartbeat_deadline_ms = 250;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 4, [](const RigJob& job) {
        // SIGSTOP freezes every thread including the heartbeat: the worker
        // is alive but silent, which must read as dead.
        if (job.seed == 2 && job.attempt == 0) ::kill(::getpid(), SIGSTOP);
        return run_mini_rig(job);
      });
  for (const RigOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << "seed " << outcome.seed << ": " << outcome.failure;
  }
  EXPECT_GE(driver.stats().pool.heartbeat_kills, 1u);
  EXPECT_GE(outcomes[2].attempts, 2u);
}

TEST(ProcPool, SeedWatchdogKillsHungRigDespiteHeartbeats) {
  FleetConfig config = process_config(2);
  config.seed_timeout_ms = 300;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 4, [](const RigJob& job) {
        // The heartbeat thread keeps beating: only the per-seed watchdog
        // can catch this hang.
        if (job.seed == 1 && job.attempt == 0) {
          std::this_thread::sleep_for(std::chrono::seconds(30));
        }
        return run_mini_rig(job);
      });
  for (const RigOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << "seed " << outcome.seed << ": " << outcome.failure;
  }
  EXPECT_GE(driver.stats().pool.seed_timeout_kills, 1u);
  EXPECT_GE(outcomes[1].attempts, 2u);
}

TEST(ProcPool, SeedThatAlwaysKillsItsWorkerIsQuarantined) {
  FleetConfig config = process_config(2);
  config.quarantine_threshold = 2;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 6, [](const RigJob& job) {
        if (job.seed == 4) ::kill(::getpid(), SIGKILL);  // Every attempt.
        return run_mini_rig(job);
      });
  ASSERT_EQ(outcomes.size(), 6u);
  for (const RigOutcome& outcome : outcomes) {
    if (outcome.seed == 4) continue;
    EXPECT_TRUE(outcome.ok) << "seed " << outcome.seed << ": " << outcome.failure;
  }
  EXPECT_FALSE(outcomes[4].ok);
  EXPECT_EQ(outcomes[4].slo.seeds_poisoned, 1u);
  EXPECT_NE(outcomes[4].failure.find("quarantined"), std::string::npos)
      << outcomes[4].failure;
  EXPECT_EQ(driver.stats().pool.poisoned, 1u);
  const FleetReport report = FleetReport::aggregate(outcomes);
  ASSERT_EQ(report.poisoned_seeds.size(), 1u);
  EXPECT_EQ(report.poisoned_seeds[0], 4u);
  EXPECT_EQ(report.slo.seeds_poisoned, 1u);
  // The quarantine is visible in the fingerprint, so a poisoned fleet can
  // never silently compare equal to a healthy one.
  EXPECT_NE(report.fingerprint().find("poisoned-seeds=4,"), std::string::npos);
}

TEST(ProcPool, ChaosKilledFleetMatchesInProcessRunBitExactly) {
  // The acceptance gate in miniature: a process fleet with supervisor-
  // injected kills must produce outcomes deterministic_equal to a jobs=1
  // in-process run, and an identical report fingerprint.
  // The dwell keeps workers mid-seed long enough for the supervisor's
  // best-effort chaos triggers to find a busy victim; it cannot leak into
  // the outcome (only wall_ns, which determinism checks exclude).
  const auto dwelling_rig = [](const RigJob& job) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return run_mini_rig(job);
  };
  FleetConfig baseline;
  baseline.jobs = 1;
  FleetDriver inproc(baseline);
  const std::vector<RigOutcome> reference = inproc.run_range(500, 24, dwelling_rig);

  FleetConfig config = process_config(3);
  config.chaos_kill_workers = 2;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes = driver.run_range(500, 24, dwelling_rig);

  ASSERT_EQ(outcomes.size(), reference.size());
  // Parity only holds while no seed is poisoned: a quarantined seed gets a
  // synthesized outcome (and a poisoned-seeds fingerprint line) that the
  // in-process run cannot produce. With the generous quarantine threshold
  // here this is a precondition check, not an expected outcome.
  ASSERT_EQ(driver.stats().pool.poisoned, 0u)
      << "kill schedule poisoned a seed; fingerprint parity is undefined";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].deterministic_equal(reference[i]))
        << "seed " << reference[i].seed << " diverged across isolation modes";
  }
  EXPECT_EQ(FleetReport::aggregate(outcomes).fingerprint(),
            FleetReport::aggregate(reference).fingerprint());
  EXPECT_GE(driver.stats().pool.chaos_kills, 1u);
  EXPECT_GE(driver.stats().pool.redispatches, 1u);
}

TEST(ProcPool, DegradedPoolFinishesOrphanedGrantsInline) {
  // min_workers=2 with a zero respawn budget: the first worker death drops
  // usable slots to 1 and the pool must degrade to the inline fallback.
  // The surviving worker is still alive and holding grants at that moment —
  // the pool has to settle it (drain raced results, requeue its assigned
  // and in-flight seeds) before going inline, or those seeds' outcomes are
  // silently lost as default-constructed slots.
  FleetConfig config = process_config(2);
  config.min_workers = 2;
  config.max_respawns = 0;
  config.chunk = 4;  // Multi-grant chunks: the survivor always holds work.
  FleetDriver driver(config);
  const auto rig = [](const RigJob& job) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Worker 0 claims the first chunk [700..703] and dies on its third
    // seed; by then the survivor has moved on to the chunk holding 708,
    // whose long first-attempt dwell pins it mid-seed (with the rest of
    // its chunk assigned-not-started) when the pool degrades.
    if (job.seed == 702 && job.attempt == 0) ::kill(::getpid(), SIGKILL);
    if (job.seed == 708 && job.attempt == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return run_mini_rig(job);
  };
  const std::vector<RigOutcome> outcomes = driver.run_range(700, 16, rig);
  ASSERT_EQ(outcomes.size(), 16u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].seed, 700u + i) << "slot " << i << " lost its outcome";
    EXPECT_TRUE(outcomes[i].ok)
        << "seed " << outcomes[i].seed << ": " << outcomes[i].failure;
  }
  EXPECT_TRUE(driver.stats().pool.degraded_to_inline);
  EXPECT_GE(driver.stats().pool.inline_fallback_rigs, 1u);
  EXPECT_EQ(driver.stats().pool.poisoned, 0u);

  // And the degraded run still matches the in-process reference bit-exactly.
  FleetConfig baseline;
  baseline.jobs = 1;
  FleetDriver inproc(baseline);
  const std::vector<RigOutcome> reference =
      inproc.run_range(700, 16, [](const RigJob& job) { return run_mini_rig(job); });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].deterministic_equal(reference[i]))
        << "seed " << reference[i].seed << " diverged after inline fallback";
  }
  EXPECT_EQ(FleetReport::aggregate(outcomes).fingerprint(),
            FleetReport::aggregate(reference).fingerprint());
}

TEST(ProcPool, TemplateSweepAssignsByIndexInBothIsolationModes) {
  FleetConfig thread_config;
  thread_config.jobs = 2;
  thread_config.fault_templates = 3;
  FleetDriver threads(thread_config);
  const std::vector<RigOutcome> thread_outcomes =
      threads.run_range(0, 9, run_mini_rig);

  FleetConfig proc = process_config(2);
  proc.fault_templates = 3;
  FleetDriver processes(proc);
  const std::vector<RigOutcome> process_outcomes =
      processes.run_range(0, 9, run_mini_rig);

  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(thread_outcomes[i].fault_template, i % 3);
    EXPECT_EQ(process_outcomes[i].fault_template, i % 3);
  }
  const FleetReport report = FleetReport::aggregate(thread_outcomes);
  ASSERT_EQ(report.templates.size(), 3u);
  for (const FleetReport::TemplateRollup& slice : report.templates) {
    EXPECT_EQ(slice.rigs, 3u);
  }
  EXPECT_EQ(report.fingerprint(),
            FleetReport::aggregate(process_outcomes).fingerprint());
}

// --- CheckpointStore concurrent-worker hygiene ---------------------------------

class TempDir {
 public:
  TempDir() {
    root_ = std::filesystem::temp_directory_path() /
            ("procpool-store-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    std::filesystem::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return root_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path root_;
};

TEST(CheckpointStoreProcess, TmpFilesArePidScoped) {
  TempDir dir;
  sim::Kernel kernel;
  replay::SnapshotTargets targets;
  targets.kernel = &kernel;
  replay::CheckpointStoreConfig config;
  config.directory = dir.path();
  config.prefix = "pool";
  replay::CheckpointStore store(config);
  // A drop-rate-1 plan models a crash before the rename on every write:
  // the tmp file is written but never lands.
  sim::FaultPlan plan(7);
  sim::FaultPlan::SiteConfig site;
  site.drop_rate = 1.0;
  plan.configure(sim::FaultSite::kCheckpoint, site);
  store.install_fault_plan(&plan);
  replay::CheckpointStore::WriteResult result;
  support::DiagnosticSink sink;
  ASSERT_TRUE(store.checkpoint(targets, result, sink)) << sink.str();
  EXPECT_TRUE(result.lost);
  const std::string marker = "." + std::to_string(::getpid()) + ".tmp";
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.size() > marker.size() &&
        name.compare(name.size() - marker.size(), marker.size(), marker) == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "stray tmp must carry the writer pid in its name";
}

TEST(CheckpointStoreProcess, OpenSweepsStrayTmpsButNotForeignFiles) {
  TempDir dir;
  // 999999999 exceeds the Linux pid_max ceiling, so the embedded writer pid
  // is guaranteed dead and the tmp reads as a stray.
  const std::filesystem::path stray = dir.path() / "pool-00000001.usnap.999999999.tmp";
  const std::filesystem::path legacy = dir.path() / "pool-00000002.usnap.tmp";
  const std::filesystem::path foreign = dir.path() / "other-00000001.usnap.tmp";
  std::ofstream(stray) << "half a checkpoint";
  std::ofstream(legacy) << "older tmp convention";
  std::ofstream(foreign) << "someone else's prefix";
  replay::CheckpointStoreConfig config;
  config.directory = dir.path();
  config.prefix = "pool";
  replay::CheckpointStore store(config);
  EXPECT_FALSE(std::filesystem::exists(stray));
  EXPECT_FALSE(std::filesystem::exists(legacy));
  EXPECT_TRUE(std::filesystem::exists(foreign))
      << "a different prefix belongs to a different store";
  EXPECT_EQ(store.stats().tmp_swept, 2u);
}

TEST(CheckpointStoreProcess, SweepSparesLiveWritersInFlightTmp) {
  // The sweep must not race a still-running concurrent writer: a tmp whose
  // embedded pid is alive is an in-flight checkpoint, and deleting it would
  // fail that writer's rename — the exact predecessor-teardown race the
  // pid-scoped tmp names were introduced to tolerate. Our own pid stands in
  // for the live sibling.
  TempDir dir;
  const std::filesystem::path inflight =
      dir.path() /
      ("pool-00000001.usnap." + std::to_string(::getpid()) + ".tmp");
  const std::filesystem::path orphaned = dir.path() / "pool-00000002.usnap.999999999.tmp";
  std::ofstream(inflight) << "concurrent writer, mid-checkpoint";
  std::ofstream(orphaned) << "writer long dead";
  replay::CheckpointStoreConfig config;
  config.directory = dir.path();
  config.prefix = "pool";
  replay::CheckpointStore store(config);
  EXPECT_TRUE(std::filesystem::exists(inflight))
      << "a live writer's in-flight tmp must survive the sweep";
  EXPECT_FALSE(std::filesystem::exists(orphaned));
  EXPECT_EQ(store.stats().tmp_swept, 1u);
}

TEST(CheckpointStoreProcess, SweptDirectoryStillRestores) {
  TempDir dir;
  sim::Kernel kernel;
  replay::SnapshotTargets targets;
  targets.kernel = &kernel;
  replay::CheckpointStoreConfig config;
  config.directory = dir.path();
  config.prefix = "pool";
  support::DiagnosticSink sink;
  {
    replay::CheckpointStore writer(config);
    replay::CheckpointStore::WriteResult result;
    ASSERT_TRUE(writer.checkpoint(targets, result, sink)) << sink.str();
    // Simulate a successor's in-flight write that died mid-stream.
    std::ofstream(dir.path() / "pool-00000002.usnap.999999999.tmp") << "torn";
  }
  replay::CheckpointStore reader(config);
  EXPECT_EQ(reader.stats().tmp_swept, 1u);
  EXPECT_EQ(reader.newest_on_disk(), 1u);
  sim::Kernel fresh;
  replay::SnapshotTargets restore_targets;
  restore_targets.kernel = &fresh;
  support::DiagnosticSink restore_sink;
  EXPECT_TRUE(reader.restore_latest_good(restore_targets, restore_sink))
      << restore_sink.str();
  EXPECT_EQ(reader.stats().restored_seq, 1u);
}

}  // namespace
}  // namespace umlsoc::fleet
