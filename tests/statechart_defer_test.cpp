// Tests for UML event deferral: retained events are recalled after the
// configuration changes, in arrival order, ahead of newer events.
#include <gtest/gtest.h>

#include "statechart/interpreter.hpp"
#include "xmi/behavior.hpp"

namespace umlsoc::statechart {
namespace {

/// Busy defers "req"; done -> Idle consumes deferred reqs one at a time
/// (Idle -req-> Busy).
struct DeferFixture {
  StateMachine machine{"m"};
  State* idle = nullptr;
  State* busy = nullptr;

  DeferFixture() {
    Region& top = machine.top();
    Pseudostate& initial = top.add_initial();
    idle = &top.add_state("Idle");
    busy = &top.add_state("Busy");
    busy->add_deferred("req");
    top.add_transition(initial, *idle);
    top.add_transition(*idle, *busy).set_trigger("req");
    top.add_transition(*busy, *idle).set_trigger("done");
  }
};

TEST(Defer, DeferredEventRecalledAfterStateChange) {
  DeferFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.dispatch({"req"});  // Idle -> Busy.
  EXPECT_TRUE(instance.is_active(*f.busy));

  instance.dispatch({"req"});  // Busy defers it.
  EXPECT_TRUE(instance.is_active(*f.busy));
  bool deferred_noted = false;
  for (const std::string& entry : instance.trace()) {
    if (entry == "defer:req") deferred_noted = true;
  }
  EXPECT_TRUE(deferred_noted);

  // done -> Idle; the deferred req is recalled immediately: Idle -> Busy.
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_active(*f.busy));
}

TEST(Defer, MultipleDeferredEventsRecalledInOrder) {
  DeferFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.dispatch({"req", 1});
  instance.dispatch({"req", 2});  // Deferred.
  instance.dispatch({"req", 3});  // Deferred.
  // After done: req(2) recalled -> Busy again; req(3) re-deferred.
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_active(*f.busy));
  // Another done cycles through the remaining deferred request.
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_active(*f.busy));
  // Pool now empty: done leaves us Idle.
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_active(*f.idle));
}

TEST(Defer, NonDeferredEventStillDiscarded) {
  DeferFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.dispatch({"req"});
  EXPECT_FALSE(instance.dispatch({"bogus"}));
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_active(*f.idle));  // No phantom recall.
}

TEST(Defer, RecalledEventsPrecedeNewerQueuedEvents) {
  // If "done" and a new "req" are queued together while a req is deferred,
  // the deferred req must be consumed before the newly posted one.
  DeferFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.dispatch({"req", 10});
  instance.dispatch({"req", 20});  // Deferred with data 20.

  int busy_entries = 0;
  f.busy->set_entry(Behavior{"", [&busy_entries](ActionContext&) { ++busy_entries; }});
  instance.post({"done"});
  instance.post({"done"});
  instance.run_to_quiescence();
  // done -> Idle, recall req(20) -> Busy, second done -> Idle.
  EXPECT_TRUE(instance.is_active(*f.idle));
  EXPECT_EQ(busy_entries, 1);
}

TEST(Defer, DeferAttributeSurvivesXmiRoundTrip) {
  DeferFixture f;
  std::string text = xmi::write_state_machine(f.machine);
  support::DiagnosticSink sink;
  auto reread = xmi::read_state_machine(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  const State* busy = reread->top().find_state("Busy");
  ASSERT_NE(busy, nullptr);
  EXPECT_TRUE(busy->defers("req"));
  EXPECT_FALSE(busy->defers("done"));

  // Behavioral equivalence of the deferral through the round-trip.
  StateMachineInstance instance(*reread);
  instance.start();
  instance.dispatch({"req"});
  instance.dispatch({"req"});
  instance.dispatch({"done"});
  EXPECT_TRUE(instance.is_in("Busy"));
}

TEST(Defer, CompositeStateDeferralAppliesToSubstates) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& outer = top.add_state("Outer");
  State& other = top.add_state("Other");
  outer.add_deferred("later");
  top.add_transition(initial, outer);
  top.add_transition(outer, other).set_trigger("move");
  top.add_transition(other, other).set_trigger("later");

  Region& inner = outer.add_region("r");
  Pseudostate& inner_initial = inner.add_initial();
  State& sub = inner.add_state("Sub");
  inner.add_transition(inner_initial, sub);

  StateMachineInstance instance(machine);
  instance.start();
  // "later" has no transition while inside Outer (whose Sub is active), but
  // Outer defers it: after "move" it is recalled and fires in Other.
  instance.dispatch({"later"});
  std::uint64_t fired_before = instance.transitions_fired();
  instance.dispatch({"move"});
  EXPECT_TRUE(instance.is_active(other));
  EXPECT_EQ(instance.transitions_fired(), fired_before + 2u);  // move + recalled later.
}

}  // namespace
}  // namespace umlsoc::statechart
