// Unit tests for the support module: strings, rng, graph, diagnostics, ids.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/graph.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace umlsoc::support {
namespace {

TEST(Ids, DefaultIsInvalid) {
  Id id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(Ids, GeneratorIsMonotonic) {
  IdGenerator generator;
  Id a = generator.next();
  Id b = generator.next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
}

TEST(Ids, ReserveSkipsPastExternalIds) {
  IdGenerator generator;
  generator.reserve(Id{100});
  EXPECT_EQ(generator.next().value(), 101u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, SplitAndJoin) {
  std::vector<std::string> parts = split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(Strings, SplitEmpty) {
  std::vector<std::string> parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("statechart", "state"));
  EXPECT_FALSE(starts_with("st", "state"));
  EXPECT_TRUE(ends_with("top.v", ".v"));
  EXPECT_FALSE(ends_with("v", ".v"));
}

TEST(Strings, XmlEscape) {
  EXPECT_EQ(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(Strings, Indent) {
  EXPECT_EQ(indent("a\nb", 1), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 1), "  a\n\n  b");  // Blank lines stay blank.
}

TEST(Strings, SnakeCase) {
  EXPECT_EQ(to_snake_case("FrameBuffer"), "frame_buffer");
  EXPECT_EQ(to_snake_case("frame buffer"), "frame_buffer");
  EXPECT_EQ(to_snake_case("frame-buffer"), "frame_buffer");
  EXPECT_EQ(to_snake_case("UART"), "uart");
  EXPECT_EQ(to_snake_case("AxiLiteBus"), "axi_lite_bus");
}

TEST(Strings, UpperCamelCase) {
  EXPECT_EQ(to_upper_camel_case("frame_buffer"), "FrameBuffer");
  EXPECT_EQ(to_upper_camel_case("uart rx"), "UartRx");
  EXPECT_EQ(to_upper_camel_case("9lives"), "X9lives");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, CountNonemptyLines) {
  EXPECT_EQ(count_nonempty_lines("a\n\n b\n  \nc"), 3u);
  EXPECT_EQ(count_nonempty_lines(""), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Graph, TopologicalOrderOfDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[3]);
  EXPECT_LT(position[2], position[3]);
}

TEST(Graph, CycleDetected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Graph, Reachability) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  std::vector<bool> from0 = g.reachable_from(0);
  EXPECT_TRUE(from0[0]);
  EXPECT_TRUE(from0[2]);
  EXPECT_FALSE(from0[3]);
  std::vector<bool> to2 = g.reaching(2);
  EXPECT_TRUE(to2[0]);
  EXPECT_FALSE(to2[4]);
}

TEST(Graph, LongestPathWeights) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto finish = g.longest_path_to({1.0, 2.0, 5.0, 1.0});
  ASSERT_TRUE(finish.has_value());
  EXPECT_DOUBLE_EQ((*finish)[3], 1.0 + 5.0 + 1.0);  // Via the heavier branch.
}

TEST(Graph, LongestPathRejectsCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(g.longest_path_to({1.0, 1.0}).has_value());
}

TEST(Diagnostics, CountsAndFormat) {
  DiagnosticSink sink;
  sink.note("x", "info");
  sink.warning("y", "watch out");
  sink.error("z", "broken");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.warning_count(), 1u);
  EXPECT_EQ(sink.diagnostics().size(), 3u);
  EXPECT_NE(sink.str().find("error: z: broken"), std::string::npos);
  sink.clear();
  EXPECT_FALSE(sink.has_errors());
  EXPECT_TRUE(sink.empty());
}

}  // namespace
}  // namespace umlsoc::support
