// ASL tests: lexer, parser, interpreter semantics, error handling.
#include <gtest/gtest.h>

#include <numeric>

#include "asl/interpreter.hpp"
#include "asl/lexer.hpp"
#include "asl/parser.hpp"

namespace umlsoc::asl {
namespace {

// --- Lexer ---------------------------------------------------------------------

TEST(AslLexer, TokenizesRepresentativeProgram) {
  support::DiagnosticSink sink;
  auto tokens = tokenize("x := 42; if (x >= 10) { send Bus.req(x); }", sink);
  ASSERT_FALSE(sink.has_errors()) << sink.str();
  EXPECT_EQ(tokens.front().kind, TokenKind::kIdent);
  EXPECT_EQ(tokens.front().text, "x");
  EXPECT_EQ(tokens[1].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[2].int_value, 42);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(AslLexer, StringsAndEscapes) {
  support::DiagnosticSink sink;
  auto tokens = tokenize("s := \"a\\nb\\\"c\";", sink);
  ASSERT_FALSE(sink.has_errors());
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "a\nb\"c");
}

TEST(AslLexer, CommentsIgnored) {
  support::DiagnosticSink sink;
  auto tokens = tokenize("// a comment\nx := 1; // trailing\n", sink);
  ASSERT_FALSE(sink.has_errors());
  EXPECT_EQ(tokens.size(), 5u);  // x := 1 ; <end>
}

TEST(AslLexer, TracksLineNumbers) {
  support::DiagnosticSink sink;
  auto tokens = tokenize("a := 1;\nb := 2;", sink);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[4].line, 2);
}

TEST(AslLexer, ErrorsOnBadCharacter) {
  support::DiagnosticSink sink;
  (void)tokenize("x := #;", sink);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_NE(sink.str().find("unexpected character"), std::string::npos);
}

TEST(AslLexer, ErrorsOnUnterminatedString) {
  support::DiagnosticSink sink;
  (void)tokenize("s := \"open", sink);
  EXPECT_TRUE(sink.has_errors());
}

// --- Parser ----------------------------------------------------------------------

std::optional<Program> parse_ok(std::string_view source) {
  support::DiagnosticSink sink;
  auto program = parse(source, sink);
  EXPECT_TRUE(program.has_value()) << sink.str();
  return program;
}

void parse_fails(std::string_view source, std::string_view expected) {
  support::DiagnosticSink sink;
  EXPECT_FALSE(parse(source, sink).has_value());
  EXPECT_NE(sink.str().find(expected), std::string::npos) << sink.str();
}

TEST(AslParser, StatementsKinds) {
  auto program = parse_ok(
      "x := 1;"
      "self.y := 2;"
      "if (x == 1) { x := 2; } else { x := 3; }"
      "while (x < 10) { x := x + 1; }"
      "send Bus.req(x, 2);"
      "return x;");
  ASSERT_EQ(program->statements.size(), 6u);
  EXPECT_EQ(program->statements[0]->kind, StmtKind::kAssign);
  EXPECT_FALSE(program->statements[0]->self_target);
  EXPECT_TRUE(program->statements[1]->self_target);
  EXPECT_EQ(program->statements[2]->kind, StmtKind::kIf);
  EXPECT_EQ(program->statements[3]->kind, StmtKind::kWhile);
  EXPECT_EQ(program->statements[4]->kind, StmtKind::kSend);
  EXPECT_EQ(program->statements[4]->signal, "req");
  EXPECT_EQ(program->statements[5]->kind, StmtKind::kReturn);
}

TEST(AslParser, ElseIfChains) {
  auto program = parse_ok("if (a) { x := 1; } else if (b) { x := 2; } else { x := 3; }");
  const Stmt& if_statement = *program->statements[0];
  ASSERT_EQ(if_statement.else_body.size(), 1u);
  EXPECT_EQ(if_statement.else_body[0]->kind, StmtKind::kIf);
}

TEST(AslParser, PrecedenceShape) {
  auto program = parse_ok("r := 1 + 2 * 3 == 7 and not false;");
  const Expr& root = *program->statements[0]->value;
  EXPECT_EQ(root.kind, ExprKind::kBinary);
  EXPECT_EQ(root.binary_op, BinaryOp::kAnd);
  EXPECT_EQ(root.lhs->binary_op, BinaryOp::kEq);
}

TEST(AslParser, SyntaxErrors) {
  parse_fails("x := ;", "unexpected token");
  parse_fails("if x { }", "expected '('");
  parse_fails("x := 1", "expected ';'");
  parse_fails("send Bus;", "expected '.'");
  parse_fails("while (1) { x := 1;", "unterminated block");
}

// --- Interpreter ------------------------------------------------------------------

TEST(AslInterp, ArithmeticAndLocals) {
  MapObject self;
  auto result = run_asl("a := 6; b := 7; return a * b + 10 % 3;", self);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->as_int(), 43);
}

TEST(AslInterp, SelfAttributesPersist) {
  MapObject self;
  run_asl("self.count := self.count + 1; self.count := self.count + 1;", self);
  EXPECT_EQ(self.get_attribute("count").as_int(), 2);
}

TEST(AslInterp, UnknownLocalFallsThroughToAttributes) {
  MapObject self;
  self.set_attribute("baud", Value{115200});
  auto result = run_asl("return baud / 2;", self);
  EXPECT_EQ(result->as_int(), 57600);
}

TEST(AslInterp, IfElseAndComparisons) {
  MapObject self;
  auto result = run_asl(
      "x := 5;"
      "if (x > 10) { r := \"big\"; } else if (x > 3) { r := \"mid\"; } else { r := \"small\"; }"
      "return r;",
      self);
  EXPECT_EQ(result->as_string(), "mid");
}

TEST(AslInterp, WhileLoopComputesFactorial) {
  MapObject self;
  auto result = run_asl(
      "n := 6; acc := 1;"
      "while (n > 1) { acc := acc * n; n := n - 1; }"
      "return acc;",
      self);
  EXPECT_EQ(result->as_int(), 720);
}

TEST(AslInterp, ReturnExitsEarly) {
  MapObject self;
  auto result = run_asl("x := 1; if (true) { return 99; } x := 2; return x;", self);
  EXPECT_EQ(result->as_int(), 99);
}

TEST(AslInterp, StringConcatenation) {
  MapObject self;
  auto result = run_asl("return \"uart_\" + 3 + \"!\";", self);
  EXPECT_EQ(result->as_string(), "uart_3!");
}

TEST(AslInterp, BooleanShortCircuit) {
  MapObject self;
  self.define_operation("boom", [](const std::vector<Value>&) -> Value {
    throw std::runtime_error("must not be called");
  });
  auto result = run_asl("return false and boom();", self);
  EXPECT_FALSE(result->as_bool());
  result = run_asl("return true or boom();", self);
  EXPECT_TRUE(result->as_bool());
}

TEST(AslInterp, OperationCalls) {
  MapObject self;
  self.define_operation("sum", [](const std::vector<Value>& args) {
    std::int64_t total = 0;
    for (const Value& v : args) total += v.as_int();
    return Value{total};
  });
  auto result = run_asl("return sum(1, 2, 3) + self.sum(4, 5);", self);
  EXPECT_EQ(result->as_int(), 15);
}

TEST(AslInterp, SendSignalRecordsArguments) {
  MapObject self;
  run_asl("send Bus.write(1 + 2, \"data\");", self);
  ASSERT_EQ(self.sent_signals().size(), 1u);
  EXPECT_EQ(self.sent_signals()[0].target, "Bus");
  EXPECT_EQ(self.sent_signals()[0].signal, "write");
  EXPECT_EQ(self.sent_signals()[0].arguments[0].as_int(), 3);
  EXPECT_EQ(self.sent_signals()[0].arguments[1].as_string(), "data");
}

TEST(AslInterp, DivisionByZeroThrows) {
  MapObject self;
  EXPECT_THROW(run_asl("return 1 / 0;", self), std::runtime_error);
  EXPECT_THROW(run_asl("return 1 % 0;", self), std::runtime_error);
}

TEST(AslInterp, InfiniteLoopHitsStepBudget) {
  MapObject self;
  EXPECT_THROW(run_asl("while (true) { x := 1; }", self, 1000), std::runtime_error);
}

TEST(AslInterp, StringAsIntThrows) {
  MapObject self;
  EXPECT_THROW(run_asl("return \"abc\" - 1;", self), std::runtime_error);
}

TEST(AslInterp, UnknownOperationThrows) {
  MapObject self;
  EXPECT_THROW(run_asl("return nope();", self), std::runtime_error);
}

TEST(AslInterp, SyntaxErrorsSurfaceFromRunAsl) {
  MapObject self;
  EXPECT_THROW(run_asl("x := := 1;", self), std::runtime_error);
}

TEST(AslInterp, StatsCountWork) {
  support::DiagnosticSink sink;
  auto program = parse("x := 0; while (x < 10) { x := x + 1; }", sink);
  ASSERT_TRUE(program.has_value());
  MapObject self;
  Environment environment(self);
  Interpreter interpreter;
  interpreter.execute(*program, environment);
  EXPECT_GT(interpreter.stats().statements_executed, 10u);
  EXPECT_GT(interpreter.stats().expressions_evaluated, 20u);
}

TEST(AslInterp, TruthinessRules) {
  MapObject self;
  EXPECT_TRUE(run_asl("return 5;", self)->as_bool());
  EXPECT_FALSE(run_asl("return 0;", self)->as_bool());
  EXPECT_FALSE(run_asl("return \"\";", self)->as_bool());
  EXPECT_TRUE(run_asl("return \"x\";", self)->as_bool());
}

TEST(AslInterp, ValueEqualityAcrossTypes) {
  MapObject self;
  EXPECT_FALSE(run_asl("return 1 == \"1\";", self)->as_bool());
  EXPECT_TRUE(run_asl("return \"a\" == \"a\";", self)->as_bool());
  EXPECT_TRUE(run_asl("return 2 != 3;", self)->as_bool());
}

// Property sweep: computed gcd matches a reference implementation.
class AslGcdProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AslGcdProperty, MatchesReference) {
  auto [a, b] = GetParam();
  MapObject self;
  self.set_attribute("a", Value{a});
  self.set_attribute("b", Value{b});
  auto result = run_asl(
      "x := a; y := b;"
      "while (y != 0) { t := y; y := x % y; x := t; }"
      "return x;",
      self);
  ASSERT_TRUE(result.has_value());
  std::int64_t expected = std::gcd(a, b);
  EXPECT_EQ(result->as_int(), expected);
}

INSTANTIATE_TEST_SUITE_P(Pairs, AslGcdProperty,
                         ::testing::Values(std::tuple{12, 18}, std::tuple{7, 13},
                                           std::tuple{100, 75}, std::tuple{1, 999},
                                           std::tuple{144, 89}, std::tuple{270, 192}));

}  // namespace
}  // namespace umlsoc::asl
