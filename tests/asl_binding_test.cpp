// Tests for model-text execution: statecharts and activities whose guards,
// effects and actions are pure ASL text, bound and run without any C++
// lambdas — including through an XMI round-trip (author once, run anywhere).
#include <gtest/gtest.h>

#include "activity/interpreter.hpp"
#include "codegen/asl_binding.hpp"
#include "statechart/interpreter.hpp"
#include "xmi/behavior.hpp"

namespace umlsoc::codegen {
namespace {

// --- Statechart binding -----------------------------------------------------------

/// Counter machine authored entirely in model text.
std::unique_ptr<statechart::StateMachine> make_text_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("counter");
  statechart::Region& top = machine->top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& low = top.add_state("Low");
  statechart::State& high = top.add_state("High");
  low.set_entry(statechart::Behavior{"self.entries := self.entries + 1;", nullptr});
  top.add_transition(initial, low);
  top.add_transition(low, high)
      .set_trigger("add")
      .set_guard(statechart::Guard{"self.count + data >= 10", nullptr})
      .set_effect(statechart::Behavior{"self.count := self.count + data;", nullptr});
  top.add_transition(low, low)
      .set_trigger("add")
      .set_internal(true)
      .set_guard(statechart::Guard{"self.count + data < 10", nullptr})
      .set_effect(statechart::Behavior{"self.count := self.count + data;", nullptr});
  top.add_transition(high, low)
      .set_trigger("reset")
      .set_effect(statechart::Behavior{"self.count := 0; send Log.reset(self.count);",
                                       nullptr});
  return machine;
}

TEST(AslBinding, StatechartRunsFromTextOnly) {
  auto machine = make_text_machine();
  asl::MapObject self;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_statechart_asl(*machine, self, sink)) << sink.str();

  statechart::StateMachineInstance instance(*machine);
  instance.start();
  EXPECT_EQ(self.get_attribute("entries").as_int(), 1);  // Entry action ran.

  instance.dispatch({"add", 4});  // count 4: internal self-loop.
  EXPECT_TRUE(instance.is_in("Low"));
  EXPECT_EQ(self.get_attribute("count").as_int(), 4);

  instance.dispatch({"add", 3});  // 7: still low.
  instance.dispatch({"add", 5});  // 12: guard opens, to High.
  EXPECT_TRUE(instance.is_in("High"));
  EXPECT_EQ(self.get_attribute("count").as_int(), 12);

  instance.dispatch({"reset"});
  EXPECT_TRUE(instance.is_in("Low"));
  EXPECT_EQ(self.get_attribute("count").as_int(), 0);
  EXPECT_EQ(self.get_attribute("entries").as_int(), 2);  // Re-entered Low.
  ASSERT_EQ(self.sent_signals().size(), 1u);              // send in effect.
  EXPECT_EQ(self.sent_signals()[0].signal, "reset");
}

TEST(AslBinding, EventNameVisibleToGuards) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  statechart::State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go").set_guard(
      statechart::Guard{"event == \"go\"", nullptr});

  asl::MapObject self;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_statechart_asl(machine, self, sink)) << sink.str();
  statechart::StateMachineInstance instance(machine);
  instance.start();
  EXPECT_TRUE(instance.dispatch({"go"}));
  EXPECT_TRUE(instance.is_in("B"));
}

TEST(AslBinding, VarOpsTouchInstanceVariables) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  top.add_transition(initial, a);
  top.add_transition(a, a).set_trigger("tick").set_internal(true).set_effect(
      statechart::Behavior{"set_var(\"ticks\", var(\"ticks\") + 1);", nullptr});

  asl::MapObject self;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_statechart_asl(machine, self, sink)) << sink.str();
  statechart::StateMachineInstance instance(machine);
  instance.start();
  for (int i = 0; i < 3; ++i) instance.dispatch({"tick"});
  EXPECT_EQ(instance.variable("ticks"), 3);
}

TEST(AslBinding, BadTextReportedWithSubject) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  a.set_entry(statechart::Behavior{"this is not asl ::", nullptr});
  top.add_transition(initial, a);

  asl::MapObject self;
  support::DiagnosticSink sink;
  EXPECT_FALSE(bind_statechart_asl(machine, self, sink));
  EXPECT_NE(sink.str().find("m.A"), std::string::npos);
  EXPECT_NE(sink.str().find("does not parse"), std::string::npos);
}

TEST(AslBinding, ExistingFnBindingsAreKept) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  int native_calls = 0;
  a.set_entry(statechart::Behavior{"native", [&](statechart::ActionContext&) {
                                     ++native_calls;
                                   }});
  top.add_transition(initial, a);

  asl::MapObject self;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_statechart_asl(machine, self, sink)) << sink.str();  // "native" untouched.
  statechart::StateMachineInstance instance(machine);
  instance.start();
  EXPECT_EQ(native_calls, 1);
}

TEST(AslBinding, MachineFromXmiExecutesItsOwnText) {
  // Author text machine -> XMI -> reread -> bind -> run. No C++ behavior
  // code anywhere in the loop.
  auto machine = make_text_machine();
  std::string text = xmi::write_state_machine(*machine);
  support::DiagnosticSink sink;
  auto reread = xmi::read_state_machine(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();

  asl::MapObject self;
  ASSERT_TRUE(bind_statechart_asl(*reread, self, sink)) << sink.str();
  statechart::StateMachineInstance instance(*reread);
  instance.start();
  instance.dispatch({"add", 11});
  EXPECT_TRUE(instance.is_in("High"));
  EXPECT_EQ(self.get_attribute("count").as_int(), 11);
}

// --- Activity binding --------------------------------------------------------------

TEST(AslBinding, ActivityScriptsTransformTokens) {
  activity::Activity pipeline("calc");
  activity::ActivityNode& initial = pipeline.add_initial();
  activity::ActivityNode& doubler = pipeline.add_action("doubler");
  doubler.set_script("return input * 2;");
  activity::ActivityNode& inc = pipeline.add_action("inc");
  inc.set_script("output := input + 1;");
  activity::ActivityNode& final_node = pipeline.add_final();
  pipeline.add_edge(initial, doubler, true);
  pipeline.add_edge(doubler, inc, true);
  pipeline.add_edge(inc, final_node, true);

  asl::MapObject context;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_activity_asl(pipeline, context, sink)) << sink.str();

  activity::ActivityExecution execution(pipeline);
  execution.start();
  // Inject 5 through the pipeline: (5*2)+1 = 11... start token is 0, so
  // drive via a placed token instead.
  execution.place_token(*pipeline.edges()[1].get(), activity::Token{10});  // doubler->inc.
  execution.run();
  ASSERT_FALSE(execution.outputs().empty());
  // Outputs contain both the start-token path (0*2+1=1) and the injected
  // token (10+1=11).
  bool found_eleven = false;
  for (std::int64_t output : execution.outputs()) {
    if (output == 11) found_eleven = true;
  }
  EXPECT_TRUE(found_eleven);
}

TEST(AslBinding, ActivityEdgeGuardsRouteTokens) {
  activity::Activity router("router");
  activity::ActivityNode& initial = router.add_initial();
  activity::ActivityNode& source = router.add_action("source");
  source.set_script("return 42;");
  activity::ActivityNode& decision = router.add_node(activity::NodeKind::kDecision, "d");
  activity::ActivityNode& big = router.add_action("big");
  activity::ActivityNode& small = router.add_action("small");
  activity::ActivityNode& final_node = router.add_final();
  router.add_edge(initial, source);
  router.add_edge(source, decision, true);
  router.add_edge(decision, big, true)
      .set_guard(activity::EdgeGuard{"token >= 10", nullptr});
  router.add_edge(decision, small, true).set_guard(activity::EdgeGuard{"else", nullptr});
  router.add_edge(big, final_node);
  router.add_edge(small, final_node);

  asl::MapObject context;
  support::DiagnosticSink sink;
  ASSERT_TRUE(bind_activity_asl(router, context, sink)) << sink.str();

  activity::ActivityExecution execution(router);
  execution.run();
  EXPECT_EQ(execution.firings_of(big), 1u);
  EXPECT_EQ(execution.firings_of(small), 0u);
}

TEST(AslBinding, ActivityScriptSurvivesXmiRoundTrip) {
  activity::Activity original("a");
  activity::ActivityNode& initial = original.add_initial();
  activity::ActivityNode& action = original.add_action("work");
  action.set_script("return input + 7;");
  activity::ActivityNode& final_node = original.add_final();
  original.add_edge(initial, action, true);
  original.add_edge(action, final_node, true);

  std::string text = xmi::write_activity(original);
  support::DiagnosticSink sink;
  auto reread = xmi::read_activity(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  EXPECT_EQ(reread->find_node("work")->script(), "return input + 7;");

  asl::MapObject context;
  ASSERT_TRUE(bind_activity_asl(*reread, context, sink)) << sink.str();
  activity::ActivityExecution execution(*reread);
  execution.run();
  ASSERT_EQ(execution.outputs().size(), 1u);
  EXPECT_EQ(execution.outputs()[0], 7);  // Start token 0 + 7.
}

TEST(AslBinding, ActivityBadScriptReported) {
  activity::Activity bad("bad");
  bad.add_action("oops").set_script(":::");
  asl::MapObject context;
  support::DiagnosticSink sink;
  EXPECT_FALSE(bind_activity_asl(bad, context, sink));
  EXPECT_NE(sink.str().find("bad.oops"), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::codegen
