// Simulation kernel tests: scheduling order, delta cycles, signals, clocks,
// fifos, the memory-mapped bus, and tracing.
#include <gtest/gtest.h>

#include "sim/bus.hpp"
#include "sim/signal.hpp"
#include "sim/trace.hpp"

namespace umlsoc::sim {
namespace {

TEST(SimTime, UnitsAndFormat) {
  EXPECT_EQ(SimTime::ns(3).picoseconds(), 3000u);
  EXPECT_EQ(SimTime::us(2).picoseconds(), 2000000u);
  EXPECT_EQ(SimTime::ps(1500).str(), "1500ps");
  EXPECT_EQ(SimTime::ns(5).str(), "5ns");
  EXPECT_EQ(SimTime::us(7).str(), "7us");
  EXPECT_LT(SimTime::ns(1), SimTime::ns(2));
}

TEST(Kernel, EventsRunInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule(SimTime::ns(30), [&] { order.push_back(3); });
  kernel.schedule(SimTime::ns(10), [&] { order.push_back(1); });
  kernel.schedule(SimTime::ns(20), [&] { order.push_back(2); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), SimTime::ns(30));
}

TEST(Kernel, SameTimeEventsRunInScheduleOrder) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    kernel.schedule(SimTime::ns(1), [&order, i] { order.push_back(i); });
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, NestedSchedulingFromCallbacks) {
  Kernel kernel;
  std::vector<std::uint64_t> times;
  kernel.schedule(SimTime::ns(1), [&] {
    times.push_back(kernel.now().picoseconds());
    kernel.schedule(SimTime::ns(2), [&] { times.push_back(kernel.now().picoseconds()); });
  });
  kernel.run();
  EXPECT_EQ(times, (std::vector<std::uint64_t>{1000, 3000}));
}

TEST(Kernel, RunUntilStopsEarly) {
  Kernel kernel;
  int fired = 0;
  kernel.schedule(SimTime::ns(1), [&] { ++fired; });
  kernel.schedule(SimTime::ns(100), [&] { ++fired; });
  kernel.run(SimTime::ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(kernel.idle());
  kernel.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(kernel.idle());
}

TEST(Kernel, ZeroDelayIsSameTimeLaterBatch) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule(SimTime::ns(1), [&] {
    order.push_back(1);
    kernel.schedule(SimTime(), [&] { order.push_back(2); });
    order.push_back(3);
  });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(kernel.now(), SimTime::ns(1));
}

TEST(Signal, WriteVisibleOnlyAfterUpdatePhase) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 0);
  int seen_during_write_delta = -1;
  kernel.schedule(SimTime::ns(1), [&] {
    signal.write(42);
    seen_during_write_delta = signal.read();  // Old value still visible.
  });
  kernel.run();
  EXPECT_EQ(seen_during_write_delta, 0);
  EXPECT_EQ(signal.read(), 42);
  EXPECT_EQ(signal.change_count(), 1u);
}

TEST(Signal, NoNotificationWithoutValueChange) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 7);
  int notifications = 0;
  signal.value_changed().subscribe([&] { ++notifications; });
  kernel.schedule(SimTime::ns(1), [&] { signal.write(7); });  // Same value.
  kernel.schedule(SimTime::ns(2), [&] { signal.write(8); });
  kernel.run();
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(signal.change_count(), 1u);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 0);
  kernel.schedule(SimTime::ns(1), [&] {
    signal.write(1);
    signal.write(2);
  });
  kernel.run();
  EXPECT_EQ(signal.read(), 2);
  EXPECT_EQ(signal.change_count(), 1u);  // One committed change.
}

TEST(Signal, ChainedSensitivityPropagatesOverDeltas) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  Signal<int> b(kernel, "b", 0);
  // b follows a + 1 (combinational process sensitive to a).
  a.value_changed().subscribe([&] { b.write(a.read() + 1); });
  kernel.schedule(SimTime::ns(1), [&] { a.write(10); });
  kernel.run();
  EXPECT_EQ(b.read(), 11);
  EXPECT_GE(kernel.delta_count(), 2u);  // a-change delta, then b-change delta.
}

TEST(Signal, CombinationalLoopHitsDeltaLimit) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  // a := a + 1 whenever a changes: classic delta livelock.
  a.value_changed().subscribe([&] { a.write(a.read() + 1); });
  kernel.schedule(SimTime::ns(1), [&] { a.write(1); });
  EXPECT_THROW(kernel.run(), std::runtime_error);
}

TEST(Clock, TogglesAtHalfPeriod) {
  Kernel kernel;
  Clock clock(kernel, "clk", SimTime::ns(10));
  std::vector<std::pair<std::uint64_t, bool>> edges;
  clock.signal().value_changed().subscribe(
      [&] { edges.emplace_back(kernel.now().picoseconds(), clock.high()); });
  kernel.run(SimTime::ns(25));
  // Edges at 5ns(1), 10ns(0), 15ns(1), 20ns(0), 25ns(1).
  ASSERT_GE(edges.size(), 4u);
  EXPECT_EQ(edges[0], (std::pair<std::uint64_t, bool>{5000, true}));
  EXPECT_EQ(edges[1], (std::pair<std::uint64_t, bool>{10000, false}));
  EXPECT_EQ(edges[2], (std::pair<std::uint64_t, bool>{15000, true}));
}

TEST(Fifo, WriteReadAndCapacity) {
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 2);
  EXPECT_TRUE(fifo.nb_write(1));
  EXPECT_TRUE(fifo.nb_write(2));
  EXPECT_TRUE(fifo.full());
  EXPECT_FALSE(fifo.nb_write(3));
  int out = 0;
  EXPECT_TRUE(fifo.nb_read(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(fifo.nb_read(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(fifo.nb_read(out));
  EXPECT_EQ(fifo.writes(), 2u);
  EXPECT_EQ(fifo.reads(), 2u);
}

TEST(Fifo, ProducerConsumerViaEvents) {
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 4);
  std::vector<int> consumed;

  // Consumer: drain whenever data shows up.
  fifo.data_available().subscribe([&] {
    int value = 0;
    while (fifo.nb_read(value)) consumed.push_back(value);
  });
  // Producer: one item per 10ns.
  for (int i = 0; i < 5; ++i) {
    kernel.schedule(SimTime::ns(10 * (i + 1)), [&fifo, i] { fifo.nb_write(i); });
  }
  kernel.run();
  EXPECT_EQ(consumed, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, ReadWriteThroughDeviceWindow) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(5));
  std::uint64_t reg = 0;
  bus.map_device(
      "uart", 0x1000, 0x10, [&](std::uint64_t) { return reg; },
      [&](std::uint64_t, std::uint64_t value) { reg = value; });

  std::uint64_t read_result = 0;
  std::uint64_t read_time = 0;
  bus.write(0x1004, 99);
  bus.read(0x1008, [&](std::uint64_t value) {
    read_result = value;
    read_time = kernel.now().picoseconds();
  });
  kernel.run();
  EXPECT_EQ(reg, 99u);
  EXPECT_EQ(read_result, 99u);
  EXPECT_EQ(read_time, 5000u);
  EXPECT_EQ(bus.reads(), 1u);
  EXPECT_EQ(bus.writes(), 1u);
  EXPECT_EQ(bus.errors(), 0u);
}

TEST(Bus, UnmappedAddressErrors) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(1));
  std::uint64_t result = 0;
  bus.read(0xdead, [&](std::uint64_t value) { result = value; });
  kernel.run();
  EXPECT_EQ(result, MemoryMappedBus::kBusError);
  EXPECT_EQ(bus.errors(), 1u);
}

TEST(Bus, WriteCompletionCallback) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(3));
  std::uint64_t mem = 0;
  bus.map_device(
      "ram", 0, 0x100, [&](std::uint64_t) { return mem; },
      [&](std::uint64_t, std::uint64_t value) { mem = value; });
  bool done = false;
  bus.write(0x10, 5, [&] { done = (mem == 5); });
  kernel.run();
  EXPECT_TRUE(done);
}

TEST(Tracer, RecordsChangesWithTimestamps) {
  Kernel kernel;
  Signal<int> signal(kernel, "data", 0);
  Tracer tracer(kernel);
  tracer.trace(signal);
  kernel.schedule(SimTime::ns(1), [&] { signal.write(5); });
  kernel.schedule(SimTime::ns(2), [&] { signal.write(6); });
  kernel.run();
  ASSERT_EQ(tracer.change_count(), 3u);  // Initial + 2 changes.
  EXPECT_EQ(tracer.records()[0].value, "0");
  EXPECT_EQ(tracer.records()[1].time_ps, 1000u);
  EXPECT_EQ(tracer.records()[2].value, "6");
  std::string dump = tracer.dump();
  EXPECT_NE(dump.find("2000 data=6"), std::string::npos);
}

TEST(Kernel, CountersAdvance) {
  Kernel kernel;
  Clock clock(kernel, "clk", SimTime::ns(2));
  (void)clock;
  kernel.run(SimTime::ns(20));
  EXPECT_GT(kernel.events_processed(), 10u);
  EXPECT_GT(kernel.delta_count(), 10u);
}

// Property: N producers and one consumer over a fifo — every produced item
// is consumed exactly once, in FIFO order per producer.
class FifoProperty : public ::testing::TestWithParam<int> {};

TEST_P(FifoProperty, NoLossNoDuplication) {
  const int producers = GetParam();
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 3);
  std::vector<int> consumed;
  fifo.data_available().subscribe([&] {
    int value = 0;
    while (fifo.nb_read(value)) consumed.push_back(value);
  });

  int expected_total = 0;
  for (int p = 0; p < producers; ++p) {
    for (int i = 0; i < 10; ++i) {
      int value = p * 100 + i;
      ++expected_total;
      // Retry writes until space: schedule with staggered times.
      kernel.schedule(SimTime::ns(static_cast<std::uint64_t>(1 + i * producers + p)),
                      [&fifo, value, &kernel]() {
                        std::function<void()> attempt = [&fifo, value]() {};
                        if (!fifo.nb_write(value)) {
                          // Full: retry 1ns later until accepted.
                          auto retry = std::make_shared<std::function<void()>>();
                          *retry = [&fifo, value, &kernel, retry] {
                            if (!fifo.nb_write(value)) kernel.schedule(SimTime::ns(1), *retry);
                          };
                          kernel.schedule(SimTime::ns(1), *retry);
                        }
                      });
    }
  }
  kernel.run();
  EXPECT_EQ(static_cast<int>(consumed.size()), expected_total);
  // Per-producer FIFO order.
  for (int p = 0; p < producers; ++p) {
    int last = -1;
    for (int value : consumed) {
      if (value / 100 == p) {
        EXPECT_GT(value, last);
        last = value;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Producers, FifoProperty, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace umlsoc::sim
