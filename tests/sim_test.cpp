// Simulation kernel tests: scheduling order, delta cycles, signals, clocks,
// fifos, the memory-mapped bus, and tracing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "sim/bus.hpp"
#include "sim/signal.hpp"
#include "sim/trace.hpp"

// Counting global allocator: lets tests assert that the kernel's steady-state
// hot path performs zero heap allocations. GCC inlines the malloc/free bodies
// into new/delete call sites and then reports a mismatched pairing; the
// replacement below is the standard conformant pattern, so silence the false
// positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace umlsoc::sim {
namespace {

// Handle-based one-shot stimulus: registers the body as an ordinary process
// and schedules the handle. Replaces the deprecated transient
// schedule(delay, callback) shim in test setup code.
template <typename F>
void once(Kernel& kernel, SimTime delay, F&& body) {
  kernel.schedule(delay, kernel.register_process(std::forward<F>(body)));
}

TEST(SimTime, UnitsAndFormat) {
  EXPECT_EQ(SimTime::ns(3).picoseconds(), 3000u);
  EXPECT_EQ(SimTime::us(2).picoseconds(), 2000000u);
  EXPECT_EQ(SimTime::ps(1500).str(), "1500ps");
  EXPECT_EQ(SimTime::ns(5).str(), "5ns");
  EXPECT_EQ(SimTime::us(7).str(), "7us");
  EXPECT_LT(SimTime::ns(1), SimTime::ns(2));
}

TEST(SimTime, AdditionSaturatesInsteadOfWrapping) {
  EXPECT_EQ(SimTime::ns(1) + SimTime::ns(2), SimTime::ns(3));
  EXPECT_EQ(SimTime::max() + SimTime::ns(1), SimTime::max());
  EXPECT_EQ(SimTime::ns(1) + SimTime::max(), SimTime::max());
  const SimTime near_max = SimTime::ps(std::numeric_limits<std::uint64_t>::max() - 5);
  EXPECT_EQ(near_max + SimTime::ps(5), SimTime::max());
  EXPECT_EQ(near_max + SimTime::ps(6), SimTime::max());  // Would wrap to 0.
  EXPECT_EQ(near_max + SimTime::ps(2),
            SimTime::ps(std::numeric_limits<std::uint64_t>::max() - 3));
}

TEST(Kernel, EventsRunInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  once(kernel, SimTime::ns(30), [&] { order.push_back(3); });
  once(kernel, SimTime::ns(10), [&] { order.push_back(1); });
  once(kernel, SimTime::ns(20), [&] { order.push_back(2); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), SimTime::ns(30));
}

TEST(Kernel, SameTimeEventsRunInScheduleOrder) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    once(kernel, SimTime::ns(1), [&order, i] { order.push_back(i); });
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, NestedSchedulingFromCallbacks) {
  Kernel kernel;
  std::vector<std::uint64_t> times;
  once(kernel, SimTime::ns(1), [&] {
    times.push_back(kernel.now().picoseconds());
    once(kernel, SimTime::ns(2), [&] { times.push_back(kernel.now().picoseconds()); });
  });
  kernel.run();
  EXPECT_EQ(times, (std::vector<std::uint64_t>{1000, 3000}));
}

TEST(Kernel, RunUntilStopsEarly) {
  Kernel kernel;
  int fired = 0;
  once(kernel, SimTime::ns(1), [&] { ++fired; });
  once(kernel, SimTime::ns(100), [&] { ++fired; });
  kernel.run(SimTime::ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(kernel.idle());
  kernel.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(kernel.idle());
}

TEST(Kernel, ZeroDelayIsSameTimeLaterBatch) {
  Kernel kernel;
  std::vector<int> order;
  once(kernel, SimTime::ns(1), [&] {
    order.push_back(1);
    once(kernel, SimTime(), [&] { order.push_back(2); });
    order.push_back(3);
  });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(kernel.now(), SimTime::ns(1));
}

TEST(Signal, WriteVisibleOnlyAfterUpdatePhase) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 0);
  int seen_during_write_delta = -1;
  once(kernel, SimTime::ns(1), [&] {
    signal.write(42);
    seen_during_write_delta = signal.read();  // Old value still visible.
  });
  kernel.run();
  EXPECT_EQ(seen_during_write_delta, 0);
  EXPECT_EQ(signal.read(), 42);
  EXPECT_EQ(signal.change_count(), 1u);
}

TEST(Signal, NoNotificationWithoutValueChange) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 7);
  int notifications = 0;
  signal.value_changed().subscribe([&] { ++notifications; });
  once(kernel, SimTime::ns(1), [&] { signal.write(7); });  // Same value.
  once(kernel, SimTime::ns(2), [&] { signal.write(8); });
  kernel.run();
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(signal.change_count(), 1u);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel kernel;
  Signal<int> signal(kernel, "s", 0);
  once(kernel, SimTime::ns(1), [&] {
    signal.write(1);
    signal.write(2);
  });
  kernel.run();
  EXPECT_EQ(signal.read(), 2);
  EXPECT_EQ(signal.change_count(), 1u);  // One committed change.
}

TEST(Signal, ChainedSensitivityPropagatesOverDeltas) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  Signal<int> b(kernel, "b", 0);
  // b follows a + 1 (combinational process sensitive to a).
  a.value_changed().subscribe([&] { b.write(a.read() + 1); });
  once(kernel, SimTime::ns(1), [&] { a.write(10); });
  kernel.run();
  EXPECT_EQ(b.read(), 11);
  EXPECT_GE(kernel.delta_count(), 2u);  // a-change delta, then b-change delta.
}

TEST(Signal, CombinationalLoopHitsDeltaLimit) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  // a := a + 1 whenever a changes: classic delta livelock.
  a.value_changed().subscribe([&] { a.write(a.read() + 1); });
  once(kernel, SimTime::ns(1), [&] { a.write(1); });
  EXPECT_THROW(kernel.run(), std::runtime_error);
}

TEST(Clock, TogglesAtHalfPeriod) {
  Kernel kernel;
  Clock clock(kernel, "clk", SimTime::ns(10));
  std::vector<std::pair<std::uint64_t, bool>> edges;
  clock.signal().value_changed().subscribe(
      [&] { edges.emplace_back(kernel.now().picoseconds(), clock.high()); });
  kernel.run(SimTime::ns(25));
  // Edges at 5ns(1), 10ns(0), 15ns(1), 20ns(0), 25ns(1).
  ASSERT_GE(edges.size(), 4u);
  EXPECT_EQ(edges[0], (std::pair<std::uint64_t, bool>{5000, true}));
  EXPECT_EQ(edges[1], (std::pair<std::uint64_t, bool>{10000, false}));
  EXPECT_EQ(edges[2], (std::pair<std::uint64_t, bool>{15000, true}));
}

TEST(Fifo, WriteReadAndCapacity) {
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 2);
  EXPECT_TRUE(fifo.nb_write(1));
  EXPECT_TRUE(fifo.nb_write(2));
  EXPECT_TRUE(fifo.full());
  EXPECT_FALSE(fifo.nb_write(3));
  int out = 0;
  EXPECT_TRUE(fifo.nb_read(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(fifo.nb_read(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(fifo.nb_read(out));
  EXPECT_EQ(fifo.writes(), 2u);
  EXPECT_EQ(fifo.reads(), 2u);
}

TEST(Fifo, ProducerConsumerViaEvents) {
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 4);
  std::vector<int> consumed;

  // Consumer: drain whenever data shows up.
  fifo.data_available().subscribe([&] {
    int value = 0;
    while (fifo.nb_read(value)) consumed.push_back(value);
  });
  // Producer: one item per 10ns.
  for (int i = 0; i < 5; ++i) {
    once(kernel, SimTime::ns(10 * (i + 1)), [&fifo, i] { fifo.nb_write(i); });
  }
  kernel.run();
  EXPECT_EQ(consumed, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, ReadWriteThroughDeviceWindow) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(5));
  std::uint64_t reg = 0;
  bus.map_device(
      "uart", 0x1000, 0x10, [&](std::uint64_t) { return reg; },
      [&](std::uint64_t, std::uint64_t value) { reg = value; });

  std::uint64_t read_result = 0;
  std::uint64_t read_time = 0;
  BusStatus read_status = BusStatus::kError;
  bus.write(0x1004, 99, MemoryMappedBus::WriteCompletion(nullptr));
  bus.read(0x1008, [&](BusStatus status, std::uint64_t value) {
    read_status = status;
    read_result = value;
    read_time = kernel.now().picoseconds();
  });
  kernel.run();
  EXPECT_EQ(read_status, BusStatus::kOk);
  EXPECT_EQ(reg, 99u);
  EXPECT_EQ(read_result, 99u);
  EXPECT_EQ(read_time, 5000u);
  EXPECT_EQ(bus.reads(), 1u);
  EXPECT_EQ(bus.writes(), 1u);
  EXPECT_EQ(bus.errors(), 0u);
}

TEST(Bus, WriteCompletionCallback) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(3));
  std::uint64_t mem = 0;
  bus.map_device(
      "ram", 0, 0x100, [&](std::uint64_t) { return mem; },
      [&](std::uint64_t, std::uint64_t value) { mem = value; });
  bool done = false;
  bus.write(0x10, 5, [&](BusStatus status) { done = (status == BusStatus::kOk && mem == 5); });
  kernel.run();
  EXPECT_TRUE(done);
}

TEST(Bus, OverlappingWindowsAreRejectedAtRegistration) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(1));
  auto read = [](std::uint64_t) { return std::uint64_t{0}; };
  auto write = [](std::uint64_t, std::uint64_t) {};
  bus.map_device("uart", 0x1000, 0x10, read, write);

  EXPECT_THROW(bus.map_device("dup", 0x1000, 0x10, read, write), std::invalid_argument);
  EXPECT_THROW(bus.map_device("tail", 0x100f, 0x10, read, write), std::invalid_argument);
  EXPECT_THROW(bus.map_device("head", 0x0ff8, 0x10, read, write), std::invalid_argument);
  EXPECT_THROW(bus.map_device("span", 0x0800, 0x1000, read, write), std::invalid_argument);
  EXPECT_THROW(bus.map_device("empty", 0x2000, 0, read, write), std::invalid_argument);
  // Adjacent windows are fine.
  EXPECT_NO_THROW(bus.map_device("next", 0x1010, 0x10, read, write));
  EXPECT_NO_THROW(bus.map_device("prev", 0x0ff0, 0x10, read, write));
}

TEST(Bus, AllOnesValueIsNotReportedAsError) {
  // Regression: a device may legitimately return the kBusError bit pattern;
  // only the status distinguishes it from a decode error.
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(1));
  bus.map_device(
      "ones", 0, 0x10, [](std::uint64_t) { return ~0ULL; },
      [](std::uint64_t, std::uint64_t) {});
  BusStatus status = BusStatus::kError;
  std::uint64_t value = 0;
  bus.read(0x0, [&](BusStatus s, std::uint64_t v) {
    status = s;
    value = v;
  });
  kernel.run();
  EXPECT_EQ(status, BusStatus::kOk);
  EXPECT_EQ(value, ~0ULL);
  EXPECT_EQ(bus.errors(), 0u);
}

TEST(Bus, UnmappedAddressCompletesWithErrorStatus) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(1));
  BusStatus read_status = BusStatus::kOk;
  BusStatus write_status = BusStatus::kOk;
  bus.read(0xdead, [&](BusStatus s, std::uint64_t) { read_status = s; });
  bus.write(0xbeef, 1, [&](BusStatus s) { write_status = s; });
  kernel.run();
  EXPECT_EQ(read_status, BusStatus::kError);
  EXPECT_EQ(write_status, BusStatus::kError);
  EXPECT_EQ(bus.errors(), 2u);
}

TEST(Tracer, RecordsChangesWithTimestamps) {
  Kernel kernel;
  Signal<int> signal(kernel, "data", 0);
  Tracer tracer(kernel);
  tracer.trace(signal);
  once(kernel, SimTime::ns(1), [&] { signal.write(5); });
  once(kernel, SimTime::ns(2), [&] { signal.write(6); });
  kernel.run();
  ASSERT_EQ(tracer.change_count(), 3u);  // Initial + 2 changes.
  EXPECT_EQ(tracer.records()[0].value, "0");
  EXPECT_EQ(tracer.records()[1].time_ps, 1000u);
  EXPECT_EQ(tracer.records()[2].value, "6");
  std::string dump = tracer.dump();
  EXPECT_NE(dump.find("2000 data=6"), std::string::npos);
}

TEST(Tracer, DestructionBeforeSignalIsSafe) {
  Kernel kernel;
  Signal<int> signal(kernel, "data", 0);
  {
    Tracer tracer(kernel);
    tracer.trace(signal);
    once(kernel, SimTime::ns(1), [&] { signal.write(5); });
    kernel.run();
    EXPECT_EQ(tracer.change_count(), 2u);
  }
  // SimEvent has no unsubscribe, so the trace callback outlives the tracer;
  // it must degrade to a no-op instead of writing through a dangling
  // record buffer.
  once(kernel, SimTime::ns(2), [&] { signal.write(6); });
  kernel.run();
  EXPECT_EQ(signal.read(), 6);
}

TEST(Kernel, CountersAdvance) {
  Kernel kernel;
  Clock clock(kernel, "clk", SimTime::ns(2));
  (void)clock;
  kernel.run(SimTime::ns(20));
  EXPECT_GT(kernel.events_processed(), 10u);
  EXPECT_GT(kernel.delta_count(), 10u);
}

TEST(Kernel, FifoOrderAcrossInterleavedHandles) {
  // Same-time events run in schedule order, including when registrations and
  // schedules interleave — schedule order, not registration order, decides.
  Kernel kernel;
  std::vector<int> order;
  const ProcessId first = kernel.register_process([&] { order.push_back(0); });
  const ProcessId third = kernel.register_process([&] { order.push_back(2); });
  const ProcessId second = kernel.register_process([&] { order.push_back(1); });
  const ProcessId fourth = kernel.register_process([&] { order.push_back(3); });
  kernel.schedule(SimTime::ns(5), first);
  kernel.schedule(SimTime::ns(5), second);
  kernel.schedule(SimTime::ns(5), third);
  kernel.schedule(SimTime::ns(5), fourth);
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Kernel, LargeSameTimeBatchKeepsFifoOrder) {
  // >32 events at one instant exercises the sort (not insertion-sort) path
  // of the wheel-bucket collection.
  Kernel kernel;
  std::vector<int> order;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(kernel.register_process([&order, i] { order.push_back(i); }));
    kernel.schedule(SimTime::ns(7), ids.back());
  }
  kernel.run();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, SameBucketDifferentTimesStaySeparate) {
  // Two events land in the same wheel bucket (within one ~1ns quantum) but
  // at different picosecond timestamps: the later one must not fire early.
  Kernel kernel;
  std::vector<std::uint64_t> fired;
  once(kernel, SimTime::ps(600), [&] { fired.push_back(kernel.now().picoseconds()); });
  once(kernel, SimTime::ps(100), [&] { fired.push_back(kernel.now().picoseconds()); });
  kernel.run();
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{100, 600}));
}

TEST(SimEvent, DeltaNotificationsCollapse) {
  // Multiple notify() calls before the delta boundary deliver exactly once
  // (SystemC immediate-notification semantics), and the collapse is counted.
  Kernel kernel;
  SimEvent event(kernel, "e");
  int runs = 0;
  event.subscribe([&] { ++runs; });
  once(kernel, SimTime::ns(1), [&] {
    event.notify();
    event.notify();
    event.notify();
  });
  kernel.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(kernel.stats().collapsed_notifications, 2u);
  // Once delivered, a fresh notification in a later instant fires again.
  once(kernel, SimTime::ns(1), [&] { event.notify(); });
  kernel.run();
  EXPECT_EQ(runs, 2);
}

TEST(Kernel, WheelHeapBoundaryPreservesOrder) {
  // Events beyond the wheel horizon overflow to the heap and cascade back
  // into the wheel as time advances; time order and same-time FIFO order
  // hold across the boundary.
  Kernel kernel;
  constexpr std::uint64_t horizon_ps = static_cast<std::uint64_t>(Kernel::kWheelBuckets)
                                       << Kernel::kWheelShift;
  std::vector<int> order;
  // Two same-time far-future events (heap), scheduled before the near ones.
  once(kernel, SimTime::ps(horizon_ps + 5), [&] { order.push_back(3); });
  once(kernel, SimTime::ps(horizon_ps + 5), [&] { order.push_back(4); });
  once(kernel, SimTime::ps(horizon_ps - 1), [&] { order.push_back(2); });  // Last wheel slot.
  once(kernel, SimTime::ps(3), [&] { order.push_back(1); });
  EXPECT_EQ(kernel.stats().heap_hits, 2u);
  EXPECT_EQ(kernel.stats().wheel_hits, 2u);
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_GE(kernel.stats().cascades, 2u);
  EXPECT_EQ(kernel.now(), SimTime::ps(horizon_ps + 5));
}

TEST(Kernel, UsableAfterDeltaLimitThrow) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  a.value_changed().subscribe([&] { a.write(a.read() + 1); });
  int later = 0;
  once(kernel, SimTime::ns(5), [&] { ++later; });
  once(kernel, SimTime::ns(1), [&] { a.write(1); });
  EXPECT_THROW(kernel.run(), std::runtime_error);
  EXPECT_EQ(kernel.stats().max_deltas_per_instant, Kernel::kMaxDeltasPerInstant + 1);
  // The delta state was cleared; pending timed events survive and run.
  kernel.run();
  EXPECT_EQ(later, 1);
  int after = 0;
  once(kernel, SimTime::ns(1), [&] { ++after; });
  kernel.run();
  EXPECT_EQ(after, 1);
  EXPECT_TRUE(kernel.idle());
}

TEST(Kernel, SteadyStateSchedulingIsAllocationFree) {
  // The registered-handle hot path (self-rescheduling process) must not
  // touch the heap once scratch buffers have warmed up: POD queue entries,
  // pooled wheel nodes, no std::function construction per event.
  Kernel kernel;
  int remaining = 20000;
  ProcessId id = kInvalidProcess;
  id = kernel.register_process([&] {
    if (--remaining > 0) kernel.schedule(SimTime::ns(1), id);
  });
  kernel.schedule(SimTime::ns(1), id);
  kernel.run(SimTime::ns(100));  // Warm-up: buffers reach steady capacity.
  const std::uint64_t allocations_before = g_heap_allocations.load();
  const std::uint64_t events_before = kernel.events_processed();
  kernel.run(SimTime::ns(15000));
  EXPECT_GT(kernel.events_processed() - events_before, 10000u);
  EXPECT_EQ(g_heap_allocations.load(), allocations_before);
}

TEST(Kernel, SteadyStateSignalTrafficIsAllocationFree) {
  // Clock + subscribed process: the notify/update/delta machinery also runs
  // allocation-free once warm.
  Kernel kernel;
  Clock clock(kernel, "clk", SimTime::ns(10));
  long edges = 0;
  clock.signal().value_changed().subscribe([&] { ++edges; });
  kernel.run(SimTime::ns(200));  // Warm-up.
  const std::uint64_t allocations_before = g_heap_allocations.load();
  kernel.run(SimTime::us(20));
  EXPECT_GT(edges, 1000L);
  EXPECT_EQ(g_heap_allocations.load(), allocations_before);
}

// Property: N producers and one consumer over a fifo — every produced item
// is consumed exactly once, in FIFO order per producer.
class FifoProperty : public ::testing::TestWithParam<int> {};

TEST_P(FifoProperty, NoLossNoDuplication) {
  const int producers = GetParam();
  Kernel kernel;
  Fifo<int> fifo(kernel, "f", 3);
  std::vector<int> consumed;
  fifo.data_available().subscribe([&] {
    int value = 0;
    while (fifo.nb_read(value)) consumed.push_back(value);
  });

  int expected_total = 0;
  for (int p = 0; p < producers; ++p) {
    for (int i = 0; i < 10; ++i) {
      int value = p * 100 + i;
      ++expected_total;
      // Retry writes until space: a self-rescheduling registered process per
      // item, first attempt at a staggered time.
      auto writer = std::make_shared<ProcessId>(kInvalidProcess);
      *writer = kernel.register_process([&fifo, value, &kernel, writer] {
        if (!fifo.nb_write(value)) kernel.schedule(SimTime::ns(1), *writer);
      });
      kernel.schedule(SimTime::ns(static_cast<std::uint64_t>(1 + i * producers + p)), *writer);
    }
  }
  kernel.run();
  EXPECT_EQ(static_cast<int>(consumed.size()), expected_total);
  // Per-producer FIFO order.
  for (int p = 0; p < producers; ++p) {
    int last = -1;
    for (int value : consumed) {
      if (value / 100 == p) {
        EXPECT_GT(value, last);
        last = value;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Producers, FifoProperty, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace umlsoc::sim
