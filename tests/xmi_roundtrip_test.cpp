// XMI round-trip tests: write_model(read_model(write_model(m))) must be
// structurally identical to m, across hand-built and randomized models.
#include <gtest/gtest.h>

#include "uml/compare.hpp"
#include "uml/instance.hpp"
#include "uml/synthetic.hpp"
#include "uml/validate.hpp"
#include "xmi/serialize.hpp"

namespace umlsoc::xmi {
namespace {

using uml::Model;

void expect_roundtrip(Model& model) {
  std::string text = write_model(model);
  support::DiagnosticSink sink;
  std::unique_ptr<Model> reread = read_model(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  support::DiagnosticSink compare_sink;
  EXPECT_TRUE(structurally_equal(model, *reread, compare_sink)) << compare_sink.str();
  // Idempotence: a second write of the reread model parses equal again.
  std::string text2 = write_model(*reread);
  support::DiagnosticSink sink2;
  std::unique_ptr<Model> reread2 = read_model(text2, sink2);
  ASSERT_NE(reread2, nullptr) << sink2.str();
  support::DiagnosticSink compare_sink2;
  EXPECT_TRUE(structurally_equal(*reread, *reread2, compare_sink2)) << compare_sink2.str();
}

TEST(XmiRoundTrip, EmptyModel) {
  Model model("Empty");
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, ClassWithFeatures) {
  Model model("M");
  uml::Package& pkg = model.add_package("ip");
  uml::Class& cls = pkg.add_class("Uart");
  cls.set_active(true);
  cls.set_documentation("A tiny UART <ip&core>");
  uml::Property& baud = cls.add_property("baud", &model.primitive("Integer", 32));
  baud.set_default_value("115200");
  baud.set_read_only(true);
  uml::Operation& send = cls.add_operation("send");
  send.add_parameter("byte", &model.primitive("Byte", 8));
  send.set_return_type(model.primitive("Boolean", 1));
  send.set_body("self.busy := true;");
  send.set_query(false);
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, VisibilityAndMultiplicity) {
  Model model("M");
  uml::Class& cls = model.add_package("p").add_class("C");
  uml::Property& items = cls.add_property("items", &model.primitive("Integer", 32));
  items.set_multiplicity({0, uml::Multiplicity::kUnlimited});
  items.set_visibility(uml::Visibility::kPrivate);
  uml::Property& pair = cls.add_property("pair", &model.primitive("Integer", 32));
  pair.set_multiplicity({2, 2});
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, InterfacesGeneralizationsRealizations) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Interface& iface = pkg.add_interface("IStream");
  iface.add_operation("read").set_return_type(model.primitive("Byte", 8));
  uml::Class& base = pkg.add_class("Base");
  base.set_abstract(true);
  uml::Class& derived = pkg.add_class("Derived");
  derived.add_generalization(base);
  derived.add_interface_realization(iface);
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, CompositeStructure) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Class& inner = pkg.add_class("Fifo");
  uml::Port& inner_port = inner.add_port("io", uml::PortDirection::kIn);
  inner_port.set_width(8);
  uml::Class& outer = pkg.add_class("Top");
  uml::Property& part = outer.add_property("fifo0", &inner);
  part.set_aggregation(uml::AggregationKind::kComposite);
  uml::Port& ext = outer.add_port("ext", uml::PortDirection::kOut);
  ext.set_service(false);
  uml::Connector& wire = outer.add_connector("w0");
  wire.add_end(uml::ConnectorEnd{&part, &inner_port});
  wire.add_end(uml::ConnectorEnd{nullptr, &ext});
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, ComponentProvidedRequired) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Interface& in_iface = pkg.add_interface("IIn");
  uml::Interface& out_iface = pkg.add_interface("IOut");
  uml::Component& comp = pkg.add_component("Filter");
  comp.add_provided(in_iface);
  comp.add_required(out_iface);
  uml::Port& port = comp.add_port("p0");
  port.add_provided(in_iface);
  port.add_required(out_iface);
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, EnumerationsSignalsDataTypes) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Enumeration& mode = pkg.add_enumeration("Mode");
  mode.add_literal("IDLE");
  mode.add_literal("BUSY");
  uml::Signal& irq = pkg.add_signal("Irq");
  irq.add_property("level", &model.primitive("Integer", 32));
  pkg.add_data_type("Fixed16");
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, AssociationsAndDependencies) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Class& cpu = pkg.add_class("Cpu");
  uml::Class& bus = pkg.add_class("Bus");
  uml::Association& assoc = pkg.add_association("cpu_bus");
  assoc.add_end("master", cpu).set_multiplicity({1, 1});
  assoc.add_end("fabric", bus).set_multiplicity({1, 4});
  uml::Dependency& dep = pkg.add_dependency("alloc", cpu, bus);
  dep.set_dependency_kind(uml::DependencyKind::kAllocate);
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, ProfilesStereotypesTaggedValues) {
  Model model("M");
  uml::Profile& profile = model.add_profile("SoC");
  uml::Stereotype& hw = profile.add_stereotype("HwModule");
  hw.add_extended_metaclass(uml::ElementKind::kClass);
  hw.add_extended_metaclass(uml::ElementKind::kComponent);
  hw.add_tag_definition("clockMHz", "100");
  hw.add_tag_definition("areaGates");
  model.apply_profile(profile);

  uml::Class& cls = model.add_package("p").add_class("Uart");
  cls.apply_stereotype(hw);
  cls.set_tagged_value(hw, "clockMHz", "250");
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, InstancesWithSlotsAndReferences) {
  Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Class& node = pkg.add_class("Node");
  uml::Property& value = node.add_property("value", &model.primitive("Integer", 32));
  uml::Property& next = node.add_property("next", &node);
  uml::InstanceSpecification& head = pkg.add_instance("head", &node);
  uml::InstanceSpecification& tail = pkg.add_instance("tail", &node);
  head.set_slot(value, "1");
  head.set_slot_reference(next, tail);
  tail.set_slot(value, "2");
  expect_roundtrip(model);
}

TEST(XmiRoundTrip, SpecialCharactersEverywhere) {
  Model model("M<&>\"'");
  uml::Class& cls = model.add_package("p<>").add_class("C&C");
  cls.add_property("x", &model.primitive("Integer", 32)).set_default_value("<&\"'>");
  cls.set_documentation("docs with\nnewline & <tags>");
  expect_roundtrip(model);
}

// Property-style sweep: randomized synthetic models of increasing size and
// different seeds must all round-trip losslessly.
class XmiRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmiRoundTripProperty, SyntheticModelRoundTrips) {
  uml::SyntheticSpec spec;
  spec.seed = GetParam();
  spec.packages = 2 + static_cast<std::size_t>(GetParam() % 4);
  spec.classes_per_package = 3 + static_cast<std::size_t>(GetParam() % 6);
  auto model = make_synthetic_model(spec);

  support::DiagnosticSink validate_sink;
  ASSERT_TRUE(uml::validate(*model, validate_sink)) << validate_sink.str();
  expect_roundtrip(*model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmiRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(XmiRead, RejectsUnresolvedReference) {
  const char* text =
      "<XMI><Model id=\"1\" name=\"M\">"
      "<Class id=\"2\" name=\"C\"><Property id=\"3\" name=\"x\" type=\"99\"/></Class>"
      "</Model></XMI>";
  support::DiagnosticSink sink;
  EXPECT_EQ(read_model(text, sink), nullptr);
  EXPECT_NE(sink.str().find("unresolved reference '99'"), std::string::npos);
}

TEST(XmiRead, RejectsDuplicateIds) {
  const char* text =
      "<XMI><Model id=\"1\" name=\"M\">"
      "<Class id=\"2\" name=\"A\"/><Class id=\"2\" name=\"B\"/>"
      "</Model></XMI>";
  support::DiagnosticSink sink;
  EXPECT_EQ(read_model(text, sink), nullptr);
  EXPECT_NE(sink.str().find("duplicate element id"), std::string::npos);
}

TEST(XmiRead, RejectsWrongReferenceMetaclass) {
  // Generalization pointing at a package is a metaclass error.
  const char* text =
      "<XMI><Model id=\"1\" name=\"M\">"
      "<Package id=\"2\" name=\"p\"/>"
      "<Class id=\"3\" name=\"C\"><generalization general=\"2\"/></Class>"
      "</Model></XMI>";
  support::DiagnosticSink sink;
  EXPECT_EQ(read_model(text, sink), nullptr);
  EXPECT_NE(sink.str().find("unexpected metaclass"), std::string::npos);
}

TEST(XmiRead, RejectsDocumentWithoutModel) {
  support::DiagnosticSink sink;
  EXPECT_EQ(read_model("<XMI><NotAModel/></XMI>", sink), nullptr);
  EXPECT_NE(sink.str().find("no <Model>"), std::string::npos);
}

TEST(XmiRead, AcceptsModelAsRoot) {
  support::DiagnosticSink sink;
  auto model = read_model("<Model id=\"1\" name=\"Bare\"/>", sink);
  ASSERT_NE(model, nullptr) << sink.str();
  EXPECT_EQ(model->name(), "Bare");
}

TEST(XmiRead, ReadModelKeepsWorkingPrimitiveInterning) {
  Model model("M");
  model.primitive("Integer", 32);
  std::string text = write_model(model);
  support::DiagnosticSink sink;
  auto reread = read_model(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  // primitive() after deserialization must reuse the persisted package,
  // not create "<primitives>" twice.
  reread->primitive("Integer", 32);
  support::DiagnosticSink validate_sink;
  EXPECT_TRUE(uml::validate(*reread, validate_sink)) << validate_sink.str();
}

}  // namespace
}  // namespace umlsoc::xmi
