// Tests for the extension features: timed state machines on the simulation
// kernel, trace -> sequence-diagram construction, state listeners, and the
// RTL testbench generator.
#include <gtest/gtest.h>

#include "codegen/rtl.hpp"
#include "codegen/timed_machine.hpp"
#include "interaction/from_trace.hpp"
#include "xmi/behavior.hpp"
#include "statechart/interpreter.hpp"

namespace umlsoc {
namespace {

// --- State listener --------------------------------------------------------------

TEST(StateListener, ReportsEntriesAndExits) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  statechart::State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("go");

  std::vector<std::string> log;
  statechart::StateMachineInstance instance(machine);
  instance.set_state_listener([&](const statechart::State& state, bool entered) {
    log.push_back((entered ? "+" : "-") + state.name());
  });
  instance.start();
  instance.dispatch({"go"});
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "+A");
  EXPECT_EQ(log[1], "-A");
  EXPECT_EQ(log[2], "+B");
}

// --- TimedStateMachine --------------------------------------------------------------

/// Green(5ns) -> Yellow(2ns) -> Red(5ns) -> Green traffic light.
std::unique_ptr<statechart::StateMachine> make_traffic_light() {
  auto machine = std::make_unique<statechart::StateMachine>("light");
  statechart::Region& top = machine->top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& green = top.add_state("Green");
  statechart::State& yellow = top.add_state("Yellow");
  statechart::State& red = top.add_state("Red");
  top.add_transition(initial, green);
  top.add_transition(green, yellow).set_trigger("t_green");
  top.add_transition(yellow, red).set_trigger("t_yellow");
  top.add_transition(red, green).set_trigger("t_red");
  return machine;
}

TEST(TimedMachine, TimeoutsDriveTheMachine) {
  sim::Kernel kernel;
  auto machine = make_traffic_light();
  codegen::TimedStateMachine timed(*machine, kernel);
  timed.instance().set_trace_enabled(false);
  timed.after("Green", sim::SimTime::ns(5), "t_green");
  timed.after("Yellow", sim::SimTime::ns(2), "t_yellow");
  timed.after("Red", sim::SimTime::ns(5), "t_red");
  timed.start();
  EXPECT_TRUE(timed.instance().is_in("Green"));

  kernel.run(sim::SimTime::ns(6));
  EXPECT_TRUE(timed.instance().is_in("Yellow"));
  kernel.run(sim::SimTime::ns(8));
  EXPECT_TRUE(timed.instance().is_in("Red"));
  kernel.run(sim::SimTime::ns(13));
  EXPECT_TRUE(timed.instance().is_in("Green"));  // Full cycle.
  EXPECT_GE(timed.timeouts_fired(), 3u);
}

TEST(TimedMachine, LeavingStateCancelsTimer) {
  sim::Kernel kernel;
  auto machine = make_traffic_light();
  codegen::TimedStateMachine timed(*machine, kernel);
  timed.instance().set_trace_enabled(false);
  timed.after("Green", sim::SimTime::ns(10), "t_green");
  timed.start();

  // External event preempts Green before its timer expires.
  timed.dispatch({"t_green"});
  EXPECT_TRUE(timed.instance().is_in("Yellow"));
  kernel.run(sim::SimTime::ns(20));
  // The stale Green timer must NOT have fired an extra transition.
  EXPECT_TRUE(timed.instance().is_in("Yellow"));
  EXPECT_EQ(timed.timeouts_fired(), 0u);
  EXPECT_EQ(timed.timeouts_cancelled(), 1u);
}

TEST(TimedMachine, ReentryRearmsTimer) {
  sim::Kernel kernel;
  auto machine = make_traffic_light();
  codegen::TimedStateMachine timed(*machine, kernel);
  timed.instance().set_trace_enabled(false);
  timed.after("Green", sim::SimTime::ns(5), "t_green");
  timed.after("Yellow", sim::SimTime::ns(5), "t_yellow");
  timed.after("Red", sim::SimTime::ns(5), "t_red");
  timed.start();
  kernel.run(sim::SimTime::us(1));  // Many cycles.
  EXPECT_GT(timed.timeouts_fired(), 50u);
}


TEST(TimedMachine, ParseAfterTrigger) {
  EXPECT_EQ(codegen::parse_after_trigger("after(5ns)"), sim::SimTime::ns(5));
  EXPECT_EQ(codegen::parse_after_trigger("after(2us)"), sim::SimTime::us(2));
  EXPECT_EQ(codegen::parse_after_trigger("after(100ps)"), sim::SimTime::ps(100));
  EXPECT_FALSE(codegen::parse_after_trigger("go").has_value());
  EXPECT_FALSE(codegen::parse_after_trigger("after(5 parsecs)").has_value());
  EXPECT_FALSE(codegen::parse_after_trigger("after(xyz)").has_value());
  EXPECT_TRUE(codegen::looks_like_after_trigger("after(bogus)"));
  EXPECT_FALSE(codegen::looks_like_after_trigger("later(5ns)"));
}

TEST(TimedMachine, AfterTriggersBoundFromModelText) {
  // Traffic light authored with UML time triggers only; also survives XMI.
  statechart::StateMachine machine("light");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& green = top.add_state("Green");
  statechart::State& yellow = top.add_state("Yellow");
  statechart::State& red = top.add_state("Red");
  top.add_transition(initial, green);
  top.add_transition(green, yellow).set_trigger("after(5ns)");
  top.add_transition(yellow, red).set_trigger("after(2ns)");
  top.add_transition(red, green).set_trigger("after(5ns)");

  std::string text = xmi::write_state_machine(machine);
  support::DiagnosticSink sink;
  auto reread = xmi::read_state_machine(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();

  sim::Kernel kernel;
  codegen::TimedStateMachine timed(*reread, kernel);
  timed.instance().set_trace_enabled(false);
  EXPECT_EQ(timed.bind_after_triggers(sink), 3u);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  timed.start();
  kernel.run(sim::SimTime::ns(6));
  EXPECT_TRUE(timed.instance().is_in("Yellow"));
  kernel.run(sim::SimTime::ns(8));
  EXPECT_TRUE(timed.instance().is_in("Red"));
  kernel.run(sim::SimTime::ns(13));
  EXPECT_TRUE(timed.instance().is_in("Green"));
}

TEST(TimedMachine, MalformedAfterTriggerReported) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  statechart::State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b).set_trigger("after(7 fortnights)");

  sim::Kernel kernel;
  codegen::TimedStateMachine timed(machine, kernel);
  support::DiagnosticSink sink;
  EXPECT_EQ(timed.bind_after_triggers(sink), 0u);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_NE(sink.str().find("unparsable time trigger"), std::string::npos);
}

// --- Trace -> interaction -------------------------------------------------------------

TEST(FromTrace, ParseLabel) {
  auto parsed = interaction::parse_label("Cpu->Bus:read");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from, "Cpu");
  EXPECT_EQ(parsed->to, "Bus");
  EXPECT_EQ(parsed->message, "read");
  EXPECT_FALSE(interaction::parse_label("no arrow").has_value());
  EXPECT_FALSE(interaction::parse_label("A->B").has_value());
  EXPECT_FALSE(interaction::parse_label("->B:x").has_value());
  EXPECT_FALSE(interaction::parse_label("A->:x").has_value());
  EXPECT_FALSE(interaction::parse_label("A->B:").has_value());
}

TEST(FromTrace, BuildsConformingInteraction) {
  interaction::Trace trace = {"Cpu->Bus:req", "Bus->Mem:read", "Mem->Bus:data",
                              "Bus->Cpu:ack"};
  auto diagram = interaction::interaction_from_trace("observed", trace);
  EXPECT_EQ(diagram->lifelines().size(), 3u);  // Cpu, Bus, Mem.
  EXPECT_EQ(diagram->fragments().size(), 4u);
  interaction::ConformanceChecker checker(*diagram);
  EXPECT_TRUE(checker.conforms(trace));
  EXPECT_FALSE(checker.conforms({"Cpu->Bus:req"}));
}

TEST(FromTrace, SkipsMalformedLabels) {
  interaction::Trace trace = {"A->B:x", "garbage", "B->A:y"};
  std::size_t skipped = 0;
  auto diagram = interaction::interaction_from_trace("observed", trace, &skipped);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(diagram->fragments().size(), 2u);
}

// --- RTL testbench --------------------------------------------------------------------

TEST(RtlTestbench, GeneratesSelfCheckingBench) {
  uml::Model model("M");
  soc::SocProfile profile = soc::SocProfile::install(model);
  uml::Class& blk = model.add_package("hw").add_class("Ctrl");
  blk.apply_stereotype(*profile.hw_module);
  auto reg = [&](const char* name, const char* addr, const char* access,
                 const char* reset = "0") {
    uml::Property& property = blk.add_property(name, &model.primitive("Word", 32));
    property.apply_stereotype(*profile.hw_register);
    property.set_tagged_value(*profile.hw_register, "address", addr);
    property.set_tagged_value(*profile.hw_register, "access", access);
    property.set_tagged_value(*profile.hw_register, "reset", reset);
  };
  reg("cfg", "0x0", "rw");
  reg("state", "0x4", "r", "3");
  reg("cmd", "0x8", "w");
  blk.add_port("irq", uml::PortDirection::kOut);
  blk.add_port("enable", uml::PortDirection::kIn);

  support::DiagnosticSink sink;
  std::string tb = codegen::generate_rtl_testbench(blk, profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();

  EXPECT_NE(tb.find("module ctrl_tb;"), std::string::npos);
  EXPECT_NE(tb.find("ctrl dut ("), std::string::npos);
  EXPECT_NE(tb.find("task write_reg"), std::string::npos);
  EXPECT_NE(tb.find("task read_check"), std::string::npos);
  // rw register: write then read back.
  EXPECT_NE(tb.find("write_reg(32'h0, 32'ha5);"), std::string::npos);
  EXPECT_NE(tb.find("read_check(32'h0, 32'ha5);"), std::string::npos);
  // r register: reset-value check only; no write.
  EXPECT_NE(tb.find("read_check(32'h4, 32'd3);"), std::string::npos);
  EXPECT_EQ(tb.find("write_reg(32'h4"), std::string::npos);
  // w register: write, no read-back.
  EXPECT_NE(tb.find("write_reg(32'h8"), std::string::npos);
  // Output port monitored as wire, input driven as reg.
  EXPECT_NE(tb.find("wire         irq;"), std::string::npos);
  EXPECT_NE(tb.find("reg          enable = 0;"), std::string::npos);

  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(codegen::check_rtl_structure(tb, structure_sink)) << structure_sink.str();
}

TEST(RtlTestbench, DutAndBenchNamesAlign) {
  uml::Model model("M");
  soc::SocProfile profile = soc::SocProfile::install(model);
  uml::Class& blk = model.add_package("hw").add_class("FrameBuffer");
  blk.apply_stereotype(*profile.hw_module);
  support::DiagnosticSink sink;
  std::string rtl = codegen::generate_rtl_module(blk, profile, sink);
  std::string tb = codegen::generate_rtl_testbench(blk, profile, sink);
  EXPECT_NE(rtl.find("module frame_buffer ("), std::string::npos);
  EXPECT_NE(tb.find("frame_buffer dut ("), std::string::npos);
}

}  // namespace
}  // namespace umlsoc
