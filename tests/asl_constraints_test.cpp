// Tests for ASL-based model constraints (the OCL-role feature).
#include <gtest/gtest.h>

#include "asl/constraints.hpp"
#include "soc/profile.hpp"
#include "uml/instance.hpp"

namespace umlsoc::asl {
namespace {

struct Fixture {
  uml::Model model{"M"};
  soc::SocProfile profile = soc::SocProfile::install(model);
  uml::Package& pkg = model.add_package("p");
};

TEST(Constraints, AttributeAccess) {
  Fixture f;
  uml::Class& cls = f.pkg.add_class("Engine");
  cls.set_abstract(true);
  ElementContext context(cls);
  EXPECT_EQ(context.get_attribute("name").as_string(), "Engine");
  EXPECT_EQ(context.get_attribute("qualified_name").as_string(), "M.p.Engine");
  EXPECT_EQ(context.get_attribute("kind").as_string(), "Class");
  EXPECT_EQ(context.get_attribute("owner_kind").as_string(), "Package");
  EXPECT_TRUE(context.get_attribute("is_abstract").as_bool());
  EXPECT_FALSE(context.get_attribute("is_active").as_bool());
  EXPECT_EQ(context.get_attribute("unknown").as_int(), 0);
}

TEST(Constraints, OperationAccess) {
  Fixture f;
  uml::Class& cls = f.pkg.add_class("C");
  cls.add_property("x");
  cls.add_property("y");
  cls.add_operation("f").add_parameter("a");
  cls.add_port("clk");
  cls.apply_stereotype(*f.profile.hw_module);
  cls.set_tagged_value(*f.profile.hw_module, "clockMHz", "250");

  ElementContext context(cls);
  EXPECT_EQ(context.call("property_count", {}).as_int(), 2);
  EXPECT_EQ(context.call("operation_count", {}).as_int(), 1);
  EXPECT_EQ(context.call("port_count", {}).as_int(), 1);
  EXPECT_TRUE(context.call("has_stereotype", {Value{"HwModule"}}).as_bool());
  EXPECT_FALSE(context.call("has_stereotype", {Value{"SwTask"}}).as_bool());
  EXPECT_EQ(context.call("tagged", {Value{"HwModule"}, Value{"clockMHz"}}).as_string(), "250");
  EXPECT_EQ(context.call("tagged", {Value{"HwModule"}, Value{"nope"}}).as_string(), "");
  EXPECT_THROW(context.call("frobnicate", {}), std::runtime_error);
  EXPECT_THROW(context.set_attribute("name", Value{"x"}), std::runtime_error);
}

TEST(Constraints, PassingConstraintSet) {
  Fixture f;
  uml::Class& hw = f.pkg.add_class("Uart");
  hw.apply_stereotype(*f.profile.hw_module);
  hw.add_port("clk");

  ConstraintSet set;
  support::DiagnosticSink sink;
  ASSERT_TRUE(set.add("hw-needs-ports", uml::ElementKind::kClass,
                      "not has_stereotype(\"HwModule\") or port_count() > 0", sink));
  ASSERT_TRUE(set.add("nonempty-names", std::nullopt, "name != \"\" or kind == \"Model\"",
                      sink));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.check(f.model, sink)) << sink.str();
}

TEST(Constraints, ViolationReportedWithSubject) {
  Fixture f;
  uml::Class& hw = f.pkg.add_class("NoClock");
  hw.apply_stereotype(*f.profile.hw_module);  // No ports: violates.

  ConstraintSet set;
  support::DiagnosticSink sink;
  ASSERT_TRUE(set.add("hw-needs-ports", uml::ElementKind::kClass,
                      "not has_stereotype(\"HwModule\") or port_count() > 0", sink));
  EXPECT_FALSE(set.check(f.model, sink));
  EXPECT_NE(sink.str().find("M.p.NoClock"), std::string::npos);
  EXPECT_NE(sink.str().find("constraint 'hw-needs-ports' violated"), std::string::npos);
}

TEST(Constraints, KindFilterLimitsScope) {
  Fixture f;
  f.pkg.add_class("AnyClass");
  uml::Enumeration& empty_enum = f.pkg.add_enumeration("Empty");
  (void)empty_enum;

  ConstraintSet set;
  support::DiagnosticSink sink;
  // Applies to enumerations only; the class must not be checked.
  ASSERT_TRUE(set.add("enums-have-literals", uml::ElementKind::kEnumeration,
                      "literal_count() > 0", sink));
  EXPECT_FALSE(set.check(f.model, sink));
  EXPECT_NE(sink.str().find("M.p.Empty"), std::string::npos);
  EXPECT_EQ(sink.str().find("AnyClass"), std::string::npos);
}

TEST(Constraints, MultiplicityAndPortAttributes) {
  Fixture f;
  uml::Class& cls = f.pkg.add_class("C");
  uml::Property& items = cls.add_property("items", &f.model.primitive("Integer", 32));
  items.set_multiplicity({0, uml::Multiplicity::kUnlimited});
  uml::Port& data = cls.add_port("data", uml::PortDirection::kOut);
  data.set_width(16);

  ConstraintSet set;
  support::DiagnosticSink sink;
  ASSERT_TRUE(set.add("star-props-lower-zero", uml::ElementKind::kProperty,
                      "upper != -1 or lower == 0", sink));
  ASSERT_TRUE(set.add("wide-ports-directed", uml::ElementKind::kPort,
                      "width <= 1 or direction != \"inout\"", sink));
  EXPECT_TRUE(set.check(f.model, sink)) << sink.str();

  // Break the second: wide inout port.
  cls.add_port("bad").set_width(8);
  support::DiagnosticSink sink2;
  EXPECT_FALSE(set.check(f.model, sink2));
  EXPECT_NE(sink2.str().find("wide-ports-directed"), std::string::npos);
}

TEST(Constraints, UnparsableExpressionRejectedAtAdd) {
  ConstraintSet set;
  support::DiagnosticSink sink;
  EXPECT_FALSE(set.add("bad", std::nullopt, "this is not ASL ::", sink));
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(set.size(), 0u);
}

TEST(Constraints, EvaluationFaultIsReportedNotFatal) {
  Fixture f;
  f.pkg.add_class("C");
  ConstraintSet set;
  support::DiagnosticSink sink;
  // has_stereotype with wrong arity faults at evaluation time.
  ASSERT_TRUE(set.add("faulty", uml::ElementKind::kClass, "has_stereotype()", sink));
  EXPECT_FALSE(set.check(f.model, sink));
  EXPECT_NE(sink.str().find("faulted"), std::string::npos);
}

TEST(Constraints, SocProfileRulesAsConstraints) {
  // Re-express two soc::validate_soc rules declaratively.
  Fixture f;
  uml::Class& hw = f.pkg.add_class("Accel");
  hw.apply_stereotype(*f.profile.hw_module);
  hw.set_tagged_value(*f.profile.hw_module, "clockMHz", "200");
  hw.add_port("clk");
  uml::Class& task = f.pkg.add_class("Ctrl");
  task.apply_stereotype(*f.profile.sw_task);
  task.set_active(true);

  ConstraintSet set;
  support::DiagnosticSink sink;
  ASSERT_TRUE(set.add("hw-xor-sw", uml::ElementKind::kClass,
                      "not (has_stereotype(\"HwModule\") and has_stereotype(\"SwTask\"))",
                      sink));
  ASSERT_TRUE(set.add("sw-tasks-active", uml::ElementKind::kClass,
                      "not has_stereotype(\"SwTask\") or is_active", sink));
  EXPECT_TRUE(set.check(f.model, sink)) << sink.str();

  task.apply_stereotype(*f.profile.hw_module);  // Now violates hw-xor-sw.
  support::DiagnosticSink sink2;
  EXPECT_FALSE(set.check(f.model, sink2));
  EXPECT_NE(sink2.str().find("hw-xor-sw"), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::asl
