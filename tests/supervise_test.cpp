// Supervision, circuit breaking and degraded-mode recovery (sim/supervise):
// breaker automaton edges, supervisor restart/backoff/escalation, health
// aggregation, watchdog-driven recovery, and checkpoint/restore of all of it
// — both the direct Checkpoint structs and the full snapshot document
// (supervisor pending-restart expectations must be accepted by save).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/supervise.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::sim {
namespace {

// A bus rig with one mapped RAM window: writes to kRamBase succeed, writes
// to kBadAddress decode-error — a deterministic failure source that needs
// no fault plan.
struct BusRig {
  static constexpr std::uint64_t kRamBase = 0x0;
  static constexpr std::uint64_t kBadAddress = 0x10000;

  Kernel kernel;
  MemoryMappedBus bus{kernel, "bus", SimTime::ns(1)};
  BusMasterPort port{kernel, bus, "port"};
  std::uint64_t mem[8] = {};

  BusRig() {
    bus.map_device(
        "ram", kRamBase, sizeof(mem), [this](std::uint64_t a) { return mem[(a / 8) % 8]; },
        [this](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 8] = v; });
  }
};

CircuitBreaker::Config small_breaker_config() {
  CircuitBreaker::Config config;
  config.window = 4;
  config.min_samples = 2;
  config.failure_threshold = 0.5;
  config.open_duration = SimTime::ns(100);
  config.reopen_multiplier = 2;
  config.max_open_duration = SimTime::ns(300);
  return config;
}

// --- CircuitBreaker ----------------------------------------------------------

TEST(CircuitBreaker, OpensAtFailureThresholdAndEmitsEvent) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  std::vector<std::string> events;
  breaker.set_error_emitter(
      [&events](const std::string& event, std::int64_t) { events.push_back(event); });

  int errors = 0;
  breaker.write(BusRig::kBadAddress, 1,
                [&errors](BusStatus status) { errors += status == BusStatus::kError; });
  breaker.write(BusRig::kBadAddress, 2,
                [&errors](BusStatus status) { errors += status == BusStatus::kError; });
  rig.kernel.run(SimTime::ns(50));

  EXPECT_EQ(errors, 2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);
  EXPECT_EQ(breaker.window_failures(), 2u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "breaker_open");
}

TEST(CircuitBreaker, FastFailsWhileOpenWithoutBusTraffic) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run(SimTime::ns(50));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  const std::uint64_t writes_before = rig.bus.stats().writes;
  bool done = false;
  BusStatus status = BusStatus::kOk;
  breaker.write(BusRig::kRamBase, 7, [&](BusStatus s) {
    done = true;
    status = s;
  });
  // Synchronous rejection: no kernel.run needed, no bus transaction issued.
  EXPECT_TRUE(done);
  EXPECT_EQ(status, BusStatus::kError);
  EXPECT_EQ(rig.bus.stats().writes, writes_before);
  EXPECT_EQ(breaker.stats().fast_failed, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  std::vector<std::string> events;
  breaker.set_error_emitter(
      [&events](const std::string& event, std::int64_t) { events.push_back(event); });
  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run();  // Drains through the open-duration timer: half-open.
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  bool ok = false;
  breaker.write(BusRig::kRamBase, 42, [&ok](BusStatus s) { ok = s == BusStatus::kOk; });
  rig.kernel.run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().probes, 1u);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_EQ(breaker.window_samples(), 0u) << "close resets the window";
  EXPECT_EQ(breaker.current_open_duration(), small_breaker_config().open_duration);
  EXPECT_EQ(rig.mem[0], 42u) << "the probe reached the device";
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], "breaker_closed");
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  bool second_rejected = false;
  breaker.write(BusRig::kRamBase, 1, nullptr);  // The probe, now in flight.
  breaker.write(BusRig::kRamBase, 2,
                [&second_rejected](BusStatus s) { second_rejected = s == BusStatus::kError; });
  EXPECT_TRUE(second_rejected) << "only one probe may be in flight";
  EXPECT_EQ(breaker.stats().probes, 1u);
  EXPECT_EQ(breaker.stats().fast_failed, 1u);
  rig.kernel.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensWithDoubledDurationClamped) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run(SimTime::ns(150));  // Past the 100ns open duration: half-open.
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  breaker.read(BusRig::kBadAddress, nullptr);  // Probe fails.
  rig.kernel.run(SimTime::ns(200));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().probe_failures, 1u);
  EXPECT_EQ(breaker.current_open_duration(), SimTime::ns(200)) << "100ns doubled";

  rig.kernel.run(SimTime::ns(450));  // Past reopen: half-open again.
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.read(BusRig::kBadAddress, nullptr);
  rig.kernel.run(SimTime::ns(500));
  EXPECT_EQ(breaker.current_open_duration(), SimTime::ns(300))
      << "400ns clamped to max_open_duration";
  EXPECT_EQ(breaker.stats().opens, 3u);

  // A successful probe resets the duration to the configured base.
  rig.kernel.run(SimTime::ns(900));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.write(BusRig::kRamBase, 5, nullptr);
  rig.kernel.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.current_open_duration(), SimTime::ns(100));
}

TEST(CircuitBreaker, SlidingWindowOverwritesOldOutcomes) {
  BusRig rig;
  CircuitBreaker::Config config = small_breaker_config();
  config.failure_threshold = 0.9;  // High enough that this mix never opens.
  config.min_samples = 4;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", config);

  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run(SimTime::ns(20));
  EXPECT_EQ(breaker.window_failures(), 2u);
  EXPECT_EQ(breaker.window_samples(), 2u);

  // Four successes roll both failures out of the 4-wide window.
  for (int i = 0; i < 4; ++i) {
    breaker.write(BusRig::kRamBase, static_cast<std::uint64_t>(i), nullptr);
    rig.kernel.run(rig.kernel.now() + SimTime::ns(5));
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.window_samples(), 4u);
  EXPECT_EQ(breaker.window_failures(), 0u);
}

TEST(CircuitBreaker, ForceClosedResetsFromOpen) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run(SimTime::ns(50));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  breaker.force_closed();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.window_samples(), 0u);
  // The stale timer wakeup at 101ns finds the breaker closed and falls
  // through instead of flipping it to half-open.
  rig.kernel.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HealthBindingTracksState) {
  BusRig rig;
  HealthRegistry health;
  const auto unit = health.register_unit("dma");
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  breaker.bind_health(&health, unit);

  breaker.write(BusRig::kBadAddress, 1, nullptr);
  breaker.write(BusRig::kBadAddress, 2, nullptr);
  rig.kernel.run(SimTime::ns(50));
  EXPECT_EQ(health.health(unit), UnitHealth::kDegraded);
  EXPECT_FALSE(health.all_healthy());

  rig.kernel.run();  // Half-open.
  breaker.write(BusRig::kRamBase, 1, nullptr);
  rig.kernel.run();
  EXPECT_EQ(health.health(unit), UnitHealth::kHealthy);
  EXPECT_TRUE(health.all_healthy());
}

TEST(CircuitBreaker, CheckpointRoundtripReproducesAutomatonState) {
  BusRig source;
  CircuitBreaker source_breaker(source.kernel, source.port, "dma", small_breaker_config());
  source_breaker.write(BusRig::kBadAddress, 1, nullptr);
  source_breaker.write(BusRig::kBadAddress, 2, nullptr);
  source.kernel.run(SimTime::ns(50));
  ASSERT_EQ(source_breaker.state(), CircuitBreaker::State::kOpen);
  const CircuitBreaker::Checkpoint checkpoint = source_breaker.capture_checkpoint();

  BusRig restored;
  CircuitBreaker breaker(restored.kernel, restored.port, "dma", small_breaker_config());
  support::DiagnosticSink sink;
  ASSERT_TRUE(breaker.restore_checkpoint(checkpoint, sink)) << sink.str();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.window_failures(), source_breaker.window_failures());
  EXPECT_EQ(breaker.current_open_duration(), source_breaker.current_open_duration());
  EXPECT_EQ(breaker.stats().opens, 1u);
}

TEST(CircuitBreaker, RestoreRejectsWindowStateOutOfRange) {
  BusRig rig;
  CircuitBreaker breaker(rig.kernel, rig.port, "dma", small_breaker_config());
  CircuitBreaker::Checkpoint checkpoint;
  checkpoint.cursor = 99;  // Configured window is 4.
  support::DiagnosticSink sink;
  EXPECT_FALSE(breaker.restore_checkpoint(checkpoint, sink));
  EXPECT_TRUE(sink.has_errors());
}

// --- HealthRegistry ----------------------------------------------------------

TEST(HealthRegistry, AggregatesWorstAndNotifiesListeners) {
  HealthRegistry health;
  const auto cpu = health.register_unit("cpu");
  const auto dma = health.register_unit("dma");
  EXPECT_EQ(health.aggregate(), UnitHealth::kHealthy);
  EXPECT_EQ(health.find("dma"), dma);
  EXPECT_EQ(health.find("nope"), HealthRegistry::kInvalidUnit);

  std::vector<std::string> log;
  health.add_listener([&log, &health](HealthRegistry::UnitId unit, UnitHealth from,
                                      UnitHealth to, std::string_view reason) {
    log.push_back(health.unit_name(unit) + ": " + std::string(to_string(from)) + "->" +
                  std::string(to_string(to)) + " (" + std::string(reason) + ")");
  });

  health.set_health(dma, UnitHealth::kDegraded, "breaker open");
  health.set_health(dma, UnitHealth::kDegraded, "again");  // No transition, no callback.
  health.set_health(cpu, UnitHealth::kFailed, "gave up");
  EXPECT_EQ(health.aggregate(), UnitHealth::kFailed);
  EXPECT_EQ(health.transitions(), 2u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "dma: healthy->degraded (breaker open)");
  EXPECT_EQ(log[1], "cpu: healthy->failed (gave up)");
  EXPECT_EQ(health.str(), "cpu=failed dma=degraded");
}

TEST(HealthRegistry, CheckpointRoundtripAndValidation) {
  HealthRegistry source;
  source.register_unit("cpu");
  const auto dma = source.register_unit("dma");
  source.set_health(dma, UnitHealth::kDegraded, "x");
  const HealthRegistry::Checkpoint checkpoint = source.capture_checkpoint();

  HealthRegistry restored;
  restored.register_unit("cpu");
  const auto dma2 = restored.register_unit("dma");
  bool listener_fired = false;
  restored.add_listener([&listener_fired](HealthRegistry::UnitId, UnitHealth, UnitHealth,
                                          std::string_view) { listener_fired = true; });
  support::DiagnosticSink sink;
  ASSERT_TRUE(restored.restore_checkpoint(checkpoint, sink)) << sink.str();
  EXPECT_EQ(restored.health(dma2), UnitHealth::kDegraded);
  EXPECT_EQ(restored.transitions(), 1u);
  EXPECT_FALSE(listener_fired) << "restore reproduces state, not history";

  HealthRegistry mismatched;  // Wrong unit count.
  mismatched.register_unit("cpu");
  support::DiagnosticSink reject;
  EXPECT_FALSE(mismatched.restore_checkpoint(checkpoint, reject));
  EXPECT_TRUE(reject.has_errors());
}

// --- Supervisor --------------------------------------------------------------

RestartPolicy fast_policy() {
  RestartPolicy policy;
  policy.backoff = SimTime::ns(100);
  policy.backoff_multiplier = 2;
  policy.max_backoff = SimTime::ns(350);
  policy.max_restarts = 3;
  policy.window = SimTime::us(50);
  return policy;
}

TEST(Supervisor, OneForOneRestartsOnlyTheFailedChild) {
  Kernel kernel;
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  int restarted_a = 0;
  int restarted_b = 0;
  const auto a = sup.add_child("a", [&restarted_a] {
    ++restarted_a;
    return true;
  });
  sup.add_child("b", [&restarted_b] {
    ++restarted_b;
    return true;
  });

  sup.report_failure(a, "crash");
  EXPECT_EQ(sup.pending_restarts(), 1u);
  EXPECT_FALSE(sup.quiescent());
  kernel.run();

  EXPECT_EQ(restarted_a, 1);
  EXPECT_EQ(restarted_b, 0);
  EXPECT_EQ(sup.child_stats(a).failures, 1u);
  EXPECT_EQ(sup.child_stats(a).restarts, 1u);
  EXPECT_TRUE(sup.quiescent());
  EXPECT_EQ(kernel.now(), SimTime::ns(100)) << "restart after the base backoff";
}

TEST(Supervisor, AllForOneRestartsEveryChild) {
  Kernel kernel;
  Supervisor sup(kernel, "root", RestartStrategy::kAllForOne, fast_policy());
  int restarted_a = 0;
  int restarted_b = 0;
  const auto a = sup.add_child("a", [&restarted_a] {
    ++restarted_a;
    return true;
  });
  sup.add_child("b", [&restarted_b] {
    ++restarted_b;
    return true;
  });

  sup.report_failure(a, "crash");
  EXPECT_EQ(sup.pending_restarts(), 2u);
  kernel.run();
  EXPECT_EQ(restarted_a, 1);
  EXPECT_EQ(restarted_b, 1);
}

TEST(Supervisor, BackoffGrowsExponentiallyWithinBurstAndClamps) {
  Kernel kernel;
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  const auto a = sup.add_child("a", [] { return true; });

  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(100)) << "no failures yet: base backoff";
  sup.report_failure(a, "1");
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(100));
  kernel.run();
  sup.report_failure(a, "2");
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(200)) << "second failure in the burst";
  kernel.run();
  sup.report_failure(a, "3");
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(350)) << "400ns clamped to max_backoff";
  EXPECT_EQ(sup.child_stats(a).consecutive, 3u);
}

TEST(Supervisor, BurstResetsAfterQuietWindow) {
  Kernel kernel;
  RestartPolicy policy = fast_policy();
  policy.window = SimTime::ns(1000);
  policy.max_restarts = 2;
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, policy);
  const auto a = sup.add_child("a", [] { return true; });

  sup.report_failure(a, "1");
  kernel.run();
  sup.report_failure(a, "2");
  kernel.run();
  EXPECT_EQ(sup.child_stats(a).consecutive, 2u);
  EXPECT_FALSE(sup.gave_up());

  // A quiet gap longer than the window: the burst counter resets AND the
  // intensity window drains, so the third failure is a fresh incident, not
  // an escalation. (An idle tick actually advances kernel time; run(until)
  // alone stops at the last event.)
  kernel.schedule(SimTime::us(2), kernel.register_process([] {}));
  kernel.run();
  sup.report_failure(a, "3");
  EXPECT_EQ(sup.child_stats(a).consecutive, 1u);
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(100));
  kernel.run();
  EXPECT_FALSE(sup.gave_up());
  EXPECT_EQ(sup.child_stats(a).restarts, 3u);
}

TEST(Supervisor, ReportRecoveredResetsTheBurst) {
  Kernel kernel;
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  const auto a = sup.add_child("a", [] { return true; });
  sup.report_failure(a, "1");
  kernel.run();
  sup.report_failure(a, "2");
  kernel.run();
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(200));
  sup.report_recovered(a);
  EXPECT_EQ(sup.backoff_for(a), SimTime::ns(100));
}

TEST(Supervisor, RestartStormExhaustsBudgetAndRootGivesUp) {
  Kernel kernel;
  HealthRegistry health;
  const auto unit = health.register_unit("a");
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  // A child whose restart always fails: each failed restart is a fresh
  // failure, so one report storms through the whole budget.
  const auto a = sup.add_child("a", [] { return false; });
  sup.bind_child_health(a, health, unit);
  std::vector<std::string> events;
  sup.set_error_emitter(
      [&events](const std::string& event, std::int64_t) { events.push_back(event); });
  std::string give_up_reason;
  sup.set_on_give_up([&give_up_reason](const std::string& reason) { give_up_reason = reason; });

  sup.report_failure(a, "crash");
  kernel.run();

  EXPECT_TRUE(sup.gave_up());
  EXPECT_FALSE(sup.quiescent());
  // Budget is 3 restarts: three failed attempts, the fourth report escalates.
  EXPECT_EQ(sup.child_stats(a).failed_restarts, 3u);
  EXPECT_EQ(sup.child_stats(a).failures, 4u);
  EXPECT_NE(sup.give_up_reason().find("restart budget exhausted"), std::string::npos)
      << sup.give_up_reason();
  EXPECT_EQ(give_up_reason, sup.give_up_reason());
  EXPECT_EQ(health.health(unit), UnitHealth::kFailed);
  EXPECT_EQ(std::count(events.begin(), events.end(), "restart_failed"), 3);
  EXPECT_EQ(std::count(events.begin(), events.end(), "supervisor_give_up"), 1);
  // Terminal: further failures are ignored.
  sup.report_failure(a, "more");
  EXPECT_EQ(sup.child_stats(a).failures, 4u);
}

TEST(Supervisor, EscalationSuspendsChildAndParentRestartsSubtree) {
  Kernel kernel;
  RestartPolicy tight = fast_policy();
  tight.max_restarts = 1;  // The leaf supervisor tolerates one restart only.
  Supervisor root(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  Supervisor leaf(kernel, "leaf", RestartStrategy::kOneForOne, tight);
  int unit_restarts = 0;
  const auto unit = leaf.add_child("unit", [&unit_restarts] {
    ++unit_restarts;
    return true;
  });
  root.attach_child_supervisor(leaf);
  std::vector<std::string> leaf_events;
  leaf.set_error_emitter(
      [&leaf_events](const std::string& event, std::int64_t) { leaf_events.push_back(event); });

  leaf.report_failure(unit, "1");
  kernel.run();
  EXPECT_EQ(unit_restarts, 1);
  // Second failure exceeds the leaf's budget: it suspends and escalates.
  leaf.report_failure(unit, "2");
  EXPECT_TRUE(leaf.suspended());
  EXPECT_EQ(leaf.escalations(), 1u);
  EXPECT_EQ(std::count(leaf_events.begin(), leaf_events.end(), "supervisor_escalate"), 1);
  // While suspended the leaf ignores reports.
  leaf.report_failure(unit, "ignored");
  EXPECT_EQ(leaf.child_stats(unit).failures, 2u);

  // The parent's restart of the leaf resets and restarts the whole subtree.
  kernel.run();
  EXPECT_FALSE(leaf.suspended());
  EXPECT_TRUE(leaf.quiescent());
  EXPECT_EQ(unit_restarts, 2);
  EXPECT_FALSE(root.gave_up());
  EXPECT_TRUE(root.quiescent());
}

TEST(Supervisor, PendingRestartDedupsPerChild) {
  Kernel kernel;
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, fast_policy());
  int restarts = 0;
  const auto a = sup.add_child("a", [&restarts] {
    ++restarts;
    return true;
  });
  sup.report_failure(a, "1");
  sup.report_failure(a, "2");  // Restart already pending: no second entry.
  EXPECT_EQ(sup.pending_restarts(), 1u);
  kernel.run();
  EXPECT_EQ(restarts, 1);
}

TEST(Supervisor, WatchdogTripDrivesSupervisedRestartAndRearm) {
  Kernel kernel;
  RestartPolicy policy = fast_policy();
  policy.backoff = SimTime::ns(10);
  Watchdog dog(kernel, "cpu-dog", SimTime::ns(50));
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, policy);
  int restarts = 0;
  const auto cpu = sup.add_child("cpu", [&restarts] {
    ++restarts;
    return true;
  });
  sup.attach_watchdog(cpu, dog);
  std::vector<std::string> events;
  sup.set_error_emitter(
      [&events](const std::string& event, std::int64_t) { events.push_back(event); });

  dog.arm();
  // Nobody kicks: the trip at 50ns reports a failure; the restart at 60ns
  // succeeds and re-arms the watchdog.
  kernel.run(SimTime::ns(80));
  EXPECT_EQ(dog.trips(), 1u);
  EXPECT_EQ(restarts, 1);
  EXPECT_TRUE(dog.armed()) << "successful restart re-arms the watchdog";
  EXPECT_EQ(std::count(events.begin(), events.end(), "watchdog_trip"), 1);
  EXPECT_EQ(std::count(events.begin(), events.end(), "unit_restarted"), 1);
  dog.disarm();
  kernel.run();
  EXPECT_TRUE(sup.quiescent());
}

TEST(Supervisor, RepeatedWatchdogTripsEventuallyExhaustTheBudget) {
  Kernel kernel;
  RestartPolicy policy = fast_policy();
  policy.backoff = SimTime::ns(10);
  policy.backoff_multiplier = 1;
  policy.max_restarts = 3;
  Watchdog dog(kernel, "cpu-dog", SimTime::ns(50));
  Supervisor sup(kernel, "root", RestartStrategy::kOneForOne, policy);
  const auto cpu = sup.add_child("cpu", [] { return true; });
  sup.attach_watchdog(cpu, dog);

  dog.arm();
  kernel.run();  // Trip -> restart -> re-arm -> trip ... until give-up.
  EXPECT_TRUE(sup.gave_up());
  EXPECT_EQ(dog.trips(), 4u) << "three supervised restarts, the fourth trip gives up";
  EXPECT_EQ(sup.child_stats(cpu).restarts, 3u);
  EXPECT_FALSE(dog.armed());
}

TEST(Supervisor, CheckpointRoundtripWithPendingRestart) {
  Kernel source_kernel;
  Supervisor source(source_kernel, "soc", RestartStrategy::kOneForOne, fast_policy());
  const auto a = source.add_child("a", [] { return true; });
  source.add_child("b", [] { return true; });
  source.report_failure(a, "crash");
  ASSERT_EQ(source.pending_restarts(), 1u);
  const Supervisor::Checkpoint checkpoint = source.capture_checkpoint();

  Kernel kernel;
  Supervisor restored(kernel, "soc", RestartStrategy::kOneForOne, fast_policy());
  restored.add_child("a", [] { return true; });
  restored.add_child("b", [] { return true; });
  support::DiagnosticSink sink;
  ASSERT_TRUE(restored.restore_checkpoint(checkpoint, sink)) << sink.str();
  EXPECT_EQ(restored.pending_restarts(), 1u);
  EXPECT_EQ(restored.child_stats(a).failures, 1u);
  EXPECT_EQ(restored.child_stats(a).consecutive, 1u);

  Supervisor mismatched(kernel, "soc2", RestartStrategy::kOneForOne, fast_policy());
  mismatched.add_child("only-one", [] { return true; });
  support::DiagnosticSink reject;
  EXPECT_FALSE(mismatched.restore_checkpoint(checkpoint, reject));
  EXPECT_TRUE(reject.has_errors());
}

// --- Snapshot-document integration -------------------------------------------

TEST(SuperviseSnapshot, PendingRestartSurvivesSaveAndRestore) {
  // Save while a restart is pending: the supervisor's outstanding
  // expectation must be accepted by save_snapshot (whitelisted by label),
  // and the restored run must execute the restart at the original due time.
  Kernel source_kernel;
  Supervisor source_sup(source_kernel, "soc", RestartStrategy::kOneForOne, fast_policy());
  const auto a = source_sup.add_child("dma", [] { return true; });
  source_sup.report_failure(a, "crash");
  ASSERT_EQ(source_sup.pending_restarts(), 1u);

  replay::SnapshotTargets source_targets;
  source_targets.kernel = &source_kernel;
  source_targets.supervisors.push_back({"soc", &source_sup});
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(replay::save_snapshot(source_targets, snapshot, sink)) << sink.str();

  Kernel kernel;
  Supervisor sup(kernel, "soc", RestartStrategy::kOneForOne, fast_policy());
  int restarts = 0;
  sup.add_child("dma", [&restarts] {
    ++restarts;
    return true;
  });
  replay::SnapshotTargets targets;
  targets.kernel = &kernel;
  targets.supervisors.push_back({"soc", &sup});
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(replay::restore_snapshot(targets, snapshot, restore_sink)) << restore_sink.str();

  EXPECT_EQ(sup.pending_restarts(), 1u);
  kernel.run();
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(kernel.now(), SimTime::ns(100)) << "restart fires at the original due time";
  EXPECT_TRUE(sup.quiescent());
}

TEST(SuperviseSnapshot, OpenBreakerSurvivesSaveAndRestore) {
  BusRig source;
  CircuitBreaker source_breaker(source.kernel, source.port, "dma", small_breaker_config());
  HealthRegistry source_health;
  source_breaker.bind_health(&source_health, source_health.register_unit("dma"));
  source_breaker.write(BusRig::kBadAddress, 1, nullptr);
  source_breaker.write(BusRig::kBadAddress, 2, nullptr);
  source.kernel.run(SimTime::ns(50));  // Open since 1ns; timer due at 101ns.
  ASSERT_EQ(source_breaker.state(), CircuitBreaker::State::kOpen);

  replay::SnapshotTargets source_targets;
  source_targets.kernel = &source.kernel;
  source_targets.buses.push_back({"bus", &source.bus});
  source_targets.breakers.push_back({"dma", &source_breaker});
  source_targets.health.push_back({"health", &source_health});
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(replay::save_snapshot(source_targets, snapshot, sink)) << sink.str();

  BusRig restored;
  CircuitBreaker breaker(restored.kernel, restored.port, "dma", small_breaker_config());
  HealthRegistry health;
  const auto unit = health.register_unit("dma");
  breaker.bind_health(&health, unit);
  replay::SnapshotTargets targets;
  targets.kernel = &restored.kernel;
  targets.buses.push_back({"bus", &restored.bus});
  targets.breakers.push_back({"dma", &breaker});
  targets.health.push_back({"health", &health});
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(replay::restore_snapshot(targets, snapshot, restore_sink)) << restore_sink.str();

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(health.health(unit), UnitHealth::kDegraded);
  EXPECT_EQ(breaker.stats().opens, 1u);

  // The open-duration timer was restored with the kernel checkpoint: the
  // breaker goes half-open at the original 101ns, and a clean probe closes.
  restored.kernel.run(SimTime::ns(150));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.write(BusRig::kRamBase, 9, nullptr);
  restored.kernel.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(health.health(unit), UnitHealth::kHealthy);
}

TEST(SuperviseSnapshot, WarmRestartFromSnapshotRewindsAStatechart) {
  auto machine = statechart::make_chain_machine(4);
  statechart::StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  instance.dispatch({"e"});  // s0 -> s1: the known-good point.
  ASSERT_TRUE(instance.is_in("s1"));

  support::DiagnosticSink sink;
  auto restart = replay::restart_from_snapshot(instance, sink);

  instance.dispatch({"e"});
  instance.dispatch({"e"});
  ASSERT_TRUE(instance.is_in("s3"));
  ASSERT_TRUE(restart()) << sink.str();
  EXPECT_TRUE(instance.is_in("s1")) << "warm restart rewound to the captured point";

  // Wired as a supervisor child: a failure later in the run restores the
  // known-good configuration.
  Kernel kernel;
  Supervisor sup(kernel, "soc", RestartStrategy::kOneForOne, fast_policy());
  const auto unit = sup.add_child("fsm", replay::restart_from_snapshot(instance, sink));
  instance.dispatch({"e"});
  ASSERT_TRUE(instance.is_in("s2"));
  sup.report_failure(unit, "bad state");
  kernel.run();
  EXPECT_TRUE(instance.is_in("s1"));
  EXPECT_EQ(sup.child_stats(unit).restarts, 1u);
}

TEST(SuperviseSnapshot, RestartFromBankRestoresCapturedValues) {
  std::uint64_t reg_a = 7;
  std::uint64_t reg_b = 11;
  replay::ValueBank bank;
  bank.name = "regs";
  bank.capture = [&reg_a, &reg_b] {
    return std::vector<std::pair<std::string, std::uint64_t>>{{"a", reg_a}, {"b", reg_b}};
  };
  bank.restore = [&reg_a, &reg_b](const std::vector<std::pair<std::string, std::uint64_t>>& vs,
                                  support::DiagnosticSink&) {
    for (const auto& [key, value] : vs) {
      if (key == "a") reg_a = value;
      if (key == "b") reg_b = value;
    }
    return true;
  };
  support::DiagnosticSink sink;
  auto restart = replay::restart_from_bank(bank, sink);
  reg_a = 1000;
  reg_b = 2000;
  ASSERT_TRUE(restart());
  EXPECT_EQ(reg_a, 7u);
  EXPECT_EQ(reg_b, 11u);
}

}  // namespace
}  // namespace umlsoc::sim
