// Code generation tests: PlantUML emitters, RTL, SystemC-style C++, SW C++
// with ASL translation, and the runtime HW model + SW driver bridge.
#include <gtest/gtest.h>

#include "activity/synthetic.hpp"
#include "codegen/hwmodel.hpp"
#include "codegen/plantuml.hpp"
#include "uml/instance.hpp"
#include "codegen/rtl.hpp"
#include "codegen/software.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "statechart/synthetic.hpp"
#include "support/strings.hpp"

namespace umlsoc::codegen {
namespace {

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing '" << needle << "' in:\n"
      << haystack;
}

/// Small profiled «HwModule» used across the RTL/SystemC/runtime tests.
struct HwFixture {
  uml::Model model{"M"};
  soc::SocProfile profile = soc::SocProfile::install(model);
  uml::Class* uart = nullptr;

  HwFixture() {
    uart = &model.add_package("hw").add_class("Uart");
    uart->apply_stereotype(*profile.hw_module);
    auto reg = [&](const char* name, const char* addr, const char* access,
                   const char* reset = "0") {
      uml::Property& property = uart->add_property(name, &model.primitive("Word", 32));
      property.apply_stereotype(*profile.hw_register);
      property.set_tagged_value(*profile.hw_register, "address", addr);
      property.set_tagged_value(*profile.hw_register, "access", access);
      property.set_tagged_value(*profile.hw_register, "reset", reset);
    };
    reg("tx_data", "0x0", "w");
    reg("status", "0x4", "r", "1");
    reg("divisor", "0x8", "rw", "16");
    uart->add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile.clock);
    uart->add_port("rst_n", uml::PortDirection::kIn);
    uart->add_port("rx", uml::PortDirection::kIn);
    uart->add_port("tx", uml::PortDirection::kOut);
  }
};

// --- PlantUML ------------------------------------------------------------------

TEST(PlantUml, ClassDiagram) {
  uml::Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Interface& iface = pkg.add_interface("IRun");
  iface.add_operation("run");
  uml::Class& base = pkg.add_class("Base");
  base.set_abstract(true);
  uml::Class& derived = pkg.add_class("Derived");
  derived.add_generalization(base);
  derived.add_interface_realization(iface);
  derived.add_property("count", &model.primitive("Integer", 32)).set_default_value("0");
  derived.add_operation("step").add_parameter("n", &model.primitive("Integer", 32));
  uml::Enumeration& mode = pkg.add_enumeration("Mode");
  mode.add_literal("ON");
  uml::Association& assoc = pkg.add_association("owns");
  assoc.add_end("parent", base);
  assoc.add_end("child", derived).set_multiplicity({0, uml::Multiplicity::kUnlimited});

  std::string text = to_plantuml_class_diagram(model);
  expect_contains(text, "@startuml");
  expect_contains(text, "abstract class Base");
  expect_contains(text, "class Derived");
  expect_contains(text, "count : Integer = 0");
  expect_contains(text, "step(n : Integer)");
  expect_contains(text, "interface IRun");
  expect_contains(text, "enum Mode");
  expect_contains(text, "Base <|-- Derived");
  expect_contains(text, "IRun <|.. Derived");
  expect_contains(text, "\"1\" -- \"*\"");
  expect_contains(text, "@enduml");
}

TEST(PlantUml, StereotypesShown) {
  HwFixture f;
  std::string text = to_plantuml_class_diagram(f.model);
  expect_contains(text, "class Uart <<HwModule>>");
}

TEST(PlantUml, ObjectDiagram) {
  uml::Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Class& node = pkg.add_class("Node");
  uml::Property& value = node.add_property("value", &model.primitive("Integer", 32));
  uml::Property& next = node.add_property("next", &node);
  uml::InstanceSpecification& a = pkg.add_instance("a", &node);
  uml::InstanceSpecification& b = pkg.add_instance("b", &node);
  a.set_slot(value, "1");
  a.set_slot_reference(next, b);

  std::string text = to_plantuml_object_diagram(model);
  expect_contains(text, "object a : Node");
  expect_contains(text, "value = 1");
  expect_contains(text, "a --> b : next");
}

TEST(PlantUml, Statechart) {
  auto machine = statechart::make_nested_machine(2, 2);
  std::string text = to_plantuml_statechart(*machine);
  expect_contains(text, "state c_L0 {");
  expect_contains(text, "[*] -->");
  expect_contains(text, ": step");
}

TEST(PlantUml, Activity) {
  auto activity = activity::make_fork_join(2, 1);
  std::string text = to_plantuml_activity(*activity);
  expect_contains(text, "(*) --> \"fork\"");
  expect_contains(text, "\"join\" --> (*)");
}

TEST(PlantUml, Sequence) {
  interaction::Interaction diagram("hs");
  interaction::Lifeline& a = diagram.add_lifeline("Cpu");
  interaction::Lifeline& b = diagram.add_lifeline("Bus");
  diagram.add_message(a, b, "req", interaction::MessageKind::kSync);
  interaction::Fragment& alt = diagram.add_combined(interaction::InteractionOperator::kAlt);
  alt.add_operand("ok").add_message(b, a, "ack", interaction::MessageKind::kReply);
  alt.add_operand("else").add_message(b, a, "nak", interaction::MessageKind::kReply);

  std::string text = to_plantuml_sequence(diagram);
  expect_contains(text, "participant Cpu");
  expect_contains(text, "Cpu -> Bus : req");
  expect_contains(text, "alt ok");
  expect_contains(text, "else else");
  expect_contains(text, "end");
}

TEST(PlantUml, UseCases) {
  usecase::UseCaseModel model("Soc");
  usecase::Actor& user = model.add_actor("Designer");
  usecase::UseCase& edit = model.add_use_case("Edit");
  usecase::UseCase& save = model.add_use_case("Save");
  edit.add_actor(user);
  edit.add_include(save);
  std::string text = to_plantuml_use_cases(model);
  expect_contains(text, "actor Designer");
  expect_contains(text, "usecase \"Edit\"");
  expect_contains(text, "Designer --> Edit");
  expect_contains(text, "Edit ..> Save : <<include>>");
}

// --- RTL --------------------------------------------------------------------------

TEST(Rtl, ModuleWithRegisterFile) {
  HwFixture f;
  support::DiagnosticSink sink;
  std::string text = generate_rtl_module(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(text, "module uart (");
  expect_contains(text, "input  wire         clk");
  expect_contains(text, "output wire         tx");
  expect_contains(text, "reg [31:0]  tx_data;  // @0x0 (w)");
  expect_contains(text, "tx_data <= 32'd0;");
  expect_contains(text, "divisor <= 32'd16;");          // Reset tag honored.
  expect_contains(text, "32'h0: tx_data <= reg_wdata;");  // Write decode.
  expect_contains(text, "32'h4: reg_rdata = status;");    // Read decode.
  expect_contains(text, "endmodule");
  // status is read-only: no write arm; tx_data write-only: no read arm.
  EXPECT_EQ(text.find("status <= reg_wdata"), std::string::npos);
  EXPECT_EQ(text.find("reg_rdata = tx_data"), std::string::npos);

  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_rtl_structure(text, structure_sink)) << structure_sink.str();
}

TEST(Rtl, RegisterFileReportsDecodeErrors) {
  HwFixture f;
  support::DiagnosticSink sink;
  std::string text = generate_rtl_module(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(text, "output reg          reg_error");
  expect_contains(text, "32'h4: reg_error = 1'b0;");  // Readable address decodes clean.
  expect_contains(text, "reg_error = 1'b1;");          // Default arm flags the error.
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_rtl_structure(text, structure_sink)) << structure_sink.str();
}

TEST(Rtl, TestbenchProbesDecodeError) {
  HwFixture f;
  support::DiagnosticSink sink;
  std::string module_text = generate_rtl_module(*f.uart, f.profile, sink);
  std::string bench = generate_rtl_testbench(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(bench, "wire        reg_error;");
  expect_contains(bench, ".reg_error(reg_error)");
  expect_contains(bench, "32'hdeadbeef");  // Drives an unmapped address...
  expect_contains(bench, "reg_error !== 1'b1");  // ...and expects the error flag.
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_rtl_structure(module_text + bench, structure_sink))
      << structure_sink.str();
}

TEST(Rtl, FsmFromStatechart) {
  auto machine = statechart::make_chain_machine(4);
  support::DiagnosticSink sink;
  std::string text = generate_rtl_fsm(*machine, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(text, "module chain4_fsm (");
  expect_contains(text, "input  wire ev_e");
  expect_contains(text, "localparam S_chain4_s0 = 2'd0;");
  expect_contains(text, "state <= S_chain4_s0");
  expect_contains(text, "if (ev_e) state <= S_chain4_s1;");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_rtl_structure(text, structure_sink)) << structure_sink.str();
}

TEST(Rtl, FsmGuardAndEffectAsComments) {
  statechart::StateMachine machine("g");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  statechart::State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b)
      .set_trigger("go")
      .set_guard("cnt > 3", nullptr)
      .set_effect("cnt := 0", nullptr);
  support::DiagnosticSink sink;
  std::string text = generate_rtl_fsm(machine, sink);
  expect_contains(text, "/* [cnt > 3] */");
  expect_contains(text, "// effect: cnt := 0");
}

TEST(Rtl, FsmRejectsOrthogonal) {
  auto machine = statechart::make_orthogonal_machine(2, 2);
  support::DiagnosticSink sink;
  EXPECT_TRUE(generate_rtl_fsm(*machine, sink).empty());
  EXPECT_TRUE(sink.has_errors());
}

TEST(Rtl, TopInstantiatesPartsAndWires) {
  HwFixture f;
  uml::Package& pkg = *static_cast<uml::Package*>(f.uart->owner());
  uml::Class& top_class = pkg.add_class("Top");
  uml::Property& part = top_class.add_property("uart0", f.uart);
  part.set_aggregation(uml::AggregationKind::kComposite);
  uml::Port& ext = top_class.add_port("ext", uml::PortDirection::kOut);
  uml::Connector& wire = top_class.add_connector("w_tx");
  wire.add_end(uml::ConnectorEnd{&part, f.uart->find_port("tx")});
  wire.add_end(uml::ConnectorEnd{nullptr, &ext});

  support::DiagnosticSink sink;
  std::string text = generate_rtl_top(top_class, f.profile, sink);
  expect_contains(text, "module top (");
  expect_contains(text, "wire w_tx;");
  expect_contains(text, "uart uart0 (");
  expect_contains(text, ".clk(clk)");
  expect_contains(text, ".tx(w_tx)");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_rtl_structure(text, structure_sink)) << structure_sink.str();
}

TEST(Rtl, StructureCheckerCatchesImbalance) {
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_rtl_structure("module m (\n);\n", sink));
  EXPECT_NE(sink.str().find("module/endmodule"), std::string::npos);
  support::DiagnosticSink sink2;
  EXPECT_FALSE(check_rtl_structure("module m;\nalways begin\nendmodule\n", sink2));
  support::DiagnosticSink sink3;
  EXPECT_TRUE(check_rtl_structure("module m;\n// begin in comment\nendmodule\n", sink3));
}

// --- SystemC-style C++ ---------------------------------------------------------------

TEST(SimCodegen, ModuleText) {
  HwFixture f;
  support::DiagnosticSink sink;
  std::string text = generate_sim_module(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(text, "class Uart {");
  expect_contains(text, "explicit Uart(umlsoc::sim::Kernel& kernel)");
  expect_contains(text, "umlsoc::sim::Signal<bool> clk;");
  expect_contains(text, "std::uint32_t status = 1;");
  expect_contains(text, "case 0x4: return status;");
  expect_contains(text, "case 0x0: tx_data = value; break;");
  expect_contains(text, "void reset()");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_cpp_structure(text, structure_sink)) << structure_sink.str();
}

TEST(SimCodegen, CheckedRegisterAccessors) {
  HwFixture f;
  support::DiagnosticSink sink;
  std::string text = generate_sim_module(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(text, "#include \"sim/bus.hpp\"");
  expect_contains(text, "umlsoc::sim::BusStatus read_reg_checked(std::uint32_t addr,");
  expect_contains(text, "umlsoc::sim::BusStatus write_reg_checked(std::uint32_t addr,"
                        " std::uint32_t value) {");
  // status @0x4 is readable, tx_data @0x0 is write-only.
  expect_contains(text, "case 0x4: value = status; return umlsoc::sim::BusStatus::kOk;");
  expect_contains(text, "case 0x0: tx_data = value; return umlsoc::sim::BusStatus::kOk;");
  expect_contains(text, "default: value = 0; return umlsoc::sim::BusStatus::kError;");
  expect_contains(text, "default: return umlsoc::sim::BusStatus::kError;");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_cpp_structure(text, structure_sink)) << structure_sink.str();
}

TEST(SimCodegen, CppStructureChecker) {
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_cpp_structure("class X { void f() { }", sink));
  support::DiagnosticSink sink2;
  EXPECT_TRUE(check_cpp_structure("class X { };  // }", sink2)) << sink2.str();
  support::DiagnosticSink sink3;
  EXPECT_FALSE(check_cpp_structure("int main() { return 0; }", sink3));  // No class.
}

// --- SW codegen / ASL translation ------------------------------------------------------

TEST(SwCodegen, TranslateAslBasics) {
  support::DiagnosticSink sink;
  std::string cpp = translate_asl_to_cpp(
      "x := 1; self.count := self.count + x;"
      "if (x > 0) { self.mode := 2; } else { self.mode := 0; }"
      "while (x < 3) { x := x + 1; }"
      "send Bus.write(x, 5);"
      "return self.count;",
      sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
  expect_contains(cpp, "auto x = 1;");
  expect_contains(cpp, "this->count = (this->count + x);");
  expect_contains(cpp, "if ((x > 0)) {");
  expect_contains(cpp, "} else {");
  expect_contains(cpp, "while ((x < 3)) {");
  expect_contains(cpp, "send_signal(\"Bus\", \"write\", {x, 5});");
  expect_contains(cpp, "return this->count;");
  // Second assignment to the same local must not redeclare it.
  EXPECT_EQ(cpp.find("auto x = (x + 1)"), std::string::npos);
}

TEST(SwCodegen, TranslateSyntaxErrorReported) {
  support::DiagnosticSink sink;
  EXPECT_TRUE(translate_asl_to_cpp("x := ;", sink).empty());
  EXPECT_TRUE(sink.has_errors());
}

TEST(SwCodegen, GenerateSwClass) {
  uml::Model model("M");
  uml::Package& pkg = model.add_package("app");
  uml::Interface& iface = pkg.add_interface("ITask");
  uml::Class& cls = pkg.add_class("Controller");
  cls.set_active(true);
  cls.add_interface_realization(iface);
  cls.add_property("count", &model.primitive("Integer", 32)).set_default_value("0");
  cls.add_property("name", &model.primitive("String", 0));
  uml::Operation& tick = cls.add_operation("tick");
  tick.set_body("self.count := self.count + 1;");
  uml::Operation& get = cls.add_operation("get_count");
  get.set_return_type(model.primitive("Integer", 32));
  get.set_query(true);
  get.set_body("return self.count;");

  support::DiagnosticSink sink;
  std::string text = generate_sw_class(cls, sink);
  expect_contains(text, "// Active class: instantiate as a task.");
  expect_contains(text, "class Controller : public ITask {");
  expect_contains(text, "void tick() {");
  expect_contains(text, "this->count = (this->count + 1);");
  expect_contains(text, "std::int32_t get_count() const {");
  expect_contains(text, "std::int32_t count = 0;");
  expect_contains(text, "std::string name{};");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_cpp_structure(text, structure_sink)) << structure_sink.str();
}

TEST(SwCodegen, StatechartPlanTablesAsStaticData) {
  auto machine = statechart::make_nested_machine(3, 2);
  support::DiagnosticSink sink;
  auto compiled = statechart::compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  const std::string text = generate_statechart_tables(*compiled, "nested");
  expect_contains(text, "namespace nested_tables {");
  expect_contains(text, "inline constexpr std::uint32_t kWords = 1;");
  expect_contains(text, "inline constexpr const char* kEvents[]");
  expect_contains(text, "\"step\"");
  expect_contains(text, "\"reset\"");
  expect_contains(text, "inline constexpr Step kSteps[]");
  expect_contains(text, "Op::kEnterState");
  expect_contains(text, "Op::kExitState");
  expect_contains(text, "inline constexpr Plan kPlans[]");
  expect_contains(text, "inline constexpr Candidate kCandidates[]");
  expect_contains(text, "inline constexpr std::uint64_t kClaims[]");
  expect_contains(text, "kConfigOffsets");
  // Table sizes in the generated text match the compiled machine.
  expect_contains(text, std::to_string(compiled->configuration_count()) + " configurations");
  expect_contains(text, std::to_string(compiled->plan_table().size()) + " plans");
  support::DiagnosticSink structure_sink;
  EXPECT_TRUE(check_cpp_structure(text, structure_sink)) << structure_sink.str();
}

// --- Runtime HW model + SW bridge ---------------------------------------------------------

TEST(HwModel, RegisterFileSemantics) {
  HwFixture f;
  support::DiagnosticSink sink;
  HwModuleSim module(*f.uart, f.profile, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.str();

  EXPECT_EQ(module.peek("status"), 1u);      // Reset value.
  EXPECT_EQ(module.peek("divisor"), 16u);
  module.write_register(0x8, 99);            // rw register.
  EXPECT_EQ(module.read_register(0x8), 99u);
  module.write_register(0x4, 5);             // Read-only: ignored.
  EXPECT_EQ(module.peek("status"), 1u);
  module.write_register(0x0, 42);            // Write-only.
  EXPECT_EQ(module.peek("tx_data"), 42u);
  EXPECT_EQ(module.read_register(0x0), 0u);  // Not readable.
  EXPECT_EQ(module.read_register(0x1000), 0u);  // Unknown offset.
  module.reset();
  EXPECT_EQ(module.peek("divisor"), 16u);
  EXPECT_GT(module.bus_writes(), 0u);
}

TEST(HwModel, CheckedAccessorsAgreeWithGeneratedSemantics) {
  HwFixture f;
  support::DiagnosticSink sink;
  HwModuleSim module(*f.uart, f.profile, sink);

  std::uint64_t value = 123;
  EXPECT_EQ(module.read_register_checked(0x4, value), sim::BusStatus::kOk);
  EXPECT_EQ(value, 1u);  // status reset value.
  EXPECT_EQ(module.write_register_checked(0x8, 77), sim::BusStatus::kOk);
  EXPECT_EQ(module.peek("divisor"), 77u);
  // Access violations and unknown offsets report kError, not silent 0.
  EXPECT_EQ(module.read_register_checked(0x0, value), sim::BusStatus::kError);
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(module.write_register_checked(0x4, 9), sim::BusStatus::kError);
  EXPECT_EQ(module.peek("status"), 1u);
  EXPECT_EQ(module.read_register_checked(0x1000, value), sim::BusStatus::kError);
  EXPECT_EQ(module.write_register_checked(0x1000, 1), sim::BusStatus::kError);
}

TEST(HwModel, BehaviorMachineReactsToWrites) {
  HwFixture f;
  // ctrl-style machine: writing tx_data moves IDLE -> BUSY and sets status.
  statechart::StateMachine machine("uart_ctrl");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  top.add_transition(initial, idle);
  top.add_transition(idle, busy)
      .set_trigger("write_tx_data")
      .set_effect("status := 0", [](statechart::ActionContext& ctx) {
        ctx.instance.set_variable("status", 0);
      });
  top.add_transition(busy, idle)
      .set_trigger("write_divisor")
      .set_effect("status := 1", [](statechart::ActionContext& ctx) {
        ctx.instance.set_variable("status", 1);
      });

  support::DiagnosticSink sink;
  HwModuleSim module(*f.uart, f.profile, sink);
  module.attach_behavior(machine);
  ASSERT_NE(module.behavior(), nullptr);
  EXPECT_TRUE(module.behavior()->is_in("Idle"));

  module.write_register(0x0, 0x55);  // write_tx_data event.
  EXPECT_TRUE(module.behavior()->is_in("Busy"));
  EXPECT_EQ(module.peek("status"), 0u);  // Effect wrote back into register.

  module.write_register(0x8, 8);  // write_divisor event.
  EXPECT_TRUE(module.behavior()->is_in("Idle"));
  EXPECT_EQ(module.peek("status"), 1u);
}

TEST(HwModel, MappedOntoBusAndDrivenByAslDriver) {
  HwFixture f;
  support::DiagnosticSink sink;
  HwModuleSim module(*f.uart, f.profile, sink);

  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(5));
  module.map_onto(bus, 0x40000000);

  BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{std::int64_t{0x40000000}});
  // The exact shape of driver code the SW mapping generates.
  driver.run("bus_write(self.base + 8, 77);");
  auto divisor = driver.run("return bus_read(self.base + 8);");
  ASSERT_TRUE(divisor.has_value());
  EXPECT_EQ(divisor->as_int(), 77);
  EXPECT_EQ(module.peek("divisor"), 77u);
  EXPECT_EQ(bus.reads(), 1u);
  EXPECT_EQ(bus.writes(), 1u);
  EXPECT_GT(kernel.now().picoseconds(), 0u);  // Time advanced by latency.
}

TEST(SwRuntime, UnknownOperationThrows) {
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(1));
  BusMasterContext driver(kernel, bus);
  EXPECT_THROW(driver.run("frobnicate();"), std::runtime_error);
  EXPECT_THROW(driver.run("bus_read();"), std::runtime_error);
}

TEST(SwRuntime, SignalsRecorded) {
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(1));
  BusMasterContext driver(kernel, bus);
  driver.run("send Cpu.irq(3);");
  ASSERT_EQ(driver.sent_signals().size(), 1u);
  EXPECT_EQ(driver.sent_signals()[0].signal, "irq");
  EXPECT_EQ(driver.sent_signals()[0].arguments[0].as_int(), 3);
}

}  // namespace
}  // namespace umlsoc::codegen
