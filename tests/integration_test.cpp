// Cross-module integration tests: the full flows of DESIGN.md wired
// end-to-end (library -> PIM -> XMI -> MDA -> codegen -> simulation, and
// activity -> codesign -> schedule).
#include <gtest/gtest.h>

#include "activity/interpreter.hpp"
#include "activity/synthetic.hpp"
#include "codegen/hwmodel.hpp"
#include "codegen/rtl.hpp"
#include "codegen/software.hpp"
#include "codegen/systemc.hpp"
#include "codegen/swruntime.hpp"
#include "codesign/partition.hpp"
#include "interaction/trace.hpp"
#include "mda/transform.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "uml/compare.hpp"
#include "uml/query.hpp"
#include "uml/validate.hpp"
#include "xmi/serialize.hpp"

namespace umlsoc {
namespace {

TEST(Integration, LibraryToSimulatedUartViaXmiAndMda) {
  support::DiagnosticSink sink;

  // 1. PIM from the IP library.
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("Soc");
  uml::Package& ip = pim.add_package("ip");
  ASSERT_NE(library.instantiate("Uart", pim, ip, "Uart", sink), nullptr) << sink.str();
  ASSERT_NE(library.instantiate("Timer", pim, ip, "Timer", sink), nullptr) << sink.str();

  // 2. The PIM survives an XMI round-trip losslessly.
  std::string xmi_text = xmi::write_model(pim);
  std::unique_ptr<uml::Model> pim2 = xmi::read_model(xmi_text, sink);
  ASSERT_NE(pim2, nullptr) << sink.str();
  support::DiagnosticSink compare_sink;
  ASSERT_TRUE(uml::structurally_equal(pim, *pim2, compare_sink)) << compare_sink.str();

  // 3. MDA hardware mapping of the *re-read* model.
  mda::MdaResult hw = mda::transform(*pim2, mda::PlatformDescription::hardware(), sink);
  ASSERT_NE(hw.psm, nullptr);
  ASSERT_EQ(hw.memory_map.size(), 2u);  // Uart + Timer windows.
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(*hw.psm);
  ASSERT_TRUE(profile.has_value());
  support::DiagnosticSink validation_sink;
  EXPECT_TRUE(uml::validate(*hw.psm, validation_sink)) << validation_sink.str();
  EXPECT_TRUE(soc::validate_soc(*hw.psm, *profile, validation_sink)) << validation_sink.str();

  // 4. RTL for every module; structurally sane.
  for (const mda::MemoryWindow& window : hw.memory_map) {
    (void)window;
  }
  auto* uart =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
  auto* timer =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Timer"));
  ASSERT_NE(uart, nullptr);
  ASSERT_NE(timer, nullptr);
  for (const uml::Component* module : {uart, timer}) {
    std::string rtl = codegen::generate_rtl_module(*module, *profile, sink);
    support::DiagnosticSink structure_sink;
    EXPECT_TRUE(codegen::check_rtl_structure(rtl, structure_sink))
        << module->name() << ":\n"
        << structure_sink.str();
  }

  // 5. Both modules live on one bus; a driver programs both.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(4));
  codegen::HwModuleSim uart_sim(*uart, *profile, sink);
  codegen::HwModuleSim timer_sim(*timer, *profile, sink);
  uart_sim.map_onto(bus, hw.memory_map[0].base);
  timer_sim.map_onto(bus, hw.memory_map[1].base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("uart", asl::Value{static_cast<std::int64_t>(hw.memory_map[0].base)});
  driver.set_attribute("timer",
                       asl::Value{static_cast<std::int64_t>(hw.memory_map[1].base)});
  driver.run(
      "bus_write(self.uart + 12, 54);"   // Uart divisor @0x0C.
      "bus_write(self.timer + 0, 1000);" // Timer load @0x00.
      "bus_write(self.timer + 8, 1);");  // Timer ctrl @0x08.
  EXPECT_EQ(uart_sim.peek("divisor"), 54u);
  EXPECT_EQ(timer_sim.peek("load"), 1000u);
  EXPECT_EQ(timer_sim.peek("ctrl"), 1u);
  EXPECT_EQ(bus.errors(), 0u);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
}

TEST(Integration, SwPsmDriverBodiesActuallyDriveTheHardware) {
  support::DiagnosticSink sink;

  // PIM with a «HwModule»; the SW mapping generates driver ASL bodies.
  uml::Model pim("M");
  soc::SocProfile profile = soc::SocProfile::install(pim);
  uml::Class& hw_class = pim.add_package("hw").add_class("Pwm");
  hw_class.apply_stereotype(*profile.hw_module);
  uml::Property& duty = hw_class.add_property("duty", &pim.primitive("Word", 32));
  duty.apply_stereotype(*profile.hw_register);
  duty.set_tagged_value(*profile.hw_register, "address", "0x4");

  mda::MdaResult sw = mda::transform(pim, mda::PlatformDescription::software(), sink);
  auto* driver_class =
      dynamic_cast<uml::Class*>(uml::find_by_qualified_name(*sw.psm, "hw.PwmDriver"));
  ASSERT_NE(driver_class, nullptr);
  const uml::Operation* write_op = driver_class->find_operation("write_duty");
  const uml::Operation* read_op = driver_class->find_operation("read_duty");
  ASSERT_NE(write_op, nullptr);
  ASSERT_NE(read_op, nullptr);

  // HW PSM of the same PIM provides the executable register file.
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);
  std::optional<soc::SocProfile> hw_profile = soc::SocProfile::find(*hw.psm);
  auto* module = dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "hw.Pwm"));
  ASSERT_NE(module, nullptr);

  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(2));
  codegen::HwModuleSim pwm(*module, *hw_profile, sink);
  pwm.map_onto(bus, 0x40000000);

  // Execute the *generated* driver bodies against the simulated hardware.
  codegen::BusMasterContext context(kernel, bus);
  context.set_attribute("base", asl::Value{std::int64_t{0x40000000}});
  context.set_attribute("value", asl::Value{std::int64_t{750}});
  context.run(write_op->body());
  EXPECT_EQ(pwm.peek("duty"), 750u);
  auto read_back = context.run(read_op->body());
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(read_back->as_int(), 750);
}

TEST(Integration, SwPsmClassesTranslateToCompilableShapedCpp) {
  support::DiagnosticSink sink;
  uml::Model pim("M");
  soc::SocProfile profile = soc::SocProfile::install(pim);
  uml::Class& hw_class = pim.add_package("hw").add_class("Gpio");
  hw_class.apply_stereotype(*profile.hw_module);
  uml::Property& data_reg = hw_class.add_property("data", &pim.primitive("Word", 32));
  data_reg.apply_stereotype(*profile.hw_register);

  mda::MdaResult sw = mda::transform(pim, mda::PlatformDescription::software(), sink);
  for (uml::Class* cls : uml::collect<uml::Class>(*sw.psm)) {
    std::string text = codegen::generate_sw_class(*cls, sink);
    support::DiagnosticSink structure_sink;
    EXPECT_TRUE(codegen::check_cpp_structure(text, structure_sink))
        << cls->name() << ":\n"
        << text;
  }
}

TEST(Integration, ActivityToPartitionToScheduleConsistency) {
  auto pipeline = activity::make_media_pipeline();

  // The token game and the task graph agree on what executes: every task in
  // the schedule fired exactly once in the execution.
  activity::ActivityExecution execution(*pipeline);
  ASSERT_EQ(execution.run(), activity::RunStatus::kTerminated);

  codesign::TaskGraph graph = codesign::extract_task_graph(*pipeline);
  codesign::CostModel model;
  model.area_budget = graph.total_hw_area() * 0.5;
  codesign::PartitionResult best = codesign::partition_exhaustive(graph, model);
  ASSERT_TRUE(best.evaluation.feasible);

  std::vector<codesign::ScheduledTask> schedule =
      codesign::build_schedule(graph, best.partition, model);
  ASSERT_EQ(schedule.size(), graph.size());
  double makespan = 0;
  for (const codesign::ScheduledTask& task : schedule) {
    const activity::ActivityNode* node = pipeline->find_node(task.name);
    ASSERT_NE(node, nullptr) << task.name;
    EXPECT_EQ(execution.firings_of(*node), 1u);
    makespan = std::max(makespan, task.finish);
  }
  EXPECT_DOUBLE_EQ(makespan, best.evaluation.makespan);
}

TEST(Integration, StatechartTraceConformsToScenario) {
  // The specified protocol: configure, then 1..* transfers, then shutdown.
  interaction::Interaction spec("DmaProtocol");
  interaction::Lifeline& cpu = spec.add_lifeline("Cpu");
  interaction::Lifeline& dma = spec.add_lifeline("Dma");
  spec.add_message(cpu, dma, "configure");
  interaction::Fragment& loop = spec.add_combined(interaction::InteractionOperator::kLoop);
  loop.set_loop_bounds(1, -1);
  interaction::Operand& body = loop.add_operand();
  body.add_message(cpu, dma, "kick");
  body.add_message(dma, cpu, "done");
  spec.add_message(cpu, dma, "shutdown");

  // The DMA controller statechart.
  statechart::StateMachine machine("DmaCtrl");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& unconfigured = top.add_state("Unconfigured");
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  statechart::FinalState& off = top.add_final();
  top.add_transition(initial, unconfigured);
  top.add_transition(unconfigured, idle).set_trigger("configure");
  top.add_transition(idle, busy).set_trigger("kick");
  top.add_transition(busy, idle).set_trigger("done");
  top.add_transition(idle, off).set_trigger("shutdown");

  statechart::StateMachineInstance instance(machine);
  instance.start();
  interaction::Trace observed;
  auto drive = [&](const char* event, const char* label) {
    ASSERT_TRUE(instance.dispatch({event})) << event;
    observed.push_back(label);
  };
  drive("configure", "Cpu->Dma:configure");
  for (int i = 0; i < 3; ++i) {
    drive("kick", "Cpu->Dma:kick");
    drive("done", "Dma->Cpu:done");
  }
  drive("shutdown", "Cpu->Dma:shutdown");
  EXPECT_TRUE(instance.is_in_final_state());

  interaction::ConformanceChecker checker(spec);
  EXPECT_TRUE(checker.conforms(observed));

  // A protocol violation (kick before configure) must be caught both ways:
  // the machine discards it AND the mutated trace fails conformance.
  statechart::StateMachineInstance fresh(machine);
  fresh.start();
  EXPECT_FALSE(fresh.dispatch({"kick"}));
  interaction::Trace bad = observed;
  std::swap(bad[0], bad[1]);
  EXPECT_FALSE(checker.conforms(bad));
}

TEST(Integration, HwPsmRoundTripsThroughXmiWithWorkingRegisters) {
  support::DiagnosticSink sink;
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("M");
  library.instantiate("SpiMaster", pim, pim.add_package("ip"), "Spi", sink);
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);

  // PSM -> XMI -> PSM, then build the executable model from the re-read PSM.
  std::unique_ptr<uml::Model> psm2 = xmi::read_model(xmi::write_model(*hw.psm), sink);
  ASSERT_NE(psm2, nullptr) << sink.str();
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(*psm2);
  ASSERT_TRUE(profile.has_value());
  auto* module = dynamic_cast<uml::Class*>(uml::find_by_qualified_name(*psm2, "ip.Spi"));
  ASSERT_NE(module, nullptr);

  codegen::HwModuleSim spi(*module, *profile, sink);
  spi.write_register(0x0, 0xAB);  // data register from the catalog.
  EXPECT_EQ(spi.peek("data"), 0xABu);
  EXPECT_FALSE(sink.has_errors()) << sink.str();
}

}  // namespace
}  // namespace umlsoc
