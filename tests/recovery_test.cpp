// RecoveryCoordinator tests: policy-driven background checkpointing
// (interval, dirty-threshold, overhead budget, co-batched refusal-retry),
// crash recovery through the ladder with a bounded lost-work window,
// supervisor rollback escalation (poison suppression and bounded retries
// ending in terminal give-up), time travel via restore_to, and the
// root-cause binary search pinpointing a seeded poison event.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "replay/recovery.hpp"
#include "replay/snapshot.hpp"
#include "replay/store.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"

namespace umlsoc::replay {
namespace {

using sim::SimTime;

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// A minimal supervised workload: a worker process ticks every 10 ns,
/// incrementing a checkpointed counter. Host-side knobs (not checkpointed,
/// playing the role of an external fault source) can corrupt the counter at
/// one tick or report child failures from a tick onward. Construction order
/// is identical across instances, so ProcessIds line up for replay.
struct WorkerRig {
  static constexpr std::uint64_t kWorkerPs = 10'000;  // 10 ns.

  sim::Kernel kernel;
  sim::EventRecorder recorder;
  sim::Supervisor supervisor;
  sim::ProcessId worker = sim::kInvalidProcess;
  sim::Supervisor::ChildId child = 0;
  std::uint64_t ticks = 0;
  std::uint64_t counter = 0;
  std::uint64_t restarts = 0;
  // Host-side fault knobs: the seeded corruption/failure reoccurs on every
  // replay until a rollback hook (the "operator") changes the knob.
  std::uint64_t corrupt_at_tick = 0;      ///< 0: never.
  std::uint64_t fail_from_tick = kNever;  ///< First tick reporting a child failure.

  WorkerRig()
      : recorder(/*ring_capacity=*/0),
        supervisor(kernel, "soc", sim::RestartStrategy::kOneForOne, restart_policy()) {
    child = supervisor.add_child("worker", [this] {
      ++restarts;
      return true;
    });
    worker = kernel.register_process([this] { work(); }, "rig.worker");
    kernel.set_recorder(&recorder);
  }

  static sim::RestartPolicy restart_policy() {
    sim::RestartPolicy policy;
    policy.backoff = SimTime::ns(100);
    policy.backoff_multiplier = 1;
    policy.max_backoff = SimTime::ns(100);
    policy.max_restarts = 2;
    policy.window = SimTime::us(50);
    return policy;
  }

  void start() { kernel.schedule(SimTime(kWorkerPs), worker); }

  void work() {
    // Chain first: a restored pending activation keeps the workload alive.
    kernel.schedule(SimTime(kWorkerPs), worker);
    ++ticks;
    ++counter;
    if (corrupt_at_tick != 0 && ticks == corrupt_at_tick) counter += 1000;
    if (ticks >= fail_from_tick) supervisor.report_failure(child, "seeded fault");
  }

  [[nodiscard]] SnapshotTargets targets() {
    SnapshotTargets out;
    out.kernel = &kernel;
    out.recorder = &recorder;
    out.supervisors.push_back({"soc", &supervisor});
    out.banks.push_back(
        {"state",
         [this] {
           return std::vector<std::pair<std::string, std::uint64_t>>{
               {"ticks", ticks}, {"counter", counter}, {"restarts", restarts}};
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& sink) {
           for (const auto& [key, value] : values) {
             if (key == "ticks") {
               ticks = value;
             } else if (key == "counter") {
               counter = value;
             } else if (key == "restarts") {
               restarts = value;
             } else {
               sink.error("state", "unknown key '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // System temp, not the working directory: ctest runs many test
    // processes in one directory, and a relative scratch root would both
    // collide across suites and outlive aborted runs as litter. The pid
    // keeps concurrently-running test processes apart; the test name keeps
    // cases within one process apart.
    std::string scratch = "umlsoc-recovery-";
    scratch += std::to_string(::getpid());
    root_ = std::filesystem::temp_directory_path() / scratch;
    dir_ = root_ /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  CheckpointStoreConfig store_config() {
    CheckpointStoreConfig out;
    out.directory = dir_;
    out.full_interval = 4;
    out.keep_fulls = 3;
    return out;
  }

  /// Interval cadence with a tick off the worker's 10 ns grid, so captures
  /// are never refused for co-batching within the horizons used here.
  static RecoveryPolicy policy_100ns() {
    RecoveryPolicy policy;
    policy.checkpoint_interval = SimTime::ns(100);
    policy.tick_interval = SimTime(20'001);
    return policy;
  }

  std::filesystem::path root_;
  std::filesystem::path dir_;
};

TEST_F(RecoveryTest, BackgroundTicksWriteAtTheCheckpointInterval) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy_100ns());
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::us(2));

  const RecoveryCoordinator::Stats& stats = coordinator.stats();
  EXPECT_GT(stats.ticks, 50u);
  EXPECT_GE(stats.written, 10u) << "2us at a 100ns interval";
  EXPECT_LE(stats.written, 25u) << "the interval gates writes, not every tick";
  EXPECT_EQ(stats.written, store.stats().checkpoints);
  EXPECT_GT(stats.last_checkpoint_ps, 0u);
  EXPECT_EQ(stats.last_checkpoint_seq, store.stats().checkpoints);
  EXPECT_EQ(stats.budget_skips, 0u);
  EXPECT_GT(store.stats().deltas, 0u) << "full-every-Nth cadence emits deltas between bases";
}

TEST_F(RecoveryTest, DirtyEventThresholdForcesEarlyCheckpoints) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::us(1000);  // Interval never elapses.
  policy.tick_interval = SimTime(20'001);
  policy.dirty_event_threshold = 20;
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::us(2));

  EXPECT_GE(coordinator.stats().written, 4u)
      << "the event burst must trigger writes long before the interval";
}

TEST_F(RecoveryTest, OverheadBudgetSkipsWritesDeterministically) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryPolicy policy = policy_100ns();
  policy.overhead_budget_ns_per_interval = 1;  // Exhausted by the first encode.
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::us(2));

  const RecoveryCoordinator::Stats& stats = coordinator.stats();
  EXPECT_GE(stats.budget_skips, 1u);
  EXPECT_LT(stats.written, stats.attempts);
  EXPECT_EQ(stats.written + stats.budget_skips + stats.refusals, stats.attempts);
  // Budget skips must not disturb the tick schedule itself.
  WorkerRig twin;
  CheckpointStore twin_store(store_config());
  RecoveryCoordinator twin_coordinator(twin.kernel, twin_store, twin.targets(), policy_100ns());
  twin_coordinator.start();
  twin.start();
  twin.kernel.run(SimTime::us(2));
  EXPECT_EQ(rig.kernel.events_processed(), twin.kernel.events_processed());
  EXPECT_EQ(rig.ticks, twin.ticks);
}

TEST_F(RecoveryTest, CoBatchedTickIsRefusedAndRetries) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(100);
  // Deliberately ON the worker grid, and started first so the coordinator
  // tick always has a co-batch member still to run: every capture refuses.
  policy.tick_interval = SimTime(WorkerRig::kWorkerPs);
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::us(1));

  EXPECT_GT(coordinator.stats().refusals, 0u);
  EXPECT_EQ(coordinator.stats().written, 0u);
  EXPECT_EQ(store.stats().checkpoints, 0u);
}

TEST_F(RecoveryTest, CrashRecoveryBoundsLostWorkAndReplaysBitIdentically) {
  const SimTime horizon = SimTime::us(3);
  const SimTime crash_tick(1'000'003);

  // Reference twin: same construction (injector with a null plan), no crash.
  WorkerRig reference;
  sim::CrashInjector reference_injector(reference.kernel, nullptr, crash_tick);
  CheckpointStoreConfig reference_config = store_config();
  reference_config.directory = dir_ / "reference";
  CheckpointStore reference_store(reference_config);
  RecoveryCoordinator reference_coordinator(reference.kernel, reference_store,
                                            reference.targets(), policy_100ns());
  reference_coordinator.start();
  reference_injector.start();
  reference.start();
  reference.kernel.run(horizon);
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  // Crashing rig: first armed injector tick dies (p=1, one fault).
  WorkerRig crashing;
  sim::FaultPlan plan(/*seed=*/11);
  sim::FaultPlan::SiteConfig site;
  site.error_rate = 1.0;
  site.max_faults = 1;
  plan.configure(sim::FaultSite::kCrash, site);
  sim::CrashInjector injector(crashing.kernel, &plan, crash_tick);
  CheckpointStoreConfig crash_config = store_config();
  crash_config.directory = dir_ / "crash";
  CheckpointStore crash_store(crash_config);
  RecoveryCoordinator crash_coordinator(crashing.kernel, crash_store, crashing.targets(),
                                        policy_100ns());
  crash_coordinator.start();
  injector.start();
  crashing.start();
  std::uint64_t crash_ps = 0;
  try {
    crashing.kernel.run(horizon);
    FAIL() << "the injector must kill the rig";
  } catch (const sim::SimulatedCrash& crash) {
    crash_ps = crash.at_ps;
  }
  EXPECT_EQ(crash_ps, crash_tick.picoseconds()) << "p=1.0: the first tick dies";
  ASSERT_GT(crash_store.stats().checkpoints, 0u);

  // A freshly constructed twin recovers through the coordinator.
  WorkerRig recovered;
  sim::CrashInjector recovered_injector(recovered.kernel, nullptr, crash_tick);
  CheckpointStore recovery_store(crash_config);
  RecoveryCoordinator recovered_coordinator(recovered.kernel, recovery_store,
                                            recovered.targets(), policy_100ns());
  support::DiagnosticSink sink;
  ASSERT_TRUE(recovered_coordinator.recover(sink)) << sink.str();
  const std::uint64_t restored_ps = recovered.kernel.now().picoseconds();
  ASSERT_LE(restored_ps, crash_ps);
  const RecoveryPolicy& policy = recovered_coordinator.policy();
  EXPECT_LE(crash_ps - restored_ps, policy.checkpoint_interval.picoseconds() +
                                        2 * policy.tick_interval.picoseconds())
      << "lost work is bounded by the checkpoint cadence";

  // The restored schedule carries every tick chain: no start() calls, and
  // the run must verify bit-identically against the reference stream.
  recovered.recorder.begin_verify(reference_log, recovered.recorder.total_events());
  recovered.kernel.run(horizon);
  EXPECT_EQ(recovered.recorder.divergence(), std::nullopt);
  EXPECT_EQ(recovered.ticks, reference.ticks);
  EXPECT_EQ(recovered.counter, reference.counter);
  EXPECT_EQ(recovered.kernel.events_processed(), reference.kernel.events_processed());
  EXPECT_GT(recovery_store.stats().checkpoints, 0u)
      << "the restored pending tick must keep the ladder growing";
}

TEST_F(RecoveryTest, RecoverFailsCleanlyOnAnEmptyLadder) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy_100ns());
  support::DiagnosticSink sink;
  EXPECT_FALSE(coordinator.recover(sink));
  EXPECT_NE(sink.str().find("no restorable checkpoint"), std::string::npos) << sink.str();
}

TEST_F(RecoveryTest, RollbackRestoresReplaysAndResumesWithPoisonSuppressed) {
  WorkerRig rig;
  rig.fail_from_tick = 150;  // Failure storm from 1.5us on.
  CheckpointStore store(store_config());
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy_100ns());
  coordinator.attach_supervisor(rig.supervisor);
  std::string seen_reason;
  coordinator.set_on_rollback([&](const std::string& reason) {
    // The "operator": suppress the seeded fault so it does not recur.
    seen_reason = reason;
    rig.fail_from_tick = kNever;
  });
  coordinator.start();
  rig.start();

  const SimTime horizon = SimTime::us(10);
  while (rig.kernel.now() < horizon && !coordinator.rollback_pending()) {
    rig.kernel.run(rig.kernel.now() + SimTime::ns(500));
  }
  ASSERT_TRUE(coordinator.rollback_pending())
      << "the exhausted restart budget must escalate into rollback";
  EXPECT_TRUE(rig.supervisor.suspended());
  EXPECT_FALSE(rig.supervisor.gave_up());
  const std::uint64_t poison_ps = coordinator.poison()->at_ps;
  EXPECT_GE(poison_ps, 150 * WorkerRig::kWorkerPs);

  support::DiagnosticSink sink;
  const std::uint64_t rungs_before = store.stats().checkpoints;
  ASSERT_TRUE(coordinator.maybe_rollback(sink)) << sink.str();
  EXPECT_EQ(store.stats().checkpoints, rungs_before + 1)
      << "exactly the post-resume rung: the verify replay must not write";
  EXPECT_FALSE(coordinator.rollback_pending());
  EXPECT_FALSE(rig.supervisor.suspended());
  EXPECT_FALSE(rig.supervisor.gave_up());
  EXPECT_EQ(coordinator.stats().rollbacks, 1u);
  EXPECT_EQ(coordinator.stats().failed_rollbacks, 0u);
  EXPECT_LT(rig.kernel.now().picoseconds(), poison_ps) << "rolled back before the poison";
  EXPECT_NE(seen_reason.find("restart budget exhausted"), std::string::npos) << seen_reason;

  // With the poison suppressed, the rig runs through the old failure window
  // and beyond without another escalation.
  rig.kernel.run(horizon);
  EXPECT_FALSE(coordinator.rollback_pending());
  EXPECT_FALSE(rig.supervisor.gave_up());
  EXPECT_TRUE(rig.supervisor.quiescent());
  EXPECT_EQ(rig.counter, rig.ticks) << "no corruption in this scenario";
  EXPECT_GT(rig.ticks, 150u) << "the rig must have resumed past the poison tick";
}

TEST_F(RecoveryTest, RollbackBudgetExhaustionEndsInTerminalGiveUp) {
  WorkerRig rig;
  rig.fail_from_tick = 150;
  CheckpointStore store(store_config());
  RecoveryPolicy policy = policy_100ns();
  policy.max_rollbacks = 2;
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.attach_supervisor(rig.supervisor);
  // No on_rollback hook: the poison recurs after every rollback.
  coordinator.start();
  rig.start();

  const SimTime horizon = SimTime::us(50);
  support::DiagnosticSink sink;
  while (rig.kernel.now() < horizon && !rig.supervisor.gave_up()) {
    rig.kernel.run(rig.kernel.now() + SimTime::ns(500));
    if (coordinator.rollback_pending()) {
      ASSERT_TRUE(coordinator.maybe_rollback(sink)) << sink.str();
    }
  }
  EXPECT_TRUE(rig.supervisor.gave_up());
  EXPECT_EQ(coordinator.stats().rollbacks, 2u) << "exactly max_rollbacks recoveries";
  EXPECT_NE(rig.supervisor.give_up_reason().find("restart budget exhausted"),
            std::string::npos)
      << rig.supervisor.give_up_reason();
}

TEST_F(RecoveryTest, RestoreToTravelsToAnEarlierRung) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy_100ns());
  rig.start();

  // Three rungs at known instants, written from outside the simulation.
  for (int k = 1; k <= 3; ++k) {
    rig.kernel.run(SimTime::us(static_cast<std::uint64_t>(k)));
    CheckpointStore::WriteResult result;
    support::DiagnosticSink write_sink;
    ASSERT_TRUE(store.checkpoint(rig.targets(), result, write_sink)) << write_sink.str();
    ASSERT_EQ(result.seq, static_cast<std::uint64_t>(k));
  }
  ASSERT_EQ(rig.ticks, 300u);

  support::DiagnosticSink sink;
  ASSERT_TRUE(coordinator.restore_to(2, sink)) << sink.str();
  EXPECT_EQ(rig.kernel.now(), SimTime::us(2));
  EXPECT_EQ(rig.ticks, 200u);
  EXPECT_EQ(rig.counter, 200u);

  // Resumed checkpointing numbers rungs above every survivor (no overwrite,
  // no sort-below): the next write outranks the abandoned future.
  CheckpointStore::WriteResult resumed;
  support::DiagnosticSink resume_sink;
  ASSERT_TRUE(store.checkpoint(rig.targets(), resumed, resume_sink)) << resume_sink.str();
  EXPECT_GT(resumed.seq, 3u);

  ASSERT_TRUE(coordinator.restore_to(1, sink)) << sink.str();
  EXPECT_EQ(rig.ticks, 100u);

  support::DiagnosticSink missing;
  EXPECT_FALSE(coordinator.restore_to(0, missing)) << "no rung at or below seq 0";
  EXPECT_NE(missing.str().find("no restorable checkpoint"), std::string::npos)
      << missing.str();
}

TEST_F(RecoveryTest, RootCausePinpointsTheSeededPoisonEvent) {
  WorkerRig rig;
  rig.corrupt_at_tick = 30;  // The seeded poison: counter jumps at t = 300ns.
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(50);
  policy.tick_interval = SimTime(10'001);
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();

  // Checkpoints stop before the poison tick; the corruption happens in the
  // uncovered suffix and is only noticed at the end of the run.
  rig.kernel.run(SimTime::ns(200));
  coordinator.stop();
  rig.kernel.run(SimTime::ns(600));
  ASSERT_EQ(rig.ticks, 60u);
  ASSERT_EQ(rig.counter, rig.ticks + 1000) << "the failure is live";

  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  support::DiagnosticSink sink;
  const RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
      expected, expected.size() - 1, [&rig] { return rig.counter != rig.ticks; }, sink);

  ASSERT_TRUE(report.found) << report.summary << "\n" << sink.str();
  ASSERT_LT(report.first_bad_index, expected.size());
  EXPECT_EQ(expected[report.first_bad_index].at_ps, 30 * WorkerRig::kWorkerPs)
      << "the earliest failing probe instant is the corrupted tick";
  EXPECT_EQ(expected[report.first_bad_index].process, rig.worker);
  EXPECT_GE(report.probes, 3u) << "binary search, not a linear scan";
  EXPECT_NE(report.summary.find("earliest divergent activation"), std::string::npos)
      << report.summary;
  EXPECT_NE(report.summary.find("rig.worker"), std::string::npos) << report.summary;
  EXPECT_NE(report.sequence_diagram.find("@startuml"), std::string::npos)
      << report.sequence_diagram;
  EXPECT_NE(report.sequence_diagram.find("rig.worker"), std::string::npos)
      << report.sequence_diagram;
  EXPECT_NE(report.sequence_diagram.find("first divergent"), std::string::npos)
      << report.sequence_diagram;

  // The rig is left rewound to the last good rung, before the poison.
  EXPECT_LT(rig.ticks, 30u);
  EXPECT_EQ(rig.counter, rig.ticks);
}

TEST_F(RecoveryTest, RootCauseProbesNeverWriteLadderRungs) {
  // Regression: with the newest rung gone, restores step DOWN the ladder,
  // leaving stats_.last_checkpoint_ps ahead of restored sim time. Un-gated
  // probe ticks would see the unsigned due-math underflow, write rungs of
  // mid-replay state with the highest sequence numbers, and every later
  // probe's restore_latest_good would adopt them — corrupting the search.
  WorkerRig rig;
  rig.corrupt_at_tick = 55;  // Poison at 550 ns, after every surviving rung.
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(100);
  policy.tick_interval = SimTime(10'001);
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::ns(600));  // No stop(): checkpointing stays live.
  ASSERT_EQ(rig.counter, rig.ticks + 1000) << "the failure is live";

  // Drop the newest rung (written at ~500 ns, still before the poison):
  // restores now land on the ~400 ns rung, behind the coordinator's clock.
  const std::uint64_t newest = coordinator.stats().last_checkpoint_seq;
  ASSERT_EQ(newest, 5u);
  ASSERT_TRUE(std::filesystem::remove(dir_ / "ckpt-00000005.usnap"));

  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  const std::uint64_t rungs_before = store.stats().checkpoints;
  support::DiagnosticSink sink;
  const RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
      expected, expected.size() - 1, [&rig] { return rig.counter != rig.ticks; }, sink);

  ASSERT_TRUE(report.found) << report.summary << "\n" << sink.str();
  ASSERT_LT(report.first_bad_index, expected.size());
  EXPECT_EQ(expected[report.first_bad_index].at_ps, 55 * WorkerRig::kWorkerPs)
      << "the search must pinpoint the poison from the stepped-down rung";
  EXPECT_EQ(expected[report.first_bad_index].process, rig.worker);
  EXPECT_EQ(store.stats().checkpoints, rungs_before)
      << "verify replays must never write ladder rungs";
  // Left rewound to the surviving rung, before the poison.
  EXPECT_EQ(rig.ticks, 40u);
  EXPECT_EQ(rig.counter, rig.ticks);
}

TEST_F(RecoveryTest, RootCauseSurfacesALadderFailureMidSearch) {
  WorkerRig rig;
  rig.corrupt_at_tick = 30;
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(50);
  policy.tick_interval = SimTime(10'001);
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::ns(200));
  coordinator.stop();
  rig.kernel.run(SimTime::ns(600));

  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  support::DiagnosticSink sink;
  // The oracle nukes the ladder after the anchor probe: the next probe's
  // failed restore must abort the search, not read as "probe passed" and
  // steer the bisection toward a plausible-but-wrong index.
  const RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
      expected, expected.size() - 1,
      [this, &rig] {
        std::filesystem::remove_all(dir_);
        return rig.counter != rig.ticks;
      },
      sink);
  EXPECT_FALSE(report.found);
  EXPECT_NE(report.summary.find("ladder exhausted during probing"), std::string::npos)
      << report.summary;
}

TEST_F(RecoveryTest, RootCauseResumesASupervisorOutsideTheSnapshotTargets) {
  WorkerRig rig;
  rig.corrupt_at_tick = 30;
  rig.fail_from_tick = 150;
  CheckpointStore store(store_config());
  // The supervisor is attached for escalation but NOT a snapshot target:
  // probe restores never touch its suspension, so root_cause must clear it
  // when forensics complete (mirroring maybe_rollback's resume).
  SnapshotTargets targets = rig.targets();
  targets.supervisors.clear();
  RecoveryCoordinator coordinator(rig.kernel, store, targets, policy_100ns());
  coordinator.attach_supervisor(rig.supervisor);
  coordinator.start();
  rig.start();

  const SimTime horizon = SimTime::us(10);
  while (rig.kernel.now() < horizon && !coordinator.rollback_pending()) {
    rig.kernel.run(rig.kernel.now() + SimTime::ns(500));
  }
  ASSERT_TRUE(coordinator.rollback_pending());
  ASSERT_TRUE(rig.supervisor.suspended());

  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  support::DiagnosticSink sink;
  const RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
      expected, expected.size() - 1, [&rig] { return rig.counter != rig.ticks; }, sink);
  EXPECT_GE(report.probes, 1u);
  EXPECT_FALSE(rig.supervisor.suspended())
      << "forensics must not leave an untargeted supervisor suspended";
}

TEST_F(RecoveryTest, PolicyReportsTheDerivedTickCadence) {
  WorkerRig rig;
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(100);
  policy.tick_interval = SimTime(0);  // Derive: checkpoint_interval / 4.
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  EXPECT_EQ(coordinator.policy().tick_interval, SimTime::ns(25))
      << "policy() must report the effective cadence, not the zero sentinel";
  EXPECT_EQ(coordinator.policy().checkpoint_interval, SimTime::ns(100));
}

TEST_F(RecoveryTest, RootCauseReportsAFailurePredatingTheLadder) {
  WorkerRig rig;
  rig.corrupt_at_tick = 5;  // Poison *before* the first checkpoint.
  CheckpointStore store(store_config());
  RecoveryPolicy policy;
  policy.checkpoint_interval = SimTime::ns(100);
  policy.tick_interval = SimTime(10'001);
  RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(), policy);
  coordinator.start();
  rig.start();
  rig.kernel.run(SimTime::ns(600));

  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  support::DiagnosticSink sink;
  const RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
      expected, 6, [&rig] { return rig.counter != rig.ticks; }, sink);
  EXPECT_FALSE(report.found);
  EXPECT_NE(report.summary.find("precedes the last good checkpoint"), std::string::npos)
      << report.summary;
}

}  // namespace
}  // namespace umlsoc::replay
