// Checkpoint/restore and deterministic-replay tests: snapshot round-trips
// into a freshly constructed setup, rejection of version-bumped, corrupted
// and truncated snapshots, save-side refusal of unserializable states, and
// event-sequence divergence detection.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/model.hpp"

namespace umlsoc::replay {
namespace {

using sim::SimTime;

/// Shared machine structure; every rig binds its own instance, mirroring
/// "the restoring process rebuilds the same model".
std::unique_ptr<statechart::StateMachine> make_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("Rig");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, busy).set_trigger("go");
  top.add_transition(busy, idle).set_trigger("done");
  return machine;
}

/// A deterministic mini-SoC: a ticker process drives bus reads against a
/// small memory, kicks a watchdog, and alternates a statechart between two
/// states. Constructed identically every time, so ProcessIds and vertex
/// indices are stable across rig instances.
struct Rig {
  static constexpr int kTicks = 40;
  static constexpr std::uint64_t kTickPs = 10000;  // 10ns.

  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  sim::FaultPlan plan;
  statechart::StateMachineInstance instance;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  std::array<std::uint64_t, 8> memory{};
  sim::ProcessId ticker = sim::kInvalidProcess;
  sim::ProcessId perturb = sim::kInvalidProcess;
  int ticks = 0;
  std::uint64_t read_sum = 0;

  explicit Rig(const statechart::StateMachine& machine, std::size_t ring_capacity = 0)
      : bus(kernel, "mem", SimTime::ns(4)),
        plan(/*seed=*/7),
        instance(machine),
        watchdog(kernel, "rig", SimTime::us(1)),
        recorder(ring_capacity) {
    for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = 0x100 + i;
    bus.map_device(
        "ram", 0x0, memory.size() * 8,
        [this](std::uint64_t address) { return memory[address / 8]; },
        [this](std::uint64_t address, std::uint64_t value) { memory[address / 8] = value; });
    sim::FaultPlan::SiteConfig config;
    config.error_rate = 0.3;    // Timing-neutral faults only: completions
    config.bit_flip_rate = 0.2; // always land exactly one latency later.
    plan.configure(sim::FaultSite::kBusRead, config);
    bus.install_fault_plan(&plan);
    instance.set_trace_enabled(false);
    instance.start();
    ticker = kernel.register_process([this] { tick(); }, "rig.ticker");
    perturb = kernel.register_process([] {}, "rig.perturb");
    kernel.set_recorder(&recorder);
    watchdog.arm();
    kernel.schedule(SimTime(kTickPs), ticker);
  }

  void tick() {
    ++ticks;
    watchdog.kick();
    bus.read((static_cast<std::uint64_t>(ticks) % memory.size()) * 8,
             sim::MemoryMappedBus::ReadCompletion(
                 [this](sim::BusStatus, std::uint64_t value) { read_sum += value; }));
    if (ticks % 2 == 1) {
      instance.dispatch(statechart::Event{"go", ticks});
    } else {
      instance.dispatch(statechart::Event{"done", ticks});
    }
    if (ticks == 2) instance.post(statechart::Event{"pending", 99, "tagged"});
    if (ticks < kTicks) kernel.schedule(SimTime(kTickPs), ticker);
  }

  /// Runs to `end_ps` and on to full quiescence when end_ps is 0. A full
  /// run ends with the un-kicked watchdog tripping at its deadline.
  void run(std::uint64_t end_ps = 0) {
    if (end_ps == 0) {
      kernel.run();
      watchdog.disarm();
    } else {
      kernel.run(SimTime(end_ps));
    }
  }

  [[nodiscard]] SnapshotTargets targets() {
    SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"rig", &instance});
    out.buses.push_back({"mem", &bus});
    out.watchdogs.push_back({"rig", &watchdog});
    out.banks.push_back(
        {"memory",
         [this] {
           std::vector<std::pair<std::string, std::uint64_t>> values;
           for (std::size_t i = 0; i < memory.size(); ++i) {
             values.emplace_back("w" + std::to_string(i), memory[i]);
           }
           values.emplace_back("ticks", static_cast<std::uint64_t>(ticks));
           values.emplace_back("read-sum", read_sum);
           return values;
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& sink) {
           for (const auto& [key, value] : values) {
             if (key == "ticks") {
               ticks = static_cast<int>(value);
             } else if (key == "read-sum") {
               read_sum = value;
             } else if (key.size() > 1 && key[0] == 'w') {
               memory[static_cast<std::size_t>(key[1] - '0')] = value;
             } else {
               sink.error("memory", "unknown key '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

// Checkpoint instant: ticks 10..25ns completed (bus completions land 4ns
// after each tick), the 30ns tick still pending — bus quiescent, kernel not.
constexpr std::uint64_t kMidRunPs = 25000;

class ReplayTest : public ::testing::Test {
 protected:
  std::unique_ptr<statechart::StateMachine> machine_ = make_machine();
};

TEST_F(ReplayTest, SnapshotRoundTripIsBitIdentical) {
  Rig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();
  ASSERT_GT(reference_log.size(), 0u);

  Rig source(*machine_);
  source.run(kMidRunPs);
  ASSERT_EQ(source.bus.pending_transactions(), 0u);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  Rig restored(*machine_);
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(restore_snapshot(restored.targets(), snapshot, restore_sink))
      << restore_sink.str();
  restored.run();

  // Event sequence: the restored run's complete log (snapshot prefix +
  // continuation) equals the uninterrupted reference's.
  EXPECT_EQ(sim::first_divergence(reference_log, restored.recorder.log(), &restored.kernel),
            std::nullopt);
  // Final state, component by component.
  EXPECT_EQ(restored.kernel.now(), reference.kernel.now());
  EXPECT_EQ(restored.kernel.events_processed(), reference.kernel.events_processed());
  EXPECT_EQ(restored.ticks, reference.ticks);
  EXPECT_EQ(restored.read_sum, reference.read_sum);
  EXPECT_EQ(restored.memory, reference.memory);
  EXPECT_EQ(restored.bus.stats().reads, reference.bus.stats().reads);
  EXPECT_EQ(restored.bus.stats().errors, reference.bus.stats().errors);
  EXPECT_EQ(restored.bus.stats().injected_bit_flips, reference.bus.stats().injected_bit_flips);
  EXPECT_EQ(restored.plan.str(), reference.plan.str());
  EXPECT_EQ(restored.watchdog.trips(), reference.watchdog.trips());
  EXPECT_EQ(restored.watchdog.kicks(), reference.watchdog.kicks());
  EXPECT_EQ(restored.instance.active_leaf_names(), reference.instance.active_leaf_names());
  EXPECT_EQ(restored.instance.events_processed(), reference.instance.events_processed());
  EXPECT_EQ(restored.instance.transitions_fired(), reference.instance.transitions_fired());
}

TEST_F(ReplayTest, SnapshotCapturesQueuedEventsAndVariables) {
  Rig source(*machine_);
  source.instance.set_variable("budget", -12);
  source.run(kMidRunPs);
  source.instance.post(statechart::Event{"late", 5});

  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();
  EXPECT_NE(snapshot.find("queued"), std::string::npos);

  Rig restored(*machine_);
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(restore_snapshot(restored.targets(), snapshot, restore_sink))
      << restore_sink.str();
  EXPECT_EQ(restored.instance.variable("budget"), -12);
  const statechart::InstanceSnapshot roundtrip = restored.instance.capture();
  // Two undispatched events: "pending" posted by the tick-2 process, then
  // the explicit "late" post — queue order and payloads survive the trip.
  ASSERT_EQ(roundtrip.queue.size(), 2u);
  EXPECT_EQ(roundtrip.queue[0].name, "pending");
  EXPECT_EQ(roundtrip.queue[0].data, 99);
  EXPECT_EQ(roundtrip.queue[0].tag, "tagged");
  EXPECT_EQ(roundtrip.queue[1].name, "late");
  EXPECT_EQ(roundtrip.queue[1].data, 5);
}

TEST_F(ReplayTest, VersionMismatchIsRejected) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  const std::string current = "version=\"" + std::to_string(kSnapshotVersion) + "\"";
  const std::string bumped = "version=\"" + std::to_string(kSnapshotVersion + 1) + "\"";
  const std::size_t at = snapshot.find(current);
  ASSERT_NE(at, std::string::npos);
  snapshot.replace(at, current.size(), bumped);

  Rig restored(*machine_);
  support::DiagnosticSink restore_sink;
  EXPECT_FALSE(restore_snapshot(restored.targets(), snapshot, restore_sink));
  EXPECT_NE(restore_sink.str().find("unsupported snapshot version " +
                                    std::to_string(kSnapshotVersion + 1)),
            std::string::npos)
      << restore_sink.str();
  // The failed restore left the fresh rig untouched.
  EXPECT_EQ(restored.kernel.now().picoseconds(), 0u);
  EXPECT_EQ(restored.ticks, 0);
}

TEST_F(ReplayTest, CorruptedContentFailsTheChecksum) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  const std::size_t at = snapshot.find("rng-state=\"");
  ASSERT_NE(at, std::string::npos);
  char& digit = snapshot[at + 11];
  digit = digit == '3' ? '4' : '3';

  Rig restored(*machine_);
  support::DiagnosticSink restore_sink;
  EXPECT_FALSE(restore_snapshot(restored.targets(), snapshot, restore_sink));
  EXPECT_NE(restore_sink.str().find("checksum mismatch"), std::string::npos)
      << restore_sink.str();
  EXPECT_EQ(restored.kernel.now().picoseconds(), 0u);
}

TEST_F(ReplayTest, TruncatedSnapshotsAreRejectedAtEveryLength) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  Rig restored(*machine_);
  const SnapshotTargets targets = restored.targets();
  for (std::size_t length = 0; length < snapshot.size(); length += 97) {
    support::DiagnosticSink restore_sink;
    EXPECT_FALSE(restore_snapshot(targets, snapshot.substr(0, length), restore_sink));
    EXPECT_TRUE(restore_sink.has_errors()) << "silent failure at length " << length;
  }
  EXPECT_EQ(restored.kernel.now().picoseconds(), 0u);
}

TEST_F(ReplayTest, SaveRefusesPendingBusTransactions) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  source.bus.read(0, sim::MemoryMappedBus::ReadCompletion(nullptr));
  ASSERT_GT(source.bus.pending_transactions(), 0u);

  std::string snapshot;
  support::DiagnosticSink sink;
  EXPECT_FALSE(save_snapshot(source.targets(), snapshot, sink));
  EXPECT_NE(sink.str().find("pending transactions"), std::string::npos) << sink.str();
}

TEST_F(ReplayTest, SaveRefusesForeignOutstandingExpectations) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  const sim::ExpectationId custom = source.kernel.register_expectation("custom in-flight");
  source.kernel.expect(custom);

  std::string snapshot;
  support::DiagnosticSink sink;
  EXPECT_FALSE(save_snapshot(source.targets(), snapshot, sink));
  EXPECT_NE(sink.str().find("custom in-flight"), std::string::npos) << sink.str();
}

TEST_F(ReplayTest, RestoreRejectsMissingAndForeignSections) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  Rig restored(*machine_);
  SnapshotTargets targets = restored.targets();
  targets.machines[0].name = "other";  // Registered target not in the snapshot.
  support::DiagnosticSink restore_sink;
  EXPECT_FALSE(restore_snapshot(targets, snapshot, restore_sink));
  EXPECT_NE(restore_sink.str().find("no <machine> section named 'other'"), std::string::npos)
      << restore_sink.str();
  EXPECT_NE(restore_sink.str().find("has no registered target"), std::string::npos)
      << restore_sink.str();
}

TEST_F(ReplayTest, VerifyModeFlagsInjectedDivergence) {
  Rig reference(*machine_);
  reference.run();
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  Rig source(*machine_);
  source.run(kMidRunPs);
  std::string snapshot;
  support::DiagnosticSink sink;
  ASSERT_TRUE(save_snapshot(source.targets(), snapshot, sink)) << sink.str();

  Rig perturbed(*machine_);
  support::DiagnosticSink restore_sink;
  ASSERT_TRUE(restore_snapshot(perturbed.targets(), snapshot, restore_sink))
      << restore_sink.str();
  perturbed.recorder.begin_verify(reference_log, perturbed.recorder.total_events());
  perturbed.kernel.schedule(SimTime::ns(1), perturbed.perturb);  // Event the reference lacks.
  perturbed.run();

  ASSERT_TRUE(perturbed.recorder.divergence().has_value());
  const sim::EventRecorder::Divergence& divergence = *perturbed.recorder.divergence();
  EXPECT_EQ(divergence.actual_label, "rig.perturb");
  EXPECT_NE(divergence.str().find("rig.perturb"), std::string::npos);
}

TEST_F(ReplayTest, VerifyModePassesOnFaithfulReplay) {
  Rig reference(*machine_);
  reference.run();

  Rig replayed(*machine_);
  replayed.recorder.begin_verify(reference.recorder.log());
  replayed.run();
  EXPECT_EQ(replayed.recorder.divergence(), std::nullopt);
  EXPECT_EQ(replayed.recorder.missing_events(), std::nullopt);
}

TEST_F(ReplayTest, VerifyModeReportsRunsThatStopShort) {
  Rig reference(*machine_);
  reference.run();

  Rig replayed(*machine_);
  replayed.recorder.begin_verify(reference.recorder.log());
  replayed.run(kMidRunPs);
  EXPECT_EQ(replayed.recorder.divergence(), std::nullopt);
  ASSERT_TRUE(replayed.recorder.missing_events().has_value());
}

TEST_F(ReplayTest, RingRecorderKeepsTheTail) {
  Rig rig(*machine_, /*ring_capacity=*/8);
  rig.run();
  EXPECT_GT(rig.recorder.total_events(), 8u);
  const std::vector<sim::RecordedEvent> log = rig.recorder.log();
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(rig.recorder.dropped_events(), rig.recorder.total_events() - 8);

  // The retained tail equals the tail of a full recording.
  Rig full(*machine_);
  full.run();
  const std::vector<sim::RecordedEvent> full_log = full.recorder.log();
  ASSERT_GE(full_log.size(), 8u);
  const std::vector<sim::RecordedEvent> tail(full_log.end() - 8, full_log.end());
  EXPECT_EQ(log, tail);
}

TEST_F(ReplayTest, StatechartRestoreRejectsForeignIndices) {
  Rig source(*machine_);
  source.run(kMidRunPs);
  statechart::InstanceSnapshot snapshot = source.instance.capture();
  snapshot.active_states.push_back(1000);

  Rig restored(*machine_);
  support::DiagnosticSink sink;
  EXPECT_FALSE(restored.instance.restore(snapshot, sink));
  EXPECT_TRUE(sink.has_errors());
  // Validation happens before mutation: the instance still runs normally.
  EXPECT_TRUE(restored.instance.is_in("Idle"));
}

TEST_F(ReplayTest, RecorderDetachedCostsNothingAndRecordsNothing) {
  Rig rig(*machine_);
  rig.kernel.set_recorder(nullptr);
  rig.run();
  EXPECT_EQ(rig.recorder.total_events(), 0u);
  EXPECT_GT(rig.kernel.events_processed(), 0u);
}

}  // namespace
}  // namespace umlsoc::replay
