// Differential property tests pinning the derived execution engines to the
// hierarchical interpreter (the reference semantics):
//  * interpreter vs flattened-table executor (fired-or-not + active leaf)
//    on randomized flattenable machines — evidence that flattening, the
//    RTL-generation path, is semantics-preserving;
//  * interpreter vs AOT-compiled plan-table engine (compile.hpp), compared
//    snapshot-for-snapshot after EVERY dispatch over the synthetic model
//    zoo plus uart-style guarded/error-channel machines — identical
//    configurations, history memory, variables, emitted/deferred events and
//    all four counters, under ordinary and error-channel dispatch.
#include <gtest/gtest.h>

#include "statechart/compile.hpp"
#include "statechart/flatten.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "statechart/validate.hpp"
#include "support/rng.hpp"
#include "verify/explore.hpp"
#include "verify/property.hpp"

namespace umlsoc::statechart {
namespace {

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, InterpreterAgreesWithFlatExecutor) {
  const std::uint64_t seed = GetParam();
  auto machine = make_random_hierarchical_machine(seed, 3, 4, 4);

  support::DiagnosticSink validate_sink;
  ASSERT_TRUE(validate(*machine, validate_sink)) << validate_sink.str();

  support::DiagnosticSink flatten_sink;
  auto flat = flatten(*machine, flatten_sink);
  ASSERT_TRUE(flat.has_value()) << flatten_sink.str();

  StateMachineInstance interpreter(*machine);
  interpreter.set_trace_enabled(false);
  interpreter.start();
  FlatExecutor executor(*flat);

  // Initial configurations agree.
  {
    std::vector<std::string> leaves = interpreter.active_leaf_names();
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_NE(executor.current_name().find(leaves[0]), std::string::npos);
  }

  support::Rng rng(seed * 977 + 13);
  for (int step = 0; step < 500; ++step) {
    Event event{"e" + std::to_string(rng.below(5))};  // Incl. unknown "e4".
    bool interpreter_fired = interpreter.dispatch(event);
    bool executor_fired = executor.dispatch(event);
    ASSERT_EQ(interpreter_fired, executor_fired)
        << "seed " << seed << " step " << step << " event " << event.name;

    std::vector<std::string> leaves = interpreter.active_leaf_names();
    ASSERT_EQ(leaves.size(), 1u) << "non-flat configuration?!";
    ASSERT_NE(executor.current_name().find(leaves[0]), std::string::npos)
        << "seed " << seed << " step " << step << ": interpreter in " << leaves[0]
        << ", executor in " << executor.current_name();
  }
  EXPECT_EQ(interpreter.transitions_fired(), executor.transitions_fired());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 21, 34, 55, 89,
                                           144, 233));

// --- Interpreter vs compiled plan-table engine --------------------------------------

void expect_snapshots_equal(const InstanceSnapshot& reference, const InstanceSnapshot& compiled,
                            const std::string& where) {
  EXPECT_EQ(reference.started, compiled.started) << where;
  EXPECT_EQ(reference.terminated, compiled.terminated) << where;
  EXPECT_EQ(reference.active_states, compiled.active_states) << where;
  EXPECT_EQ(reference.active_finals, compiled.active_finals) << where;
  EXPECT_EQ(reference.shallow_history, compiled.shallow_history) << where;
  EXPECT_EQ(reference.deep_history, compiled.deep_history) << where;
  EXPECT_EQ(reference.variables, compiled.variables) << where;
  EXPECT_EQ(reference.queue.size(), compiled.queue.size()) << where;
  EXPECT_EQ(reference.deferred.size(), compiled.deferred.size()) << where;
  EXPECT_EQ(reference.events_processed, compiled.events_processed) << where;
  EXPECT_EQ(reference.transitions_fired, compiled.transitions_fired) << where;
  EXPECT_EQ(reference.errors_raised, compiled.errors_raised) << where;
  EXPECT_EQ(reference.errors_unhandled, compiled.errors_unhandled) << where;
  ASSERT_EQ(reference, compiled) << where;
}

/// Runs both engines over `machine` in lockstep: every event in `stream` is
/// dispatched to both (through the error channel when `error` is set) and
/// the full snapshots must match after every single dispatch.
struct StreamEntry {
  Event event;
  bool error = false;
};

void run_lockstep(const StateMachine& machine, const std::vector<StreamEntry>& stream) {
  support::DiagnosticSink compile_sink;
  auto compiled = compile(machine, compile_sink);
  ASSERT_NE(compiled, nullptr) << compile_sink.str();

  StateMachineInstance interpreter(machine);
  interpreter.set_trace_enabled(false);
  interpreter.start();
  compiled->start();
  expect_snapshots_equal(interpreter.capture(), compiled->capture(),
                         machine.name() + " after start");

  for (std::size_t step = 0; step < stream.size(); ++step) {
    const StreamEntry& entry = stream[step];
    bool reference_fired = false;
    bool compiled_fired = false;
    if (entry.error) {
      reference_fired = interpreter.dispatch_error(entry.event);
      compiled_fired = compiled->dispatch_error(entry.event);
    } else {
      reference_fired = interpreter.dispatch(entry.event);
      compiled_fired = compiled->dispatch(entry.event);
    }
    const std::string where = machine.name() + " step " + std::to_string(step) + " event " +
                              entry.event.name + (entry.error ? " (error channel)" : "");
    ASSERT_EQ(reference_fired, compiled_fired) << where;
    expect_snapshots_equal(interpreter.capture(), compiled->capture(), where);
  }
}

std::vector<StreamEntry> random_stream(std::uint64_t seed,
                                       const std::vector<std::string>& alphabet,
                                       std::size_t length, double error_chance = 0.0) {
  support::Rng rng(seed);
  std::vector<StreamEntry> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    StreamEntry entry;
    entry.event = Event{alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))],
                        static_cast<std::int64_t>(rng.below(8))};
    entry.error = error_chance > 0.0 && rng.chance(error_chance);
    stream.push_back(std::move(entry));
  }
  return stream;
}

TEST(CompiledDifferential, SyntheticZooChain) {
  auto machine = make_chain_machine(16);
  run_lockstep(*machine, random_stream(11, {"e", "nope"}, 400));
}

TEST(CompiledDifferential, SyntheticZooNested) {
  for (const auto& [depth, width] : {std::pair<std::size_t, std::size_t>{2, 2}, {4, 3}, {8, 4}}) {
    auto machine = make_nested_machine(depth, width);
    run_lockstep(*machine, random_stream(depth * 31 + width, {"step", "reset", "junk"}, 400));
  }
}

TEST(CompiledDifferential, SyntheticZooOrthogonal) {
  for (const auto& [regions, states] : {std::pair<std::size_t, std::size_t>{2, 2}, {3, 4}}) {
    auto machine = make_orthogonal_machine(regions, states);
    run_lockstep(*machine,
                 random_stream(regions * 7 + states, {"tick", "r0", "r1", "r2", "zz"}, 400));
  }
}

class CompiledRandomZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledRandomZoo, AgreesWithInterpreter) {
  const std::uint64_t seed = GetParam();
  auto machine = make_random_hierarchical_machine(seed, 3, 4, 4);
  support::DiagnosticSink validate_sink;
  ASSERT_TRUE(validate(*machine, validate_sink)) << validate_sink.str();
  run_lockstep(*machine, random_stream(seed * 977 + 13, {"e0", "e1", "e2", "e3", "e4"}, 500));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledRandomZoo,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 21, 34, 55, 89,
                                           144, 233));

// --- Feature machines: history, deferral, terminate, error channel -----------------

/// Composite with shallow history re-entry (compiled engine's dynamic-entry
/// fallback) plus a deep-history sibling over a nested region.
std::unique_ptr<StateMachine> make_history_machine() {
  auto machine = std::make_unique<StateMachine>("history");
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();
  State& off = top.add_state("Off");
  State& on = top.add_state("On");
  top.add_transition(initial, off);

  Region& run = on.add_region("run");
  Pseudostate& run_initial = run.add_initial();
  Pseudostate& shallow = run.add_pseudostate(VertexKind::kShallowHistory, "H");
  State& a = run.add_state("A");
  State& b = run.add_state("B");
  State& c = run.add_state("C");
  run.add_transition(run_initial, a);
  run.add_transition(a, b).set_trigger("adv");
  run.add_transition(b, c).set_trigger("adv");
  run.add_transition(c, a).set_trigger("adv");

  // Deep variant: C itself is composite, so deep history restores leaves.
  Region& inner = c.add_region("cr");
  Pseudostate& inner_initial = inner.add_initial();
  State& c1 = inner.add_state("C1");
  State& c2 = inner.add_state("C2");
  inner.add_transition(inner_initial, c1);
  inner.add_transition(c1, c2).set_trigger("inner");
  inner.add_transition(c2, c1).set_trigger("inner");

  Pseudostate& deep = run.add_pseudostate(VertexKind::kDeepHistory, "Hs");
  State& paused = top.add_state("Paused");
  top.add_transition(off, shallow).set_trigger("on");    // Enter via shallow history.
  top.add_transition(on, off).set_trigger("off");
  top.add_transition(on, paused).set_trigger("pause");
  top.add_transition(paused, deep).set_trigger("resume");  // Enter via deep history.
  return machine;
}

TEST(CompiledDifferential, ShallowAndDeepHistory) {
  auto machine = make_history_machine();
  run_lockstep(*machine, random_stream(42, {"on", "off", "adv", "inner", "pause", "resume"},
                                       600));
}

/// Deferred events: Busy defers "req"; returning to Idle recalls them.
std::unique_ptr<StateMachine> make_defer_machine() {
  auto machine = std::make_unique<StateMachine>("deferred");
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();
  State& idle = top.add_state("Idle");
  State& busy = top.add_state("Busy");
  State& work = top.add_state("Work");
  top.add_transition(initial, idle);
  busy.add_deferred("req");
  top.add_transition(idle, work).set_trigger("req");
  top.add_transition(work, idle).set_trigger("done");
  top.add_transition(idle, busy).set_trigger("lock");
  top.add_transition(busy, idle).set_trigger("unlock");
  return machine;
}

TEST(CompiledDifferential, DeferredEvents) {
  auto machine = make_defer_machine();
  run_lockstep(*machine, random_stream(7, {"req", "done", "lock", "unlock"}, 600));
}

/// Terminate pseudostate: "kill" from inside a composite ends the machine.
std::unique_ptr<StateMachine> make_terminate_machine() {
  auto machine = std::make_unique<StateMachine>("terminating");
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();
  State& running = top.add_state("Running");
  Pseudostate& terminate = top.add_pseudostate(VertexKind::kTerminate, "X");
  top.add_transition(initial, running);

  Region& inner = running.add_region("r");
  Pseudostate& inner_initial = inner.add_initial();
  State& a = inner.add_state("a");
  State& b = inner.add_state("b");
  inner.add_transition(inner_initial, a);
  inner.add_transition(a, b).set_trigger("flip");
  inner.add_transition(b, a).set_trigger("flip");

  top.add_transition(running, terminate).set_trigger("kill");
  return machine;
}

TEST(CompiledDifferential, TerminatePseudostate) {
  auto machine = make_terminate_machine();
  // Includes dispatches after termination (both must be dead no-ops).
  run_lockstep(*machine, random_stream(3, {"flip", "kill", "flip"}, 200));
}

/// uart_soc-style machine: guarded retries over an engine variable, an
/// error-event channel into a Fault state, recovery back to Idle. Guards
/// and effects read/write through ActionContext, so they are engine-blind.
std::unique_ptr<StateMachine> make_uart_style_machine() {
  auto machine = std::make_unique<StateMachine>("uartlink");
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();
  State& idle = top.add_state("Idle");
  State& sending = top.add_state("Sending");
  State& fault = top.add_state("Fault");
  FinalState& done = top.add_final("done");
  top.add_transition(initial, idle);

  top.add_transition(idle, sending)
      .set_trigger("tx")
      .set_effect("retries = 0", [](ActionContext& ctx) { ctx.instance.set_variable("retries", 0); });
  top.add_transition(sending, idle).set_trigger("ack");
  top.add_transition(sending, sending)
      .set_trigger("nak")
      .set_guard("retries < 3",
                 [](const ActionContext& ctx) { return ctx.instance.variable("retries") < 3; })
      .set_effect("retries++", [](ActionContext& ctx) {
        ctx.instance.set_variable("retries", ctx.instance.variable("retries") + 1);
      });
  top.add_transition(sending, fault)
      .set_trigger("nak")
      .set_guard("retries >= 3",
                 [](const ActionContext& ctx) { return ctx.instance.variable("retries") >= 3; });
  top.add_transition(sending, fault).set_trigger("bus_error");
  top.add_transition(idle, fault).set_trigger("bus_error");
  top.add_transition(fault, idle).set_trigger("reset");
  top.add_transition(idle, done).set_trigger("shutdown");
  return machine;
}

TEST(CompiledDifferential, UartStyleGuardsAndErrorChannel) {
  auto machine = make_uart_style_machine();
  // ~20% of events arrive through the error channel; "bus_error" is only
  // handled in Idle/Sending, so unhandled-error counting is exercised too.
  run_lockstep(*machine,
               random_stream(99, {"tx", "ack", "nak", "bus_error", "reset", "noise"}, 600,
                             0.2));
}

TEST(CompiledDifferential, SnapshotsInterchangeableBetweenEngines) {
  auto machine = make_history_machine();
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();

  StateMachineInstance interpreter(*machine);
  interpreter.set_trace_enabled(false);
  interpreter.start();
  for (const char* name : {"on", "adv", "adv", "inner", "pause"}) {
    interpreter.dispatch(Event{name});
  }

  // Interpreter snapshot restores into the compiled engine and vice versa;
  // both continue identically from the restored point.
  ASSERT_TRUE(compiled->restore(interpreter.capture(), sink)) << sink.str();
  expect_snapshots_equal(interpreter.capture(), compiled->capture(), "after cross-restore");
  for (const char* name : {"resume", "inner", "off", "on"}) {
    const Event event{name};
    ASSERT_EQ(interpreter.dispatch(event), compiled->dispatch(event)) << name;
    expect_snapshots_equal(interpreter.capture(), compiled->capture(),
                           std::string("continuing after ") + name);
  }

  StateMachineInstance second(*machine);
  second.set_trace_enabled(false);
  ASSERT_TRUE(second.restore(compiled->capture(), sink)) << sink.str();
  expect_snapshots_equal(second.capture(), compiled->capture(), "round trip into interpreter");
}

// Verifier counterexamples replay identically on both engines: explore a
// uart-style machine to a property violation, then drive the recorded event
// path from result.initial through a fresh interpreter and a fresh compiled
// machine in lockstep, ending in the same (violating) configuration.
TEST(CompiledDifferential, ReplayedCounterexamplesMatchAcrossEngines) {
  auto machine = make_uart_style_machine();

  StateMachineInstance explored(*machine);
  explored.set_trace_enabled(false);
  explored.start();
  verify::Network network;
  network.add_instance("uart", explored);
  network.add_choice("uart", Event("tx"));
  network.add_choice("uart", Event("nak"));
  network.add_choice("uart", Event("reset"));
  network.add_choice("uart", Event("bus_error"), /*is_error=*/true);

  std::vector<verify::Property> properties;
  properties.push_back(verify::Property::never_in("uart", "Fault"));

  verify::ExploreResult result = verify::explore(network, properties);
  ASSERT_EQ(result.termination, verify::ExploreResult::Termination::kViolation);
  ASSERT_FALSE(result.violations.empty());
  const verify::Violation& violation = result.violations.front();
  ASSERT_FALSE(violation.path.empty());

  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  ASSERT_NE(compiled, nullptr) << sink.str();
  StateMachineInstance interpreter(*machine);
  interpreter.set_trace_enabled(false);
  ASSERT_EQ(result.initial.size(), 1u);
  ASSERT_TRUE(interpreter.restore(result.initial.front(), sink)) << sink.str();
  ASSERT_TRUE(compiled->restore(result.initial.front(), sink)) << sink.str();
  expect_snapshots_equal(interpreter.capture(), compiled->capture(), "at result.initial");

  for (std::size_t i = 0; i < violation.path.size(); ++i) {
    const verify::EventChoice& choice = violation.path[i];
    bool fired_reference = false;
    bool fired_compiled = false;
    if (choice.is_error) {
      fired_reference = interpreter.dispatch_error(choice.event);
      fired_compiled = compiled->dispatch_error(choice.event);
    } else {
      fired_reference = interpreter.dispatch(choice.event);
      fired_compiled = compiled->dispatch(choice.event);
    }
    EXPECT_EQ(fired_reference, fired_compiled) << "replay step " << i;
    expect_snapshots_equal(interpreter.capture(), compiled->capture(),
                           "replay step " + std::to_string(i) + " of " +
                               std::to_string(violation.path.size()));
  }
  // Both engines land on the violating state the verifier reported.
  EXPECT_TRUE(interpreter.is_in("Fault"));
  EXPECT_TRUE(compiled->is_in("Fault"));
}

}  // namespace
}  // namespace umlsoc::statechart
