// Differential property test: the hierarchical interpreter and the
// flattened-table executor must agree (fired-or-not + active leaf) on
// randomized flattenable machines over randomized event streams. This is
// the strongest evidence that flattening — the RTL-generation path — is
// semantics-preserving.
#include <gtest/gtest.h>

#include "statechart/flatten.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "statechart/validate.hpp"
#include "support/rng.hpp"

namespace umlsoc::statechart {
namespace {

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, InterpreterAgreesWithFlatExecutor) {
  const std::uint64_t seed = GetParam();
  auto machine = make_random_hierarchical_machine(seed, 3, 4, 4);

  support::DiagnosticSink validate_sink;
  ASSERT_TRUE(validate(*machine, validate_sink)) << validate_sink.str();

  support::DiagnosticSink flatten_sink;
  auto flat = flatten(*machine, flatten_sink);
  ASSERT_TRUE(flat.has_value()) << flatten_sink.str();

  StateMachineInstance interpreter(*machine);
  interpreter.set_trace_enabled(false);
  interpreter.start();
  FlatExecutor executor(*flat);

  // Initial configurations agree.
  {
    std::vector<std::string> leaves = interpreter.active_leaf_names();
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_NE(executor.current_name().find(leaves[0]), std::string::npos);
  }

  support::Rng rng(seed * 977 + 13);
  for (int step = 0; step < 500; ++step) {
    Event event{"e" + std::to_string(rng.below(5))};  // Incl. unknown "e4".
    bool interpreter_fired = interpreter.dispatch(event);
    bool executor_fired = executor.dispatch(event);
    ASSERT_EQ(interpreter_fired, executor_fired)
        << "seed " << seed << " step " << step << " event " << event.name;

    std::vector<std::string> leaves = interpreter.active_leaf_names();
    ASSERT_EQ(leaves.size(), 1u) << "non-flat configuration?!";
    ASSERT_NE(executor.current_name().find(leaves[0]), std::string::npos)
        << "seed " << seed << " step " << step << ": interpreter in " << leaves[0]
        << ", executor in " << executor.current_name();
  }
  EXPECT_EQ(interpreter.transitions_fired(), executor.transitions_fired());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace umlsoc::statechart
