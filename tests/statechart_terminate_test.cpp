// Tests for the terminate pseudostate: reaching it kills the machine
// immediately, without running exit actions, and dispatch becomes a no-op.
#include <gtest/gtest.h>

#include "statechart/flatten.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/validate.hpp"
#include "xmi/behavior.hpp"

namespace umlsoc::statechart {
namespace {

struct TerminateFixture {
  StateMachine machine{"m"};
  State* work = nullptr;
  int exits = 0;

  TerminateFixture() {
    Region& top = machine.top();
    Pseudostate& initial = top.add_initial();
    work = &top.add_state("Work");
    work->set_exit(Behavior{"cleanup", [this](ActionContext&) { ++exits; }});
    Pseudostate& kill = top.add_pseudostate(VertexKind::kTerminate, "X");
    top.add_transition(initial, *work);
    top.add_transition(*work, kill).set_trigger("abort");
  }
};

TEST(Terminate, KillsMachine) {
  TerminateFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  EXPECT_FALSE(instance.is_terminated());
  EXPECT_TRUE(instance.dispatch({"abort"}));
  EXPECT_TRUE(instance.is_terminated());
  EXPECT_TRUE(instance.configuration().empty());
  // Dead: further dispatches are no-ops.
  EXPECT_FALSE(instance.dispatch({"abort"}));
  EXPECT_FALSE(instance.dispatch({"anything"}));
}

TEST(Terminate, ExitActionOfSourceStillRunsButNotesTerminate) {
  // UML says terminate skips exit behaviors of the *remaining* config; the
  // fired transition's own exit sequence has already run by the time the
  // terminate vertex is entered — our semantics documents exactly that.
  TerminateFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.dispatch({"abort"});
  EXPECT_EQ(f.exits, 1);  // Work was exited by the firing transition.
  bool noted = false;
  for (const std::string& entry : instance.trace()) {
    if (entry == "terminate") noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(Terminate, PendingQueueCleared) {
  TerminateFixture f;
  StateMachineInstance instance(f.machine);
  instance.start();
  instance.post({"abort"});
  instance.post({"abort"});
  instance.post({"abort"});
  instance.run_to_quiescence();
  EXPECT_TRUE(instance.is_terminated());
  EXPECT_EQ(instance.events_processed(), 1u);  // Rest of the queue dropped.
}

TEST(Terminate, ValidatorRejectsOutgoing) {
  StateMachine machine("m");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& a = top.add_state("A");
  Pseudostate& kill = top.add_pseudostate(VertexKind::kTerminate, "X");
  top.add_transition(initial, a);
  top.add_transition(a, kill).set_trigger("die");
  top.add_transition(kill, a).set_trigger("undead");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate(machine, sink));
  EXPECT_NE(sink.str().find("terminate pseudostate has outgoing"), std::string::npos);
}

TEST(Terminate, FlattenRejectsIt) {
  TerminateFixture f;
  support::DiagnosticSink sink;
  EXPECT_FALSE(flatten(f.machine, sink).has_value());
  EXPECT_NE(sink.str().find("terminate"), std::string::npos);
}

TEST(Terminate, SurvivesXmiRoundTrip) {
  TerminateFixture f;
  std::string text = xmi::write_state_machine(f.machine);
  support::DiagnosticSink sink;
  auto reread = xmi::read_state_machine(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();

  StateMachineInstance instance(*reread);
  instance.start();
  instance.dispatch({"abort"});
  EXPECT_TRUE(instance.is_terminated());
}

}  // namespace
}  // namespace umlsoc::statechart
