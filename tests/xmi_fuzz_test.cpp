// Robustness property tests: the XML parser, the model readers and the
// snapshot restorer must never crash on malformed input — every failure is
// a clean diagnostic. Targeted corpora cover the parser's hardening edges:
// deep nesting (bounded recursion), numeric character references, CDATA
// sections, and truncated/mutated snapshot documents.
#include <gtest/gtest.h>

#include "replay/snapshot.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"
#include "uml/synthetic.hpp"
#include "xmi/behavior.hpp"
#include "xmi/serialize.hpp"
#include "xmi/xml.hpp"

namespace umlsoc::xmi {
namespace {

/// Characters biased toward XML structure to hit parser edges.
std::string random_blob(support::Rng& rng, std::size_t length) {
  static const char kAlphabet[] = "<>/=\"'&; \nabcdeXMLid0123&lt;&amp;!-?";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, RandomBlobsNeverCrashParser) {
  support::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string blob = random_blob(rng, 1 + rng.below(300));
    support::DiagnosticSink sink;
    std::unique_ptr<XmlNode> node = parse_xml(blob, sink);
    // Either it parsed, or it reported why not — never both empty.
    if (node == nullptr) {
      EXPECT_TRUE(sink.has_errors()) << "silent failure on: " << blob;
    }
  }
}

TEST_P(XmlFuzz, RandomBlobsNeverCrashModelReader) {
  support::Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 100; ++i) {
    std::string blob = random_blob(rng, 1 + rng.below(300));
    support::DiagnosticSink sink;
    auto model = read_model(blob, sink);
    if (model == nullptr) {
      EXPECT_TRUE(sink.has_errors());
    }
    support::DiagnosticSink sink2;
    auto machine = read_state_machine(blob, sink2);
    if (machine == nullptr) {
      EXPECT_TRUE(sink2.has_errors());
    }
    support::DiagnosticSink sink3;
    auto activity = read_activity(blob, sink3);
    if (activity == nullptr) {
      EXPECT_TRUE(sink3.has_errors());
    }
  }
}

TEST_P(XmlFuzz, MutatedValidDocumentsNeverCrash) {
  // Take a real document and corrupt random spans.
  uml::SyntheticSpec spec;
  spec.seed = GetParam();
  spec.packages = 2;
  auto model = uml::make_synthetic_model(spec);
  const std::string original = write_model(*model);

  support::Rng rng(GetParam() * 101 + 3);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = original;
    const int mutations = 1 + static_cast<int>(rng.below(5));
    for (int m = 0; m < mutations; ++m) {
      std::size_t position = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:  // Flip a character.
          mutated[position] = static_cast<char>('!' + rng.below(90));
          break;
        case 1:  // Delete a span.
          mutated.erase(position, 1 + rng.below(8));
          break;
        default:  // Duplicate a span.
          mutated.insert(position, mutated.substr(position, 1 + rng.below(8)));
      }
      if (mutated.empty()) mutated = "<";
    }
    support::DiagnosticSink sink;
    auto reread = read_model(mutated, sink);
    if (reread == nullptr) {
      EXPECT_TRUE(sink.has_errors());
    } else {
      // A mutation that still parses must still yield a sane model.
      EXPECT_GE(reread->element_count(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(XmlHardening, DeepNestingIsBoundedNotAStackOverflow) {
  // 10k nested elements: far past the default depth bound. The parser must
  // report a clean diagnostic, not recurse to a crash.
  std::string document;
  for (int i = 0; i < 10000; ++i) document += "<a>";
  for (int i = 0; i < 10000; ++i) document += "</a>";
  support::DiagnosticSink sink;
  EXPECT_EQ(parse_xml(document, sink), nullptr);
  EXPECT_NE(sink.str().find("nesting exceeds maximum depth"), std::string::npos)
      << sink.str();
}

TEST(XmlHardening, DepthBoundIsConfigurable) {
  const std::string document = "<a><b><c/></b></a>";
  XmlParseOptions shallow;
  shallow.max_depth = 2;
  support::DiagnosticSink sink;
  EXPECT_EQ(parse_xml(document, sink, shallow), nullptr);
  EXPECT_TRUE(sink.has_errors());

  XmlParseOptions deep;
  deep.max_depth = 3;
  support::DiagnosticSink ok_sink;
  EXPECT_NE(parse_xml(document, ok_sink, deep), nullptr);
  EXPECT_FALSE(ok_sink.has_errors());
}

TEST(XmlHardening, NumericCharacterReferenceCorpus) {
  // (input fragment, expected decoded text, or "" for a must-fail case).
  const struct {
    const char* fragment;
    const char* decoded;
    bool valid;
  } kCases[] = {
      {"&#65;&#66;", "AB", true},
      {"&#x41;&#x62;", "Ab", true},
      {"&#xe9;", "\xC3\xA9", true},            // Two-byte UTF-8.
      {"&#x20AC;", "\xE2\x82\xAC", true},      // Three-byte UTF-8 (euro).
      {"&#x1F600;", "\xF0\x9F\x98\x80", true}, // Four-byte UTF-8.
      {"&#38;&#60;", "&<", true},              // Escaping XML's own syntax.
      {"&#0;", "", false},                     // NUL forbidden.
      {"&#xD800;", "", false},                 // Surrogate half.
      {"&#x110000;", "", false},               // Past the Unicode ceiling.
      {"&#;", "", false},                      // Empty digits.
      {"&#x;", "", false},
      {"&#abc;", "", false},                   // Non-digits.
      {"&#65", "", false},                     // Unterminated.
  };
  for (const auto& test_case : kCases) {
    const std::string document = std::string("<t>") + test_case.fragment + "</t>";
    support::DiagnosticSink sink;
    std::unique_ptr<XmlNode> node = parse_xml(document, sink);
    if (test_case.valid) {
      ASSERT_NE(node, nullptr) << document << "\n" << sink.str();
      EXPECT_EQ(node->text(), test_case.decoded) << document;
    } else {
      EXPECT_EQ(node, nullptr) << document;
      EXPECT_TRUE(sink.has_errors()) << document;
    }
  }
}

TEST(XmlHardening, NumericReferencesInAttributes) {
  support::DiagnosticSink sink;
  std::unique_ptr<XmlNode> node = parse_xml("<t name=\"&#x48;&#105;\"/>", sink);
  ASSERT_NE(node, nullptr) << sink.str();
  EXPECT_EQ(node->attribute_or("name", ""), "Hi");
}

TEST(XmlHardening, CdataSectionsPassThroughVerbatim) {
  support::DiagnosticSink sink;
  std::unique_ptr<XmlNode> node =
      parse_xml("<t>before <![CDATA[<raw> & &amp; ]] &#65;]]> after</t>", sink);
  ASSERT_NE(node, nullptr) << sink.str();
  // Inside CDATA nothing is decoded; outside, normal text rules apply.
  EXPECT_EQ(node->text(), "before <raw> & &amp; ]] &#65; after");

  support::DiagnosticSink empty_sink;
  std::unique_ptr<XmlNode> empty = parse_xml("<t><![CDATA[]]></t>", empty_sink);
  ASSERT_NE(empty, nullptr) << empty_sink.str();
  EXPECT_EQ(empty->text(), "");
}

TEST(XmlHardening, UnterminatedCdataIsAnError) {
  support::DiagnosticSink sink;
  EXPECT_EQ(parse_xml("<t><![CDATA[never closed</t>", sink), nullptr);
  EXPECT_TRUE(sink.has_errors());
}

TEST(XmlHardening, CdataFuzzNeverCrashes) {
  support::Rng rng(11);
  static const char kAlphabet[] = "<>[]!CDATA&#; ]x";
  for (int i = 0; i < 300; ++i) {
    std::string body;
    for (std::size_t j = 0; j < 1 + rng.below(60); ++j) {
      body += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
    }
    const std::string document = "<t><![CDATA" + body + "</t>";
    support::DiagnosticSink sink;
    std::unique_ptr<XmlNode> node = parse_xml(document, sink);
    if (node == nullptr) {
      EXPECT_TRUE(sink.has_errors()) << "silent failure on: " << document;
    }
  }
}

TEST(XmlHardening, ErrorLocationsCarryLineAndColumn) {
  support::DiagnosticSink sink;
  EXPECT_EQ(parse_xml("<a>\n  <b>\n    <c>&bogus;</c>\n  </b>\n</a>", sink), nullptr);
  EXPECT_NE(sink.str().find("line 3"), std::string::npos) << sink.str();
  EXPECT_NE(sink.str().find("col"), std::string::npos) << sink.str();
}

/// Truncating or mutating a real snapshot at any offset must fail restore
/// cleanly (parse error, checksum mismatch, or section validation) and
/// never crash.
TEST(SnapshotFuzz, TruncatedAndMutatedSnapshotsAreRejected) {
  sim::Kernel kernel;
  const sim::ProcessId ticker = kernel.register_process([] {}, "fuzz.ticker");
  kernel.schedule(sim::SimTime::ns(10), ticker);
  kernel.run(sim::SimTime::ns(5));

  replay::SnapshotTargets targets;
  targets.kernel = &kernel;
  std::string snapshot;
  support::DiagnosticSink save_sink;
  ASSERT_TRUE(replay::save_snapshot(targets, snapshot, save_sink)) << save_sink.str();

  // Truncating trailing whitespace leaves a valid document; every cut into
  // real content must fail.
  const std::size_t content_end = snapshot.find_last_not_of(" \n\t") + 1;
  for (std::size_t length = 0; length < content_end; ++length) {
    support::DiagnosticSink sink;
    EXPECT_FALSE(replay::restore_snapshot(targets, snapshot.substr(0, length), sink));
    EXPECT_TRUE(sink.has_errors()) << "silent failure at length " << length;
  }

  support::Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    std::string mutated = snapshot;
    const std::size_t position = rng.below(mutated.size());
    switch (rng.below(3)) {
      case 0:
        mutated[position] = static_cast<char>('!' + rng.below(90));
        break;
      case 1:
        mutated.erase(position, 1 + rng.below(6));
        break;
      default:
        mutated.insert(position, mutated.substr(position, 1 + rng.below(6)));
    }
    support::DiagnosticSink sink;
    // Content mutations must be rejected. A mutation that survives can only
    // have changed inter-element whitespace (the checksum covers the
    // canonical serialization), so re-saving must reproduce the original.
    if (replay::restore_snapshot(targets, mutated, sink)) {
      std::string resaved;
      support::DiagnosticSink resave_sink;
      ASSERT_TRUE(replay::save_snapshot(targets, resaved, resave_sink))
          << resave_sink.str();
      EXPECT_EQ(resaved, snapshot) << "mutated snapshot restored: " << mutated;
    } else {
      EXPECT_TRUE(sink.has_errors()) << "silent failure on: " << mutated;
    }
  }
}

}  // namespace
}  // namespace umlsoc::xmi
