// Robustness property tests: the XML parser and both model readers must
// never crash on malformed input — every failure is a clean diagnostic.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "uml/synthetic.hpp"
#include "xmi/behavior.hpp"
#include "xmi/serialize.hpp"
#include "xmi/xml.hpp"

namespace umlsoc::xmi {
namespace {

/// Characters biased toward XML structure to hit parser edges.
std::string random_blob(support::Rng& rng, std::size_t length) {
  static const char kAlphabet[] = "<>/=\"'&; \nabcdeXMLid0123&lt;&amp;!-?";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, RandomBlobsNeverCrashParser) {
  support::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string blob = random_blob(rng, 1 + rng.below(300));
    support::DiagnosticSink sink;
    std::unique_ptr<XmlNode> node = parse_xml(blob, sink);
    // Either it parsed, or it reported why not — never both empty.
    if (node == nullptr) {
      EXPECT_TRUE(sink.has_errors()) << "silent failure on: " << blob;
    }
  }
}

TEST_P(XmlFuzz, RandomBlobsNeverCrashModelReader) {
  support::Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 100; ++i) {
    std::string blob = random_blob(rng, 1 + rng.below(300));
    support::DiagnosticSink sink;
    auto model = read_model(blob, sink);
    if (model == nullptr) {
      EXPECT_TRUE(sink.has_errors());
    }
    support::DiagnosticSink sink2;
    auto machine = read_state_machine(blob, sink2);
    if (machine == nullptr) {
      EXPECT_TRUE(sink2.has_errors());
    }
    support::DiagnosticSink sink3;
    auto activity = read_activity(blob, sink3);
    if (activity == nullptr) {
      EXPECT_TRUE(sink3.has_errors());
    }
  }
}

TEST_P(XmlFuzz, MutatedValidDocumentsNeverCrash) {
  // Take a real document and corrupt random spans.
  uml::SyntheticSpec spec;
  spec.seed = GetParam();
  spec.packages = 2;
  auto model = uml::make_synthetic_model(spec);
  const std::string original = write_model(*model);

  support::Rng rng(GetParam() * 101 + 3);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = original;
    const int mutations = 1 + static_cast<int>(rng.below(5));
    for (int m = 0; m < mutations; ++m) {
      std::size_t position = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:  // Flip a character.
          mutated[position] = static_cast<char>('!' + rng.below(90));
          break;
        case 1:  // Delete a span.
          mutated.erase(position, 1 + rng.below(8));
          break;
        default:  // Duplicate a span.
          mutated.insert(position, mutated.substr(position, 1 + rng.below(8)));
      }
      if (mutated.empty()) mutated = "<";
    }
    support::DiagnosticSink sink;
    auto reread = read_model(mutated, sink);
    if (reread == nullptr) {
      EXPECT_TRUE(sink.has_errors());
    } else {
      // A mutation that still parses must still yield a sane model.
      EXPECT_GE(reread->element_count(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace umlsoc::xmi
