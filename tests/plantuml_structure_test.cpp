// Coverage for the remaining PlantUML emitters: component diagrams and
// composite-structure diagrams.
#include <gtest/gtest.h>

#include "codegen/plantuml.hpp"
#include "uml/package.hpp"

namespace umlsoc::codegen {
namespace {

TEST(PlantUmlStructure, ComponentDiagram) {
  uml::Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Interface& provided = pkg.add_interface("IAxi");
  uml::Interface& required = pkg.add_interface("IClock");
  uml::Component& core = pkg.add_component("UartCore");
  core.add_provided(provided);
  core.add_required(required);

  std::string text = to_plantuml_component_diagram(model);
  EXPECT_NE(text.find("component UartCore"), std::string::npos);
  EXPECT_NE(text.find("interface IAxi"), std::string::npos);
  EXPECT_NE(text.find("IAxi - UartCore"), std::string::npos);
  EXPECT_NE(text.find("UartCore ..> IClock : use"), std::string::npos);
  EXPECT_NE(text.find("@startuml"), std::string::npos);
  EXPECT_NE(text.find("@enduml"), std::string::npos);
}

TEST(PlantUmlStructure, CompositeStructureDiagram) {
  uml::Model model("M");
  uml::Package& pkg = model.add_package("p");
  uml::Class& fifo = pkg.add_class("Fifo");
  uml::Port& fifo_in = fifo.add_port("in", uml::PortDirection::kIn);
  uml::Class& top = pkg.add_class("Top");
  uml::Property& part = top.add_property("fifo0", &fifo);
  part.set_aggregation(uml::AggregationKind::kComposite);
  top.add_property("plain_attr", &model.primitive("Integer", 32));  // Not a part.
  uml::Port& ext = top.add_port("ext", uml::PortDirection::kIn);
  uml::Connector& wire = top.add_connector("w0");
  wire.add_end(uml::ConnectorEnd{&part, &fifo_in});
  wire.add_end(uml::ConnectorEnd{nullptr, &ext});

  std::string text = to_plantuml_structure_diagram(top);
  EXPECT_NE(text.find("component Top {"), std::string::npos);
  EXPECT_NE(text.find("component fifo0 : Fifo"), std::string::npos);
  EXPECT_EQ(text.find("plain_attr"), std::string::npos);  // Attributes excluded.
  EXPECT_NE(text.find("portin \"ext\" as Top_ext"), std::string::npos);
  EXPECT_NE(text.find("fifo0 -- Top_ext : w0"), std::string::npos);
}

TEST(PlantUmlStructure, EmptyClassStillWellFormed) {
  uml::Model model("M");
  uml::Class& empty = model.add_package("p").add_class("Empty");
  std::string text = to_plantuml_structure_diagram(empty);
  EXPECT_NE(text.find("@startuml"), std::string::npos);
  EXPECT_NE(text.find("component Empty {"), std::string::npos);
  EXPECT_NE(text.find("@enduml"), std::string::npos);
}

}  // namespace
}  // namespace umlsoc::codegen
