// SoC profile tests: installation, tag accessors, validation rules, IP
// library reuse, and XMI persistence of profiled models.
#include <gtest/gtest.h>

#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "uml/query.hpp"
#include "uml/validate.hpp"
#include "xmi/serialize.hpp"

namespace umlsoc::soc {
namespace {

TEST(SocProfile, InstallCreatesStereotypes) {
  uml::Model model("M");
  SocProfile profile = SocProfile::install(model);
  ASSERT_NE(profile.profile, nullptr);
  EXPECT_NE(profile.hw_module, nullptr);
  EXPECT_NE(profile.sw_task, nullptr);
  EXPECT_NE(profile.hw_register, nullptr);
  EXPECT_NE(profile.allocate, nullptr);
  EXPECT_TRUE(profile.hw_module->extends(uml::ElementKind::kClass));
  EXPECT_TRUE(profile.hw_register->extends(uml::ElementKind::kProperty));
  // Applied to the model.
  ASSERT_EQ(model.applied_profiles().size(), 1u);
}

TEST(SocProfile, InstallIsIdempotent) {
  uml::Model model("M");
  SocProfile first = SocProfile::install(model);
  SocProfile second = SocProfile::install(model);
  EXPECT_EQ(first.profile, second.profile);
  EXPECT_EQ(first.hw_module, second.hw_module);
  EXPECT_EQ(model.applied_profiles().size(), 1u);
}

TEST(SocProfile, TagAccessorsParseAndDefault) {
  uml::Model model("M");
  SocProfile profile = SocProfile::install(model);
  uml::Class& hw = model.add_package("p").add_class("Accel");
  hw.apply_stereotype(*profile.hw_module);
  EXPECT_DOUBLE_EQ(profile.clock_mhz(hw), 100.0);  // Default tag value.
  hw.set_tagged_value(*profile.hw_module, "clockMHz", "250");
  EXPECT_DOUBLE_EQ(profile.clock_mhz(hw), 250.0);
  hw.set_tagged_value(*profile.hw_module, "clockMHz", "garbage");
  EXPECT_DOUBLE_EQ(profile.clock_mhz(hw), 100.0);  // Fallback on junk.
}

TEST(SocProfile, ParseAddress) {
  EXPECT_EQ(parse_address("0x10"), 16u);
  EXPECT_EQ(parse_address("42"), 42u);
  EXPECT_FALSE(parse_address("").has_value());
  EXPECT_FALSE(parse_address("0x1Z").has_value());
  EXPECT_FALSE(parse_address("abc").has_value());
}

TEST(SocProfile, FindAfterRoundTrip) {
  uml::Model model("M");
  SocProfile profile = SocProfile::install(model);
  uml::Class& hw = model.add_package("p").add_class("Core");
  hw.apply_stereotype(*profile.hw_module);
  hw.set_tagged_value(*profile.hw_module, "areaGates", "777");

  std::string text = xmi::write_model(model);
  support::DiagnosticSink sink;
  auto reread = xmi::read_model(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();

  std::optional<SocProfile> rebound = SocProfile::find(*reread);
  ASSERT_TRUE(rebound.has_value());
  auto* core = dynamic_cast<uml::Class*>(uml::find_by_qualified_name(*reread, "p.Core"));
  ASSERT_NE(core, nullptr);
  EXPECT_DOUBLE_EQ(rebound->area_gates(*core), 777.0);
}

// --- validate_soc ------------------------------------------------------------

struct SocFixture {
  uml::Model model{"M"};
  SocProfile profile = SocProfile::install(model);
  uml::Package& pkg = model.add_package("soc");
};

TEST(SocValidate, CleanHwModulePasses) {
  SocFixture f;
  uml::Class& hw = f.pkg.add_class("Uart");
  hw.apply_stereotype(*f.profile.hw_module);
  uml::Property& reg = hw.add_property("ctrl", &f.model.primitive("Word", 32));
  reg.apply_stereotype(*f.profile.hw_register);
  reg.set_tagged_value(*f.profile.hw_register, "address", "0x10");
  hw.add_port("clk", uml::PortDirection::kIn);

  support::DiagnosticSink sink;
  EXPECT_TRUE(validate_soc(f.model, f.profile, sink)) << sink.str();
  EXPECT_TRUE(uml::validate(f.model, sink)) << sink.str();
}

TEST(SocValidate, HwAndSwExclusive) {
  SocFixture f;
  uml::Class& cls = f.pkg.add_class("Confused");
  cls.apply_stereotype(*f.profile.hw_module);
  cls.apply_stereotype(*f.profile.sw_task);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("both «HwModule» and «SwTask»"), std::string::npos);
}

TEST(SocValidate, RegisterAddressCollision) {
  SocFixture f;
  uml::Class& hw = f.pkg.add_class("Blk");
  hw.apply_stereotype(*f.profile.hw_module);
  for (const char* name : {"a", "b"}) {
    uml::Property& reg = hw.add_property(name, &f.model.primitive("Word", 32));
    reg.apply_stereotype(*f.profile.hw_register);
    reg.set_tagged_value(*f.profile.hw_register, "address", "0x4");
  }
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("collides"), std::string::npos);
}

TEST(SocValidate, UnparsableRegisterAddress) {
  SocFixture f;
  uml::Class& hw = f.pkg.add_class("Blk");
  hw.apply_stereotype(*f.profile.hw_module);
  uml::Property& reg = hw.add_property("r", &f.model.primitive("Word", 32));
  reg.apply_stereotype(*f.profile.hw_register);
  reg.set_tagged_value(*f.profile.hw_register, "address", "oops");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("not parsable"), std::string::npos);
}

TEST(SocValidate, BadRegisterAccessMode) {
  SocFixture f;
  uml::Class& hw = f.pkg.add_class("Blk");
  hw.apply_stereotype(*f.profile.hw_module);
  uml::Property& reg = hw.add_property("r", &f.model.primitive("Word", 32));
  reg.apply_stereotype(*f.profile.hw_register);
  reg.set_tagged_value(*f.profile.hw_register, "access", "wo");
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("access must be"), std::string::npos);
}

TEST(SocValidate, RegisterOutsideHwModule) {
  SocFixture f;
  uml::Class& sw = f.pkg.add_class("Plain");
  uml::Property& reg = sw.add_property("r", &f.model.primitive("Word", 32));
  reg.apply_stereotype(*f.profile.hw_register);
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("requires the owning class"), std::string::npos);
}

TEST(SocValidate, InoutPortWarns) {
  SocFixture f;
  uml::Class& hw = f.pkg.add_class("Blk");
  hw.apply_stereotype(*f.profile.hw_module);
  hw.add_port("pad");  // Default inout.
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("not synthesizable"), std::string::npos);
}

TEST(SocValidate, InactiveSwTaskWarns) {
  SocFixture f;
  uml::Class& task = f.pkg.add_class("Ctrl");
  task.apply_stereotype(*f.profile.sw_task);
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("expected to be active"), std::string::npos);
}

TEST(SocValidate, AllocateTargetChecked) {
  SocFixture f;
  uml::Class& task = f.pkg.add_class("Task");
  uml::Class& cpu = f.pkg.add_class("Cpu");
  cpu.apply_stereotype(*f.profile.processor);
  uml::Dependency& dep = f.pkg.add_dependency("alloc", task, cpu);
  dep.apply_stereotype(*f.profile.allocate);
  dep.set_tagged_value(*f.profile.allocate, "target", "fpga");  // Invalid.
  support::DiagnosticSink sink;
  EXPECT_FALSE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("'hw' or 'sw'"), std::string::npos);

  dep.set_tagged_value(*f.profile.allocate, "target", "sw");
  support::DiagnosticSink sink2;
  EXPECT_TRUE(validate_soc(f.model, f.profile, sink2)) << sink2.str();
}

TEST(SocValidate, SwAllocationToNonProcessorWarns) {
  SocFixture f;
  uml::Class& task = f.pkg.add_class("Task");
  uml::Class& random = f.pkg.add_class("Random");
  uml::Dependency& dep = f.pkg.add_dependency("alloc", task, random);
  dep.apply_stereotype(*f.profile.allocate);
  dep.set_tagged_value(*f.profile.allocate, "target", "sw");
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate_soc(f.model, f.profile, sink));
  EXPECT_NE(sink.str().find("should target a «Processor»"), std::string::npos);
}

// --- IP library -----------------------------------------------------------------

TEST(IpLibrary, StandardCatalog) {
  IpLibrary library;
  library.add_standard_ips();
  std::vector<std::string> names = library.ip_names();
  EXPECT_EQ(names.size(), 5u);
  EXPECT_NE(library.find_ip("Uart"), nullptr);
  EXPECT_NE(library.find_ip("DmaEngine"), nullptr);
  EXPECT_EQ(library.find_ip("FluxCapacitor"), nullptr);

  // The catalog itself is a valid profiled model.
  support::DiagnosticSink sink;
  EXPECT_TRUE(uml::validate(library.catalog(), sink)) << sink.str();
  EXPECT_TRUE(validate_soc(library.catalog(), library.profile(), sink)) << sink.str();
}

TEST(IpLibrary, InstantiateCopiesEverything) {
  IpLibrary library;
  library.add_standard_ips();

  uml::Model target("MySoc");
  uml::Package& pkg = target.add_package("ip");
  support::DiagnosticSink sink;
  uml::Component* uart = library.instantiate("Uart", target, pkg, "uart0", sink);
  ASSERT_NE(uart, nullptr) << sink.str();
  EXPECT_EQ(uart->name(), "uart0");
  EXPECT_EQ(uart->properties().size(), 4u);  // 4 registers.
  EXPECT_EQ(uart->ports().size(), 4u);
  EXPECT_EQ(uart->operations().size(), 2u);
  EXPECT_FALSE(uart->operations().front()->body().empty());

  // Stereotypes rebound to the target model's own profile instance.
  std::optional<SocProfile> target_profile = SocProfile::find(target);
  ASSERT_TRUE(target_profile.has_value());
  EXPECT_TRUE(uart->has_stereotype(*target_profile->hw_module));
  const uml::Property* tx = uart->find_property("tx_data");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(target_profile->register_address(*tx), 0u);
  const uml::Property* divisor = uart->find_property("divisor");
  ASSERT_NE(divisor, nullptr);
  EXPECT_EQ(target_profile->register_address(*divisor), 0x0Cu);

  // Types were interned into the target model, and the result validates.
  EXPECT_TRUE(uml::validate(target, sink)) << sink.str();
  EXPECT_TRUE(validate_soc(target, *target_profile, sink)) << sink.str();
}

TEST(IpLibrary, InstantiateUnknownIpFails) {
  IpLibrary library;
  library.add_standard_ips();
  uml::Model target("M");
  uml::Package& pkg = target.add_package("ip");
  support::DiagnosticSink sink;
  EXPECT_EQ(library.instantiate("Nope", target, pkg, "x", sink), nullptr);
  EXPECT_TRUE(sink.has_errors());
}

TEST(IpLibrary, TwoInstancesAreIndependent) {
  IpLibrary library;
  library.add_standard_ips();
  uml::Model target("M");
  uml::Package& pkg = target.add_package("ip");
  support::DiagnosticSink sink;
  uml::Component* a = library.instantiate("Timer", target, pkg, "timer0", sink);
  uml::Component* b = library.instantiate("Timer", target, pkg, "timer1", sink);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::optional<SocProfile> profile = SocProfile::find(target);
  a->find_property("load")->set_tagged_value(*profile->hw_register, "address", "0x100");
  EXPECT_EQ(profile->register_address(*b->find_property("load")), 0u);  // Unaffected.
}

}  // namespace
}  // namespace umlsoc::soc
