// Round-trip tests for behavioral interchange: state machines and
// activities through XMI text. Structure and behavior *text* must survive;
// executable bindings are re-attached by consumers (see xmi/behavior.hpp).
#include <gtest/gtest.h>

#include "activity/analysis.hpp"
#include "activity/interpreter.hpp"
#include "activity/synthetic.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "statechart/validate.hpp"
#include "xmi/behavior.hpp"

namespace umlsoc::xmi {
namespace {

// --- State machines ---------------------------------------------------------------

std::unique_ptr<statechart::StateMachine> roundtrip(const statechart::StateMachine& machine) {
  std::string text = write_state_machine(machine);
  support::DiagnosticSink sink;
  auto reread = read_state_machine(text, sink);
  EXPECT_NE(reread, nullptr) << sink.str();
  return reread;
}

TEST(BehaviorXmi, ChainMachineRoundTrips) {
  auto machine = statechart::make_chain_machine(5);
  auto reread = roundtrip(*machine);
  ASSERT_NE(reread, nullptr);
  EXPECT_EQ(reread->name(), machine->name());
  EXPECT_EQ(reread->all_states().size(), machine->all_states().size());
  EXPECT_EQ(reread->all_transitions().size(), machine->all_transitions().size());

  // The re-read machine executes identically.
  statechart::StateMachineInstance a(*machine);
  statechart::StateMachineInstance b(*reread);
  a.set_trace_enabled(false);
  b.set_trace_enabled(false);
  a.start();
  b.start();
  for (int i = 0; i < 13; ++i) {
    a.dispatch({"e"});
    b.dispatch({"e"});
  }
  EXPECT_EQ(a.active_leaf_names(), b.active_leaf_names());
}

TEST(BehaviorXmi, HierarchyAndOrthogonalityPreserved) {
  auto machine = statechart::make_orthogonal_machine(3, 2);
  auto reread = roundtrip(*machine);
  ASSERT_NE(reread, nullptr);
  support::DiagnosticSink sink;
  EXPECT_TRUE(statechart::validate(*reread, sink)) << sink.str();

  statechart::StateMachineInstance instance(*reread);
  instance.start();
  EXPECT_TRUE(instance.is_in("q0_0"));
  EXPECT_TRUE(instance.is_in("q2_0"));
  instance.dispatch({"tick"});
  EXPECT_TRUE(instance.is_in("q1_1"));
}

TEST(BehaviorXmi, TextsAndFlagsPreserved) {
  statechart::StateMachine machine("m");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& a = top.add_state("A");
  a.set_entry(statechart::Behavior{"init_regs()", nullptr});
  a.set_exit(statechart::Behavior{"flush()", nullptr});
  a.set_do_activity(statechart::Behavior{"poll()", nullptr});
  statechart::State& b = top.add_state("B");
  top.add_transition(initial, a);
  top.add_transition(a, b)
      .set_trigger("go")
      .set_guard(statechart::Guard{"count > 3", nullptr})
      .set_effect(statechart::Behavior{"count := 0", nullptr});
  top.add_transition(a, a).set_trigger("poke").set_internal(true);
  top.add_pseudostate(statechart::VertexKind::kShallowHistory, "H");

  auto reread = roundtrip(machine);
  ASSERT_NE(reread, nullptr);
  const statechart::State* a2 = reread->top().find_state("A");
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->entry().text, "init_regs()");
  EXPECT_EQ(a2->exit_behavior().text, "flush()");
  EXPECT_EQ(a2->do_activity().text, "poll()");
  bool found_guarded = false;
  bool found_internal = false;
  for (const statechart::Transition* transition : reread->all_transitions()) {
    if (transition->guard().text == "count > 3") {
      found_guarded = true;
      EXPECT_EQ(transition->effect().text, "count := 0");
      EXPECT_EQ(transition->trigger(), "go");
    }
    if (transition->is_internal()) found_internal = true;
  }
  EXPECT_TRUE(found_guarded);
  EXPECT_TRUE(found_internal);
  EXPECT_NE(reread->top().find_vertex("H"), nullptr);
}

TEST(BehaviorXmi, RejectsUnresolvedVertexRef) {
  const char* text =
      "<StateMachine name=\"m\"><Region name=\"top\">"
      "<State id=\"0\" name=\"A\"/>"
      "<Transition source=\"0\" target=\"99\"/>"
      "</Region></StateMachine>";
  support::DiagnosticSink sink;
  EXPECT_EQ(read_state_machine(text, sink), nullptr);
  EXPECT_NE(sink.str().find("unresolved vertex reference"), std::string::npos);
}

TEST(BehaviorXmi, RejectsWrongRoot) {
  support::DiagnosticSink sink;
  EXPECT_EQ(read_state_machine("<NotAMachine/>", sink), nullptr);
  EXPECT_EQ(read_activity("<NotAnActivity/>", sink), nullptr);
}

// --- Activities -----------------------------------------------------------------------

TEST(BehaviorXmi, ActivityRoundTripsAndExecutesIdentically) {
  auto original = activity::make_fork_join(3, 2);
  std::string text = write_activity(*original);
  support::DiagnosticSink sink;
  auto reread = read_activity(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  EXPECT_EQ(reread->nodes().size(), original->nodes().size());
  EXPECT_EQ(reread->edges().size(), original->edges().size());
  EXPECT_TRUE(activity::validate(*reread, sink)) << sink.str();
  EXPECT_TRUE(activity::check_soundness(*reread, sink)) << sink.str();

  activity::ActivityExecution a(*original);
  activity::ActivityExecution b(*reread);
  EXPECT_EQ(a.run(), activity::RunStatus::kTerminated);
  EXPECT_EQ(b.run(), activity::RunStatus::kTerminated);
  EXPECT_EQ(a.firings(), b.firings());
}

TEST(BehaviorXmi, ActivityCostAnnotationsPreserved) {
  auto original = activity::make_media_pipeline();
  std::string text = write_activity(*original);
  support::DiagnosticSink sink;
  auto reread = read_activity(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  const activity::ActivityNode* dct = reread->find_node("dct_luma");
  ASSERT_NE(dct, nullptr);
  EXPECT_DOUBLE_EQ(dct->sw_latency(), 45.0);
  EXPECT_DOUBLE_EQ(dct->hw_latency(), 6.0);
  EXPECT_DOUBLE_EQ(dct->hw_area(), 520.0);
}

TEST(BehaviorXmi, ActivityGuardAndWeightPreserved) {
  activity::Activity original("g");
  activity::ActivityNode& initial = original.add_initial();
  activity::ActivityNode& decision =
      original.add_node(activity::NodeKind::kDecision, "check");
  activity::ActivityNode& final_node = original.add_final();
  original.add_edge(initial, decision);
  original.add_edge(decision, final_node, true)
      .set_guard(activity::EdgeGuard{"v > 10", nullptr})
      .set_weight(3);

  std::string text = write_activity(original);
  support::DiagnosticSink sink;
  auto reread = read_activity(text, sink);
  ASSERT_NE(reread, nullptr) << sink.str();
  ASSERT_EQ(reread->edges().size(), 2u);
  const activity::ActivityEdge& edge = *reread->edges()[1];
  EXPECT_EQ(edge.guard().text, "v > 10");
  EXPECT_EQ(edge.weight(), 3);
  EXPECT_TRUE(edge.is_object_flow());
}

TEST(BehaviorXmi, ActivityRejectsUnknownNodeRef) {
  const char* text =
      "<Activity name=\"a\"><Node name=\"x\" kind=\"action\"/>"
      "<Edge source=\"x\" target=\"missing\"/></Activity>";
  support::DiagnosticSink sink;
  EXPECT_EQ(read_activity(text, sink), nullptr);
  EXPECT_NE(sink.str().find("unknown node"), std::string::npos);
}

// Property sweep: synthetic machines of several shapes round-trip and stay
// behaviorally equivalent over a fixed event script.
class MachineRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(MachineRoundTripProperty, BehaviorPreserved) {
  auto machine = statechart::make_nested_machine(static_cast<std::size_t>(GetParam()), 3);
  auto reread = roundtrip(*machine);
  ASSERT_NE(reread, nullptr);

  statechart::StateMachineInstance a(*machine);
  statechart::StateMachineInstance b(*reread);
  a.set_trace_enabled(false);
  b.set_trace_enabled(false);
  a.start();
  b.start();
  const char* script[] = {"step", "step", "reset", "step", "noise", "step"};
  for (const char* event : script) {
    EXPECT_EQ(a.dispatch({event}), b.dispatch({event})) << event;
    EXPECT_EQ(a.active_leaf_names(), b.active_leaf_names()) << event;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, MachineRoundTripProperty, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace umlsoc::xmi
