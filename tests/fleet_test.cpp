// Fleet engine (src/fleet): sharded multi-rig execution and SLO rollups.
// The load-bearing property is determinism — the same seed set must produce
// identical per-seed outcomes and an identical aggregated FleetReport
// whether the fleet runs on 1 worker or 8 — plus the driver mechanics
// (every rig runs exactly once, chunk config honored, exceptions contained
// to their rig, progress serialized) and the report arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/driver.hpp"
#include "fleet/report.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/supervise.hpp"

namespace umlsoc::fleet {
namespace {

/// A miniature but real rig: one kernel, a seeded fault plan and a health
/// registry, driven by a self-rescheduling process whose behavior depends
/// only on the seed. Exercises the actual simulation stack on worker
/// threads (the TSAN job's target) while staying fast enough for a fleet
/// of hundreds.
RigOutcome run_mini_rig(const RigJob& job) {
  sim::Kernel kernel;
  sim::FaultPlan plan(job.seed);
  sim::FaultPlan::SiteConfig site;
  site.error_rate = 0.05;
  site.drop_rate = 0.02;
  plan.configure(sim::FaultSite::kBusWrite, site);
  sim::HealthRegistry health;
  const sim::HealthRegistry::UnitId unit = health.register_unit("worker");

  RigOutcome outcome;
  std::uint64_t ticks = 0;
  sim::ProcessId worker = sim::kInvalidProcess;
  worker = kernel.register_process(
      [&] {
        ++ticks;
        ++outcome.slo.requests;
        const sim::FaultDecision decision = plan.consult(sim::FaultSite::kBusWrite);
        if (decision.faulted()) {
          ++outcome.slo.lost;
          health.set_health(unit, sim::UnitHealth::kDegraded, "fault");
        } else {
          ++outcome.slo.delivered;
          health.set_health(unit, sim::UnitHealth::kHealthy, "ok");
        }
        if (ticks < 200) kernel.schedule(sim::SimTime::ns(10), worker);
      },
      "fleet-test.worker");
  kernel.schedule(sim::SimTime::ns(10), worker);
  kernel.run();

  outcome.ok = outcome.slo.lost * 10 < outcome.slo.requests;  // <10% loss SLO.
  if (!outcome.ok) outcome.failure = "loss SLO violated";
  outcome.sim_time_ps = kernel.now().picoseconds();
  outcome.events_processed = kernel.events_processed();
  outcome.health.add(health);
  reduce(outcome.kernel, kernel.stats());
  return outcome;
}

TEST(FleetDriver, RunsEveryRigExactlyOnceAcrossChunks) {
  const std::uint64_t kRigs = 103;  // Deliberately not a multiple of anything.
  std::vector<std::atomic<int>> executed(kRigs);
  FleetConfig config;
  config.jobs = 4;
  config.chunk = 5;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, kRigs, [&](const RigJob& job) {
        executed[job.index].fetch_add(1);
        RigOutcome outcome;
        outcome.ok = true;
        return outcome;
      });
  ASSERT_EQ(outcomes.size(), kRigs);
  for (std::uint64_t i = 0; i < kRigs; ++i) {
    EXPECT_EQ(executed[i].load(), 1) << "rig " << i;
    EXPECT_EQ(outcomes[i].seed, i);
    EXPECT_TRUE(outcomes[i].ok);
  }
  EXPECT_EQ(driver.stats().rigs, kRigs);
  EXPECT_EQ(driver.stats().chunk, 5u);
  EXPECT_EQ(driver.stats().chunks_claimed, (kRigs + 4) / 5);
  EXPECT_LE(driver.stats().jobs, 4u);
  std::uint64_t per_worker_total = 0;
  for (std::uint64_t count : driver.stats().rigs_per_worker) per_worker_total += count;
  EXPECT_EQ(per_worker_total, kRigs);
}

TEST(FleetDriver, SeedVectorMapsToOutcomeSlots) {
  const std::vector<std::uint64_t> seeds = {42, 7, 42, 1000000007};
  FleetDriver driver;
  const std::vector<RigOutcome> outcomes = driver.run(seeds, [](const RigJob& job) {
    RigOutcome outcome;
    outcome.ok = true;
    outcome.slo.requests = job.seed * 2;
    return outcome;
  });
  ASSERT_EQ(outcomes.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(outcomes[i].seed, seeds[i]);
    EXPECT_EQ(outcomes[i].slo.requests, seeds[i] * 2);
  }
}

TEST(FleetDriver, EmptyFleetReturnsEmptyResults) {
  FleetDriver driver;
  EXPECT_TRUE(driver.run({}, [](const RigJob&) { return RigOutcome{}; }).empty());
  EXPECT_EQ(driver.stats().rigs, 0u);
}

TEST(FleetDriver, MoreJobsThanRigsStillRunsEverything) {
  FleetConfig config;
  config.jobs = 16;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(5, 3, [](const RigJob& job) {
        RigOutcome outcome;
        outcome.ok = true;
        outcome.slo.delivered = job.seed;
        return outcome;
      });
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].slo.delivered, 5u);
  EXPECT_EQ(outcomes[2].slo.delivered, 7u);
  // Workers are capped by the rig count: no idle thread spawn.
  EXPECT_LE(driver.stats().jobs, 3u);
}

TEST(FleetDriver, ExceptionIsContainedToItsRig) {
  FleetConfig config;
  config.jobs = 2;
  FleetDriver driver(config);
  const std::vector<RigOutcome> outcomes =
      driver.run_range(0, 8, [](const RigJob& job) -> RigOutcome {
        if (job.seed == 3) throw std::runtime_error("rig exploded");
        RigOutcome outcome;
        outcome.ok = true;
        return outcome;
      });
  ASSERT_EQ(outcomes.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_FALSE(outcomes[i].ok);
      EXPECT_EQ(outcomes[i].failure, "uncaught exception: rig exploded");
      EXPECT_EQ(outcomes[i].seed, 3u);
    } else {
      EXPECT_TRUE(outcomes[i].ok) << "rig " << i;
    }
  }
}

TEST(FleetDriver, ProgressIsSerializedAndCountsToTotal) {
  FleetConfig config;
  config.jobs = 8;
  config.chunk = 1;
  FleetDriver driver(config);
  // The progress contract is "at most one invocation at a time": an
  // unsynchronized counter and set stay consistent iff that holds (TSAN
  // enforces the stronger claim; this checks the visible effects).
  std::uint64_t calls = 0;
  std::uint64_t last_done = 0;
  std::set<std::uint64_t> seen;
  driver.set_progress([&](const RigJob& job, const RigOutcome& outcome,
                          std::uint64_t done, std::uint64_t total) {
    ++calls;
    last_done = std::max(last_done, done);
    seen.insert(job.seed);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(total, 64u);
  });
  (void)driver.run_range(100, 64, [](const RigJob&) {
    RigOutcome outcome;
    outcome.ok = true;
    return outcome;
  });
  EXPECT_EQ(calls, 64u);
  EXPECT_EQ(last_done, 64u);
  EXPECT_EQ(seen.size(), 64u);
}

TEST(FleetDeterminism, SameSeedsSameOutcomesRegardlessOfJobs) {
  FleetConfig serial;
  serial.jobs = 1;
  FleetDriver baseline(serial);
  const std::vector<RigOutcome> reference = baseline.run_range(1, 96, run_mini_rig);

  for (unsigned jobs : {2u, 8u}) {
    FleetConfig config;
    config.jobs = jobs;
    config.chunk = 3;
    FleetDriver driver(config);
    const std::vector<RigOutcome> outcomes = driver.run_range(1, 96, run_mini_rig);
    ASSERT_EQ(outcomes.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(outcomes[i].deterministic_equal(reference[i]))
          << "seed " << reference[i].seed << " diverged at jobs=" << jobs;
    }
    EXPECT_EQ(FleetReport::aggregate(outcomes).fingerprint(),
              FleetReport::aggregate(reference).fingerprint())
        << "aggregated report diverged at jobs=" << jobs;
  }
}

TEST(FleetDeterminism, WallTimeDoesNotBreakDeterministicEquality) {
  RigOutcome a = run_mini_rig({0, 11, 0});
  RigOutcome b = run_mini_rig({5, 11, 3});
  a.wall_ns = 123;
  b.wall_ns = 456789;
  // Host wall time (and snapshot wall ns inside kernel stats) may differ.
  b.kernel.snapshot.encode_wall_ns = 999;
  EXPECT_TRUE(a.deterministic_equal(b));
  b.slo.delivered += 1;
  EXPECT_FALSE(a.deterministic_equal(b));
}

TEST(FleetReportTest, AggregatesCountersHealthAndFailures) {
  std::vector<RigOutcome> outcomes(3);
  outcomes[0].seed = 10;
  outcomes[0].ok = true;
  outcomes[0].slo.requests = 100;
  outcomes[0].slo.delivered = 99;
  outcomes[0].slo.lost = 1;
  outcomes[0].slo.transactions = 100;
  outcomes[0].slo.timeouts = 5;
  outcomes[0].slo.lost_work_ps_max = 50;
  outcomes[0].health.healthy = 2;
  outcomes[0].kernel.timed_peak = 7;
  outcomes[0].sim_time_ps = 1000;
  outcomes[0].events_processed = 500;
  outcomes[0].wall_ns = 10;
  outcomes[1].seed = 11;
  outcomes[1].ok = false;
  outcomes[1].failure = "boom";
  outcomes[1].slo.requests = 10;
  outcomes[1].slo.lost = 10;
  outcomes[1].slo.lost_work_ps_max = 80;
  outcomes[1].health.failed = 1;
  outcomes[1].kernel.timed_peak = 3;
  outcomes[1].sim_time_ps = 4000;
  outcomes[2].seed = 12;
  outcomes[2].ok = true;
  outcomes[2].slo.requests = 100;
  outcomes[2].slo.delivered = 100;
  outcomes[2].slo.errors_raised = 4;
  outcomes[2].slo.errors_unhandled = 1;
  outcomes[2].health.degraded = 1;

  const FleetReport report = FleetReport::aggregate(outcomes);
  EXPECT_EQ(report.rigs_total, 3u);
  EXPECT_EQ(report.rigs_ok, 2u);
  EXPECT_EQ(report.rigs_failed, 1u);
  ASSERT_EQ(report.failed_seeds.size(), 1u);
  EXPECT_EQ(report.failed_seeds[0], 11u);
  EXPECT_DOUBLE_EQ(report.availability(), 2.0 / 3.0);
  EXPECT_EQ(report.slo.requests, 210u);
  EXPECT_EQ(report.slo.delivered, 199u);
  EXPECT_EQ(report.slo.lost, 11u);
  EXPECT_DOUBLE_EQ(report.delivery_rate(), 199.0 / 210.0);
  EXPECT_DOUBLE_EQ(report.timeout_rate(), 5.0 / 100.0);
  EXPECT_DOUBLE_EQ(report.unhandled_error_rate(), 1.0 / 4.0);
  EXPECT_EQ(report.slo.lost_work_ps_max, 80u);  // Max, not sum.
  EXPECT_EQ(report.health.healthy, 2u);
  EXPECT_EQ(report.health.degraded, 1u);
  EXPECT_EQ(report.health.failed, 1u);
  EXPECT_DOUBLE_EQ(report.unit_health_rate(), 2.0 / 4.0);
  EXPECT_EQ(report.kernel.timed_peak, 7u);  // Max across rigs.
  EXPECT_EQ(report.sim_time_ps_total, 5000u);
  EXPECT_EQ(report.sim_time_ps_max, 4000u);
  EXPECT_EQ(report.events_total, 500u);
  EXPECT_EQ(report.rig_wall_ns_total, 10u);

  const std::string text = report.str();
  EXPECT_NE(text.find("fleet SLO rollup"), std::string::npos);
  EXPECT_NE(text.find("failed seeds: 11"), std::string::npos);
}

TEST(FleetReportTest, EmptyFleetHasBenignRates) {
  const FleetReport report = FleetReport::aggregate({});
  EXPECT_DOUBLE_EQ(report.availability(), 1.0);
  EXPECT_DOUBLE_EQ(report.delivery_rate(), 1.0);
  EXPECT_DOUBLE_EQ(report.timeout_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.unit_health_rate(), 1.0);
  EXPECT_DOUBLE_EQ(report.checkpoint_overhead(), 0.0);
}

TEST(FleetReportTest, FingerprintExcludesWallTime) {
  std::vector<RigOutcome> a(2);
  a[0].seed = 1;
  a[0].ok = true;
  a[0].slo.delivered = 10;
  a[0].wall_ns = 111;
  a[0].kernel.snapshot.encode_wall_ns = 5;
  a[1].seed = 2;
  a[1].ok = true;
  std::vector<RigOutcome> b = a;
  b[0].wall_ns = 99999;
  b[0].kernel.snapshot.encode_wall_ns = 77777;
  EXPECT_EQ(FleetReport::aggregate(a).fingerprint(),
            FleetReport::aggregate(b).fingerprint());
  b[1].slo.delivered = 1;
  EXPECT_NE(FleetReport::aggregate(a).fingerprint(),
            FleetReport::aggregate(b).fingerprint());
}

TEST(FleetOutcome, KernelStatsReduceSumsCountersAndMaxesPeaks) {
  sim::Kernel::Stats into;
  into.timed_peak = 10;
  into.max_deltas_per_instant = 2;
  into.wheel_hits = 100;
  into.snapshot.encodes = 1;
  sim::Kernel::Stats other;
  other.timed_peak = 4;
  other.max_deltas_per_instant = 9;
  other.wheel_hits = 50;
  other.heap_hits = 7;
  other.snapshot.encodes = 2;
  other.snapshot.bytes_written = 64;
  reduce(into, other);
  EXPECT_EQ(into.timed_peak, 10u);
  EXPECT_EQ(into.max_deltas_per_instant, 9u);
  EXPECT_EQ(into.wheel_hits, 150u);
  EXPECT_EQ(into.heap_hits, 7u);
  EXPECT_EQ(into.snapshot.encodes, 3u);
  EXPECT_EQ(into.snapshot.bytes_written, 64u);
}

TEST(FleetOutcome, HealthRollupCountsRegistryUnits) {
  sim::HealthRegistry registry;
  const auto a = registry.register_unit("a");
  const auto b = registry.register_unit("b");
  (void)registry.register_unit("c");
  registry.set_health(a, sim::UnitHealth::kDegraded, "probe");
  registry.set_health(b, sim::UnitHealth::kFailed, "gone");
  HealthRollup rollup;
  rollup.add(registry);
  EXPECT_EQ(rollup.healthy, 1u);
  EXPECT_EQ(rollup.degraded, 1u);
  EXPECT_EQ(rollup.failed, 1u);
  EXPECT_EQ(rollup.units(), 3u);
}

TEST(FleetDriver, ResolveJobsHonorsExplicitCounts) {
  EXPECT_EQ(FleetDriver::resolve_jobs(1), 1u);
  EXPECT_EQ(FleetDriver::resolve_jobs(7), 7u);
  EXPECT_GE(FleetDriver::resolve_jobs(0), 1u);  // Hardware default, never 0.
}

}  // namespace
}  // namespace umlsoc::fleet
