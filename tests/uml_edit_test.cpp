// Tests for model editing: removal, reference scanning, safe_remove.
#include <gtest/gtest.h>

#include "uml/edit.hpp"
#include "uml/instance.hpp"
#include "uml/validate.hpp"

namespace umlsoc::uml {
namespace {

TEST(Edit, RemoveUnreferencedClass) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& doomed = pkg.add_class("Doomed");
  doomed.add_property("x");
  doomed.add_operation("f").add_parameter("a");
  const std::size_t before = model.element_count();
  const support::Id doomed_id = doomed.id();

  EXPECT_TRUE(remove_member(pkg, doomed));
  EXPECT_EQ(model.element_count(), before - 4);  // Class+prop+op+param.
  EXPECT_EQ(model.find(doomed_id), nullptr);
  EXPECT_EQ(pkg.find_member("Doomed"), nullptr);

  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink)) << sink.str();
}

TEST(Edit, RemoveNonMemberFails) {
  Model model("M");
  Package& a = model.add_package("a");
  Package& b = model.add_package("b");
  Class& cls = a.add_class("C");
  EXPECT_FALSE(remove_member(b, cls));  // Wrong package.
  EXPECT_NE(model.find(cls.id()), nullptr);
}

TEST(Edit, FindReferencesSeesTypeUse) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& used = pkg.add_class("Used");
  Class& user = pkg.add_class("User");
  user.add_property("ref", &used);

  std::vector<std::string> references = find_references(model, used);
  ASSERT_EQ(references.size(), 1u);
  EXPECT_NE(references[0].find("M.p.User.ref"), std::string::npos);
  EXPECT_NE(references[0].find("property type"), std::string::npos);
}

TEST(Edit, FindReferencesCoversRelationshipKinds) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Interface& iface = pkg.add_interface("I");
  Class& base = pkg.add_class("Base");
  Class& derived = pkg.add_class("Derived");
  derived.add_generalization(base);
  derived.add_interface_realization(iface);
  Dependency& dep = pkg.add_dependency("d", derived, base);
  (void)dep;
  InstanceSpecification& instance = pkg.add_instance("i", &base);
  (void)instance;

  std::vector<std::string> base_refs = find_references(model, base);
  // generalization + dependency supplier + instance classifier.
  EXPECT_EQ(base_refs.size(), 3u);
  std::vector<std::string> iface_refs = find_references(model, iface);
  ASSERT_EQ(iface_refs.size(), 1u);
  EXPECT_NE(iface_refs[0].find("interface realization"), std::string::npos);
}

TEST(Edit, ReferencesInsideSubtreeDoNotCount) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Package& sub = pkg.add_package("sub");
  Class& a = sub.add_class("A");
  Class& b = sub.add_class("B");
  a.add_property("peer", &b);  // Internal to `sub`.
  b.add_generalization(a);     // Also internal.

  EXPECT_TRUE(find_references(model, sub).empty());
  EXPECT_TRUE(remove_member(pkg, sub));
  support::DiagnosticSink sink;
  EXPECT_TRUE(validate(model, sink)) << sink.str();
}

TEST(Edit, SafeRemoveRefusesWhenReferenced) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& used = pkg.add_class("Used");
  Class& user = pkg.add_class("User");
  user.add_property("ref", &used);

  support::DiagnosticSink sink;
  EXPECT_FALSE(safe_remove(pkg, used, sink));
  EXPECT_NE(sink.str().find("still referenced"), std::string::npos);
  EXPECT_NE(model.find(used.id()), nullptr);  // Untouched.

  // Remove the referrer first, then the target goes cleanly.
  support::DiagnosticSink sink2;
  EXPECT_TRUE(safe_remove(pkg, user, sink2)) << sink2.str();
  EXPECT_TRUE(safe_remove(pkg, used, sink2)) << sink2.str();
}

TEST(Edit, AppliedProfileIsAReference) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");
  model.apply_profile(profile);
  std::vector<std::string> references = find_references(model, profile);
  ASSERT_EQ(references.size(), 1u);
  EXPECT_NE(references[0].find("applied profile"), std::string::npos);
}

TEST(Edit, StereotypeApplicationIsAReference) {
  Model model("M");
  Profile& profile = model.add_profile("SoC");
  Stereotype& hw = profile.add_stereotype("Hw");
  hw.add_extended_metaclass(ElementKind::kClass);
  model.apply_profile(profile);
  Class& cls = model.add_package("p").add_class("C");
  cls.apply_stereotype(hw);

  std::vector<std::string> references = find_references(model, profile);
  // Applied profile + stereotype application.
  EXPECT_EQ(references.size(), 2u);
}

TEST(Edit, ConnectorEndsAreReferences) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& inner = pkg.add_class("Inner");
  Port& port = inner.add_port("io");
  Class& outer = pkg.add_class("Outer");
  Property& part = outer.add_property("sub", &inner);
  part.set_aggregation(AggregationKind::kComposite);
  Connector& wire = outer.add_connector("w");
  wire.add_end(ConnectorEnd{&part, &port});
  wire.add_end(ConnectorEnd{&part, nullptr});

  std::vector<std::string> references = find_references(model, inner);
  // part type + connector end port (x1; ends referencing `part` are refs to
  // outer's property, not to inner).
  bool found_port_ref = false;
  for (const std::string& reference : references) {
    if (reference.find("connector end port") != std::string::npos) found_port_ref = true;
  }
  EXPECT_TRUE(found_port_ref);
}

TEST(Edit, RemovedIdsCanBeReusedSafely) {
  Model model("M");
  Package& pkg = model.add_package("p");
  Class& doomed = pkg.add_class("Doomed");
  remove_member(pkg, doomed);
  // New elements keep getting fresh ids (generator not rewound).
  Class& fresh = pkg.add_class("Fresh");
  EXPECT_NE(model.find(fresh.id()), nullptr);
  EXPECT_EQ(model.find(fresh.id()), &fresh);
}

}  // namespace
}  // namespace umlsoc::uml
