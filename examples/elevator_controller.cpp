// Elevator controller: hierarchical state machine with history and ASL
// effects, use-case + sequence-diagram views, and MSC conformance checking
// of the actual execution trace against the specified interaction.
//
//   $ ./example_elevator_controller
#include <cstdio>

#include "codegen/plantuml.hpp"
#include "interaction/trace.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/validate.hpp"
#include "usecase/model.hpp"

using namespace umlsoc;

namespace {

/// Operating { Moving { Up | Down }, DoorsOpen } + Maintenance with history.
std::unique_ptr<statechart::StateMachine> build_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("Elevator");
  statechart::Region& top = machine->top();
  statechart::Pseudostate& initial = top.add_initial();

  statechart::State& operating = top.add_state("Operating");
  statechart::State& maintenance = top.add_state("Maintenance");
  top.add_transition(initial, operating);
  top.add_transition(operating, maintenance).set_trigger("service_key");

  statechart::Region& op_region = operating.add_region("r");
  // History lives inside the composite's region (UML): resuming re-enters
  // Operating exactly where the service interrupt left it.
  statechart::Pseudostate& history =
      op_region.add_pseudostate(statechart::VertexKind::kDeepHistory, "H");
  top.add_transition(maintenance, history).set_trigger("resume");
  statechart::Pseudostate& op_initial = op_region.add_initial();
  statechart::State& idle = op_region.add_state("Idle");
  statechart::State& moving = op_region.add_state("Moving");
  statechart::State& doors = op_region.add_state("DoorsOpen");
  op_region.add_transition(op_initial, idle);
  op_region.add_transition(idle, moving)
      .set_trigger("call")
      .set_effect("floors := floors + data", [](statechart::ActionContext& ctx) {
        ctx.instance.set_variable("pending",
                                  ctx.instance.variable("pending") + ctx.event->data);
      });
  op_region.add_transition(moving, doors).set_trigger("arrived");
  op_region.add_transition(doors, idle).set_trigger("door_timeout");

  statechart::Region& mv_region = moving.add_region("dir");
  statechart::Pseudostate& mv_initial = mv_region.add_initial();
  statechart::State& up = mv_region.add_state("Up");
  statechart::State& down = mv_region.add_state("Down");
  mv_region.add_transition(mv_initial, up);
  mv_region.add_transition(up, down).set_trigger("reverse");
  mv_region.add_transition(down, up).set_trigger("reverse");
  return machine;
}

}  // namespace

int main() {
  support::DiagnosticSink sink;
  auto machine = build_machine();
  if (!statechart::validate(*machine, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  // Use case view.
  usecase::UseCaseModel use_cases("ElevatorSystem");
  usecase::Actor& passenger = use_cases.add_actor("Passenger");
  usecase::Actor& technician = use_cases.add_actor("Technician");
  usecase::UseCase& ride = use_cases.add_use_case("RideToFloor");
  usecase::UseCase& service = use_cases.add_use_case("ServiceElevator");
  ride.add_actor(passenger);
  service.add_actor(technician);
  service.add_extend(ride, "service key turned");
  usecase::validate(use_cases, sink);
  std::printf("--- use case diagram ---\n%s\n",
              codegen::to_plantuml_use_cases(use_cases).c_str());

  // The specified interaction for RideToFloor (MSC).
  interaction::Interaction spec("RideToFloor");
  interaction::Lifeline& user = spec.add_lifeline("Passenger");
  interaction::Lifeline& cab = spec.add_lifeline("Elevator");
  spec.add_message(user, cab, "call");
  interaction::Fragment& loop = spec.add_combined(interaction::InteractionOperator::kLoop);
  loop.set_loop_bounds(0, -1);
  loop.add_operand().add_message(user, cab, "reverse");
  spec.add_message(cab, user, "arrived");
  ride.add_scenario(spec);
  std::printf("--- sequence diagram ---\n%s\n",
              codegen::to_plantuml_sequence(spec).c_str());

  // Execute the machine and record the externally visible trace.
  statechart::StateMachineInstance instance(*machine);
  instance.start();
  interaction::Trace observed;
  auto drive = [&](const char* event, std::int64_t data = 0) {
    instance.dispatch({event, data});
    if (std::string(event) == "call") observed.push_back("Passenger->Elevator:call");
    if (std::string(event) == "reverse") observed.push_back("Passenger->Elevator:reverse");
    if (std::string(event) == "arrived") observed.push_back("Elevator->Passenger:arrived");
  };
  drive("call", 3);
  drive("reverse");
  drive("reverse");
  drive("arrived");

  std::printf("active configuration after ride: ");
  for (const std::string& leaf : instance.active_leaf_names()) {
    std::printf("%s ", leaf.c_str());
  }
  std::printf("(pending floors: %lld)\n",
              static_cast<long long>(instance.variable("pending")));

  // MSC conformance: the observed trace must match the specification.
  interaction::ConformanceChecker checker(spec);
  const bool conforms = checker.conforms(observed);
  std::printf("observed trace conforms to RideToFloor spec: %s\n",
              conforms ? "yes" : "NO");

  // Deep history demo: service interrupt in the middle of a ride.
  instance.dispatch({"door_timeout"});      // Back to Idle first.
  instance.dispatch({"call", 5});
  instance.dispatch({"reverse"});           // Now Moving.Down.
  instance.dispatch({"service_key"});       // Maintenance.
  const bool suspended = instance.is_in("Maintenance");
  instance.dispatch({"resume"});            // Deep history restores Down.
  std::printf("service interrupt: suspended=%s, resumed into Down=%s\n",
              suspended ? "yes" : "no", instance.is_in("Down") ? "yes" : "NO");

  std::printf("\n--- statechart ---\n%s",
              codegen::to_plantuml_statechart(*machine).c_str());
  return conforms && instance.is_in("Down") ? 0 : 1;
}
