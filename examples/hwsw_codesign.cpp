// HW/SW codesign: a JPEG-like pipeline activity becomes a task graph; four
// partitioning algorithms compete under an area budget; the winning
// schedule and the area/latency Pareto front are printed.
//
//   $ ./example_hwsw_codesign
#include <cstdio>

#include "activity/analysis.hpp"
#include "activity/synthetic.hpp"
#include "codegen/plantuml.hpp"
#include "codesign/partition.hpp"

using namespace umlsoc;

int main() {
  // 1. The behavioral model: a media pipeline activity diagram.
  auto pipeline = activity::make_media_pipeline();
  support::DiagnosticSink sink;
  if (!activity::validate(*pipeline, sink) || !activity::check_soundness(*pipeline, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  std::printf("--- activity diagram ---\n%s\n",
              codegen::to_plantuml_activity(*pipeline).c_str());

  // 2. Task graph with cost annotations.
  codesign::TaskGraph graph = codesign::extract_task_graph(*pipeline);
  std::printf("task graph: %zu tasks, %zu precedences, total sw cost %.0f cycles, "
              "total hw area %.0f gates\n\n",
              graph.size(), graph.graph().edge_count(), graph.total_sw_cost(),
              graph.total_hw_area());

  // 3. Partition under a 60% area budget.
  codesign::CostModel model;
  model.area_budget = graph.total_hw_area() * 0.6;
  model.boundary_penalty = 4.0;

  std::printf("%-12s %10s %10s %8s %12s\n", "algorithm", "makespan", "area", "feasible",
              "evaluations");
  for (const codesign::PartitionResult& result :
       {codesign::partition_all_software(graph, model),
        codesign::partition_all_hardware(graph, model),
        codesign::partition_greedy(graph, model), codesign::partition_kl(graph, model),
        codesign::partition_annealing(graph, model, 7),
        codesign::partition_exhaustive(graph, model)}) {
    std::printf("%-12s %10.1f %10.0f %8s %12llu\n", result.algorithm.c_str(),
                result.evaluation.makespan, result.evaluation.area,
                result.evaluation.feasible ? "yes" : "NO",
                static_cast<unsigned long long>(result.evaluations));
  }

  // 4. The optimal schedule in detail.
  codesign::PartitionResult best = codesign::partition_exhaustive(graph, model);
  std::printf("\noptimal schedule (budget %.0f gates):\n", model.area_budget);
  for (const codesign::ScheduledTask& task :
       codesign::build_schedule(graph, best.partition, model)) {
    std::printf("  %8.1f .. %8.1f  [%s]  %s\n", task.start, task.finish,
                task.hw ? "HW" : "SW", task.name.c_str());
  }

  // 5. Area/latency Pareto front (unconstrained sweep).
  std::printf("\npareto front (area -> makespan):\n");
  for (const codesign::ParetoPoint& point : codesign::pareto_front(graph, model)) {
    std::printf("  %8.0f gates -> %8.1f cycles\n", point.area, point.makespan);
  }
  return 0;
}
