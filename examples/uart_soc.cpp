// UART SoC flow: instantiate the Uart IP from the library, run the MDA
// hardware mapping, generate RTL + SystemC-style C++, then execute the
// design: a runtime hardware model mapped on the simulated bus, driven by
// ASL driver code (exactly what the software mapping generates).
//
// Then re-runs the driver under an adversarial bus (seeded fault plan
// dropping responses) to show the resilience layer: timeouts retry with
// backoff, a watchdog supervises progress, and the driver's health
// statechart walks through its declared error/recovery states.
//
// Demonstrates checkpoint/restore and deterministic replay: the
// adversarial run is checkpointed mid-flight, restored into a freshly
// constructed setup (as a restarted process would), continued to the end,
// and shown to be bit-identical to an uninterrupted reference — final
// state and complete event sequence. A deliberately perturbed restore and
// a corrupted snapshot show divergence detection and rejection. Any
// mismatch exits nonzero, so CI runs this binary as the snapshot smoke
// test.
//
// Closes with the supervision demo: the CPU streams bytes to the UART over
// a DMA channel guarded by a CircuitBreaker. A deterministic burst of bus
// errors opens the breaker, the HealthRegistry flags the channel degraded
// and traffic falls back to a PIO port; after the open duration a half-open
// probe succeeds and DMA is restored. A watchdog starvation trip then
// drives a supervised warm restart of the link statechart (from a restart
// snapshot) and re-arms the dog. Every supervision signal lands in the
// UartLink statechart's error channel, which must absorb all of them.
//
// With --chaos-soak[=N] the binary instead soaks that supervision loop
// under a seeded 1% error + 1% drop fault plan over N seeds (default 16),
// sharded across worker threads by the fleet engine (--jobs=M; default 1,
// 0 = one per core). Each seed is one fully isolated rig pipeline — its own
// kernels, fault plans, supervision tree and checkpoint ladder — so
// per-seed results are bit-identical regardless of the job count, and the
// run ends with the fleet SLO rollup (availability, delivery/timeout
// rates, restarts, rollbacks, checkpoint overhead, lost-work bounds):
// each seed runs an uninterrupted reference, an identical rig checkpointed
// mid-stream, and a restored rig that finishes the run under the replay
// verifier — final state and the full event sequence must match, every
// unit must end healthy and no error event may go unhandled. A
// recovery-ladder leg streams checkpoints to disk under injected write
// faults and recovers through restore_latest_good, and a crash leg kills
// the rig mid-run (CrashInjector throwing SimulatedCrash from a kernel
// process) while a RecoveryCoordinator checkpoints in the background: a
// freshly constructed rig must recover through the coordinator with lost
// work bounded by the checkpoint interval and replay bit-identically to
// an uninterrupted twin. Per-seed scratch (checkpoint ladders, event
// logs) lives under the system temp dir and is removed on success; a
// failing seed's scratch is copied to ./chaos-soak-failure/ for CI
// artifact upload. Failing seeds are listed so CI logs pinpoint the
// reproduction.
//
// With --check-properties the binary instead runs the explicit-state
// verification engine on the driver-supervision statecharts: a seeded
// notification bug is found by exhaustive exploration, its counterexample
// is replayed through the real interpreter under the replay verifier and
// rendered as a PlantUML sequence diagram, and the fixed model verifies
// clean. `--check-properties=buggy` exits nonzero exactly when the bug is
// caught end-to-end; `--check-properties=fixed` exits zero exactly when
// the fixed model is exhaustively verified — CI runs both as the
// verification smoke test.
//
// --engine=compiled|interpreted picks the statechart engine both modes run
// on: the AOT-compiled plan-table stepper (default) or the reference
// interpreter. Snapshots are engine-interchangeable, so the soak's
// checkpoint/restore/replay pipeline is exercised end-to-end either way.
//
// --isolation=thread|process picks how the fleet shards seeds: worker
// threads (default) or supervised worker processes. Process isolation
// forks workers over a pipe-based handoff protocol; a worker that dies
// (SIGKILL, nonzero exit, heartbeat silence, or a seed hung past
// --worker-timeout seconds) is reaped and respawned, its in-flight seed
// re-dispatched — resuming from the seed's on-disk handoff ladder when one
// survives — with at-most-once accounting, so the rollup fingerprint is
// bit-identical to an in-process run. A seed that kills 3 consecutive
// workers is quarantined with its forensics under ./chaos-soak-failure/.
// --kill-workers=N makes the supervisor SIGKILL N random busy workers
// mid-run (the CI chaos gate). --fault-templates=K sweeps K fault-plan
// templates (error/drop/crash-rate variations) across the fleet by rig
// index; the rollup then breaks the SLOs down per template.
//
//   $ ./example_uart_soc
//   $ ./example_uart_soc --chaos-soak
//   $ ./example_uart_soc --chaos-soak=256 --jobs=$(nproc)
//   $ ./example_uart_soc --chaos-soak=64 --isolation=process --kill-workers=2
//   $ ./example_uart_soc --chaos-soak=64 --fault-templates=4
//   $ ./example_uart_soc --chaos-soak=4 --engine=interpreted
//   $ ./example_uart_soc --check-properties
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>

#include "codegen/hwmodel.hpp"
#include "fleet/driver.hpp"
#include "fleet/report.hpp"
#include "codegen/plantuml.hpp"
#include "codegen/rtl.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "replay/recovery.hpp"
#include "replay/snapshot.hpp"
#include "replay/store.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"
#include "verify/counterexample.hpp"
#include "statechart/compile.hpp"
#include "verify/explore.hpp"

using namespace umlsoc;

namespace {

// --- Engine selection (--engine=compiled|interpreted) -------------------------
//
// Picks the statechart engine for the chaos-soak and --check-properties
// demos: the AOT-compiled plan-table stepper (the default, matching the
// verifier's and the sim kernel's hot paths) or the reference interpreter.
// A machine the compiler rejects falls back to the interpreter either way.
enum class EngineChoice : std::uint8_t { kCompiled, kInterpreted };
EngineChoice g_engine_choice = EngineChoice::kCompiled;

/// Owns whichever engine the --engine flag selected and hands out the
/// common statechart::Engine surface (snapshots stay interchangeable, so
/// checkpoint/restore and the replay verifier are engine-agnostic).
class EngineBox {
 public:
  explicit EngineBox(const statechart::StateMachine& machine) {
    if (g_engine_choice == EngineChoice::kCompiled) {
      support::DiagnosticSink sink;
      compiled_ = statechart::compile(machine, sink);
    }
    if (compiled_ == nullptr) {
      interpreted_ = std::make_unique<statechart::StateMachineInstance>(machine);
    }
  }

  [[nodiscard]] statechart::Engine& engine() {
    return compiled_ != nullptr ? static_cast<statechart::Engine&>(*compiled_)
                                : *interpreted_;
  }
  [[nodiscard]] const statechart::Engine& engine() const {
    return compiled_ != nullptr ? static_cast<const statechart::Engine&>(*compiled_)
                                : *interpreted_;
  }
  statechart::Engine* operator->() { return &engine(); }
  const statechart::Engine* operator->() const { return &engine(); }
  [[nodiscard]] bool compiled() const { return compiled_ != nullptr; }

 private:
  std::unique_ptr<statechart::CompiledMachine> compiled_;
  std::unique_ptr<statechart::StateMachineInstance> interpreted_;
};

const char* engine_label() {
  return g_engine_choice == EngineChoice::kCompiled ? "compiled" : "interpreted";
}

/// Snapshot bank over a BusMasterPort's retry counters; both the replay rig
/// and each leg of the degraded-mode rig checkpoint their ports this way.
replay::ValueBank port_stats_bank(std::string name, sim::BusMasterPort& port) {
  replay::ValueBank bank;
  bank.name = std::move(name);
  bank.capture = [&port] {
    const sim::BusMasterPort::Stats& stats = port.stats();
    return std::vector<std::pair<std::string, std::uint64_t>>{
        {"transactions", stats.transactions}, {"timeouts", stats.timeouts},
        {"retries", stats.retries},           {"exhausted", stats.exhausted},
        {"recovered", stats.recovered},       {"late-completions",
                                               stats.late_completions}};
  };
  bank.restore = [&port, bank_name = bank.name](
                     const std::vector<std::pair<std::string, std::uint64_t>>& values,
                     support::DiagnosticSink& bank_sink) {
    sim::BusMasterPort::Stats stats;
    for (const auto& [key, value] : values) {
      if (key == "transactions") {
        stats.transactions = value;
      } else if (key == "timeouts") {
        stats.timeouts = value;
      } else if (key == "retries") {
        stats.retries = value;
      } else if (key == "exhausted") {
        stats.exhausted = value;
      } else if (key == "recovered") {
        stats.recovered = value;
      } else if (key == "late-completions") {
        stats.late_completions = value;
      } else {
        bank_sink.error(bank_name, "unknown counter '" + key + "'");
        return false;
      }
    }
    port.restore_checkpoint(stats);
    return true;
  };
  return bank;
}

/// One complete adversarial setup — kernel, faulty bus, UART model, health
/// statechart instance, supervised driver, watchdog, event recorder. Every
/// instance runs the identical construction sequence, so ProcessIds and
/// statechart indices are stable across instances: exactly the property
/// snapshot restore relies on ("same setup, different process").
struct ReplayRig {
  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  codegen::HwModuleSim uart;
  sim::FaultPlan plan;
  statechart::StateMachineInstance health;
  codegen::BusMasterContext driver;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::ProcessId perturb = sim::kInvalidProcess;

  static sim::RetryPolicy retry_policy() {
    sim::RetryPolicy policy;
    policy.timeout = sim::SimTime::ns(40);
    policy.max_attempts = 4;
    return policy;
  }

  ReplayRig(const uml::Component& psm_uart, const soc::SocProfile& profile,
            const statechart::StateMachine& health_machine, std::uint64_t base,
            support::DiagnosticSink& sink)
      : bus(kernel, "axi-faulty", sim::SimTime::ns(8)),
        uart(psm_uart, profile, sink),
        plan(/*seed=*/42),
        health(health_machine),
        driver(kernel, bus, retry_policy()),
        watchdog(kernel, "driver-watchdog", sim::SimTime::us(10)) {
    uart.map_onto(bus, base);
    sim::FaultPlan::SiteConfig adversarial;
    adversarial.drop_rate = 0.25;  // 1 in 4 writes hangs: no response, ever.
    plan.configure(sim::FaultSite::kBusWrite, adversarial);
    bus.install_fault_plan(&plan);
    health.set_trace_enabled(false);
    health.start();
    driver.set_error_sink(&health);
    driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
    perturb = kernel.register_process([] {}, "demo.perturb");
    kernel.set_recorder(&recorder);
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"health", &health});
    out.buses.push_back({"axi-faulty", &bus});
    out.watchdogs.push_back({"driver-watchdog", &watchdog});
    out.banks.push_back(
        {"uart", [this] { return uart.capture_values(); },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           return uart.restore_values(values, bank_sink);
         }});
    out.banks.push_back(port_stats_bank("port", driver.port()));
    return out;
  }
};

constexpr const char* kPhase1 = "bus_write(self.base + 12, 434);";
constexpr const char* kPhase2 =
    "i := 0;"
    "while (i < 4) {"
    "  bus_write(self.base + 0, 65 + i);"
    "  i := i + 1;"
    "}";

// --- Supervision / degraded-mode demo -----------------------------------------
//
// The recovery loop under demonstration: a CPU sender streams bytes to the
// UART tx register over a DMA channel wrapped in a CircuitBreaker, with a
// plain PIO port as the degraded route. Breaker state changes and
// supervisor activity surface as error events on a UartLink statechart; a
// Supervisor owns the link (warm restart from a snapshot captured at the
// known-good point) and a watchdog converts traffic starvation into a
// supervised failure.

struct TrafficFaults {
  double error_rate = 0.0;
  double drop_rate = 0.0;
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();
};

/// One fault-plan template the fleet sweep can assign to a rig: the traffic
/// fault rates the resilience stack absorbs plus the per-tick crash
/// probability of the crash leg. Template 0 is the historical baseline
/// (single-template fleets behave exactly as before the sweep existed).
/// Rates stay within what the supervision stack absorbs by design — the
/// sweep varies stress, it does not manufacture failures.
struct SoakTemplate {
  double error_rate;
  double drop_rate;
  double crash_rate;
};

constexpr SoakTemplate kSoakTemplates[] = {
    {0.010, 0.010, 0.10},  // 0: baseline
    {0.020, 0.005, 0.15},  // 1: error-heavy traffic, eager crash
    {0.005, 0.020, 0.05},  // 2: drop-heavy traffic, reluctant crash
    {0.015, 0.015, 0.20},  // 3: everything turned up
};
constexpr std::uint32_t kSoakTemplateCount =
    static_cast<std::uint32_t>(sizeof(kSoakTemplates) / sizeof(kSoakTemplates[0]));

/// UartLink: Normal <-> Fallback on breaker_open/breaker_closed, Dead on
/// supervisor_give_up. Every other supervision signal is absorbed
/// internally so the soak's "zero unhandled errors" check is meaningful:
/// a new signal name would surface as an unhandled error event.
void build_link_machine(statechart::StateMachine& machine) {
  statechart::Region& top = machine.top();
  statechart::State& normal = top.add_state("Normal");
  statechart::State& fallback = top.add_state("Fallback");
  statechart::State& dead = top.add_state("Dead");
  top.add_transition(top.add_initial(), normal);
  top.add_transition(normal, fallback).set_trigger("breaker_open");
  top.add_transition(fallback, normal).set_trigger("breaker_closed");
  top.add_transition(normal, dead).set_trigger("supervisor_give_up");
  top.add_transition(fallback, dead).set_trigger("supervisor_give_up");
  for (const char* event :
       {"watchdog_trip", "unit_restarted", "restart_failed", "supervisor_escalate"}) {
    top.add_transition(normal, normal).set_trigger(event).set_internal(true);
    top.add_transition(fallback, fallback).set_trigger(event).set_internal(true);
    top.add_transition(dead, dead).set_trigger(event).set_internal(true);
  }
  top.add_transition(normal, normal).set_trigger("breaker_closed").set_internal(true);
  top.add_transition(fallback, fallback).set_trigger("breaker_open").set_internal(true);
  for (const char* event : {"breaker_open", "breaker_closed", "supervisor_give_up"}) {
    top.add_transition(dead, dead).set_trigger(event).set_internal(true);
  }
}

/// The supervised SoC: identical construction sequence per instance (same
/// ProcessIds, same statechart indices), so the snapshot contract holds for
/// the whole supervision stack — breaker, supervisor, health registry and
/// traffic counters are all snapshot sections.
struct DegradedRig {
  static constexpr std::uint64_t kSendPeriodPs = 500'000;  // One byte per 500 ns.

  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  codegen::HwModuleSim uart;
  sim::FaultPlan plan;
  sim::BusMasterPort dma_port;
  sim::BusMasterPort pio_port;
  sim::CircuitBreaker breaker;
  sim::HealthRegistry health;
  sim::HealthRegistry::UnitId dma_unit = sim::HealthRegistry::kInvalidUnit;
  sim::HealthRegistry::UnitId link_unit = sim::HealthRegistry::kInvalidUnit;
  EngineBox link;
  sim::Supervisor sup;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::Supervisor::ChildId link_child = sim::Supervisor::kInvalidChild;
  std::function<bool()> link_restart;
  std::uint64_t base = 0;
  sim::ProcessId sender = sim::kInvalidProcess;
  std::uint64_t target = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t via_dma = 0;
  std::uint64_t via_pio = 0;
  std::uint64_t lost = 0;

  static sim::RetryPolicy port_policy() {
    sim::RetryPolicy policy;
    policy.timeout = sim::SimTime::ns(100);
    policy.max_attempts = 2;
    return policy;
  }
  static sim::CircuitBreaker::Config breaker_config() {
    sim::CircuitBreaker::Config config;
    config.window = 8;
    config.min_samples = 4;
    config.failure_threshold = 0.5;
    config.open_duration = sim::SimTime::us(2);
    config.reopen_multiplier = 2;
    config.max_open_duration = sim::SimTime::us(16);
    return config;
  }
  static sim::RestartPolicy sup_policy() {
    sim::RestartPolicy policy;
    policy.backoff = sim::SimTime::ns(100);
    policy.max_restarts = 8;
    policy.window = sim::SimTime::us(200);
    return policy;
  }

  DegradedRig(const uml::Component& psm_uart, const soc::SocProfile& profile,
              const statechart::StateMachine& link_machine, std::uint64_t base_address,
              const TrafficFaults& faults, std::uint64_t seed,
              support::DiagnosticSink& sink)
      : bus(kernel, "axi", sim::SimTime::ns(8)),
        uart(psm_uart, profile, sink),
        plan(seed),
        dma_port(kernel, bus, "dma", port_policy()),
        pio_port(kernel, bus, "pio", port_policy()),
        breaker(kernel, dma_port, "dma", breaker_config()),
        link(link_machine),
        sup(kernel, "soc", sim::RestartStrategy::kOneForOne, sup_policy()),
        watchdog(kernel, "link-dog", sim::SimTime::us(50)),
        base(base_address) {
    uart.map_onto(bus, base);
    sim::FaultPlan::SiteConfig site;
    site.error_rate = faults.error_rate;
    site.drop_rate = faults.drop_rate;
    site.max_faults = faults.max_faults;
    plan.configure(sim::FaultSite::kBusWrite, site);
    bus.install_fault_plan(&plan);
    link->set_trace_enabled(false);
    link->start();
    // The known-good restart point: the just-started link. Supervisor
    // restarts warm-rewind to here.
    link_restart = replay::restart_from_snapshot(link.engine(), sink);
    dma_unit = health.register_unit("dma");
    link_unit = health.register_unit("uart-link");
    breaker.bind_health(&health, dma_unit);
    breaker.set_error_emitter([this](const std::string& event, std::int64_t) {
      link->dispatch_error(statechart::Event(event));
    });
    link_child = sup.add_child("uart-link", [this] {
      const bool ok = link_restart == nullptr || link_restart();
      breaker.force_closed();  // Restart power-cycles the DMA channel too.
      return ok;
    });
    sup.attach_watchdog(link_child, watchdog);
    sup.bind_child_health(link_child, health, link_unit);
    sup.set_error_emitter([this](const std::string& event, std::int64_t) {
      link->dispatch_error(statechart::Event(event));
    });
    sender = kernel.register_process([this] { send_tick(); }, "cpu.sender");
    kernel.set_recorder(&recorder);
    // Armed in the constructor: a restored process re-arms before the
    // snapshot wipes and reinstates the kernel's expectation registry.
    watchdog.arm();
  }

  /// Degraded-mode routing: bytes flow through the breaker-guarded DMA
  /// channel unless the breaker is open, in which case they fall back to
  /// PIO. Half-open deliberately routes through the breaker — that request
  /// *is* the recovery probe.
  void send_tick() {
    if (sent >= target) return;
    const std::uint64_t value = 'A' + (sent % 26);
    ++sent;
    watchdog.kick();
    auto completion = [this](sim::BusStatus status) {
      if (status == sim::BusStatus::kOk) {
        ++delivered;
      } else {
        ++lost;
      }
    };
    if (breaker.state() == sim::CircuitBreaker::State::kOpen) {
      ++via_pio;
      pio_port.write(base + 0, value, completion);
    } else {
      ++via_dma;
      breaker.write(base + 0, value, completion);
    }
    if (sent < target) kernel.schedule(sim::SimTime(kSendPeriodPs), sender);
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"link", &link.engine()});
    out.buses.push_back({"axi", &bus});
    out.watchdogs.push_back({"link-dog", &watchdog});
    out.supervisors.push_back({"soc", &sup});
    out.breakers.push_back({"dma", &breaker});
    out.health.push_back({"health", &health});
    out.banks.push_back(
        {"uart", [this] { return uart.capture_values(); },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           return uart.restore_values(values, bank_sink);
         }});
    out.banks.push_back(port_stats_bank("dma-port", dma_port));
    out.banks.push_back(port_stats_bank("pio-port", pio_port));
    out.banks.push_back(
        {"traffic",
         [this] {
           return std::vector<std::pair<std::string, std::uint64_t>>{
               {"target", target},   {"sent", sent},       {"delivered", delivered},
               {"via-dma", via_dma}, {"via-pio", via_pio}, {"lost", lost}};
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           for (const auto& [key, value] : values) {
             if (key == "target") {
               target = value;
             } else if (key == "sent") {
               sent = value;
             } else if (key == "delivered") {
               delivered = value;
             } else if (key == "via-dma") {
               via_dma = value;
             } else if (key == "via-pio") {
               via_pio = value;
             } else if (key == "lost") {
               lost = value;
             } else {
               bank_sink.error("traffic", "unknown counter '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

/// Streams bytes until `total` have been sent and the bus has drained.
/// State-driven (no wall-count of run calls), so a reference run, a
/// checkpointed run and a restored run walk identical event sequences.
bool run_phase(DegradedRig& rig, std::uint64_t total) {
  rig.target = total;
  if (rig.sent < rig.target) {
    rig.kernel.schedule(sim::SimTime(DegradedRig::kSendPeriodPs), rig.sender);
  }
  for (int guard = 0; guard < 100000; ++guard) {
    if (rig.sent >= rig.target && rig.bus.pending_transactions() == 0) return true;
    rig.kernel.run(rig.kernel.now() + sim::SimTime::us(1));
  }
  std::printf("traffic phase stalled: sent=%llu target=%llu pending=%zu\n",
              static_cast<unsigned long long>(rig.sent),
              static_cast<unsigned long long>(rig.target),
              rig.bus.pending_transactions());
  return false;
}

/// Runs until the rig reaches a checkpointable state (e.g. no in-flight
/// port expectation from a retry) and captures a snapshot. `out == nullptr`
/// runs the identical search without keeping the document — the reference
/// run uses it to stay on the checkpointed run's timeline (save_snapshot
/// itself has no side effects on the simulation).
bool run_to_save_point(DegradedRig& rig, std::string* out) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    support::DiagnosticSink save_sink;
    std::string snapshot;
    if (replay::save_snapshot(rig.targets(), snapshot, save_sink)) {
      if (out != nullptr) *out = std::move(snapshot);
      return true;
    }
    rig.kernel.run(rig.kernel.now() + sim::SimTime::us(1));
  }
  return false;
}

/// Drives the rig to full recovery: breaker closed, every unit healthy,
/// no supervision work pending. Each iteration sends one keepalive byte —
/// routed around an open breaker — so simulated time advances through open
/// durations and restart backoffs.
bool run_recovery_tail(DegradedRig& rig) {
  const sim::SimTime limit = rig.kernel.now() + sim::SimTime::us(500);
  for (int guard = 0; guard < 2000; ++guard) {
    if (rig.breaker.state() == sim::CircuitBreaker::State::kClosed &&
        rig.health.all_healthy() && rig.sup.quiescent()) {
      return true;
    }
    if (rig.kernel.now() > limit) break;
    if (!run_phase(rig, rig.target + 1)) return false;
  }
  std::printf("recovery tail did not converge: breaker=%s health=%s sup=%s\n",
              std::string(sim::to_string(rig.breaker.state())).c_str(),
              rig.health.str().c_str(), rig.sup.str().c_str());
  return false;
}

/// Disarms supervision and drains the queue; stale timer/check events
/// fizzle by design.
void finish_run(DegradedRig& rig) {
  rig.watchdog.disarm();
  rig.kernel.run();
}

/// In-simulation script driver for the crash leg. The host-side guard loops
/// above (run_phase, run_recovery_tail) time their sender kicks off
/// wall-script slicing, which depends on where a restore landed — a rig
/// recovered mid-phase would re-kick at a different instant than the
/// uninterrupted reference and diverge. This driver runs the same script
/// (two traffic phases, keepalive bytes until recovered, final watchdog
/// disarm) as a kernel process whose every decision is a pure function of
/// checkpoint-visible rig state: its activations are restored with the
/// schedule like everything else, so a recovered rig resumes the script
/// exactly where the checkpoint left it.
struct ScriptDriver {
  /// Off the 500 ns traffic grid and coprime to the coordinator/injector
  /// cadences within the soak horizon.
  static constexpr std::uint64_t kTickPs = 1'000'037;

  DegradedRig& rig;
  sim::ProcessId process = sim::kInvalidProcess;

  explicit ScriptDriver(DegradedRig& owner) : rig(owner) {
    process = rig.kernel.register_process([this] { tick(); }, "soak.script");
  }

  void start() { rig.kernel.schedule(sim::SimTime(kTickPs), process); }

  [[nodiscard]] bool recovered() const {
    return rig.breaker.state() == sim::CircuitBreaker::State::kClosed &&
           rig.health.all_healthy() && rig.sup.quiescent();
  }

  [[nodiscard]] bool done() const {
    return rig.target >= 64 && rig.sent >= rig.target &&
           rig.bus.pending_transactions() == 0 && recovered() && !rig.watchdog.armed();
  }

  void tick() {
    // Chain first, unconditionally: a restored pending tick keeps driving.
    rig.kernel.schedule(sim::SimTime(kTickPs), process);
    if (rig.target < 32) {
      rig.target = 32;
      kick();
      return;
    }
    if (rig.sent < rig.target || rig.bus.pending_transactions() != 0) return;
    if (rig.target < 64) {
      rig.target = 64;
      kick();
      return;
    }
    if (!recovered()) {
      // One keepalive byte — routed around an open breaker — so simulated
      // time advances through open durations and restart backoffs.
      rig.target = rig.sent + 1;
      kick();
      return;
    }
    if (rig.watchdog.armed()) rig.watchdog.disarm();
  }

  void kick() { rig.kernel.schedule(sim::SimTime(DegradedRig::kSendPeriodPs), rig.sender); }
};

/// The interactive demo: deterministic DMA error burst -> breaker opens ->
/// PIO fallback -> half-open probe restores DMA; then a watchdog
/// starvation trip -> supervised warm restart -> re-armed dog.
int run_degraded_demo(const uml::Component& psm_uart, const soc::SocProfile& profile,
                      const statechart::StateMachine& link_machine, std::uint64_t base,
                      support::DiagnosticSink& sink) {
  std::printf("\n--- degraded mode: breaker-guarded DMA, PIO fallback, supervision ---\n");
  TrafficFaults faults;
  faults.error_rate = 1.0;
  faults.max_faults = 4;  // Exactly the first four DMA writes error, then clean.
  DegradedRig rig(psm_uart, profile, link_machine, base, faults, /*seed=*/7, sink);
  rig.health.add_listener([&rig](sim::HealthRegistry::UnitId unit, sim::UnitHealth from,
                                 sim::UnitHealth to, std::string_view reason) {
    std::printf("  [%s] %s: %s -> %s (%.*s)\n", rig.kernel.now().str().c_str(),
                rig.health.unit_name(unit).c_str(),
                std::string(sim::to_string(from)).c_str(),
                std::string(sim::to_string(to)).c_str(), static_cast<int>(reason.size()),
                reason.data());
  });

  if (!run_phase(rig, 4)) return 1;
  if (rig.breaker.state() != sim::CircuitBreaker::State::kOpen) {
    std::printf("breaker did not open after the error burst (state=%s)\n",
                std::string(sim::to_string(rig.breaker.state())).c_str());
    return 1;
  }
  std::printf("breaker '%s' open after %llu DMA failures; link state: %s\n",
              rig.breaker.name().c_str(),
              static_cast<unsigned long long>(rig.breaker.stats().failures),
              rig.link->is_in("Fallback") ? "Fallback" : "?");

  if (!run_phase(rig, 8)) return 1;
  if (rig.via_pio == 0) {
    std::printf("no byte fell back to PIO while the breaker was open\n");
    return 1;
  }
  if (!run_recovery_tail(rig)) return 1;
  if (rig.breaker.state() != sim::CircuitBreaker::State::kClosed ||
      !rig.link->is_in("Normal") || rig.breaker.stats().probes == 0) {
    std::printf("recovery incomplete: breaker=%s probes=%llu link-normal=%d\n",
                std::string(sim::to_string(rig.breaker.state())).c_str(),
                static_cast<unsigned long long>(rig.breaker.stats().probes),
                rig.link->is_in("Normal") ? 1 : 0);
    return 1;
  }
  std::printf("half-open probe restored DMA: %llu via dma, %llu via pio, %llu lost\n",
              static_cast<unsigned long long>(rig.via_dma),
              static_cast<unsigned long long>(rig.via_pio),
              static_cast<unsigned long long>(rig.lost));

  // Watchdog leg: traffic stops, the dog starves and trips, the supervisor
  // warm-restarts the link and re-arms the dog.
  const std::uint64_t restarts_before = rig.sup.child_stats(rig.link_child).restarts;
  rig.kernel.run(rig.kernel.now() + sim::SimTime::us(51));
  if (rig.watchdog.trips() != 1 ||
      rig.sup.child_stats(rig.link_child).restarts != restarts_before + 1 ||
      !rig.watchdog.armed()) {
    std::printf("watchdog recovery failed: trips=%llu restarts=%llu armed=%d\n",
                static_cast<unsigned long long>(rig.watchdog.trips()),
                static_cast<unsigned long long>(
                    rig.sup.child_stats(rig.link_child).restarts),
                rig.watchdog.armed() ? 1 : 0);
    return 1;
  }
  std::printf("watchdog trip -> supervised warm restart -> re-armed (trips=1)\n");
  finish_run(rig);

  if (!rig.health.all_healthy() || rig.link->errors_unhandled() != 0 || rig.sup.gave_up()) {
    std::printf("end-state check failed: health=[%s] unhandled=%llu gave-up=%d\n",
                rig.health.str().c_str(),
                static_cast<unsigned long long>(rig.link->errors_unhandled()),
                rig.sup.gave_up() ? 1 : 0);
    return 1;
  }
  std::printf("supervision: %s; health: %s; breaker opens=%llu closes=%llu "
              "fast-failed=%llu\n",
              rig.sup.str().c_str(), rig.health.str().c_str(),
              static_cast<unsigned long long>(rig.breaker.stats().opens),
              static_cast<unsigned long long>(rig.breaker.stats().closes),
              static_cast<unsigned long long>(rig.breaker.stats().fast_failed));
  return 0;
}

/// Verifies a replayed twin against the reference run: recorded-event
/// divergence, counter-by-counter final state, health/supervision end
/// checks. Returns an empty string on success.
std::string compare_final_state(DegradedRig& reference, DegradedRig& twin,
                                const char* leg) {
  if (twin.recorder.divergence().has_value()) {
    return std::string(leg) + " replay divergence: " + twin.recorder.divergence()->str();
  }
  struct Check {
    const char* label;
    std::uint64_t reference;
    std::uint64_t twin;
  };
  const Check checks[] = {
      {"sim-time", reference.kernel.now().picoseconds(), twin.kernel.now().picoseconds()},
      {"events-processed", reference.kernel.events_processed(),
       twin.kernel.events_processed()},
      {"recorded-events", reference.recorder.total_events(), twin.recorder.total_events()},
      {"tx_data", reference.uart.peek("tx_data"), twin.uart.peek("tx_data")},
      {"delivered", reference.delivered, twin.delivered},
      {"lost", reference.lost, twin.lost},
      {"via-pio", reference.via_pio, twin.via_pio},
      {"breaker-opens", reference.breaker.stats().opens, twin.breaker.stats().opens},
      {"restarts", reference.sup.child_stats(reference.link_child).restarts,
       twin.sup.child_stats(twin.link_child).restarts},
  };
  for (const Check& check : checks) {
    if (check.reference != check.twin) {
      return std::string(leg) + " " + check.label +
             " mismatch: reference=" + std::to_string(check.reference) +
             " got=" + std::to_string(check.twin);
    }
  }
  if (!twin.health.all_healthy()) {
    return std::string(leg) + " ended unhealthy: " + twin.health.str();
  }
  if (twin.link->errors_unhandled() != 0) {
    return std::string(leg) + " left unhandled errors";
  }
  if (twin.sup.gave_up()) {
    return std::string(leg) + " supervisor gave up: " + twin.sup.give_up_reason();
  }
  return {};
}

/// Writes a recorded event log as one "index at_ps label" line per event —
/// the forensic artifact uploaded alongside a failing seed's ladder.
void dump_event_log(const std::filesystem::path& path,
                    const std::vector<sim::RecordedEvent>& log, const sim::Kernel& kernel) {
  std::ofstream out(path);
  std::uint64_t index = 0;
  for (const sim::RecordedEvent& event : log) {
    const std::string& label = kernel.process_label(event.process);
    out << index++ << ' ' << event.at_ps << ' ' << event.process << ' '
        << (label.empty() ? "?" : label) << '\n';
  }
}

/// One chaos-soak seed: reference run, checkpointed twin, restored twin
/// under the replay verifier, a recovery-ladder leg whose on-disk
/// checkpoints take injected write faults plus a crash-style tear of the
/// newest file, and a crash leg where a CrashInjector kills the rig
/// mid-run and a RecoveryCoordinator recovers a fresh one. Per-seed
/// scratch lives under `scratch`; it is removed on success and left in
/// place on failure (the caller copies it out as a CI artifact). Returns
/// an empty string on success, else the failure description. Fills
/// `outcome` with the seed's SLO counters (service numbers come from the
/// uninterrupted reference leg; recovery accounting from the ladder and
/// crash legs; kernel stats reduced across every leg). Runs on a fleet
/// worker thread: everything it touches is rig-local or read-only shared
/// model input, and filesystem scratch is partitioned by seed.
///
/// The job's fault_template picks the SoakTemplate every leg runs under,
/// and its attempt count drives the cross-process handoff: every attempt
/// writes two handoff rungs (the t=0 base and the post-phase-1 save point)
/// to the seed's scratch, and a re-dispatched attempt (attempt > 0) first
/// restores the newest rung a dead predecessor left behind and replays the
/// remainder under the verifier — proving resume-from-ladder — before
/// re-running the deterministic legs from scratch.
std::string soak_one_seed(const uml::Component& psm_uart, const soc::SocProfile& profile,
                          const statechart::StateMachine& link_machine,
                          std::uint64_t base, const fleet::RigJob& job,
                          const std::filesystem::path& scratch,
                          fleet::RigOutcome& outcome) {
  support::DiagnosticSink sink;
  const std::uint64_t seed = job.seed;
  const SoakTemplate& soak_template =
      kSoakTemplates[job.fault_template % kSoakTemplateCount];
  TrafficFaults faults;
  faults.error_rate = soak_template.error_rate;
  faults.drop_rate = soak_template.drop_rate;

  DegradedRig reference(psm_uart, profile, link_machine, base, faults, seed, sink);
  if (!run_phase(reference, 32)) return "reference stalled in phase 1";
  if (!run_to_save_point(reference, nullptr)) return "reference found no save point";
  if (!run_phase(reference, 64)) return "reference stalled in phase 2";
  if (!run_recovery_tail(reference)) return "reference never recovered";
  finish_run(reference);
  if (!reference.health.all_healthy()) {
    return "reference ended unhealthy: " + reference.health.str();
  }
  if (reference.link->errors_unhandled() != 0) return "reference left unhandled errors";
  if (reference.sup.gave_up()) {
    return "reference supervisor gave up: " + reference.sup.give_up_reason();
  }
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  namespace fs = std::filesystem;
  const fs::path seed_dir = scratch / ("seed-" + std::to_string(seed));

  // --- Cross-process handoff resume ------------------------------------------
  // A re-dispatched seed (attempt > 0) may inherit handoff rungs a dead
  // predecessor left in this seed's scratch. Before the scratch is wiped,
  // prove the handoff invariant: restore the newest good rung into a fresh
  // rig, replay the remainder of the script under the verifier, and require
  // the final state to match the reference. Everything this leg produces
  // lives in fingerprint-excluded fields (resumed_from_seq) and its kernel
  // stats are NOT reduced into the outcome — whether a kill happened, and
  // where, is host scheduling, not simulation.
  replay::CheckpointStoreConfig handoff_config;
  handoff_config.directory = seed_dir / "handoff";
  handoff_config.prefix = "handoff";
  handoff_config.full_interval = 2;
  handoff_config.keep_fulls = 2;
  if (job.attempt > 0 && fs::exists(handoff_config.directory)) {
    replay::CheckpointStore inherited(handoff_config);
    if (inherited.newest_on_disk() != 0) {
      DegradedRig resumed(psm_uart, profile, link_machine, base, faults, seed, sink);
      support::DiagnosticSink resume_sink;
      // An unrestorable inherited ladder (predecessor killed mid-write on
      // every rung) is not an error — the seed simply re-runs from scratch.
      if (inherited.restore_latest_good(resumed.targets(), resume_sink)) {
        resumed.recorder.begin_verify(reference_log, resumed.recorder.total_events());
        if (!run_phase(resumed, 32)) return "handoff-resumed rig stalled in phase 1";
        if (!run_phase(resumed, 64)) return "handoff-resumed rig stalled in phase 2";
        if (!run_recovery_tail(resumed)) return "handoff-resumed rig never recovered";
        finish_run(resumed);
        if (const std::string problem =
                compare_final_state(reference, resumed, "handoff-resumed");
            !problem.empty()) {
          return problem;
        }
        outcome.resumed_from_seq = inherited.stats().restored_seq;
      }
    }
  }

  std::error_code cleanup_ec;
  fs::remove_all(seed_dir, cleanup_ec);
  fs::create_directories(seed_dir, cleanup_ec);
  dump_event_log(seed_dir / "reference-events.log", reference_log, reference.kernel);

  DegradedRig checkpointed(psm_uart, profile, link_machine, base, faults, seed, sink);
  // Handoff rung 1: the t=0 base. Written on every attempt and in every
  // isolation mode — the writes feed the kernel's snapshot-encode counters,
  // which are fingerprinted, so they must happen unconditionally. A refusal
  // here is tolerated (and deterministic): the save-point rung below then
  // lands as the chain's full base instead.
  replay::CheckpointStore handoff_store(handoff_config);
  support::DiagnosticSink handoff_sink;
  replay::CheckpointStore::WriteResult handoff_rung;
  (void)handoff_store.checkpoint(checkpointed.targets(), handoff_rung, handoff_sink);
  std::string snapshot;
  if (!run_phase(checkpointed, 32)) return "checkpointed rig stalled";
  if (!run_to_save_point(checkpointed, &snapshot)) return "no checkpointable state";
  // Handoff rung 2: the save point a successor resumes from. The state was
  // just proven checkpointable, so a failure here is a real bug.
  if (!handoff_store.checkpoint(checkpointed.targets(), handoff_rung, handoff_sink)) {
    return "handoff save-point checkpoint failed: " + handoff_sink.str();
  }

  DegradedRig restored(psm_uart, profile, link_machine, base, faults, seed, sink);
  support::DiagnosticSink restore_sink;
  if (!replay::restore_snapshot(restored.targets(), snapshot, restore_sink)) {
    return "restore failed: " + restore_sink.str();
  }
  restored.recorder.begin_verify(reference_log, restored.recorder.total_events());
  if (!run_phase(restored, 64)) return "restored rig stalled";
  if (!run_recovery_tail(restored)) return "restored rig never recovered";
  finish_run(restored);

  if (const std::string problem = compare_final_state(reference, restored, "restored");
      !problem.empty()) {
    return problem;
  }

  // --- Recovery-ladder leg ---------------------------------------------------
  // The same script once more, but checkpoints stream to an on-disk
  // CheckpointStore while a corruption plan injects checkpoint-path faults
  // (torn files, lost renames, bit-flips) at FaultSite::kCheckpoint. The
  // corruption plan is deliberately NOT a snapshot target, so the rig's own
  // determinism is unperturbed. After the run the newest checkpoint is torn
  // in half, crash-style; restore_latest_good must still find a good rung
  // and the recovered rig must replay bit-identically to the reference.
  const fs::path ladder_dir = seed_dir / "ladder";
  replay::CheckpointStoreConfig store_config;
  store_config.directory = ladder_dir;
  store_config.prefix = "soak";
  store_config.full_interval = 2;
  store_config.keep_fulls = 2;

  DegradedRig ladder(psm_uart, profile, link_machine, base, faults, seed, sink);
  replay::CheckpointStore store(store_config);
  sim::HealthRegistry store_health;  // The store's own registry, not a snapshot section.
  store.bind_health(store_health);
  sim::FaultPlan corruption(seed ^ 0xC0FFEEULL);
  sim::FaultPlan::SiteConfig checkpoint_faults;
  checkpoint_faults.error_rate = 0.2;
  checkpoint_faults.drop_rate = 0.2;
  checkpoint_faults.bit_flip_rate = 0.2;
  corruption.configure(sim::FaultSite::kCheckpoint, checkpoint_faults);

  replay::CheckpointStore::WriteResult write_result;
  support::DiagnosticSink store_sink;
  if (!run_phase(ladder, 32)) return "ladder rig stalled in phase 1";
  if (!run_to_save_point(ladder, nullptr)) return "ladder rig found no save point";
  // The first checkpoint lands before the faults arm: a good base is
  // guaranteed, so every seed can recover no matter what the dice do later.
  if (!store.checkpoint(ladder.targets(), write_result, store_sink)) {
    return "clean base checkpoint failed: " + store_sink.str();
  }
  store.install_fault_plan(&corruption);
  if (!run_phase(ladder, 64)) return "ladder rig stalled in phase 2";
  // Mid-script checkpoints only land when the rig happens to be
  // checkpointable (no in-flight retry expectation); a refusal just means
  // fewer rungs. Capture has no simulation side effects, so the ladder rig
  // stays on the reference timeline either way.
  (void)store.checkpoint(ladder.targets(), write_result, store_sink);
  if (!run_recovery_tail(ladder)) return "ladder rig never recovered";
  (void)store.checkpoint(ladder.targets(), write_result, store_sink);
  finish_run(ladder);

  // Crash-style corruption of the newest surviving checkpoint. Skipped when
  // only the clean base landed: tearing the sole rung would make recovery
  // impossible by construction, not by bug.
  std::vector<fs::path> rungs;
  for (const auto& entry : fs::directory_iterator(ladder_dir)) {
    if (entry.path().extension() == ".usnap") rungs.push_back(entry.path());
  }
  std::sort(rungs.begin(), rungs.end());  // Zero-padded names: seq order.
  if (rungs.size() > 1) {
    std::ifstream in(rungs.back(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() / 2);
    std::ofstream torn(rungs.back(), std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  DegradedRig recovered(psm_uart, profile, link_machine, base, faults, seed, sink);
  replay::CheckpointStore recovery(store_config);
  support::DiagnosticSink recover_sink;
  if (!recovery.restore_latest_good(recovered.targets(), recover_sink)) {
    return "recovery ladder exhausted: " + recover_sink.str();
  }
  recovered.recorder.begin_verify(reference_log, recovered.recorder.total_events());
  // Replay the whole script: phases the restored rung already completed
  // return immediately, the rest continues on the reference timeline.
  if (!run_phase(recovered, 32)) return "recovered rig stalled in phase 1";
  if (!run_phase(recovered, 64)) return "recovered rig stalled in phase 2";
  if (!run_recovery_tail(recovered)) return "recovered rig never recovered";
  finish_run(recovered);
  if (const std::string problem = compare_final_state(reference, recovered, "ladder");
      !problem.empty()) {
    return problem;
  }

  // --- Crash leg -------------------------------------------------------------
  // Simulated process death: a CrashInjector consults FaultSite::kCrash on
  // its own plan (NOT a snapshot target, so the rig's determinism is
  // unperturbed) and throws SimulatedCrash from inside a kernel process
  // while a RecoveryCoordinator checkpoints in the background. The crashed
  // rig is abandoned wholesale; a freshly constructed twin recovers through
  // RecoveryCoordinator::recover(), must have lost no more work than the
  // checkpoint cadence allows, and must replay bit-identically to an
  // uninterrupted reference twin running the same script/injector/
  // coordinator construction (null plan, stopped coordinator — identical
  // tick streams, no crash, no writes).
  const fs::path crash_dir = seed_dir / "crash";
  replay::CheckpointStoreConfig crash_config;
  crash_config.directory = crash_dir;
  crash_config.prefix = "crash";
  crash_config.full_interval = 4;
  crash_config.keep_fulls = 2;

  replay::RecoveryPolicy crash_policy;
  crash_policy.checkpoint_interval = sim::SimTime::us(4);
  // Off the 500 ns traffic grid: a tick sharing an instant with the sender
  // would be co-batched and refused every time.
  crash_policy.tick_interval = sim::SimTime(999'001);
  const sim::SimTime crash_tick_interval(1'000'003);
  const sim::SimTime crash_horizon = sim::SimTime::us(1000);

  DegradedRig crash_reference(psm_uart, profile, link_machine, base, faults, seed, sink);
  ScriptDriver reference_script(crash_reference);
  sim::CrashInjector reference_injector(crash_reference.kernel, nullptr,
                                        crash_tick_interval);
  replay::CheckpointStoreConfig crash_ref_config = crash_config;
  crash_ref_config.directory = seed_dir / "crash-ref";
  replay::CheckpointStore crash_ref_store(crash_ref_config);
  replay::RecoveryCoordinator crash_ref_coordinator(
      crash_reference.kernel, crash_ref_store, crash_reference.targets(), crash_policy);
  reference_script.start();
  reference_injector.start();
  crash_ref_coordinator.start();
  crash_ref_coordinator.stop();
  crash_reference.kernel.run(crash_horizon);
  if (!reference_script.done()) return "crash reference never finished its script";
  const std::vector<sim::RecordedEvent> crash_reference_log =
      crash_reference.recorder.log();
  dump_event_log(seed_dir / "crash-reference-events.log", crash_reference_log,
                 crash_reference.kernel);

  DegradedRig crash_rig(psm_uart, profile, link_machine, base, faults, seed, sink);
  ScriptDriver crash_script(crash_rig);
  sim::FaultPlan crash_plan(seed ^ 0xDEADBEEFULL);
  sim::FaultPlan::SiteConfig crash_site;
  // Each tick dies with the template's crash probability ...
  crash_site.error_rate = soak_template.crash_rate;
  crash_site.max_faults = 1;  // ... and exactly one death per run.
  crash_plan.configure(sim::FaultSite::kCrash, crash_site);
  sim::CrashInjector injector(crash_rig.kernel, &crash_plan, crash_tick_interval);
  replay::CheckpointStore crash_store(crash_config);
  replay::RecoveryCoordinator coordinator(crash_rig.kernel, crash_store,
                                          crash_rig.targets(), crash_policy);
  crash_script.start();
  injector.start();
  coordinator.start();
  // Held disarmed until a clean base checkpoint has landed (at time zero,
  // with every tick chain already scheduled), so recovery is possible by
  // construction no matter how early the dice kill the rig.
  injector.disarm();
  replay::CheckpointStore::WriteResult crash_base;
  support::DiagnosticSink crash_store_sink;
  if (!crash_store.checkpoint(crash_rig.targets(), crash_base, crash_store_sink)) {
    return "crash base checkpoint failed: " + crash_store_sink.str();
  }
  injector.arm();
  std::uint64_t crash_ps = 0;
  bool crashed = false;
  try {
    crash_rig.kernel.run(crash_horizon);
  } catch (const sim::SimulatedCrash& crash) {
    crashed = true;
    crash_ps = crash.at_ps;
  }
  if (!crashed) return "crash leg: injector never fired";

  DegradedRig crash_recovered(psm_uart, profile, link_machine, base, faults, seed, sink);
  ScriptDriver recovered_script(crash_recovered);
  sim::CrashInjector recovered_injector(crash_recovered.kernel, nullptr,
                                        crash_tick_interval);
  replay::CheckpointStore crash_recovery_store(crash_config);
  replay::RecoveryCoordinator recovered_coordinator(
      crash_recovered.kernel, crash_recovery_store, crash_recovered.targets(),
      crash_policy);
  // Deliberately no start() calls: the restored schedule carries the
  // pending script, injector and coordinator ticks, and each chain
  // reschedules itself.
  support::DiagnosticSink crash_recover_sink;
  if (!recovered_coordinator.recover(crash_recover_sink)) {
    return "crash recovery ladder exhausted: " + crash_recover_sink.str();
  }
  const std::uint64_t restored_ps = crash_recovered.kernel.now().picoseconds();
  if (restored_ps > crash_ps) return "crash leg: restored beyond the crash point";
  // Lost work is bounded by the checkpoint interval plus the refusal-retry
  // cadence (a due tick that finds the bus busy retries next tick).
  const std::uint64_t lost_ps = crash_ps - restored_ps;
  const std::uint64_t lost_bound = crash_policy.checkpoint_interval.picoseconds() +
                                   2 * crash_policy.tick_interval.picoseconds();
  if (lost_ps > lost_bound) {
    return "crash leg: lost work " + sim::SimTime(lost_ps).str() +
           " exceeds the checkpoint-interval bound " + sim::SimTime(lost_bound).str();
  }
  crash_recovered.recorder.begin_verify(crash_reference_log,
                                        crash_recovered.recorder.total_events());
  crash_recovered.kernel.run(crash_horizon);
  if (!recovered_script.done()) return "crash recovered rig never finished its script";
  if (const std::string problem =
          compare_final_state(crash_reference, crash_recovered, "crash");
      !problem.empty()) {
    return problem;
  }

  // --- SLO accounting for the fleet rollup -----------------------------------
  // Service numbers come from the uninterrupted reference: what the rig
  // delivered while taking 1% error + 1% drop through the resilience stack.
  outcome.slo.requests = reference.sent;
  outcome.slo.delivered = reference.delivered;
  outcome.slo.lost = reference.lost;
  for (const sim::BusMasterPort::Stats* port_stats :
       {&reference.dma_port.stats(), &reference.pio_port.stats()}) {
    outcome.slo.transactions += port_stats->transactions;
    outcome.slo.timeouts += port_stats->timeouts;
    outcome.slo.retries += port_stats->retries;
    outcome.slo.recovered += port_stats->recovered;
    outcome.slo.exhausted += port_stats->exhausted;
  }
  outcome.slo.errors_raised = reference.link->errors_raised();
  outcome.slo.errors_unhandled = reference.link->errors_unhandled();
  outcome.slo.restarts = reference.sup.child_stats(reference.link_child).restarts;
  outcome.slo.escalations = reference.sup.escalations();
  outcome.slo.give_ups = reference.sup.gave_up() ? 1 : 0;
  outcome.slo.watchdog_trips = reference.watchdog.trips();
  outcome.slo.breaker_opens = reference.breaker.stats().opens;
  outcome.slo.breaker_closes = reference.breaker.stats().closes;
  outcome.slo.breaker_fast_failed = reference.breaker.stats().fast_failed;
  // Recovery accounting from the ladder and crash legs.
  outcome.slo.checkpoints_written =
      store.stats().checkpoints + crash_store.stats().checkpoints;
  outcome.slo.checkpoint_write_faults = store.stats().write_faults;
  outcome.slo.rungs_quarantined = recovery.stats().quarantines;
  outcome.slo.ladder_recoveries = 1;
  outcome.slo.crash_recoveries = 1;
  outcome.slo.lost_work_ps_max = lost_ps;
  outcome.health.add(reference.health);
  outcome.sim_time_ps = reference.kernel.now().picoseconds();
  for (const sim::Kernel* kernel :
       {&reference.kernel, &checkpointed.kernel, &restored.kernel, &ladder.kernel,
        &recovered.kernel, &crash_reference.kernel, &crash_rig.kernel,
        &crash_recovered.kernel}) {
    fleet::reduce(outcome.kernel, kernel->stats());
    outcome.events_processed += kernel->events_processed();
  }
  fs::remove_all(seed_dir, cleanup_ec);

  if (sink.has_errors()) return "diagnostics: " + sink.str();
  return {};
}

/// Soak-mode knobs gathered from the command line.
struct SoakOptions {
  unsigned jobs = 1;  ///< Fleet workers; 0 = one per core.
  fleet::Isolation isolation = fleet::Isolation::kThread;
  std::uint32_t fault_templates = 1;  ///< Swept templates (1..kSoakTemplateCount).
  std::uint32_t worker_timeout_s = 120;  ///< Per-seed watchdog (process isolation).
  std::uint32_t kill_workers = 0;  ///< Supervisor-injected SIGKILLs (chaos gate).
};

/// --chaos-soak[=N] --jobs=M: the supervision loop under seeded traffic
/// faults, N seeds sharded across M fleet workers (threads by default,
/// supervised processes with --isolation=process). Per-seed results are
/// bit-identical across job counts and isolation modes (each seed's rig
/// pipeline is fully isolated), so failures reproduce with
/// `--chaos-soak=1` and the seed hardcoded no matter how the fleet was
/// sharded. Prints every failing seed plus the fleet SLO rollup.
int run_chaos_soak(const uml::Component& psm_uart, const soc::SocProfile& profile,
                   const statechart::StateMachine& link_machine, std::uint64_t base,
                   int seed_count, const SoakOptions& options) {
  const unsigned jobs_used = fleet::FleetDriver::resolve_jobs(options.jobs);
  std::printf("chaos soak: %d seeds across %u fleet worker(s), %u fault template(s), "
              "seeded error/drop traffic faults, 20%%/20%%/20%% torn/lost/bit-flipped "
              "checkpoints, mid-run crash + coordinator recovery, %s link engine\n",
              seed_count, jobs_used, options.fault_templates, engine_label());
  if (options.isolation == fleet::Isolation::kProcess) {
    std::printf("  process isolation: supervised worker pool, heartbeat deadline 5s, "
                "seed watchdog %us%s\n",
                options.worker_timeout_s,
                options.kill_workers > 0 ? " — chaos worker kills armed" : "");
  }

  // Per-seed checkpoint ladders and event logs live in a temp-dir scratch
  // root, not the working directory. A failing seed's scratch is copied to
  // ./chaos-soak-failure/ (the CI artifact) before the root is removed.
  namespace fs = std::filesystem;
  std::error_code scratch_ec;
  fs::path scratch = fs::temp_directory_path(scratch_ec);
  if (scratch_ec) scratch = "chaos-soak-scratch";
  scratch /= "uart-soc-chaos-" + std::to_string(std::random_device{}());
  fs::create_directories(scratch, scratch_ec);
  const fs::path artifact_root = "chaos-soak-failure";

  fleet::FleetConfig config;
  config.jobs = options.jobs;
  config.isolation = options.isolation;
  config.fault_templates = options.fault_templates;
  config.seed_timeout_ms = options.worker_timeout_s * 1000u;
  config.chaos_kill_workers = options.kill_workers;
  fleet::FleetDriver driver(config);
  // The progress hook is serialized by the driver; lines arrive in
  // completion order (worker interleaving), so they carry the seed. The
  // deterministic per-seed story is the result vector, not the log.
  const bool verbose = seed_count <= 32;
  driver.set_progress([&](const fleet::RigJob& job, const fleet::RigOutcome& outcome,
                          std::uint64_t done, std::uint64_t total) {
    if (!outcome.ok) {
      std::printf("  seed %llu: FAILED (%s)\n",
                  static_cast<unsigned long long>(job.seed), outcome.failure.c_str());
    } else if (verbose) {
      std::printf("  seed %llu: ok\n", static_cast<unsigned long long>(job.seed));
    } else if (done % 64 == 0 || done == total) {
      std::printf("  %llu/%llu rigs complete\n", static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total));
    }
  });
  const std::vector<fleet::RigOutcome> outcomes = driver.run_range(
      1000, static_cast<std::uint64_t>(seed_count), [&](const fleet::RigJob& job) {
        fleet::RigOutcome outcome;
        outcome.failure =
            soak_one_seed(psm_uart, profile, link_machine, base, job, scratch, outcome);
        outcome.ok = outcome.failure.empty();
        return outcome;
      });

  // Failure forensics, in seed order (deterministic log tail).
  for (const fleet::RigOutcome& outcome : outcomes) {
    if (outcome.ok) continue;
    const fs::path seed_dir = scratch / ("seed-" + std::to_string(outcome.seed));
    const fs::path artifact_dir = artifact_root / ("seed-" + std::to_string(outcome.seed));
    std::error_code copy_ec;
    fs::remove_all(artifact_dir, copy_ec);
    fs::create_directories(artifact_dir, copy_ec);
    fs::copy(seed_dir, artifact_dir,
             fs::copy_options::recursive | fs::copy_options::overwrite_existing,
             copy_ec);
    std::ofstream(artifact_dir / "problem.txt") << outcome.failure << '\n';
    std::printf("  seed %llu: ladder + event logs preserved in %s\n",
                static_cast<unsigned long long>(outcome.seed),
                artifact_dir.string().c_str());
  }
  std::error_code cleanup_ec;
  fs::remove_all(scratch, cleanup_ec);

  const fleet::FleetReport report = fleet::FleetReport::aggregate(outcomes);
  if (report.rigs_failed != 0) {
    std::printf("chaos soak FAILED for %llu seed(s):",
                static_cast<unsigned long long>(report.rigs_failed));
    for (std::uint64_t seed : report.failed_seeds) {
      std::printf(" %llu", static_cast<unsigned long long>(seed));
    }
    std::printf("\n%s", report.str(&driver.stats()).c_str());
    return 1;
  }
  std::printf("chaos soak: all %d seeds recovered and replayed bit-identically\n",
              seed_count);
  std::printf("%s", report.str(&driver.stats()).c_str());
  return 0;
}

// --- Explicit-state verification demo -----------------------------------------
//
// The supervision pair under check: a Driver health machine (richer than
// the demo's — bounded retries before declaring failure) and a BusMonitor
// that must raise an alarm whenever the driver fails. The driver notifies
// the monitor by cross-posting "driver_failed" from its effects; the
// seeded bug omits that notification on exactly one path to Failed (retry
// exhaustion), so the system can silently die — which the invariant
// "monitor-alarm-on-failure" catches.

/// Holds the machines plus a late-bound slot for the monitor instance:
/// effects are authored before instances exist, so they post through the
/// slot filled in by run_check_properties.
struct CheckModels {
  statechart::StateMachine driver{"Driver"};
  statechart::StateMachine monitor{"BusMonitor"};
  statechart::Engine* monitor_instance = nullptr;
};

void build_check_models(CheckModels& models, bool seeded_bug) {
  auto set_retries = [](std::int64_t value) {
    return [value](statechart::ActionContext& context) {
      context.instance.set_variable("retries", value);
    };
  };
  auto notify_monitor = [&models](statechart::ActionContext&) {
    if (models.monitor_instance != nullptr) {
      models.monitor_instance->post(statechart::Event("driver_failed"));
    }
  };

  statechart::Region& top = models.driver.top();
  statechart::State& operational = top.add_state("Operational");
  statechart::State& degraded = top.add_state("Degraded");
  statechart::State& failed = top.add_state("Failed");
  top.add_transition(top.add_initial(), operational)
      .set_effect("retries := 0", set_retries(0));
  top.add_transition(operational, degraded)
      .set_trigger("bus_timeout")
      .set_effect("retries := 0", set_retries(0));
  top.add_transition(degraded, degraded)
      .set_trigger("bus_timeout")
      .set_internal(true)
      .set_guard("retries < 3",
                 [](const statechart::ActionContext& context) {
                   return context.instance.variable("retries") < 3;
                 })
      .set_effect("retries := retries + 1", [](statechart::ActionContext& context) {
        context.instance.set_variable("retries",
                                      context.instance.variable("retries") + 1);
      });
  statechart::Transition& exhausted = top.add_transition(degraded, failed)
                                          .set_trigger("bus_timeout")
                                          .set_guard("retries >= 3",
                                                     [](const statechart::ActionContext& context) {
                                                       return context.instance.variable(
                                                                  "retries") >= 3;
                                                     });
  // The seeded defect: retry exhaustion reaches Failed without telling the
  // monitor. Both hard-failure paths below notify in either variant.
  if (!seeded_bug) exhausted.set_effect("notify monitor", notify_monitor);
  top.add_transition(operational, failed)
      .set_trigger("bus_failed")
      .set_effect("notify monitor", notify_monitor);
  top.add_transition(degraded, failed)
      .set_trigger("bus_failed")
      .set_effect("notify monitor", notify_monitor);
  top.add_transition(degraded, operational)
      .set_trigger("bus_recovered")
      .set_effect("retries := 0", set_retries(0));
  // Failed is terminal: absorb further fault reports so they do not count
  // as unhandled errors.
  top.add_transition(failed, failed).set_trigger("bus_timeout").set_internal(true);
  top.add_transition(failed, failed).set_trigger("bus_failed").set_internal(true);

  statechart::Region& mtop = models.monitor.top();
  statechart::State& watching = mtop.add_state("Watching");
  statechart::State& alarmed = mtop.add_state("Alarmed");
  mtop.add_transition(mtop.add_initial(), watching);
  mtop.add_transition(watching, alarmed).set_trigger("driver_failed");
  mtop.add_transition(alarmed, alarmed).set_trigger("driver_failed").set_internal(true);
}

/// One full verification pass over the chosen model variant. For the buggy
/// variant the violation must reproduce end-to-end (replay + diagram);
/// returns 0 on the *expected* outcome of each variant.
int run_check_variant(bool seeded_bug, support::DiagnosticSink& sink) {
  CheckModels models;
  build_check_models(models, seeded_bug);
  EngineBox driver(models.driver);
  EngineBox monitor(models.monitor);
  models.monitor_instance = &monitor.engine();
  driver->set_trace_enabled(false);
  monitor->set_trace_enabled(false);
  driver->start();
  monitor->start();

  verify::Network network;
  network.add_instance("Driver", driver.engine());
  network.add_instance("Monitor", monitor.engine());
  network.add_choice("Driver", statechart::Event("bus_timeout"), /*is_error=*/true);
  network.add_choice("Driver", statechart::Event("bus_failed"), /*is_error=*/true);
  network.add_choice("Driver", statechart::Event("bus_recovered"));

  std::vector<verify::Property> properties;
  properties.push_back(verify::Property::invariant(
      "monitor-alarm-on-failure", [](const verify::PropertyContext& context) {
        const statechart::Engine* checked_driver = context.network.find("Driver");
        const statechart::Engine* checked_monitor = context.network.find("Monitor");
        return !(checked_driver->is_in("Failed") && checked_monitor->is_in("Watching"));
      }));
  properties.push_back(verify::Property::invariant(
      "retries-bounded", [](const verify::PropertyContext& context) {
        return context.network.find("Driver")->variable("retries") <= 3;
      }));
  properties.push_back(verify::Property::no_unhandled_errors());
  properties.push_back(verify::Property::deadlock_free(
      // Every reachable state keeps all alphabet entries enabled somewhere,
      // so plain reachability of a quiescent state is already a violation.
      [](const verify::PropertyContext&) { return false; }));

  const char* variant = seeded_bug ? "seeded-bug" : "fixed";
  std::printf("[%s] engines: driver=%s monitor=%s\n", variant,
              driver.compiled() ? "compiled" : "interpreted",
              monitor.compiled() ? "compiled" : "interpreted");
  verify::ExploreResult result = verify::explore(network, properties, {}, &sink);
  std::printf("[%s] exploration: %s; %s\n", variant,
              std::string(verify::to_string(result.termination)).c_str(),
              result.stats.str().c_str());

  if (!seeded_bug) {
    if (!result.verified()) {
      std::printf("[fixed] expected a clean exhaustive pass, got %zu violation(s)\n",
                  result.violations.size());
      for (const verify::Violation& violation : result.violations) {
        std::printf("  %s: %s\n", violation.property.c_str(), violation.message.c_str());
      }
      return 1;
    }
    std::printf("[fixed] all %zu properties verified over the full state space\n",
                properties.size());
    return 0;
  }

  if (result.violations.empty()) {
    std::printf("[seeded-bug] exploration missed the seeded violation\n");
    return 1;
  }
  const verify::Violation& violation = result.violations.front();
  std::printf("[seeded-bug] %s: %s\n", violation.property.c_str(),
              violation.message.c_str());
  std::printf("[seeded-bug] counterexample (%zu steps):\n", violation.path.size());
  for (const verify::EventChoice& choice : violation.path) {
    std::printf("  %s\n", network.label(choice).c_str());
  }

  verify::ReplayReport replay = verify::replay_counterexample(
      network, result.initial, violation, properties, sink);
  std::printf("[seeded-bug] %s\n", replay.str().c_str());
  if (!replay.ok()) return 1;

  std::unique_ptr<interaction::Interaction> scenario =
      verify::counterexample_interaction(network, violation);
  if (scenario == nullptr) {
    std::printf("[seeded-bug] counterexample did not convert to an interaction\n");
    return 1;
  }
  std::string diagram = codegen::to_plantuml_sequence(*scenario);
  std::printf("[seeded-bug] failing scenario as PlantUML:\n%s", diagram.c_str());
  if (diagram.find("@startuml") == std::string::npos ||
      diagram.find("Driver") == std::string::npos) {
    std::printf("[seeded-bug] PlantUML rendering looks wrong\n");
    return 1;
  }
  return 0;
}

/// --check-properties[=buggy|=fixed]. Exit status encodes the *outcome*:
/// "buggy" exits nonzero when the seeded bug is caught end-to-end (the
/// smoke test asserts failure), "fixed" exits zero when the repaired model
/// verifies clean, and the bare flag demands both in one run.
int run_check_properties(const char* mode) {
  support::DiagnosticSink sink;
  int status = 0;
  if (std::strcmp(mode, "buggy") == 0) {
    status = run_check_variant(/*seeded_bug=*/true, sink) == 0 ? 1 : 0;
  } else if (std::strcmp(mode, "fixed") == 0) {
    status = run_check_variant(/*seeded_bug=*/false, sink);
  } else {
    status = run_check_variant(/*seeded_bug=*/true, sink);
    if (status == 0) status = run_check_variant(/*seeded_bug=*/false, sink);
  }
  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    if (status == 0) status = 1;
  }
  return status;
}

/// The model-side flow shared by every mode: IP library -> PIM -> hardware
/// PSM -> codegen inputs. `verbose` prints the memory map and generated
/// RTL (the demo flow); the soak skips the prints.
struct ModelBundle {
  soc::IpLibrary library;
  uml::Model pim{"UartSoc"};
  std::optional<mda::MdaResult> hw;
  uml::Component* psm_uart = nullptr;
  std::optional<soc::SocProfile> psm_profile;
  std::uint64_t base = 0x40000000;
};

bool build_model_bundle(ModelBundle& bundle, bool verbose,
                        support::DiagnosticSink& sink) {
  // 1. PIM: reuse the Uart IP core from the library.
  bundle.library.add_standard_ips();
  uml::Package& ip = bundle.pim.add_package("ip");
  uml::Component* uart = bundle.library.instantiate("Uart", bundle.pim, ip, "Uart", sink);
  if (uart == nullptr) return false;
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(bundle.pim);
  soc::validate_soc(bundle.pim, *profile, sink);

  // 2. MDA: PIM -> hardware PSM (adds clk/rst/s_axi, Top, memory map).
  bundle.hw = mda::transform(bundle.pim, mda::PlatformDescription::hardware(), sink);
  if (verbose) {
    std::printf("memory map:\n");
    for (const mda::MemoryWindow& window : bundle.hw->memory_map) {
      std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                  static_cast<unsigned long long>(window.base),
                  static_cast<unsigned long long>(window.span));
    }
  }

  // 3. Code generation inputs from the PSM.
  bundle.psm_profile = soc::SocProfile::find(*bundle.hw->psm);
  bundle.psm_uart = dynamic_cast<uml::Component*>(
      uml::find_by_qualified_name(*bundle.hw->psm, "ip.Uart"));
  if (bundle.psm_uart == nullptr || !bundle.psm_profile.has_value()) {
    std::fputs("hardware PSM missing ip.Uart\n", stderr);
    return false;
  }
  if (!bundle.hw->memory_map.empty()) bundle.base = bundle.hw->memory_map[0].base;
  if (verbose) {
    std::string rtl =
        codegen::generate_rtl_module(*bundle.psm_uart, *bundle.psm_profile, sink);
    std::string sysc =
        codegen::generate_sim_module(*bundle.psm_uart, *bundle.psm_profile, sink);
    std::printf("\n--- generated RTL (%zu lines) ---\n%s",
                support::count_nonempty_lines(rtl), rtl.c_str());
    std::printf("\n--- generated SystemC-style C++ (%zu lines, not shown) ---\n",
                support::count_nonempty_lines(sysc));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int soak_seeds = 0;
  SoakOptions soak;  // Serial threads by default; --jobs=0 = one per core.
  // --engine and the soak knobs apply to whichever mode runs, so resolve
  // them before the mode flags (which dispatch immediately) regardless of
  // argument order.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0' || value < 0 || value > 4096) {
        std::fprintf(stderr, "invalid job count '%s' (use 0 for one per core)\n",
                     argv[i] + 7);
        return 2;
      }
      soak.jobs = static_cast<unsigned>(value);
      continue;
    }
    if (std::strncmp(argv[i], "--isolation=", 12) == 0) {
      const char* choice = argv[i] + 12;
      if (std::strcmp(choice, "thread") == 0) {
        soak.isolation = fleet::Isolation::kThread;
      } else if (std::strcmp(choice, "process") == 0) {
        soak.isolation = fleet::Isolation::kProcess;
      } else {
        std::fprintf(stderr, "unknown isolation '%s' (use thread|process)\n", choice);
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--worker-timeout=", 17) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 17, &end, 10);
      if (end == argv[i] + 17 || *end != '\0' || value < 1 || value > 86400) {
        std::fprintf(stderr, "invalid worker timeout '%s' (seconds)\n", argv[i] + 17);
        return 2;
      }
      soak.worker_timeout_s = static_cast<std::uint32_t>(value);
      continue;
    }
    if (std::strncmp(argv[i], "--kill-workers=", 15) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 15, &end, 10);
      if (end == argv[i] + 15 || *end != '\0' || value < 0 || value > 1024) {
        std::fprintf(stderr, "invalid kill count '%s'\n", argv[i] + 15);
        return 2;
      }
      soak.kill_workers = static_cast<std::uint32_t>(value);
      continue;
    }
    if (std::strncmp(argv[i], "--fault-templates=", 18) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 18, &end, 10);
      if (end == argv[i] + 18 || *end != '\0' || value < 1 ||
          value > static_cast<long>(kSoakTemplateCount)) {
        std::fprintf(stderr, "invalid template count '%s' (1..%u)\n", argv[i] + 18,
                     kSoakTemplateCount);
        return 2;
      }
      soak.fault_templates = static_cast<std::uint32_t>(value);
      continue;
    }
    if (std::strncmp(argv[i], "--engine=", 9) != 0) continue;
    const char* choice = argv[i] + 9;
    if (std::strcmp(choice, "compiled") == 0) {
      g_engine_choice = EngineChoice::kCompiled;
    } else if (std::strcmp(choice, "interpreted") == 0) {
      g_engine_choice = EngineChoice::kInterpreted;
    } else {
      std::fprintf(stderr, "unknown engine '%s' (use compiled|interpreted)\n", choice);
      return 2;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine=", 9) == 0 ||
        std::strncmp(argv[i], "--jobs=", 7) == 0 ||
        std::strncmp(argv[i], "--isolation=", 12) == 0 ||
        std::strncmp(argv[i], "--worker-timeout=", 17) == 0 ||
        std::strncmp(argv[i], "--kill-workers=", 15) == 0 ||
        std::strncmp(argv[i], "--fault-templates=", 18) == 0) {
      continue;
    }
    if (std::strcmp(argv[i], "--check-properties") == 0) return run_check_properties("");
    if (std::strncmp(argv[i], "--check-properties=", 19) == 0) {
      return run_check_properties(argv[i] + 19);
    }
    if (std::strcmp(argv[i], "--chaos-soak") == 0) {
      soak_seeds = 16;
      continue;
    }
    if (std::strncmp(argv[i], "--chaos-soak=", 13) == 0) {
      soak_seeds = std::atoi(argv[i] + 13);
      if (soak_seeds < 1) {
        std::fprintf(stderr, "invalid seed count '%s'\n", argv[i] + 13);
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
    return 2;
  }
  support::DiagnosticSink sink;
  ModelBundle bundle;
  if (!build_model_bundle(bundle, /*verbose=*/soak_seeds == 0, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  statechart::StateMachine link_machine("UartLink");
  build_link_machine(link_machine);
  if (soak_seeds > 0) {
    return run_chaos_soak(*bundle.psm_uart, *bundle.psm_profile, link_machine,
                          bundle.base, soak_seeds, soak);
  }

  // 4. Execute: HW model on the bus, ASL driver writing registers.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_sim(*bundle.psm_uart, *bundle.psm_profile, sink);
  const std::uint64_t base = bundle.base;
  uart_sim.map_onto(bus, base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
  driver.run(
      "bus_write(self.base + 12, 434);"       // divisor = 50MHz/115200.
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"   // tx_data = 'A'+i.
      "  i := i + 1;"
      "}");
  auto divisor = driver.run("return bus_read(self.base + 12);");

  std::printf("\nafter driver run: divisor=%lld tx_data=%llu (last byte)\n",
              static_cast<long long>(divisor.value().as_int()),
              static_cast<unsigned long long>(uart_sim.peek("tx_data")));
  std::printf("bus: %llu writes, %llu reads, sim time %s\n",
              static_cast<unsigned long long>(bus.writes()),
              static_cast<unsigned long long>(bus.reads()), kernel.now().str().c_str());

  // 5. Resilience: same driver, adversarial bus. A seeded fault plan drops
  // device responses (hung slave); the driver's BusMasterPort times out and
  // retries with backoff, a watchdog supervises overall progress, and a
  // DriverHealth statechart tracks error/recovery via the error channel.
  statechart::StateMachine health("DriverHealth");
  statechart::Region& htop = health.top();
  statechart::State& operational = htop.add_state("Operational");
  statechart::State& degraded = htop.add_state("Degraded");
  statechart::State& dead = htop.add_state("Failed");
  htop.add_transition(htop.add_initial(), operational);
  htop.add_transition(operational, degraded).set_trigger("bus_timeout");
  htop.add_transition(degraded, operational).set_trigger("bus_recovered");
  htop.add_transition(degraded, dead).set_trigger("bus_failed");

  ReplayRig reference(*bundle.psm_uart, *bundle.psm_profile, health, base, sink);
  reference.watchdog.arm();
  reference.driver.run(kPhase1);
  reference.driver.run(kPhase2);
  reference.watchdog.disarm();

  const sim::BusMasterPort::Stats& port_stats = reference.driver.port().stats();
  std::printf("\nfaulty rerun: %llu transactions, %llu timeouts, %llu retries, "
              "%llu recovered, %llu exhausted\n",
              static_cast<unsigned long long>(port_stats.transactions),
              static_cast<unsigned long long>(port_stats.timeouts),
              static_cast<unsigned long long>(port_stats.retries),
              static_cast<unsigned long long>(port_stats.recovered),
              static_cast<unsigned long long>(port_stats.exhausted));
  std::printf("fault plan: %s\n", reference.plan.str().c_str());
  std::printf("driver health: %s (errors raised %llu), watchdog trips %llu, "
              "divisor=%llu\n",
              reference.health.active_leaf_names().empty()
                  ? "?"
                  : reference.health.active_leaf_names().front().c_str(),
              static_cast<unsigned long long>(reference.health.errors_raised()),
              static_cast<unsigned long long>(reference.watchdog.trips()),
              static_cast<unsigned long long>(reference.uart.peek("divisor")));

  // 6. Checkpoint + deterministic replay. The reference above ran to the
  // end uninterrupted with its event recorder on. Now: an identical rig is
  // checkpointed between driver phases, the snapshot is restored into a
  // third freshly constructed rig (what a restarted process would do), and
  // that rig finishes the run. Final state and the complete event sequence
  // must match the reference exactly.
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  ReplayRig checkpointed(*bundle.psm_uart, *bundle.psm_profile, health, base, sink);
  checkpointed.watchdog.arm();
  checkpointed.driver.run(kPhase1);
  std::string snapshot;
  if (!replay::save_snapshot(checkpointed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  ReplayRig restored(*bundle.psm_uart, *bundle.psm_profile, health, base, sink);
  if (!replay::restore_snapshot(restored.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  restored.driver.run(kPhase2);
  restored.watchdog.disarm();

  const auto mismatch =
      sim::first_divergence(reference_log, restored.recorder.log(), &restored.kernel);
  const std::pair<const char*, std::pair<std::uint64_t, std::uint64_t>> state_checks[] = {
      {"sim-time", {reference.kernel.now().picoseconds(),
                    restored.kernel.now().picoseconds()}},
      {"events-processed",
       {reference.kernel.events_processed(), restored.kernel.events_processed()}},
      {"divisor", {reference.uart.peek("divisor"), restored.uart.peek("divisor")}},
      {"tx_data", {reference.uart.peek("tx_data"), restored.uart.peek("tx_data")}},
      {"port-timeouts",
       {port_stats.timeouts, restored.driver.port().stats().timeouts}},
      {"port-retries", {port_stats.retries, restored.driver.port().stats().retries}},
      {"health-errors",
       {reference.health.errors_raised(), restored.health.errors_raised()}},
  };
  bool state_matches =
      restored.health.active_leaf_names() == reference.health.active_leaf_names() &&
      restored.plan.str() == reference.plan.str();
  if (!state_matches) std::printf("replay state mismatch: health/fault-plan summary\n");
  for (const auto& [label, values] : state_checks) {
    if (values.first != values.second) {
      std::printf("replay state mismatch: %s reference=%llu restored=%llu\n", label,
                  static_cast<unsigned long long>(values.first),
                  static_cast<unsigned long long>(values.second));
      state_matches = false;
    }
  }
  std::printf("\ncheckpoint: %zu-byte snapshot at %s; restored run replayed %llu/%llu "
              "events\n",
              snapshot.size(), checkpointed.kernel.now().str().c_str(),
              static_cast<unsigned long long>(restored.recorder.total_events()),
              static_cast<unsigned long long>(reference.recorder.total_events()));
  if (mismatch.has_value() || !state_matches) {
    std::printf("replay MISMATCH: %s\n",
                mismatch.has_value() ? mismatch->str().c_str() : "final state differs");
    return 1;
  }
  std::printf("replay: restored run is bit-identical to the uninterrupted reference\n");

  // Divergence detection: restore the same snapshot again, switch the
  // recorder to verify mode against the reference log, and inject one event
  // the reference never had. The verifier must latch it.
  ReplayRig perturbed(*bundle.psm_uart, *bundle.psm_profile, health, base, sink);
  if (!replay::restore_snapshot(perturbed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  perturbed.recorder.begin_verify(reference_log, perturbed.recorder.total_events());
  perturbed.kernel.schedule(sim::SimTime::ns(1), perturbed.perturb);
  perturbed.driver.run(kPhase2);
  perturbed.watchdog.disarm();
  if (!perturbed.recorder.divergence().has_value()) {
    std::printf("replay verify FAILED to flag an injected divergence\n");
    return 1;
  }
  std::printf("divergence detection: %s\n",
              perturbed.recorder.divergence()->str().c_str());

  // Corruption rejection: a flipped byte must fail the checksum, loudly.
  std::string corrupted = snapshot;
  const std::size_t flip = corrupted.find("rng-state=\"");
  if (flip != std::string::npos) {
    char& digit = corrupted[flip + 11];
    digit = digit == '9' ? '1' : '9';
  }
  support::DiagnosticSink corrupt_sink;
  ReplayRig victim(*bundle.psm_uart, *bundle.psm_profile, health, base, sink);
  if (replay::restore_snapshot(victim.targets(), corrupted, corrupt_sink)) {
    std::printf("corrupted snapshot was NOT rejected\n");
    return 1;
  }
  std::printf("corruption rejection: %s\n",
              corrupt_sink.diagnostics().empty()
                  ? "?"
                  : corrupt_sink.diagnostics().front().str().c_str());

  // 7. Supervision demo: breaker-guarded DMA with PIO fallback, watchdog
  // trip -> supervised warm restart.
  if (int status = run_degraded_demo(*bundle.psm_uart, *bundle.psm_profile, link_machine,
                                     base, sink);
      status != 0) {
    return status;
  }

  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
