// UART SoC flow: instantiate the Uart IP from the library, run the MDA
// hardware mapping, generate RTL + SystemC-style C++, then execute the
// design: a runtime hardware model mapped on the simulated bus, driven by
// ASL driver code (exactly what the software mapping generates).
//
//   $ ./example_uart_soc
#include <cstdio>

#include "codegen/hwmodel.hpp"
#include "codegen/rtl.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"

using namespace umlsoc;

int main() {
  support::DiagnosticSink sink;

  // 1. PIM: reuse the Uart IP core from the library.
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("UartSoc");
  uml::Package& ip = pim.add_package("ip");
  uml::Component* uart = library.instantiate("Uart", pim, ip, "Uart", sink);
  if (uart == nullptr) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(pim);
  soc::validate_soc(pim, *profile, sink);

  // 2. MDA: PIM -> hardware PSM (adds clk/rst/s_axi, Top, memory map).
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);
  std::printf("memory map:\n");
  for (const mda::MemoryWindow& window : hw.memory_map) {
    std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                static_cast<unsigned long long>(window.base),
                static_cast<unsigned long long>(window.span));
  }

  // 3. Code generation from the PSM.
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*hw.psm);
  auto* psm_uart =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
  if (psm_uart == nullptr || !psm_profile.has_value()) {
    std::fputs("hardware PSM missing ip.Uart\n", stderr);
    return 1;
  }
  std::string rtl = codegen::generate_rtl_module(*psm_uart, *psm_profile, sink);
  std::string sysc = codegen::generate_sim_module(*psm_uart, *psm_profile, sink);
  std::printf("\n--- generated RTL (%zu lines) ---\n%s",
              support::count_nonempty_lines(rtl), rtl.c_str());
  std::printf("\n--- generated SystemC-style C++ (%zu lines, not shown) ---\n",
              support::count_nonempty_lines(sysc));

  // 4. Execute: HW model on the bus, ASL driver writing registers.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_sim(*psm_uart, *psm_profile, sink);
  const std::uint64_t base = hw.memory_map.empty() ? 0x40000000 : hw.memory_map[0].base;
  uart_sim.map_onto(bus, base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
  driver.run(
      "bus_write(self.base + 12, 434);"       // divisor = 50MHz/115200.
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"   // tx_data = 'A'+i.
      "  i := i + 1;"
      "}");
  auto divisor = driver.run("return bus_read(self.base + 12);");

  std::printf("\nafter driver run: divisor=%lld tx_data=%llu (last byte)\n",
              static_cast<long long>(divisor.value().as_int()),
              static_cast<unsigned long long>(uart_sim.peek("tx_data")));
  std::printf("bus: %llu writes, %llu reads, sim time %s\n",
              static_cast<unsigned long long>(bus.writes()),
              static_cast<unsigned long long>(bus.reads()), kernel.now().str().c_str());

  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
