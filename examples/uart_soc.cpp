// UART SoC flow: instantiate the Uart IP from the library, run the MDA
// hardware mapping, generate RTL + SystemC-style C++, then execute the
// design: a runtime hardware model mapped on the simulated bus, driven by
// ASL driver code (exactly what the software mapping generates).
//
// Then re-runs the driver under an adversarial bus (seeded fault plan
// dropping responses) to show the resilience layer: timeouts retry with
// backoff, a watchdog supervises progress, and the driver's health
// statechart walks through its declared error/recovery states.
//
// Finally demonstrates checkpoint/restore and deterministic replay: the
// adversarial run is checkpointed mid-flight, restored into a freshly
// constructed setup (as a restarted process would), continued to the end,
// and shown to be bit-identical to an uninterrupted reference — final
// state and complete event sequence. A deliberately perturbed restore and
// a corrupted snapshot show divergence detection and rejection. Any
// mismatch exits nonzero, so CI runs this binary as the snapshot smoke
// test.
//
// With --check-properties the binary instead runs the explicit-state
// verification engine on the driver-supervision statecharts: a seeded
// notification bug is found by exhaustive exploration, its counterexample
// is replayed through the real interpreter under the replay verifier and
// rendered as a PlantUML sequence diagram, and the fixed model verifies
// clean. `--check-properties=buggy` exits nonzero exactly when the bug is
// caught end-to-end; `--check-properties=fixed` exits zero exactly when
// the fixed model is exhaustively verified — CI runs both as the
// verification smoke test.
//
//   $ ./example_uart_soc
//   $ ./example_uart_soc --check-properties
#include <cstdio>
#include <cstring>

#include "codegen/hwmodel.hpp"
#include "codegen/plantuml.hpp"
#include "codegen/rtl.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "replay/snapshot.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"
#include "verify/counterexample.hpp"
#include "verify/explore.hpp"

using namespace umlsoc;

namespace {

/// One complete adversarial setup — kernel, faulty bus, UART model, health
/// statechart instance, supervised driver, watchdog, event recorder. Every
/// instance runs the identical construction sequence, so ProcessIds and
/// statechart indices are stable across instances: exactly the property
/// snapshot restore relies on ("same setup, different process").
struct ReplayRig {
  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  codegen::HwModuleSim uart;
  sim::FaultPlan plan;
  statechart::StateMachineInstance health;
  codegen::BusMasterContext driver;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::ProcessId perturb = sim::kInvalidProcess;

  static sim::RetryPolicy retry_policy() {
    sim::RetryPolicy policy;
    policy.timeout = sim::SimTime::ns(40);
    policy.max_attempts = 4;
    return policy;
  }

  ReplayRig(const uml::Component& psm_uart, const soc::SocProfile& profile,
            const statechart::StateMachine& health_machine, std::uint64_t base,
            support::DiagnosticSink& sink)
      : bus(kernel, "axi-faulty", sim::SimTime::ns(8)),
        uart(psm_uart, profile, sink),
        plan(/*seed=*/42),
        health(health_machine),
        driver(kernel, bus, retry_policy()),
        watchdog(kernel, "driver-watchdog", sim::SimTime::us(10)) {
    uart.map_onto(bus, base);
    sim::FaultPlan::SiteConfig adversarial;
    adversarial.drop_rate = 0.25;  // 1 in 4 writes hangs: no response, ever.
    plan.configure(sim::FaultSite::kBusWrite, adversarial);
    bus.install_fault_plan(&plan);
    health.set_trace_enabled(false);
    health.start();
    driver.set_error_sink(&health);
    driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
    perturb = kernel.register_process([] {}, "demo.perturb");
    kernel.set_recorder(&recorder);
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"health", &health});
    out.buses.push_back({"axi-faulty", &bus});
    out.watchdogs.push_back({"driver-watchdog", &watchdog});
    out.banks.push_back(
        {"uart", [this] { return uart.capture_values(); },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           return uart.restore_values(values, bank_sink);
         }});
    out.banks.push_back(
        {"port",
         [this] {
           const sim::BusMasterPort::Stats& stats = driver.port().stats();
           return std::vector<std::pair<std::string, std::uint64_t>>{
               {"transactions", stats.transactions}, {"timeouts", stats.timeouts},
               {"retries", stats.retries},           {"exhausted", stats.exhausted},
               {"recovered", stats.recovered},       {"late-completions",
                                                      stats.late_completions}};
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           sim::BusMasterPort::Stats stats;
           for (const auto& [key, value] : values) {
             if (key == "transactions") {
               stats.transactions = value;
             } else if (key == "timeouts") {
               stats.timeouts = value;
             } else if (key == "retries") {
               stats.retries = value;
             } else if (key == "exhausted") {
               stats.exhausted = value;
             } else if (key == "recovered") {
               stats.recovered = value;
             } else if (key == "late-completions") {
               stats.late_completions = value;
             } else {
               bank_sink.error("port", "unknown counter '" + key + "'");
               return false;
             }
           }
           driver.port().restore_checkpoint(stats);
           return true;
         }});
    return out;
  }
};

constexpr const char* kPhase1 = "bus_write(self.base + 12, 434);";
constexpr const char* kPhase2 =
    "i := 0;"
    "while (i < 4) {"
    "  bus_write(self.base + 0, 65 + i);"
    "  i := i + 1;"
    "}";

// --- Explicit-state verification demo -----------------------------------------
//
// The supervision pair under check: a Driver health machine (richer than
// the demo's — bounded retries before declaring failure) and a BusMonitor
// that must raise an alarm whenever the driver fails. The driver notifies
// the monitor by cross-posting "driver_failed" from its effects; the
// seeded bug omits that notification on exactly one path to Failed (retry
// exhaustion), so the system can silently die — which the invariant
// "monitor-alarm-on-failure" catches.

/// Holds the machines plus a late-bound slot for the monitor instance:
/// effects are authored before instances exist, so they post through the
/// slot filled in by run_check_properties.
struct CheckModels {
  statechart::StateMachine driver{"Driver"};
  statechart::StateMachine monitor{"BusMonitor"};
  statechart::StateMachineInstance* monitor_instance = nullptr;
};

void build_check_models(CheckModels& models, bool seeded_bug) {
  auto set_retries = [](std::int64_t value) {
    return [value](statechart::ActionContext& context) {
      context.instance.set_variable("retries", value);
    };
  };
  auto notify_monitor = [&models](statechart::ActionContext&) {
    if (models.monitor_instance != nullptr) {
      models.monitor_instance->post(statechart::Event("driver_failed"));
    }
  };

  statechart::Region& top = models.driver.top();
  statechart::State& operational = top.add_state("Operational");
  statechart::State& degraded = top.add_state("Degraded");
  statechart::State& failed = top.add_state("Failed");
  top.add_transition(top.add_initial(), operational)
      .set_effect("retries := 0", set_retries(0));
  top.add_transition(operational, degraded)
      .set_trigger("bus_timeout")
      .set_effect("retries := 0", set_retries(0));
  top.add_transition(degraded, degraded)
      .set_trigger("bus_timeout")
      .set_internal(true)
      .set_guard("retries < 3",
                 [](const statechart::ActionContext& context) {
                   return context.instance.variable("retries") < 3;
                 })
      .set_effect("retries := retries + 1", [](statechart::ActionContext& context) {
        context.instance.set_variable("retries",
                                      context.instance.variable("retries") + 1);
      });
  statechart::Transition& exhausted = top.add_transition(degraded, failed)
                                          .set_trigger("bus_timeout")
                                          .set_guard("retries >= 3",
                                                     [](const statechart::ActionContext& context) {
                                                       return context.instance.variable(
                                                                  "retries") >= 3;
                                                     });
  // The seeded defect: retry exhaustion reaches Failed without telling the
  // monitor. Both hard-failure paths below notify in either variant.
  if (!seeded_bug) exhausted.set_effect("notify monitor", notify_monitor);
  top.add_transition(operational, failed)
      .set_trigger("bus_failed")
      .set_effect("notify monitor", notify_monitor);
  top.add_transition(degraded, failed)
      .set_trigger("bus_failed")
      .set_effect("notify monitor", notify_monitor);
  top.add_transition(degraded, operational)
      .set_trigger("bus_recovered")
      .set_effect("retries := 0", set_retries(0));
  // Failed is terminal: absorb further fault reports so they do not count
  // as unhandled errors.
  top.add_transition(failed, failed).set_trigger("bus_timeout").set_internal(true);
  top.add_transition(failed, failed).set_trigger("bus_failed").set_internal(true);

  statechart::Region& mtop = models.monitor.top();
  statechart::State& watching = mtop.add_state("Watching");
  statechart::State& alarmed = mtop.add_state("Alarmed");
  mtop.add_transition(mtop.add_initial(), watching);
  mtop.add_transition(watching, alarmed).set_trigger("driver_failed");
  mtop.add_transition(alarmed, alarmed).set_trigger("driver_failed").set_internal(true);
}

/// One full verification pass over the chosen model variant. For the buggy
/// variant the violation must reproduce end-to-end (replay + diagram);
/// returns 0 on the *expected* outcome of each variant.
int run_check_variant(bool seeded_bug, support::DiagnosticSink& sink) {
  CheckModels models;
  build_check_models(models, seeded_bug);
  statechart::StateMachineInstance driver(models.driver);
  statechart::StateMachineInstance monitor(models.monitor);
  models.monitor_instance = &monitor;
  driver.set_trace_enabled(false);
  monitor.set_trace_enabled(false);
  driver.start();
  monitor.start();

  verify::Network network;
  network.add_instance("Driver", driver);
  network.add_instance("Monitor", monitor);
  network.add_choice("Driver", statechart::Event("bus_timeout"), /*is_error=*/true);
  network.add_choice("Driver", statechart::Event("bus_failed"), /*is_error=*/true);
  network.add_choice("Driver", statechart::Event("bus_recovered"));

  std::vector<verify::Property> properties;
  properties.push_back(verify::Property::invariant(
      "monitor-alarm-on-failure", [](const verify::PropertyContext& context) {
        const statechart::StateMachineInstance* checked_driver =
            context.network.find("Driver");
        const statechart::StateMachineInstance* checked_monitor =
            context.network.find("Monitor");
        return !(checked_driver->is_in("Failed") && checked_monitor->is_in("Watching"));
      }));
  properties.push_back(verify::Property::invariant(
      "retries-bounded", [](const verify::PropertyContext& context) {
        return context.network.find("Driver")->variable("retries") <= 3;
      }));
  properties.push_back(verify::Property::no_unhandled_errors());
  properties.push_back(verify::Property::deadlock_free(
      // Every reachable state keeps all alphabet entries enabled somewhere,
      // so plain reachability of a quiescent state is already a violation.
      [](const verify::PropertyContext&) { return false; }));

  const char* variant = seeded_bug ? "seeded-bug" : "fixed";
  verify::ExploreResult result = verify::explore(network, properties, {}, &sink);
  std::printf("[%s] exploration: %s; %s\n", variant,
              std::string(verify::to_string(result.termination)).c_str(),
              result.stats.str().c_str());

  if (!seeded_bug) {
    if (!result.verified()) {
      std::printf("[fixed] expected a clean exhaustive pass, got %zu violation(s)\n",
                  result.violations.size());
      for (const verify::Violation& violation : result.violations) {
        std::printf("  %s: %s\n", violation.property.c_str(), violation.message.c_str());
      }
      return 1;
    }
    std::printf("[fixed] all %zu properties verified over the full state space\n",
                properties.size());
    return 0;
  }

  if (result.violations.empty()) {
    std::printf("[seeded-bug] exploration missed the seeded violation\n");
    return 1;
  }
  const verify::Violation& violation = result.violations.front();
  std::printf("[seeded-bug] %s: %s\n", violation.property.c_str(),
              violation.message.c_str());
  std::printf("[seeded-bug] counterexample (%zu steps):\n", violation.path.size());
  for (const verify::EventChoice& choice : violation.path) {
    std::printf("  %s\n", network.label(choice).c_str());
  }

  verify::ReplayReport replay = verify::replay_counterexample(
      network, result.initial, violation, properties, sink);
  std::printf("[seeded-bug] %s\n", replay.str().c_str());
  if (!replay.ok()) return 1;

  std::unique_ptr<interaction::Interaction> scenario =
      verify::counterexample_interaction(network, violation);
  if (scenario == nullptr) {
    std::printf("[seeded-bug] counterexample did not convert to an interaction\n");
    return 1;
  }
  std::string diagram = codegen::to_plantuml_sequence(*scenario);
  std::printf("[seeded-bug] failing scenario as PlantUML:\n%s", diagram.c_str());
  if (diagram.find("@startuml") == std::string::npos ||
      diagram.find("Driver") == std::string::npos) {
    std::printf("[seeded-bug] PlantUML rendering looks wrong\n");
    return 1;
  }
  return 0;
}

/// --check-properties[=buggy|=fixed]. Exit status encodes the *outcome*:
/// "buggy" exits nonzero when the seeded bug is caught end-to-end (the
/// smoke test asserts failure), "fixed" exits zero when the repaired model
/// verifies clean, and the bare flag demands both in one run.
int run_check_properties(const char* mode) {
  support::DiagnosticSink sink;
  int status = 0;
  if (std::strcmp(mode, "buggy") == 0) {
    status = run_check_variant(/*seeded_bug=*/true, sink) == 0 ? 1 : 0;
  } else if (std::strcmp(mode, "fixed") == 0) {
    status = run_check_variant(/*seeded_bug=*/false, sink);
  } else {
    status = run_check_variant(/*seeded_bug=*/true, sink);
    if (status == 0) status = run_check_variant(/*seeded_bug=*/false, sink);
  }
  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    if (status == 0) status = 1;
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-properties") == 0) return run_check_properties("");
    if (std::strncmp(argv[i], "--check-properties=", 19) == 0) {
      return run_check_properties(argv[i] + 19);
    }
    std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
    return 2;
  }
  support::DiagnosticSink sink;

  // 1. PIM: reuse the Uart IP core from the library.
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("UartSoc");
  uml::Package& ip = pim.add_package("ip");
  uml::Component* uart = library.instantiate("Uart", pim, ip, "Uart", sink);
  if (uart == nullptr) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(pim);
  soc::validate_soc(pim, *profile, sink);

  // 2. MDA: PIM -> hardware PSM (adds clk/rst/s_axi, Top, memory map).
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);
  std::printf("memory map:\n");
  for (const mda::MemoryWindow& window : hw.memory_map) {
    std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                static_cast<unsigned long long>(window.base),
                static_cast<unsigned long long>(window.span));
  }

  // 3. Code generation from the PSM.
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*hw.psm);
  auto* psm_uart =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
  if (psm_uart == nullptr || !psm_profile.has_value()) {
    std::fputs("hardware PSM missing ip.Uart\n", stderr);
    return 1;
  }
  std::string rtl = codegen::generate_rtl_module(*psm_uart, *psm_profile, sink);
  std::string sysc = codegen::generate_sim_module(*psm_uart, *psm_profile, sink);
  std::printf("\n--- generated RTL (%zu lines) ---\n%s",
              support::count_nonempty_lines(rtl), rtl.c_str());
  std::printf("\n--- generated SystemC-style C++ (%zu lines, not shown) ---\n",
              support::count_nonempty_lines(sysc));

  // 4. Execute: HW model on the bus, ASL driver writing registers.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_sim(*psm_uart, *psm_profile, sink);
  const std::uint64_t base = hw.memory_map.empty() ? 0x40000000 : hw.memory_map[0].base;
  uart_sim.map_onto(bus, base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
  driver.run(
      "bus_write(self.base + 12, 434);"       // divisor = 50MHz/115200.
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"   // tx_data = 'A'+i.
      "  i := i + 1;"
      "}");
  auto divisor = driver.run("return bus_read(self.base + 12);");

  std::printf("\nafter driver run: divisor=%lld tx_data=%llu (last byte)\n",
              static_cast<long long>(divisor.value().as_int()),
              static_cast<unsigned long long>(uart_sim.peek("tx_data")));
  std::printf("bus: %llu writes, %llu reads, sim time %s\n",
              static_cast<unsigned long long>(bus.writes()),
              static_cast<unsigned long long>(bus.reads()), kernel.now().str().c_str());

  // 5. Resilience: same driver, adversarial bus. A seeded fault plan drops
  // device responses (hung slave); the driver's BusMasterPort times out and
  // retries with backoff, a watchdog supervises overall progress, and a
  // DriverHealth statechart tracks error/recovery via the error channel.
  statechart::StateMachine health("DriverHealth");
  statechart::Region& htop = health.top();
  statechart::State& operational = htop.add_state("Operational");
  statechart::State& degraded = htop.add_state("Degraded");
  statechart::State& dead = htop.add_state("Failed");
  htop.add_transition(htop.add_initial(), operational);
  htop.add_transition(operational, degraded).set_trigger("bus_timeout");
  htop.add_transition(degraded, operational).set_trigger("bus_recovered");
  htop.add_transition(degraded, dead).set_trigger("bus_failed");

  ReplayRig reference(*psm_uart, *psm_profile, health, base, sink);
  reference.watchdog.arm();
  reference.driver.run(kPhase1);
  reference.driver.run(kPhase2);
  reference.watchdog.disarm();

  const sim::BusMasterPort::Stats& port_stats = reference.driver.port().stats();
  std::printf("\nfaulty rerun: %llu transactions, %llu timeouts, %llu retries, "
              "%llu recovered, %llu exhausted\n",
              static_cast<unsigned long long>(port_stats.transactions),
              static_cast<unsigned long long>(port_stats.timeouts),
              static_cast<unsigned long long>(port_stats.retries),
              static_cast<unsigned long long>(port_stats.recovered),
              static_cast<unsigned long long>(port_stats.exhausted));
  std::printf("fault plan: %s\n", reference.plan.str().c_str());
  std::printf("driver health: %s (errors raised %llu), watchdog trips %llu, "
              "divisor=%llu\n",
              reference.health.active_leaf_names().empty()
                  ? "?"
                  : reference.health.active_leaf_names().front().c_str(),
              static_cast<unsigned long long>(reference.health.errors_raised()),
              static_cast<unsigned long long>(reference.watchdog.trips()),
              static_cast<unsigned long long>(reference.uart.peek("divisor")));

  // 6. Checkpoint + deterministic replay. The reference above ran to the
  // end uninterrupted with its event recorder on. Now: an identical rig is
  // checkpointed between driver phases, the snapshot is restored into a
  // third freshly constructed rig (what a restarted process would do), and
  // that rig finishes the run. Final state and the complete event sequence
  // must match the reference exactly.
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  ReplayRig checkpointed(*psm_uart, *psm_profile, health, base, sink);
  checkpointed.watchdog.arm();
  checkpointed.driver.run(kPhase1);
  std::string snapshot;
  if (!replay::save_snapshot(checkpointed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  ReplayRig restored(*psm_uart, *psm_profile, health, base, sink);
  if (!replay::restore_snapshot(restored.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  restored.driver.run(kPhase2);
  restored.watchdog.disarm();

  const auto mismatch =
      sim::first_divergence(reference_log, restored.recorder.log(), &restored.kernel);
  const std::pair<const char*, std::pair<std::uint64_t, std::uint64_t>> state_checks[] = {
      {"sim-time", {reference.kernel.now().picoseconds(),
                    restored.kernel.now().picoseconds()}},
      {"events-processed",
       {reference.kernel.events_processed(), restored.kernel.events_processed()}},
      {"divisor", {reference.uart.peek("divisor"), restored.uart.peek("divisor")}},
      {"tx_data", {reference.uart.peek("tx_data"), restored.uart.peek("tx_data")}},
      {"port-timeouts",
       {port_stats.timeouts, restored.driver.port().stats().timeouts}},
      {"port-retries", {port_stats.retries, restored.driver.port().stats().retries}},
      {"health-errors",
       {reference.health.errors_raised(), restored.health.errors_raised()}},
  };
  bool state_matches =
      restored.health.active_leaf_names() == reference.health.active_leaf_names() &&
      restored.plan.str() == reference.plan.str();
  if (!state_matches) std::printf("replay state mismatch: health/fault-plan summary\n");
  for (const auto& [label, values] : state_checks) {
    if (values.first != values.second) {
      std::printf("replay state mismatch: %s reference=%llu restored=%llu\n", label,
                  static_cast<unsigned long long>(values.first),
                  static_cast<unsigned long long>(values.second));
      state_matches = false;
    }
  }
  std::printf("\ncheckpoint: %zu-byte snapshot at %s; restored run replayed %llu/%llu "
              "events\n",
              snapshot.size(), checkpointed.kernel.now().str().c_str(),
              static_cast<unsigned long long>(restored.recorder.total_events()),
              static_cast<unsigned long long>(reference.recorder.total_events()));
  if (mismatch.has_value() || !state_matches) {
    std::printf("replay MISMATCH: %s\n",
                mismatch.has_value() ? mismatch->str().c_str() : "final state differs");
    return 1;
  }
  std::printf("replay: restored run is bit-identical to the uninterrupted reference\n");

  // Divergence detection: restore the same snapshot again, switch the
  // recorder to verify mode against the reference log, and inject one event
  // the reference never had. The verifier must latch it.
  ReplayRig perturbed(*psm_uart, *psm_profile, health, base, sink);
  if (!replay::restore_snapshot(perturbed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  perturbed.recorder.begin_verify(reference_log, perturbed.recorder.total_events());
  perturbed.kernel.schedule(sim::SimTime::ns(1), perturbed.perturb);
  perturbed.driver.run(kPhase2);
  perturbed.watchdog.disarm();
  if (!perturbed.recorder.divergence().has_value()) {
    std::printf("replay verify FAILED to flag an injected divergence\n");
    return 1;
  }
  std::printf("divergence detection: %s\n",
              perturbed.recorder.divergence()->str().c_str());

  // Corruption rejection: a flipped byte must fail the checksum, loudly.
  std::string corrupted = snapshot;
  const std::size_t flip = corrupted.find("rng-state=\"");
  if (flip != std::string::npos) {
    char& digit = corrupted[flip + 11];
    digit = digit == '9' ? '1' : '9';
  }
  support::DiagnosticSink corrupt_sink;
  ReplayRig victim(*psm_uart, *psm_profile, health, base, sink);
  if (replay::restore_snapshot(victim.targets(), corrupted, corrupt_sink)) {
    std::printf("corrupted snapshot was NOT rejected\n");
    return 1;
  }
  std::printf("corruption rejection: %s\n",
              corrupt_sink.diagnostics().empty()
                  ? "?"
                  : corrupt_sink.diagnostics().front().str().c_str());

  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
