// UART SoC flow: instantiate the Uart IP from the library, run the MDA
// hardware mapping, generate RTL + SystemC-style C++, then execute the
// design: a runtime hardware model mapped on the simulated bus, driven by
// ASL driver code (exactly what the software mapping generates).
//
// Finally, re-runs the driver under an adversarial bus (seeded fault plan
// dropping responses) to show the resilience layer: timeouts retry with
// backoff, a watchdog supervises progress, and the driver's health
// statechart walks through its declared error/recovery states.
//
//   $ ./example_uart_soc
#include <cstdio>

#include "codegen/hwmodel.hpp"
#include "codegen/rtl.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "sim/fault.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"

using namespace umlsoc;

int main() {
  support::DiagnosticSink sink;

  // 1. PIM: reuse the Uart IP core from the library.
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("UartSoc");
  uml::Package& ip = pim.add_package("ip");
  uml::Component* uart = library.instantiate("Uart", pim, ip, "Uart", sink);
  if (uart == nullptr) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(pim);
  soc::validate_soc(pim, *profile, sink);

  // 2. MDA: PIM -> hardware PSM (adds clk/rst/s_axi, Top, memory map).
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);
  std::printf("memory map:\n");
  for (const mda::MemoryWindow& window : hw.memory_map) {
    std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                static_cast<unsigned long long>(window.base),
                static_cast<unsigned long long>(window.span));
  }

  // 3. Code generation from the PSM.
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*hw.psm);
  auto* psm_uart =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
  if (psm_uart == nullptr || !psm_profile.has_value()) {
    std::fputs("hardware PSM missing ip.Uart\n", stderr);
    return 1;
  }
  std::string rtl = codegen::generate_rtl_module(*psm_uart, *psm_profile, sink);
  std::string sysc = codegen::generate_sim_module(*psm_uart, *psm_profile, sink);
  std::printf("\n--- generated RTL (%zu lines) ---\n%s",
              support::count_nonempty_lines(rtl), rtl.c_str());
  std::printf("\n--- generated SystemC-style C++ (%zu lines, not shown) ---\n",
              support::count_nonempty_lines(sysc));

  // 4. Execute: HW model on the bus, ASL driver writing registers.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_sim(*psm_uart, *psm_profile, sink);
  const std::uint64_t base = hw.memory_map.empty() ? 0x40000000 : hw.memory_map[0].base;
  uart_sim.map_onto(bus, base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
  driver.run(
      "bus_write(self.base + 12, 434);"       // divisor = 50MHz/115200.
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"   // tx_data = 'A'+i.
      "  i := i + 1;"
      "}");
  auto divisor = driver.run("return bus_read(self.base + 12);");

  std::printf("\nafter driver run: divisor=%lld tx_data=%llu (last byte)\n",
              static_cast<long long>(divisor.value().as_int()),
              static_cast<unsigned long long>(uart_sim.peek("tx_data")));
  std::printf("bus: %llu writes, %llu reads, sim time %s\n",
              static_cast<unsigned long long>(bus.writes()),
              static_cast<unsigned long long>(bus.reads()), kernel.now().str().c_str());

  // 5. Resilience: same driver, adversarial bus. A seeded fault plan drops
  // device responses (hung slave); the driver's BusMasterPort times out and
  // retries with backoff, a watchdog supervises overall progress, and a
  // DriverHealth statechart tracks error/recovery via the error channel.
  sim::Kernel fkernel;
  sim::MemoryMappedBus fbus(fkernel, "axi-faulty", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_rt(*psm_uart, *psm_profile, sink);
  uart_rt.map_onto(fbus, base);

  sim::FaultPlan plan(/*seed=*/42);
  sim::FaultPlan::SiteConfig adversarial;
  adversarial.drop_rate = 0.25;  // 1 in 4 writes hangs: no response, ever.
  plan.configure(sim::FaultSite::kBusWrite, adversarial);
  fbus.install_fault_plan(&plan);

  statechart::StateMachine health("DriverHealth");
  statechart::Region& htop = health.top();
  statechart::State& operational = htop.add_state("Operational");
  statechart::State& degraded = htop.add_state("Degraded");
  statechart::State& dead = htop.add_state("Failed");
  htop.add_transition(htop.add_initial(), operational);
  htop.add_transition(operational, degraded).set_trigger("bus_timeout");
  htop.add_transition(degraded, operational).set_trigger("bus_recovered");
  htop.add_transition(degraded, dead).set_trigger("bus_failed");
  statechart::StateMachineInstance health_instance(health);
  health_instance.set_trace_enabled(false);
  health_instance.start();

  sim::RetryPolicy policy;
  policy.timeout = sim::SimTime::ns(40);
  policy.max_attempts = 4;
  codegen::BusMasterContext fdriver(fkernel, fbus, policy);
  fdriver.set_error_sink(&health_instance);
  fdriver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});

  sim::Watchdog watchdog(fkernel, "driver-watchdog", sim::SimTime::us(10));
  watchdog.arm();
  fdriver.run(
      "bus_write(self.base + 12, 434);"
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"
      "  i := i + 1;"
      "}");
  watchdog.disarm();

  const sim::BusMasterPort::Stats& port_stats = fdriver.port().stats();
  std::printf("\nfaulty rerun: %llu transactions, %llu timeouts, %llu retries, "
              "%llu recovered, %llu exhausted\n",
              static_cast<unsigned long long>(port_stats.transactions),
              static_cast<unsigned long long>(port_stats.timeouts),
              static_cast<unsigned long long>(port_stats.retries),
              static_cast<unsigned long long>(port_stats.recovered),
              static_cast<unsigned long long>(port_stats.exhausted));
  std::printf("fault plan: %s\n", plan.str().c_str());
  std::printf("driver health: %s (errors raised %llu), watchdog trips %llu, "
              "divisor=%llu\n",
              health_instance.active_leaf_names().empty()
                  ? "?"
                  : health_instance.active_leaf_names().front().c_str(),
              static_cast<unsigned long long>(health_instance.errors_raised()),
              static_cast<unsigned long long>(watchdog.trips()),
              static_cast<unsigned long long>(uart_rt.peek("divisor")));

  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
