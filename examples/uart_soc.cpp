// UART SoC flow: instantiate the Uart IP from the library, run the MDA
// hardware mapping, generate RTL + SystemC-style C++, then execute the
// design: a runtime hardware model mapped on the simulated bus, driven by
// ASL driver code (exactly what the software mapping generates).
//
// Then re-runs the driver under an adversarial bus (seeded fault plan
// dropping responses) to show the resilience layer: timeouts retry with
// backoff, a watchdog supervises progress, and the driver's health
// statechart walks through its declared error/recovery states.
//
// Finally demonstrates checkpoint/restore and deterministic replay: the
// adversarial run is checkpointed mid-flight, restored into a freshly
// constructed setup (as a restarted process would), continued to the end,
// and shown to be bit-identical to an uninterrupted reference — final
// state and complete event sequence. A deliberately perturbed restore and
// a corrupted snapshot show divergence detection and rejection. Any
// mismatch exits nonzero, so CI runs this binary as the snapshot smoke
// test.
//
//   $ ./example_uart_soc
#include <cstdio>

#include "codegen/hwmodel.hpp"
#include "codegen/rtl.hpp"
#include "codegen/swruntime.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "replay/snapshot.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"

using namespace umlsoc;

namespace {

/// One complete adversarial setup — kernel, faulty bus, UART model, health
/// statechart instance, supervised driver, watchdog, event recorder. Every
/// instance runs the identical construction sequence, so ProcessIds and
/// statechart indices are stable across instances: exactly the property
/// snapshot restore relies on ("same setup, different process").
struct ReplayRig {
  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  codegen::HwModuleSim uart;
  sim::FaultPlan plan;
  statechart::StateMachineInstance health;
  codegen::BusMasterContext driver;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::ProcessId perturb = sim::kInvalidProcess;

  static sim::RetryPolicy retry_policy() {
    sim::RetryPolicy policy;
    policy.timeout = sim::SimTime::ns(40);
    policy.max_attempts = 4;
    return policy;
  }

  ReplayRig(const uml::Component& psm_uart, const soc::SocProfile& profile,
            const statechart::StateMachine& health_machine, std::uint64_t base,
            support::DiagnosticSink& sink)
      : bus(kernel, "axi-faulty", sim::SimTime::ns(8)),
        uart(psm_uart, profile, sink),
        plan(/*seed=*/42),
        health(health_machine),
        driver(kernel, bus, retry_policy()),
        watchdog(kernel, "driver-watchdog", sim::SimTime::us(10)) {
    uart.map_onto(bus, base);
    sim::FaultPlan::SiteConfig adversarial;
    adversarial.drop_rate = 0.25;  // 1 in 4 writes hangs: no response, ever.
    plan.configure(sim::FaultSite::kBusWrite, adversarial);
    bus.install_fault_plan(&plan);
    health.set_trace_enabled(false);
    health.start();
    driver.set_error_sink(&health);
    driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
    perturb = kernel.register_process([] {}, "demo.perturb");
    kernel.set_recorder(&recorder);
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    out.machines.push_back({"health", &health});
    out.buses.push_back({"axi-faulty", &bus});
    out.watchdogs.push_back({"driver-watchdog", &watchdog});
    out.banks.push_back(
        {"uart", [this] { return uart.capture_values(); },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           return uart.restore_values(values, bank_sink);
         }});
    out.banks.push_back(
        {"port",
         [this] {
           const sim::BusMasterPort::Stats& stats = driver.port().stats();
           return std::vector<std::pair<std::string, std::uint64_t>>{
               {"transactions", stats.transactions}, {"timeouts", stats.timeouts},
               {"retries", stats.retries},           {"exhausted", stats.exhausted},
               {"recovered", stats.recovered},       {"late-completions",
                                                      stats.late_completions}};
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& bank_sink) {
           sim::BusMasterPort::Stats stats;
           for (const auto& [key, value] : values) {
             if (key == "transactions") {
               stats.transactions = value;
             } else if (key == "timeouts") {
               stats.timeouts = value;
             } else if (key == "retries") {
               stats.retries = value;
             } else if (key == "exhausted") {
               stats.exhausted = value;
             } else if (key == "recovered") {
               stats.recovered = value;
             } else if (key == "late-completions") {
               stats.late_completions = value;
             } else {
               bank_sink.error("port", "unknown counter '" + key + "'");
               return false;
             }
           }
           driver.port().restore_checkpoint(stats);
           return true;
         }});
    return out;
  }
};

constexpr const char* kPhase1 = "bus_write(self.base + 12, 434);";
constexpr const char* kPhase2 =
    "i := 0;"
    "while (i < 4) {"
    "  bus_write(self.base + 0, 65 + i);"
    "  i := i + 1;"
    "}";

}  // namespace

int main() {
  support::DiagnosticSink sink;

  // 1. PIM: reuse the Uart IP core from the library.
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("UartSoc");
  uml::Package& ip = pim.add_package("ip");
  uml::Component* uart = library.instantiate("Uart", pim, ip, "Uart", sink);
  if (uart == nullptr) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(pim);
  soc::validate_soc(pim, *profile, sink);

  // 2. MDA: PIM -> hardware PSM (adds clk/rst/s_axi, Top, memory map).
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);
  std::printf("memory map:\n");
  for (const mda::MemoryWindow& window : hw.memory_map) {
    std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                static_cast<unsigned long long>(window.base),
                static_cast<unsigned long long>(window.span));
  }

  // 3. Code generation from the PSM.
  std::optional<soc::SocProfile> psm_profile = soc::SocProfile::find(*hw.psm);
  auto* psm_uart =
      dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
  if (psm_uart == nullptr || !psm_profile.has_value()) {
    std::fputs("hardware PSM missing ip.Uart\n", stderr);
    return 1;
  }
  std::string rtl = codegen::generate_rtl_module(*psm_uart, *psm_profile, sink);
  std::string sysc = codegen::generate_sim_module(*psm_uart, *psm_profile, sink);
  std::printf("\n--- generated RTL (%zu lines) ---\n%s",
              support::count_nonempty_lines(rtl), rtl.c_str());
  std::printf("\n--- generated SystemC-style C++ (%zu lines, not shown) ---\n",
              support::count_nonempty_lines(sysc));

  // 4. Execute: HW model on the bus, ASL driver writing registers.
  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  codegen::HwModuleSim uart_sim(*psm_uart, *psm_profile, sink);
  const std::uint64_t base = hw.memory_map.empty() ? 0x40000000 : hw.memory_map[0].base;
  uart_sim.map_onto(bus, base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(base)});
  driver.run(
      "bus_write(self.base + 12, 434);"       // divisor = 50MHz/115200.
      "i := 0;"
      "while (i < 4) {"
      "  bus_write(self.base + 0, 65 + i);"   // tx_data = 'A'+i.
      "  i := i + 1;"
      "}");
  auto divisor = driver.run("return bus_read(self.base + 12);");

  std::printf("\nafter driver run: divisor=%lld tx_data=%llu (last byte)\n",
              static_cast<long long>(divisor.value().as_int()),
              static_cast<unsigned long long>(uart_sim.peek("tx_data")));
  std::printf("bus: %llu writes, %llu reads, sim time %s\n",
              static_cast<unsigned long long>(bus.writes()),
              static_cast<unsigned long long>(bus.reads()), kernel.now().str().c_str());

  // 5. Resilience: same driver, adversarial bus. A seeded fault plan drops
  // device responses (hung slave); the driver's BusMasterPort times out and
  // retries with backoff, a watchdog supervises overall progress, and a
  // DriverHealth statechart tracks error/recovery via the error channel.
  statechart::StateMachine health("DriverHealth");
  statechart::Region& htop = health.top();
  statechart::State& operational = htop.add_state("Operational");
  statechart::State& degraded = htop.add_state("Degraded");
  statechart::State& dead = htop.add_state("Failed");
  htop.add_transition(htop.add_initial(), operational);
  htop.add_transition(operational, degraded).set_trigger("bus_timeout");
  htop.add_transition(degraded, operational).set_trigger("bus_recovered");
  htop.add_transition(degraded, dead).set_trigger("bus_failed");

  ReplayRig reference(*psm_uart, *psm_profile, health, base, sink);
  reference.watchdog.arm();
  reference.driver.run(kPhase1);
  reference.driver.run(kPhase2);
  reference.watchdog.disarm();

  const sim::BusMasterPort::Stats& port_stats = reference.driver.port().stats();
  std::printf("\nfaulty rerun: %llu transactions, %llu timeouts, %llu retries, "
              "%llu recovered, %llu exhausted\n",
              static_cast<unsigned long long>(port_stats.transactions),
              static_cast<unsigned long long>(port_stats.timeouts),
              static_cast<unsigned long long>(port_stats.retries),
              static_cast<unsigned long long>(port_stats.recovered),
              static_cast<unsigned long long>(port_stats.exhausted));
  std::printf("fault plan: %s\n", reference.plan.str().c_str());
  std::printf("driver health: %s (errors raised %llu), watchdog trips %llu, "
              "divisor=%llu\n",
              reference.health.active_leaf_names().empty()
                  ? "?"
                  : reference.health.active_leaf_names().front().c_str(),
              static_cast<unsigned long long>(reference.health.errors_raised()),
              static_cast<unsigned long long>(reference.watchdog.trips()),
              static_cast<unsigned long long>(reference.uart.peek("divisor")));

  // 6. Checkpoint + deterministic replay. The reference above ran to the
  // end uninterrupted with its event recorder on. Now: an identical rig is
  // checkpointed between driver phases, the snapshot is restored into a
  // third freshly constructed rig (what a restarted process would do), and
  // that rig finishes the run. Final state and the complete event sequence
  // must match the reference exactly.
  const std::vector<sim::RecordedEvent> reference_log = reference.recorder.log();

  ReplayRig checkpointed(*psm_uart, *psm_profile, health, base, sink);
  checkpointed.watchdog.arm();
  checkpointed.driver.run(kPhase1);
  std::string snapshot;
  if (!replay::save_snapshot(checkpointed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  ReplayRig restored(*psm_uart, *psm_profile, health, base, sink);
  if (!replay::restore_snapshot(restored.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  restored.driver.run(kPhase2);
  restored.watchdog.disarm();

  const auto mismatch =
      sim::first_divergence(reference_log, restored.recorder.log(), &restored.kernel);
  const std::pair<const char*, std::pair<std::uint64_t, std::uint64_t>> state_checks[] = {
      {"sim-time", {reference.kernel.now().picoseconds(),
                    restored.kernel.now().picoseconds()}},
      {"events-processed",
       {reference.kernel.events_processed(), restored.kernel.events_processed()}},
      {"divisor", {reference.uart.peek("divisor"), restored.uart.peek("divisor")}},
      {"tx_data", {reference.uart.peek("tx_data"), restored.uart.peek("tx_data")}},
      {"port-timeouts",
       {port_stats.timeouts, restored.driver.port().stats().timeouts}},
      {"port-retries", {port_stats.retries, restored.driver.port().stats().retries}},
      {"health-errors",
       {reference.health.errors_raised(), restored.health.errors_raised()}},
  };
  bool state_matches =
      restored.health.active_leaf_names() == reference.health.active_leaf_names() &&
      restored.plan.str() == reference.plan.str();
  if (!state_matches) std::printf("replay state mismatch: health/fault-plan summary\n");
  for (const auto& [label, values] : state_checks) {
    if (values.first != values.second) {
      std::printf("replay state mismatch: %s reference=%llu restored=%llu\n", label,
                  static_cast<unsigned long long>(values.first),
                  static_cast<unsigned long long>(values.second));
      state_matches = false;
    }
  }
  std::printf("\ncheckpoint: %zu-byte snapshot at %s; restored run replayed %llu/%llu "
              "events\n",
              snapshot.size(), checkpointed.kernel.now().str().c_str(),
              static_cast<unsigned long long>(restored.recorder.total_events()),
              static_cast<unsigned long long>(reference.recorder.total_events()));
  if (mismatch.has_value() || !state_matches) {
    std::printf("replay MISMATCH: %s\n",
                mismatch.has_value() ? mismatch->str().c_str() : "final state differs");
    return 1;
  }
  std::printf("replay: restored run is bit-identical to the uninterrupted reference\n");

  // Divergence detection: restore the same snapshot again, switch the
  // recorder to verify mode against the reference log, and inject one event
  // the reference never had. The verifier must latch it.
  ReplayRig perturbed(*psm_uart, *psm_profile, health, base, sink);
  if (!replay::restore_snapshot(perturbed.targets(), snapshot, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  perturbed.recorder.begin_verify(reference_log, perturbed.recorder.total_events());
  perturbed.kernel.schedule(sim::SimTime::ns(1), perturbed.perturb);
  perturbed.driver.run(kPhase2);
  perturbed.watchdog.disarm();
  if (!perturbed.recorder.divergence().has_value()) {
    std::printf("replay verify FAILED to flag an injected divergence\n");
    return 1;
  }
  std::printf("divergence detection: %s\n",
              perturbed.recorder.divergence()->str().c_str());

  // Corruption rejection: a flipped byte must fail the checksum, loudly.
  std::string corrupted = snapshot;
  const std::size_t flip = corrupted.find("rng-state=\"");
  if (flip != std::string::npos) {
    char& digit = corrupted[flip + 11];
    digit = digit == '9' ? '1' : '9';
  }
  support::DiagnosticSink corrupt_sink;
  ReplayRig victim(*psm_uart, *psm_profile, health, base, sink);
  if (replay::restore_snapshot(victim.targets(), corrupted, corrupt_sink)) {
    std::printf("corrupted snapshot was NOT rejected\n");
    return 1;
  }
  std::printf("corruption rejection: %s\n",
              corrupt_sink.diagnostics().empty()
                  ? "?"
                  : corrupt_sink.diagnostics().front().str().c_str());

  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
