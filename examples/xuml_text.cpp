// Executable UML, end to end in model text: a vending-machine statechart
// whose guards and effects are ASL strings, persisted to XMI, re-read, bound
// and executed — no behavior is expressed in C++ anywhere.
//
//   $ ./example_xuml_text
#include <cstdio>

#include "codegen/asl_binding.hpp"
#include "codegen/plantuml.hpp"
#include "statechart/interpreter.hpp"
#include "xmi/behavior.hpp"

using namespace umlsoc;

namespace {

std::unique_ptr<statechart::StateMachine> author_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("Vending");
  statechart::Region& top = machine->top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& paid = top.add_state("Paid");
  statechart::State& vending = top.add_state("Vending");
  top.add_transition(initial, idle);

  // All behavior as ASL text — this is the entire "program".
  top.add_transition(idle, idle)
      .set_trigger("coin")
      .set_internal(true)
      .set_effect(statechart::Behavior{"self.credit := self.credit + data;", nullptr});
  top.add_transition(idle, paid)
      .set_trigger("select")
      .set_guard(statechart::Guard{"self.credit >= 150", nullptr})
      .set_effect(statechart::Behavior{
          "self.credit := self.credit - 150; self.item := data;", nullptr});
  top.add_transition(idle, idle)
      .set_trigger("select")
      .set_guard(statechart::Guard{"self.credit < 150", nullptr})
      .set_effect(
          statechart::Behavior{"send Display.show(\"insufficient credit\");", nullptr});
  top.add_transition(paid, vending)
      .set_effect(statechart::Behavior{"send Motor.dispense(self.item);", nullptr});
  top.add_transition(vending, idle)
      .set_trigger("dispensed")
      .set_effect(statechart::Behavior{
          "self.served := self.served + 1; send Display.show(\"enjoy\");", nullptr});
  return machine;
}

}  // namespace

int main() {
  // 1. Author and persist the fully textual model.
  auto authored = author_machine();
  std::string xmi_text = xmi::write_state_machine(*authored);
  std::printf("--- persisted machine (%zu bytes of XMI) ---\n%s\n", xmi_text.size(),
              xmi_text.c_str());

  // 2. A "different tool" reads it back and binds the text to execution.
  support::DiagnosticSink sink;
  auto machine = xmi::read_state_machine(xmi_text, sink);
  if (machine == nullptr) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  asl::MapObject vending_object;
  if (!codegen::bind_statechart_asl(*machine, vending_object, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  // 3. Run a purchase.
  statechart::StateMachineInstance instance(*machine);
  instance.start();
  instance.dispatch({"select", 3});  // Not enough credit.
  instance.dispatch({"coin", 100});
  instance.dispatch({"coin", 100});
  instance.dispatch({"select", 7});  // Item 7; completion goes to Vending.
  instance.dispatch({"dispensed"});

  std::printf("state: %s, credit: %s, served: %s\n",
              instance.active_leaf_names().front().c_str(),
              vending_object.get_attribute("credit").str().c_str(),
              vending_object.get_attribute("served").str().c_str());
  std::printf("signals sent by the model:\n");
  for (const asl::MapObject::SentSignal& signal : vending_object.sent_signals()) {
    std::printf("  %s.%s(", signal.target.c_str(), signal.signal.c_str());
    for (std::size_t i = 0; i < signal.arguments.size(); ++i) {
      std::printf("%s%s", i != 0 ? ", " : "", signal.arguments[i].str().c_str());
    }
    std::printf(")\n");
  }

  std::printf("\n--- diagram ---\n%s", codegen::to_plantuml_statechart(*machine).c_str());
  const bool ok = instance.is_in("Idle") &&
                  vending_object.get_attribute("credit").as_int() == 50 &&
                  vending_object.get_attribute("served").as_int() == 1;
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
