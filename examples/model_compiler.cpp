// Model compiler CLI: the whole toolchain behind one command.
//
//   $ ./example_model_compiler                # self-demo (writes + compiles
//                                             # a generated UART model)
//   $ ./example_model_compiler design.xmi     # compile an existing model
//
// Pipeline: read XMI -> validate (uml + SoC profile + declarative ASL
// constraints) -> MDA software & hardware mappings -> emit RTL, testbench,
// SystemC-style C++, SW C++ and PlantUML to ./umlsoc_out/.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "asl/constraints.hpp"
#include "codegen/plantuml.hpp"
#include "codegen/rtl.hpp"
#include "codegen/software.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "soc/iplibrary.hpp"
#include "soc/validate.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"
#include "uml/validate.hpp"
#include "xmi/serialize.hpp"

using namespace umlsoc;

namespace {

std::string make_demo_xmi() {
  support::DiagnosticSink sink;
  soc::IpLibrary library;
  library.add_standard_ips();
  uml::Model pim("DemoSoc");
  uml::Package& ip = pim.add_package("ip");
  library.instantiate("Uart", pim, ip, "Uart", sink);
  library.instantiate("Timer", pim, ip, "Timer", sink);
  return xmi::write_model(pim);
}

void emit(const std::filesystem::path& directory, const std::string& file,
          const std::string& content) {
  std::ofstream out(directory / file);
  out << content;
  std::printf("  wrote %s (%zu lines)\n", (directory / file).c_str(),
              support::count_nonempty_lines(content));
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Load (or synthesize) the input model.
  std::string xmi_text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    xmi_text = buffer.str();
    std::printf("compiling %s\n", argv[1]);
  } else {
    xmi_text = make_demo_xmi();
    std::printf("no input file; compiling the built-in demo SoC\n");
  }

  support::DiagnosticSink sink;
  std::unique_ptr<uml::Model> model = xmi::read_model(xmi_text, sink);
  if (model == nullptr) {
    std::fprintf(stderr, "parse failed:\n%s", sink.str().c_str());
    return 1;
  }
  std::printf("model '%s': %zu elements\n", model->name().c_str(), model->element_count());

  // 2. Validation: structural, profile, and declarative constraints.
  if (!uml::validate(*model, sink)) {
    std::fprintf(stderr, "validation failed:\n%s", sink.str().c_str());
    return 1;
  }
  std::optional<soc::SocProfile> profile = soc::SocProfile::find(*model);
  if (profile.has_value()) {
    soc::validate_soc(*model, *profile, sink);
    asl::ConstraintSet constraints;
    constraints.add("hw-xor-sw", uml::ElementKind::kClass,
                    "not (has_stereotype(\"HwModule\") and has_stereotype(\"SwTask\"))",
                    sink);
    constraints.add("enums-have-literals", uml::ElementKind::kEnumeration,
                    "literal_count() > 0", sink);
    constraints.check(*model, sink);
  }
  if (sink.has_errors()) {
    std::fprintf(stderr, "model errors:\n%s", sink.str().c_str());
    return 1;
  }
  std::printf("validation: clean (%zu warnings)\n\n", sink.warning_count());

  const std::filesystem::path out_dir = "umlsoc_out";
  std::filesystem::create_directories(out_dir);

  // 3. Diagrams.
  emit(out_dir, "classes.puml", codegen::to_plantuml_class_diagram(*model));

  // 4. MDA mappings + code generation.
  mda::MdaResult sw = mda::transform(*model, mda::PlatformDescription::software(), sink);
  mda::MdaResult hw = mda::transform(*model, mda::PlatformDescription::hardware(), sink);

  std::optional<soc::SocProfile> hw_profile = soc::SocProfile::find(*hw.psm);
  if (hw_profile.has_value()) {
    for (uml::Class* cls : uml::collect<uml::Class>(*hw.psm)) {
      if (!cls->has_stereotype(*hw_profile->hw_module)) continue;
      const std::string base = support::to_snake_case(cls->name());
      emit(out_dir, base + ".v", codegen::generate_rtl_module(*cls, *hw_profile, sink));
      emit(out_dir, base + "_tb.v",
           codegen::generate_rtl_testbench(*cls, *hw_profile, sink));
      emit(out_dir, base + "_sim.hpp",
           codegen::generate_sim_module(*cls, *hw_profile, sink));
    }
  }
  for (uml::Class* cls : uml::collect<uml::Class>(*sw.psm)) {
    emit(out_dir, support::to_snake_case(cls->name()) + ".hpp",
         codegen::generate_sw_class(*cls, sink));
  }

  std::printf("\nmemory map:\n");
  for (const mda::MemoryWindow& window : hw.memory_map) {
    std::printf("  %-24s base=0x%llx span=0x%llx\n", window.module.c_str(),
                static_cast<unsigned long long>(window.base),
                static_cast<unsigned long long>(window.span));
  }
  std::printf("\ntrace links: %zu (sw) + %zu (hw)\n", sw.links.size(), hw.links.size());
  std::printf("done.\n");
  return sink.has_errors() ? 1 : 0;
}
