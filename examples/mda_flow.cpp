// MDA flow: one PIM mapped to two PSMs (software and hardware platforms),
// with trace links and generated code excerpts from both sides.
//
//   $ ./example_mda_flow
#include <cstdio>

#include "codegen/rtl.hpp"
#include "codegen/software.hpp"
#include "mda/transform.hpp"
#include "soc/profile.hpp"
#include "uml/query.hpp"

using namespace umlsoc;

int main() {
  // 1. The PIM: a controller task plus a timer peripheral.
  uml::Model pim("MotorCtrl");
  soc::SocProfile profile = soc::SocProfile::install(pim);
  uml::Package& app = pim.add_package("app");

  uml::Class& ctrl = app.add_class("SpeedController");
  ctrl.apply_stereotype(*profile.sw_task);
  ctrl.set_tagged_value(*profile.sw_task, "priority", "8");
  ctrl.add_property("setpoint", &pim.primitive("Integer", 32)).set_default_value("0");
  uml::Operation& step = ctrl.add_operation("step");
  step.add_parameter("measured", &pim.primitive("Integer", 32));
  step.set_body(
      "error := self.setpoint - measured;"
      "self.output := self.output + error / 4;"
      "return self.output;");
  step.set_return_type(pim.primitive("Integer", 32));
  ctrl.add_property("output", &pim.primitive("Integer", 32)).set_default_value("0");

  uml::Class& timer = app.add_class("PwmTimer");
  timer.apply_stereotype(*profile.hw_module);
  auto reg = [&](const char* name, const char* address, const char* access) {
    uml::Property& r = timer.add_property(name, &pim.primitive("Word", 32));
    r.apply_stereotype(*profile.hw_register);
    r.set_tagged_value(*profile.hw_register, "address", address);
    r.set_tagged_value(*profile.hw_register, "access", access);
  };
  reg("period", "0x0", "rw");
  reg("duty", "0x4", "rw");
  reg("status", "0x8", "r");

  uml::Association& uses = app.add_association("drives");
  uses.add_end("controller", ctrl);
  uses.add_end("pwm", timer);

  support::DiagnosticSink sink;

  // 2. Same PIM, two platform mappings.
  mda::MdaResult sw = mda::transform(pim, mda::PlatformDescription::software(), sink);
  mda::MdaResult hw = mda::transform(pim, mda::PlatformDescription::hardware(), sink);

  std::printf("PIM '%s' -> SW PSM '%s' (%zu elements), HW PSM '%s' (%zu elements)\n\n",
              pim.name().c_str(), sw.psm->name().c_str(), sw.psm->element_count(),
              hw.psm->name().c_str(), hw.psm->element_count());

  std::printf("--- trace links (software mapping) ---\n");
  for (const mda::TraceLink& link : sw.links) {
    std::printf("  %-28s -> %-34s [%s]\n", link.pim_element.c_str(),
                link.psm_element.c_str(), link.rule.c_str());
  }

  // 3. Generated software: the controller class and the timer driver.
  auto* task = dynamic_cast<uml::Class*>(
      uml::find_by_qualified_name(*sw.psm, "app.SpeedController"));
  auto* driver =
      dynamic_cast<uml::Class*>(uml::find_by_qualified_name(*sw.psm, "app.PwmTimerDriver"));
  if (task != nullptr) {
    std::printf("\n--- generated C++ (controller task) ---\n%s",
                codegen::generate_sw_class(*task, sink).c_str());
  }
  if (driver != nullptr) {
    std::printf("\n--- generated C++ (timer driver) ---\n%s",
                codegen::generate_sw_class(*driver, sink).c_str());
  }

  // 4. Generated hardware: the timer RTL.
  std::optional<soc::SocProfile> hw_profile = soc::SocProfile::find(*hw.psm);
  auto* module =
      dynamic_cast<uml::Class*>(uml::find_by_qualified_name(*hw.psm, "app.PwmTimer"));
  if (module != nullptr && hw_profile.has_value()) {
    std::printf("\n--- generated RTL (timer) ---\n%s",
                codegen::generate_rtl_module(*module, *hw_profile, sink).c_str());
  }
  if (sink.has_errors()) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }
  return 0;
}
