// Quickstart: build a small UML model with an executable state machine,
// run it, validate it, and print the diagrams as PlantUML.
//
//   $ ./example_quickstart
#include <cstdio>

#include "codegen/plantuml.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/validate.hpp"
#include "uml/validate.hpp"
#include "xmi/serialize.hpp"

using namespace umlsoc;

int main() {
  // 1. A structural model: one package, one class with an attribute.
  uml::Model model("Blinky");
  uml::Package& pkg = model.add_package("app");
  uml::Class& blinker = pkg.add_class("Blinker");
  blinker.set_active(true);
  blinker.add_property("blink_count", &model.primitive("Integer", 32))
      .set_default_value("0");

  support::DiagnosticSink sink;
  if (!uml::validate(model, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  // 2. A behavior: Off <-> On state machine attached to the class.
  statechart::StateMachine machine("BlinkerBehavior");
  machine.set_context(blinker);
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& off = top.add_state("Off");
  statechart::State& on = top.add_state("On");
  top.add_transition(initial, off);
  top.add_transition(off, on).set_trigger("toggle").set_effect(
      "blink_count := blink_count + 1", [](statechart::ActionContext& ctx) {
        ctx.instance.set_variable("blink_count",
                                  ctx.instance.variable("blink_count") + 1);
      });
  top.add_transition(on, off).set_trigger("toggle");

  if (!statechart::validate(machine, sink)) {
    std::fputs(sink.str().c_str(), stderr);
    return 1;
  }

  // 3. Execute it.
  statechart::StateMachineInstance instance(machine);
  instance.start();
  for (int i = 0; i < 5; ++i) instance.dispatch({"toggle"});
  std::printf("after 5 toggles: state=%s blink_count=%lld\n",
              instance.active_leaf_names().front().c_str(),
              static_cast<long long>(instance.variable("blink_count")));

  // 4. Diagrams as PlantUML text.
  std::printf("\n--- class diagram ---\n%s",
              codegen::to_plantuml_class_diagram(model).c_str());
  std::printf("\n--- state machine ---\n%s",
              codegen::to_plantuml_statechart(machine).c_str());

  // 5. Persist and re-load through XMI.
  std::string xmi_text = xmi::write_model(model);
  support::DiagnosticSink read_sink;
  std::unique_ptr<uml::Model> reread = xmi::read_model(xmi_text, read_sink);
  std::printf("\nXMI round-trip: %s (%zu elements)\n",
              reread != nullptr ? "ok" : "FAILED",
              reread != nullptr ? reread->element_count() : 0);
  return reread != nullptr ? 0 : 1;
}
