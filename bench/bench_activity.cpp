// E4 "Activity token game": token steps/sec vs graph shape. Expected shape:
// fork/join-heavy graphs pay per-node enabledness scans (quadratic-ish in
// node count for the naive scheduler), sequential chains are the fast path.
#include <benchmark/benchmark.h>

#include "activity/interpreter.hpp"
#include "activity/synthetic.hpp"

namespace {

using namespace umlsoc;
using namespace umlsoc::activity;

void BM_SequentialRun(benchmark::State& state) {
  auto activity = make_sequential(static_cast<std::size_t>(state.range(0)));
  std::uint64_t firings = 0;
  for (auto _ : state) {
    ActivityExecution execution(*activity);
    execution.run();
    firings = execution.firings();
  }
  state.counters["actions"] = static_cast<double>(state.range(0));
  state.counters["firings/s"] = benchmark::Counter(
      static_cast<double>(firings) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialRun)->Arg(8)->Arg(64)->Arg(512);

void BM_ForkJoinRun(benchmark::State& state) {
  auto activity =
      make_fork_join(static_cast<std::size_t>(state.range(0)), static_cast<std::size_t>(4));
  std::uint64_t firings = 0;
  for (auto _ : state) {
    ActivityExecution execution(*activity);
    execution.run();
    firings = execution.firings();
  }
  state.counters["width"] = static_cast<double>(state.range(0));
  state.counters["firings/s"] = benchmark::Counter(
      static_cast<double>(firings) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForkJoinRun)->Arg(2)->Arg(8)->Arg(32);

void BM_SeriesParallelRun(benchmark::State& state) {
  auto activity = make_series_parallel(7, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ActivityExecution execution(*activity);
    execution.run();
    benchmark::DoNotOptimize(execution.firings());
  }
  state.counters["actions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SeriesParallelRun)->Arg(10)->Arg(50)->Arg(200);

void BM_PipelineSteadyState(benchmark::State& state) {
  // Tokens streamed through a pipeline that never terminates (flow-final
  // sink): per-token end-to-end stepping cost.
  Activity activity("pipe");
  ActivityNode* previous = nullptr;
  const ActivityEdge* first_edge = nullptr;
  ActivityNode& initial = activity.add_initial();
  previous = &initial;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    ActivityNode& action = activity.add_action("a" + std::to_string(i));
    const ActivityEdge& edge = activity.add_edge(*previous, action);
    if (first_edge == nullptr) first_edge = &edge;
    previous = &action;
  }
  ActivityNode& sink_node = activity.add_node(NodeKind::kFlowFinal, "sink");
  activity.add_edge(*previous, sink_node);

  ActivityExecution execution(activity);
  for (auto _ : state) {
    execution.place_token(*first_edge, Token{1});
    while (execution.step()) {
    }
  }
  state.counters["stages"] = static_cast<double>(state.range(0));
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSteadyState)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
