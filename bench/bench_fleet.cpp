// E19 "Fleet engine": what sharding rigs across worker threads costs and
// buys. Three measurements: fleet throughput (rigs/s, events/s) over a
// fixed batch of independently-seeded simulation rigs as the worker count
// grows, the same sweep on a near-empty runner to expose the driver's
// per-rig dispatch overhead (chunk claim + slot write + bookkeeping), and
// chunk-size sensitivity at a fixed worker count. Expected shape: rig
// throughput scales near-linearly with workers up to the core count (rigs
// share nothing, so the only serial parts are the claim cursor and the
// progress hook), dispatch overhead is sub-microsecond per rig, and
// throughput is flat across sane chunk sizes — the cursor is contended
// only total/chunk times per run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "fleet/driver.hpp"
#include "fleet/report.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace umlsoc;

/// One fleet rig: a kernel driven by a self-rescheduling process on a 10 ns
/// grid consulting a seeded fault plan — the smallest workload that still
/// exercises the real event loop and per-seed divergent control flow.
fleet::RigOutcome run_sim_rig(const fleet::RigJob& job, std::uint64_t ticks_per_rig) {
  sim::Kernel kernel;
  sim::FaultPlan plan(job.seed);
  sim::FaultPlan::SiteConfig site;
  site.error_rate = 0.05;
  plan.configure(sim::FaultSite::kBusWrite, site);

  fleet::RigOutcome outcome;
  std::uint64_t ticks = 0;
  sim::ProcessId worker = sim::kInvalidProcess;
  worker = kernel.register_process(
      [&] {
        ++ticks;
        ++outcome.slo.requests;
        if (plan.consult(sim::FaultSite::kBusWrite).faulted()) {
          ++outcome.slo.lost;
        } else {
          ++outcome.slo.delivered;
        }
        if (ticks < ticks_per_rig) kernel.schedule(sim::SimTime::ns(10), worker);
      },
      "bench.fleet.worker");
  kernel.schedule(sim::SimTime::ns(10), worker);
  kernel.run();

  outcome.ok = true;
  outcome.sim_time_ps = kernel.now().picoseconds();
  outcome.events_processed = kernel.events_processed();
  fleet::reduce(outcome.kernel, kernel.stats());
  return outcome;
}

/// Fleet throughput vs worker count: 256 sim rigs of 2000 ticks each.
/// rigs/s and events/s are the scaling headline; on an N-core host the
/// curve should track min(jobs, N) within the acceptance margin.
void BM_FleetThroughput(benchmark::State& state) {
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  constexpr std::uint64_t kRigs = 256;
  constexpr std::uint64_t kTicks = 2000;

  std::uint64_t events = 0;
  for (auto _ : state) {
    fleet::FleetConfig config;
    config.jobs = jobs;
    fleet::FleetDriver driver(config);
    const std::vector<fleet::RigOutcome> outcomes = driver.run_range(
        1000, kRigs, [](const fleet::RigJob& job) { return run_sim_rig(job, kTicks); });
    const fleet::FleetReport report = fleet::FleetReport::aggregate(outcomes);
    events = report.events_total;
    benchmark::DoNotOptimize(report.rigs_ok);
  }
  state.counters["rigs/s"] = benchmark::Counter(
      static_cast<double>(kRigs * state.iterations()), benchmark::Counter::kIsRate);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Driver dispatch overhead: a runner that does nothing isolates the
/// per-rig cost of the chunk queue, outcome slot write, wall-clock stamp
/// and completion counter.
void BM_FleetDispatchOverhead(benchmark::State& state) {
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  constexpr std::uint64_t kRigs = 4096;

  for (auto _ : state) {
    fleet::FleetConfig config;
    config.jobs = jobs;
    fleet::FleetDriver driver(config);
    const std::vector<fleet::RigOutcome> outcomes =
        driver.run_range(0, kRigs, [](const fleet::RigJob&) {
          fleet::RigOutcome outcome;
          outcome.ok = true;
          return outcome;
        });
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.counters["rigs/s"] = benchmark::Counter(
      static_cast<double>(kRigs * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetDispatchOverhead)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Chunk-size sensitivity at 4 workers: from fine-grained (every rig a
/// claim) to coarse (one claim per worker). Flat means the claim cursor is
/// not a bottleneck at simulation-rig granularity.
void BM_FleetChunkSize(benchmark::State& state) {
  const std::uint64_t chunk = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kRigs = 256;
  constexpr std::uint64_t kTicks = 500;

  for (auto _ : state) {
    fleet::FleetConfig config;
    config.jobs = 4;
    config.chunk = chunk;
    fleet::FleetDriver driver(config);
    const std::vector<fleet::RigOutcome> outcomes = driver.run_range(
        1000, kRigs, [](const fleet::RigJob& job) { return run_sim_rig(job, kTicks); });
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.counters["rigs/s"] = benchmark::Counter(
      static_cast<double>(kRigs * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetChunkSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Process-isolation tax at 4 workers: the same 256-rig batch through the
/// forked worker pool (pipe-framed grants/results, heartbeat threads,
/// at-most-once ledger) vs the thread path above. The gap is the price of
/// crash tolerance — fork/reap per pool, result serialization per rig —
/// and should stay within a small constant factor of BM_FleetThroughput/4
/// at simulation-rig granularity.
void BM_FleetProcessIsolation(benchmark::State& state) {
  const std::uint64_t ticks = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kRigs = 256;

  for (auto _ : state) {
    fleet::FleetConfig config;
    config.jobs = 4;
    config.isolation = fleet::Isolation::kProcess;
    fleet::FleetDriver driver(config);
    const std::vector<fleet::RigOutcome> outcomes = driver.run_range(
        1000, kRigs, [&](const fleet::RigJob& job) { return run_sim_rig(job, ticks); });
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.counters["rigs/s"] = benchmark::Counter(
      static_cast<double>(kRigs * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetProcessIsolation)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
