// E11 "End-to-end flow": the full pipeline — IP library -> PIM -> hardware
// PSM -> executable register-file model on the simulated bus, driven by
// generated-style ASL driver code — versus a hand-written C++ reference of
// the same transaction sequence. Expected shape: the model-interpreted path
// costs 1-3 orders of magnitude over hand-written C++ (the price of
// interpretation), while producing identical register state — correctness
// is asserted every iteration.
#include <benchmark/benchmark.h>

#include <stdexcept>

#include "asl/parser.hpp"
#include "codegen/hwmodel.hpp"
#include "codegen/swruntime.hpp"
#include "mda/transform.hpp"
#include "soc/iplibrary.hpp"
#include "uml/query.hpp"

namespace {

using namespace umlsoc;

struct Flow {
  std::unique_ptr<uml::Model> pim = std::make_unique<uml::Model>("UartSoc");
  mda::MdaResult hw;
  std::optional<soc::SocProfile> psm_profile;
  uml::Component* psm_uart = nullptr;
  std::uint64_t base = 0;

  Flow() {
    support::DiagnosticSink sink;
    soc::IpLibrary library;
    library.add_standard_ips();
    uml::Package& ip = pim->add_package("ip");
    library.instantiate("Uart", *pim, ip, "Uart", sink);
    hw = mda::transform(*pim, mda::PlatformDescription::hardware(), sink);
    psm_profile = soc::SocProfile::find(*hw.psm);
    psm_uart =
        dynamic_cast<uml::Component*>(uml::find_by_qualified_name(*hw.psm, "ip.Uart"));
    base = hw.memory_map.empty() ? 0x40000000 : hw.memory_map[0].base;
    if (psm_uart == nullptr || sink.has_errors()) {
      throw std::runtime_error("end-to-end flow setup failed:\n" + sink.str());
    }
  }
};

void BM_FlowModelToExecutable(benchmark::State& state) {
  // Whole flow cost: library -> PIM -> PSM -> runtime model construction.
  for (auto _ : state) {
    Flow flow;
    support::DiagnosticSink sink;
    codegen::HwModuleSim module(*flow.psm_uart, *flow.psm_profile, sink);
    benchmark::DoNotOptimize(module.peek("divisor"));
  }
}
BENCHMARK(BM_FlowModelToExecutable)->Unit(benchmark::kMillisecond);

void BM_GeneratedDriverOnSimulatedBus(benchmark::State& state) {
  Flow flow;
  support::DiagnosticSink sink;
  codegen::HwModuleSim module(*flow.psm_uart, *flow.psm_profile, sink);

  sim::Kernel kernel;
  sim::MemoryMappedBus bus(kernel, "axi", sim::SimTime::ns(8));
  module.map_onto(bus, flow.base);

  codegen::BusMasterContext driver(kernel, bus);
  driver.set_attribute("base", asl::Value{static_cast<std::int64_t>(flow.base)});

  // Parse once (like a generated artifact), execute per iteration.
  support::DiagnosticSink parse_sink;
  auto program = asl::parse(
      "bus_write(self.base + 12, 434);"
      "i := 0;"
      "while (i < 8) { bus_write(self.base + 0, 65 + i); i := i + 1; }"
      "return bus_read(self.base + 12);",
      parse_sink);
  if (!program.has_value()) {
    state.SkipWithError(parse_sink.str().c_str());
    return;
  }

  std::uint64_t transactions = 0;
  for (auto _ : state) {
    asl::Environment environment(driver);
    asl::Interpreter interpreter;
    auto result = interpreter.execute(*program, environment);
    transactions += 10;  // 9 writes + 1 read per run.
    if (!result.has_value() || result->as_int() != 434 || module.peek("tx_data") != 72) {
      state.SkipWithError("end-to-end result mismatch");
      return;
    }
  }
  state.counters["bus_xfers/s"] = benchmark::Counter(static_cast<double>(transactions),
                                                     benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GeneratedDriverOnSimulatedBus);

void BM_HandWrittenReference(benchmark::State& state) {
  // The authors'-testbed analogue: the same register sequence hand-coded in
  // C++ against a plain struct (no model, no bus, no interpreter).
  struct UartRef {
    std::uint32_t tx_data = 0;
    std::uint32_t rx_data = 0;
    std::uint32_t status = 0;
    std::uint32_t divisor = 0;
  } uart;

  std::uint64_t transactions = 0;
  for (auto _ : state) {
    uart.divisor = 434;
    for (std::uint32_t i = 0; i < 8; ++i) uart.tx_data = 65 + i;
    benchmark::DoNotOptimize(uart.divisor);
    transactions += 10;
    if (uart.tx_data != 72) {
      state.SkipWithError("reference mismatch");
      return;
    }
  }
  state.counters["bus_xfers/s"] = benchmark::Counter(static_cast<double>(transactions),
                                                     benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandWrittenReference);

void BM_BehavioralHwModelDispatch(benchmark::State& state) {
  // Register write with an attached statechart behavior (event per write).
  Flow flow;
  support::DiagnosticSink sink;
  codegen::HwModuleSim module(*flow.psm_uart, *flow.psm_profile, sink);

  statechart::StateMachine machine("ctrl");
  statechart::Region& top = machine.top();
  statechart::Pseudostate& initial = top.add_initial();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  top.add_transition(initial, idle);
  top.add_transition(idle, busy).set_trigger("write_tx_data");
  top.add_transition(busy, idle).set_trigger("write_tx_data");
  module.attach_behavior(machine);

  for (auto _ : state) {
    module.write_register(0x0, 0x55);
  }
  state.counters["writes/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BehavioralHwModelDispatch);

}  // namespace
