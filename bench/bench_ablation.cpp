// Ablation benches for the design choices called out in DESIGN.md:
//  A1 statechart trace recording on/off (observability tax),
//  A2 state listener installed vs not (hook dispatch tax),
//  A3 signal write with vs without value change (update-suppression win),
//  A4 codesign boundary-penalty sweep (the HW/SW crossover "figure": as
//     communication gets more expensive, the optimal partition migrates
//     from mixed toward single-side),
//  A5 XMI attribute escaping cost on escape-heavy vs clean models.
#include <benchmark/benchmark.h>

#include "activity/synthetic.hpp"
#include "codesign/partition.hpp"
#include "sim/signal.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"
#include "uml/query.hpp"
#include "uml/synthetic.hpp"
#include "xmi/serialize.hpp"

namespace {

using namespace umlsoc;

// --- A1: trace recording ---------------------------------------------------------

void BM_AblTraceRecording(benchmark::State& state) {
  auto machine = statechart::make_nested_machine(4, 4);
  statechart::StateMachineInstance instance(*machine);
  instance.set_trace_enabled(state.range(0) != 0);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"step"});
    if (state.range(0) != 0 && instance.trace().size() > 100000) {
      state.PauseTiming();
      instance.clear_trace();
      state.ResumeTiming();
    }
  }
  state.SetLabel(state.range(0) != 0 ? "trace=on" : "trace=off");
}
BENCHMARK(BM_AblTraceRecording)->Arg(0)->Arg(1);

// --- A2: state listener --------------------------------------------------------------

void BM_AblStateListener(benchmark::State& state) {
  auto machine = statechart::make_nested_machine(4, 4);
  statechart::StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  std::uint64_t callbacks = 0;
  if (state.range(0) != 0) {
    instance.set_state_listener(
        [&callbacks](const statechart::State&, bool) { ++callbacks; });
  }
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"step"});
  }
  benchmark::DoNotOptimize(callbacks);
  state.SetLabel(state.range(0) != 0 ? "listener=on" : "listener=off");
}
BENCHMARK(BM_AblStateListener)->Arg(0)->Arg(1);

// --- A3: signal update suppression ------------------------------------------------------

void BM_AblSignalWrite(benchmark::State& state) {
  sim::Kernel kernel;
  sim::Signal<int> signal(kernel, "s", 0);
  int subscribers_hit = 0;
  signal.value_changed().subscribe([&subscribers_hit] { ++subscribers_hit; });
  const bool changing = state.range(0) != 0;
  int value = 0;
  const sim::ProcessId writer =
      kernel.register_process([&] { signal.write(changing ? ++value : 0); }, "abl.writer");
  for (auto _ : state) {
    kernel.schedule(sim::SimTime::ns(1), writer);
    kernel.run();
  }
  benchmark::DoNotOptimize(subscribers_hit);
  state.SetLabel(changing ? "value-changes" : "same-value");
  state.counters["notifications"] = static_cast<double>(subscribers_hit);
}
BENCHMARK(BM_AblSignalWrite)->Arg(0)->Arg(1);

// --- A4: boundary penalty sweep (HW/SW crossover) ---------------------------------------

void BM_AblBoundaryPenalty(benchmark::State& state) {
  auto activity = activity::make_series_parallel(11, 12);
  codesign::TaskGraph graph = codesign::extract_task_graph(*activity);
  codesign::CostModel model;
  // A constrained budget forces a mixed partition, so boundary crossings
  // are unavoidable and the penalty reshapes the optimal split.
  model.area_budget = graph.total_hw_area() * 0.4;
  model.boundary_penalty = static_cast<double>(state.range(0));

  codesign::PartitionResult best;
  for (auto _ : state) {
    best = codesign::partition_exhaustive(graph, model);
    benchmark::DoNotOptimize(best);
  }
  std::size_t hw_tasks = 0;
  for (bool hw : best.partition) hw_tasks += hw ? 1 : 0;
  state.counters["penalty"] = model.boundary_penalty;
  state.counters["hw_tasks"] = static_cast<double>(hw_tasks);
  state.counters["makespan"] = best.evaluation.makespan;
}
BENCHMARK(BM_AblBoundaryPenalty)->Arg(0)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// --- A5: XMI escaping ---------------------------------------------------------------------

void BM_AblXmiEscaping(benchmark::State& state) {
  uml::SyntheticSpec spec;
  spec.packages = 8;
  auto model = uml::make_synthetic_model(spec);
  if (state.range(0) != 0) {
    // Pollute every class doc with escape-heavy text.
    for (const auto& member : model->members()) {
      member->set_documentation("<<<&&&\"'''>>> escape-heavy docs &&& <<<>>>");
    }
    for (uml::Class* cls : uml::collect<uml::Class>(*model)) {
      cls->set_documentation("a<b && c>d \"quoted\" 'apos' &amp; repeatedly <><><>");
    }
  }
  for (auto _ : state) {
    std::string text = xmi::write_model(*model);
    benchmark::DoNotOptimize(text);
  }
  state.SetLabel(state.range(0) != 0 ? "escape-heavy" : "clean");
}
BENCHMARK(BM_AblXmiEscaping)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
