// E1 "Model scalability": metamodel construction, traversal and validation
// throughput vs model size. Expected shape: ~linear in element count.
#include <benchmark/benchmark.h>

#include "uml/query.hpp"
#include "uml/synthetic.hpp"
#include "uml/validate.hpp"

namespace {

using namespace umlsoc;

uml::SyntheticSpec spec_for(std::int64_t packages) {
  uml::SyntheticSpec spec;
  spec.packages = static_cast<std::size_t>(packages);
  spec.classes_per_package = 10;
  spec.properties_per_class = 5;
  spec.operations_per_class = 3;
  return spec;
}

void BM_ModelBuild(benchmark::State& state) {
  uml::SyntheticSpec spec = spec_for(state.range(0));
  std::size_t elements = 0;
  for (auto _ : state) {
    auto model = uml::make_synthetic_model(spec);
    elements = model->element_count();
    benchmark::DoNotOptimize(model);
  }
  state.counters["elements"] = static_cast<double>(elements);
  state.counters["elements/s"] = benchmark::Counter(
      static_cast<double>(elements) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelBuild)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ModelTraverse(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  for (auto _ : state) {
    uml::ModelStats stats = uml::compute_stats(*model);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["elements"] = static_cast<double>(model->element_count());
  state.counters["elements/s"] = benchmark::Counter(
      static_cast<double>(model->element_count()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelTraverse)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ModelValidate(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  for (auto _ : state) {
    umlsoc::support::DiagnosticSink sink;
    bool ok = uml::validate(*model, sink);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["elements"] = static_cast<double>(model->element_count());
}
BENCHMARK(BM_ModelValidate)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ModelLookupById(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  std::uint64_t id = model->element_count() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->find(umlsoc::support::Id{id}));
  }
}
BENCHMARK(BM_ModelLookupById)->Arg(4)->Arg(64);

void BM_ModelLookupByQualifiedName(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::find_by_qualified_name(*model, "Pkg0.Block5"));
  }
}
BENCHMARK(BM_ModelLookupByQualifiedName)->Arg(4)->Arg(64);

}  // namespace
