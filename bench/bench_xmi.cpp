// E2 "Interchange round-trip": XMI serialize / parse+resolve throughput vs
// model size. Expected shape: ~linear; parsing costs ~2-4x writing.
#include <benchmark/benchmark.h>

#include "uml/synthetic.hpp"
#include "xmi/serialize.hpp"

namespace {

using namespace umlsoc;

uml::SyntheticSpec spec_for(std::int64_t packages) {
  uml::SyntheticSpec spec;
  spec.packages = static_cast<std::size_t>(packages);
  spec.classes_per_package = 10;
  return spec;
}

void BM_XmiWrite(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string text = xmi::write_model(*model);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["elements"] = static_cast<double>(model->element_count());
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(bytes) * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_XmiWrite)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_XmiRead(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  std::string text = xmi::write_model(*model);
  for (auto _ : state) {
    support::DiagnosticSink sink;
    auto reread = xmi::read_model(text, sink);
    benchmark::DoNotOptimize(reread);
  }
  state.counters["elements"] = static_cast<double>(model->element_count());
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(text.size()) * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_XmiRead)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_XmiRoundTrip(benchmark::State& state) {
  auto model = uml::make_synthetic_model(spec_for(state.range(0)));
  for (auto _ : state) {
    support::DiagnosticSink sink;
    auto reread = xmi::read_model(xmi::write_model(*model), sink);
    benchmark::DoNotOptimize(reread);
  }
  state.counters["elements"] = static_cast<double>(model->element_count());
}
BENCHMARK(BM_XmiRoundTrip)->Arg(1)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
