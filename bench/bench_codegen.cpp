// E8 "Code generation": generated-lines/sec per backend (RTL, SystemC-style
// C++, SW C++, PlantUML) and the abstraction ratio: model elements in vs
// generated LoC out. Expected shape: all backends linear in module size;
// the abstraction ratio (LoC per element) is the design-productivity
// argument of the paper's introduction.
#include <benchmark/benchmark.h>

#include "codegen/plantuml.hpp"
#include "codegen/rtl.hpp"
#include "codegen/software.hpp"
#include "codegen/systemc.hpp"
#include "mda/transform.hpp"
#include "support/strings.hpp"
#include "uml/query.hpp"
#include "uml/synthetic.hpp"

namespace {

using namespace umlsoc;

/// A «HwModule» with N registers and a few ports.
struct ModuleFixture {
  uml::Model model{"M"};
  soc::SocProfile profile = soc::SocProfile::install(model);
  uml::Class* module = nullptr;
  std::size_t elements_before = 0;

  explicit ModuleFixture(int register_count) {
    module = &model.add_package("hw").add_class("Block");
    module->apply_stereotype(*profile.hw_module);
    module->add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile.clock);
    module->add_port("rst_n", uml::PortDirection::kIn);
    module->add_port("irq", uml::PortDirection::kOut);
    for (int i = 0; i < register_count; ++i) {
      uml::Property& reg =
          module->add_property("reg" + std::to_string(i), &model.primitive("Word", 32));
      reg.apply_stereotype(*profile.hw_register);
      reg.set_tagged_value(*profile.hw_register, "address",
                           "0x" + std::to_string(i * 4));
    }
    elements_before = model.element_count();
  }
};

void report_loc(benchmark::State& state, const std::string& last_output,
                std::size_t model_elements) {
  const double loc = static_cast<double>(support::count_nonempty_lines(last_output));
  state.counters["generated_loc"] = loc;
  state.counters["loc/s"] = benchmark::Counter(loc * static_cast<double>(state.iterations()),
                                               benchmark::Counter::kIsRate);
  state.counters["loc_per_element"] = loc / static_cast<double>(model_elements);
}

void BM_GenerateRtl(benchmark::State& state) {
  ModuleFixture fixture(static_cast<int>(state.range(0)));
  std::string text;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    text = codegen::generate_rtl_module(*fixture.module, fixture.profile, sink);
    benchmark::DoNotOptimize(text);
  }
  report_loc(state, text, fixture.model.element_count());
}
BENCHMARK(BM_GenerateRtl)->Arg(4)->Arg(16)->Arg(64);

void BM_GenerateSystemC(benchmark::State& state) {
  ModuleFixture fixture(static_cast<int>(state.range(0)));
  std::string text;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    text = codegen::generate_sim_module(*fixture.module, fixture.profile, sink);
    benchmark::DoNotOptimize(text);
  }
  report_loc(state, text, fixture.model.element_count());
}
BENCHMARK(BM_GenerateSystemC)->Arg(4)->Arg(16)->Arg(64);

void BM_GenerateSwClass(benchmark::State& state) {
  // SW PSM class with ASL bodies (the expensive path: parse + translate).
  uml::Model model("M");
  uml::Class& cls = model.add_package("app").add_class("Task");
  for (int i = 0; i < state.range(0); ++i) {
    uml::Operation& op = cls.add_operation("op" + std::to_string(i));
    op.set_body("self.acc := self.acc + " + std::to_string(i) +
                "; if (self.acc > 100) { self.acc := 0; } return self.acc;");
    op.set_return_type(model.primitive("Integer", 32));
  }
  std::string text;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    text = codegen::generate_sw_class(cls, sink);
    benchmark::DoNotOptimize(text);
  }
  report_loc(state, text, model.element_count());
}
BENCHMARK(BM_GenerateSwClass)->Arg(2)->Arg(8)->Arg(32);

void BM_GeneratePlantUml(benchmark::State& state) {
  uml::SyntheticSpec spec;
  spec.packages = static_cast<std::size_t>(state.range(0));
  auto model = uml::make_synthetic_model(spec);
  std::string text;
  for (auto _ : state) {
    text = codegen::to_plantuml_class_diagram(*model);
    benchmark::DoNotOptimize(text);
  }
  report_loc(state, text, model->element_count());
}
BENCHMARK(BM_GeneratePlantUml)->Arg(1)->Arg(8)->Arg(32);

void BM_FullFlowPimToRtl(benchmark::State& state) {
  // Abstraction ratio end-to-end: PIM -> HW PSM -> RTL for every module.
  ModuleFixture fixture(static_cast<int>(state.range(0)));
  std::size_t total_loc = 0;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    mda::MdaResult hw =
        mda::transform(fixture.model, mda::PlatformDescription::hardware(), sink);
    std::optional<soc::SocProfile> profile = soc::SocProfile::find(*hw.psm);
    total_loc = 0;
    for (uml::Class* cls : uml::collect<uml::Class>(*hw.psm)) {
      if (!cls->has_stereotype(*profile->hw_module)) continue;
      total_loc += support::count_nonempty_lines(
          codegen::generate_rtl_module(*cls, *profile, sink));
    }
    benchmark::DoNotOptimize(total_loc);
  }
  state.counters["pim_elements"] = static_cast<double>(fixture.elements_before);
  state.counters["rtl_loc"] = static_cast<double>(total_loc);
  state.counters["abstraction_ratio"] =
      static_cast<double>(total_loc) / static_cast<double>(fixture.elements_before);
}
BENCHMARK(BM_FullFlowPimToRtl)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
