// E3 "Statechart execution": events/sec vs hierarchy depth and orthogonal
// region count, plus the flat-vs-hierarchical dispatch comparison.
// Expected shape: hierarchical dispatch cost grows with depth and with the
// active-configuration size; the flattened table dispatches in ~O(1), so
// the gap widens with depth (the crossover argument for RTL generation).
#include <benchmark/benchmark.h>

#include "statechart/compile.hpp"
#include "statechart/flatten.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/synthetic.hpp"

namespace {

using namespace umlsoc;
using namespace umlsoc::statechart;

void BM_DispatchChain(benchmark::State& state) {
  auto machine = make_chain_machine(static_cast<std::size_t>(state.range(0)));
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"e"});
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchChain)->Arg(2)->Arg(16)->Arg(128);

void BM_DispatchNestedDepth(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"step"});
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchNestedDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DispatchOrthogonalRegions(benchmark::State& state) {
  auto machine = make_orthogonal_machine(static_cast<std::size_t>(state.range(0)), 4);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"tick"});  // Fires one transition per region.
  }
  state.counters["regions"] = static_cast<double>(state.range(0));
  state.counters["transitions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchOrthogonalRegions)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Interpreter-vs-AOT head-to-head (E16): same deep-hierarchy machine, same
// event stream, hierarchical tree walk vs precomputed plan-table stepper.
void BM_StatechartDispatch(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  StateMachineInstance instance(*machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"step"});
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StatechartDispatch)->Arg(4)->Arg(8);

void BM_CompiledDispatch(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  support::DiagnosticSink sink;
  auto compiled = compile(*machine, sink);
  if (compiled == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  compiled->start();
  for (auto _ : state) {
    compiled->dispatch({"step"});
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["plan_bytes"] = static_cast<double>(compiled->table_bytes());
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompiledDispatch)->Arg(4)->Arg(8);

void BM_CompileCost(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    support::DiagnosticSink sink;
    auto compiled = compile(*machine, sink);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileCost)->Arg(2)->Arg(8);

void BM_FlatDispatchNestedDepth(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  support::DiagnosticSink sink;
  auto flat = flatten(*machine, sink);
  if (!flat.has_value()) {
    state.SkipWithError("flatten failed");
    return;
  }
  FlatExecutor executor(*flat);
  for (auto _ : state) {
    executor.dispatch({"step"});
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlatDispatchNestedDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FlattenCost(benchmark::State& state) {
  auto machine = make_nested_machine(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    support::DiagnosticSink sink;
    auto flat = flatten(*machine, sink);
    benchmark::DoNotOptimize(flat);
  }
}
BENCHMARK(BM_FlattenCost)->Arg(2)->Arg(8);

void BM_HistoryRestoration(benchmark::State& state) {
  // pause/resume cycle through a deep-history pseudostate.
  StateMachine machine("hist");
  Region& top = machine.top();
  Pseudostate& initial = top.add_initial();
  State& work = top.add_state("Work");
  State& paused = top.add_state("Paused");
  top.add_transition(initial, work);
  Region& wr = work.add_region("r");
  Pseudostate& winit = wr.add_initial();
  Pseudostate& history = wr.add_pseudostate(VertexKind::kDeepHistory, "H");
  State* previous = nullptr;
  for (int i = 0; i < state.range(0); ++i) {
    State& s = wr.add_state("s" + std::to_string(i));
    if (previous == nullptr) {
      wr.add_transition(winit, s);
    } else {
      wr.add_transition(*previous, s).set_trigger("next");
    }
    previous = &s;
  }
  top.add_transition(work, paused).set_trigger("pause");
  top.add_transition(paused, history).set_trigger("resume");

  StateMachineInstance instance(machine);
  instance.set_trace_enabled(false);
  instance.start();
  for (auto _ : state) {
    instance.dispatch({"pause"});
    instance.dispatch({"resume"});
  }
  state.counters["substates"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HistoryRestoration)->Arg(4)->Arg(32);

}  // namespace
