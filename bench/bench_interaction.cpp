// E5 "MSC conformance": trace-check throughput vs fragment nesting, and the
// alt/par enumeration blowup. Expected shape: the position-set matcher is
// polynomial in trace length for alt/opt/loop; enumeration is exponential
// in alt depth (who wins: the matcher, by orders of magnitude at depth).
#include <benchmark/benchmark.h>

#include "interaction/trace.hpp"

namespace {

using namespace umlsoc;
using namespace umlsoc::interaction;

/// depth nested alt blocks, each choosing between two messages.
std::unique_ptr<Interaction> make_alt_tower(int depth) {
  auto diagram = std::make_unique<Interaction>("alts");
  Lifeline& a = diagram->add_lifeline("A");
  Lifeline& b = diagram->add_lifeline("B");
  for (int i = 0; i < depth; ++i) {
    Fragment& alt = diagram->add_combined(InteractionOperator::kAlt);
    alt.add_operand().add_message(a, b, "l" + std::to_string(i));
    alt.add_operand().add_message(a, b, "r" + std::to_string(i));
  }
  return diagram;
}

Trace left_trace(int depth) {
  Trace trace;
  for (int i = 0; i < depth; ++i) trace.push_back("A->B:l" + std::to_string(i));
  return trace;
}

void BM_ConformAltTower(benchmark::State& state) {
  auto diagram = make_alt_tower(static_cast<int>(state.range(0)));
  ConformanceChecker checker(*diagram);
  Trace trace = left_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.conforms(trace));
  }
  state.counters["alt_depth"] = static_cast<double>(state.range(0));
  state.counters["checks/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConformAltTower)->Arg(2)->Arg(6)->Arg(12)->Arg(20);

void BM_EnumerateAltTower(benchmark::State& state) {
  auto diagram = make_alt_tower(static_cast<int>(state.range(0)));
  EnumerateOptions options;
  options.max_traces = 1u << 20;
  std::size_t traces = 0;
  for (auto _ : state) {
    EnumerationResult result = enumerate_traces(*diagram, options);
    traces = result.traces.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["alt_depth"] = static_cast<double>(state.range(0));
  state.counters["traces"] = static_cast<double>(traces);  // 2^depth blowup.
}
BENCHMARK(BM_EnumerateAltTower)->Arg(2)->Arg(6)->Arg(12)->Unit(benchmark::kMicrosecond);

void BM_ConformLongLoop(benchmark::State& state) {
  Interaction diagram("loop");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& loop = diagram.add_combined(InteractionOperator::kLoop);
  loop.set_loop_bounds(0, -1);
  loop.add_operand().add_message(a, b, "beat");
  diagram.add_message(a, b, "stop");

  ConformanceChecker checker(diagram);
  Trace trace(static_cast<std::size_t>(state.range(0)), "A->B:beat");
  trace.push_back("A->B:stop");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.conforms(trace));
  }
  state.counters["trace_len"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_ConformLongLoop)->Arg(8)->Arg(64)->Arg(512);

void BM_ConformParBlock(benchmark::State& state) {
  Interaction diagram("par");
  Lifeline& a = diagram.add_lifeline("A");
  Lifeline& b = diagram.add_lifeline("B");
  Fragment& par = diagram.add_combined(InteractionOperator::kPar);
  for (int op = 0; op < state.range(0); ++op) {
    Operand& operand = par.add_operand();
    operand.add_message(a, b, "x" + std::to_string(op));
    operand.add_message(a, b, "y" + std::to_string(op));
  }
  ConformanceChecker checker(diagram);
  Trace trace;
  for (int op = 0; op < state.range(0); ++op) {
    trace.push_back("A->B:x" + std::to_string(op));
  }
  for (int op = 0; op < state.range(0); ++op) {
    trace.push_back("A->B:y" + std::to_string(op));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.conforms(trace));
  }
  state.counters["par_operands"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConformParBlock)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
