// E18 "Recovery orchestration": what the RecoveryCoordinator costs and
// buys. Three measurements on a worker rig (kernel + unbounded recorder +
// supervisor + value bank): wall overhead of background checkpointing at
// varying cadence vs an uncheckpointed baseline, restore_latest_good
// latency as the delta chain under the newest rung grows, and the
// root-cause binary search (restore + verify-replay per probe) as the
// window between the last good checkpoint and the failure widens.
// Expected shape: checkpoint overhead scales with write cadence and stays
// small at crash-recovery-useful intervals; restore latency grows roughly
// linearly with chain length; root-cause probes grow as log2(window) while
// per-probe cost grows with the replayed prefix.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "replay/recovery.hpp"
#include "replay/store.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace umlsoc;
using sim::SimTime;

/// The recovery_test worker shape: one self-rescheduling process mutating a
/// small checkpointed bank, so every rung carries real (if modest) state and
/// every activation lands in the recorder.
struct WorkerRig {
  static constexpr std::uint64_t kWorkerPs = 10'000;  // 10ns grid.

  sim::Kernel kernel;
  sim::EventRecorder recorder;
  sim::Supervisor supervisor;
  sim::ProcessId worker = sim::kInvalidProcess;
  std::uint64_t ticks = 0;
  std::uint64_t counter = 0;
  std::uint64_t corrupt_at_tick = 0;  ///< 0: never.

  WorkerRig()
      : recorder(/*ring_capacity=*/0),
        supervisor(kernel, "soc", sim::RestartStrategy::kOneForOne, sim::RestartPolicy{}) {
    worker = kernel.register_process([this] { work(); }, "bench.worker");
    kernel.set_recorder(&recorder);
  }

  void start() { kernel.schedule(SimTime(kWorkerPs), worker); }

  void work() {
    kernel.schedule(SimTime(kWorkerPs), worker);
    ++ticks;
    ++counter;
    if (corrupt_at_tick != 0 && ticks == corrupt_at_tick) counter += 1000;
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.recorder = &recorder;
    out.supervisors.push_back({"soc", &supervisor});
    out.banks.push_back(
        {"state",
         [this] {
           return std::vector<std::pair<std::string, std::uint64_t>>{{"ticks", ticks},
                                                                     {"counter", counter}};
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& sink) {
           for (const auto& [key, value] : values) {
             if (key == "ticks") {
               ticks = value;
             } else if (key == "counter") {
               counter = value;
             } else {
               sink.error("state", "unknown key '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

std::filesystem::path scratch_dir() {
  return std::filesystem::temp_directory_path() / "umlsoc-bench-recovery";
}

replay::CheckpointStoreConfig store_config(const std::filesystem::path& dir) {
  replay::CheckpointStoreConfig config;
  config.directory = dir;
  config.full_interval = 8;
  config.keep_fulls = 4;
  return config;
}

// --- Background checkpoint cadence ------------------------------------------------------

/// Arg: worker ticks per checkpoint interval; 0 runs the uncheckpointed
/// baseline. The horizon is fixed (2000 ticks), so the delta between rows is
/// the coordinator's tick + capture + encode + fsync-less write cost.
void BM_RecoveryCheckpointCadence(benchmark::State& state) {
  const std::uint64_t every = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kHorizonTicks = 2000;
  const std::filesystem::path dir = scratch_dir();
  support::DiagnosticSink sink;
  std::uint64_t written = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    WorkerRig rig;
    std::optional<replay::CheckpointStore> store;
    std::optional<replay::RecoveryCoordinator> coordinator;
    if (every != 0) {
      store.emplace(store_config(dir));
      replay::RecoveryPolicy policy;
      policy.checkpoint_interval = SimTime(every * WorkerRig::kWorkerPs);
      // Off the worker's 10ns grid so captures are never co-batch refused.
      policy.tick_interval = SimTime(every * WorkerRig::kWorkerPs / 4 + 1);
      coordinator.emplace(rig.kernel, *store, rig.targets(), policy);
      coordinator->start();
    }
    rig.start();
    state.ResumeTiming();
    rig.kernel.run(SimTime(kHorizonTicks * WorkerRig::kWorkerPs));
    state.PauseTiming();
    if (coordinator.has_value()) {
      written = coordinator->stats().written;
      bytes = store->stats().bytes_written;
    }
    state.ResumeTiming();
  }
  std::filesystem::remove_all(dir);
  state.counters["checkpoints"] = static_cast<double>(written);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetLabel(every == 0 ? "baseline" : "every-" + std::to_string(every) + "-ticks");
}
BENCHMARK(BM_RecoveryCheckpointCadence)
    ->Arg(0)
    ->Arg(10)
    ->Arg(40)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

// --- Restore latency vs chain length ----------------------------------------------------

/// Arg: deltas stacked on the base full. restore_latest_good validates the
/// whole chain, materializes it and applies the image, so latency is the
/// crash-recovery (and rollback) critical path.
void BM_RecoveryRestoreLatency(benchmark::State& state) {
  const std::uint64_t chain = static_cast<std::uint64_t>(state.range(0));
  const std::filesystem::path dir = scratch_dir();
  std::filesystem::remove_all(dir);
  support::DiagnosticSink sink;

  replay::CheckpointStoreConfig config = store_config(dir);
  config.full_interval = static_cast<unsigned>(chain) + 1;  // One base, then deltas.
  replay::CheckpointStore store(config);
  WorkerRig source;
  source.start();
  for (std::uint64_t i = 0; i <= chain; ++i) {
    source.kernel.run(SimTime((100 + i * 25) * WorkerRig::kWorkerPs));
    replay::CheckpointStore::WriteResult result;
    if (!store.checkpoint(source.targets(), result, sink)) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }

  WorkerRig victim;
  for (auto _ : state) {
    if (!store.restore_latest_good(victim.targets(), sink)) {
      state.SkipWithError("restore failed");
      return;
    }
    benchmark::DoNotOptimize(victim.ticks);
  }
  std::filesystem::remove_all(dir);
  state.counters["chain"] = static_cast<double>(chain + 1);
  state.counters["restores/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecoveryRestoreLatency)->Arg(0)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

// --- Root-cause binary search -----------------------------------------------------------

/// Arg: recorded activations between the last good rung and the failure
/// point. Each probe restores the rung and verify-replays a prefix, so the
/// search is O(log2 window) probes of O(window) replay each.
void BM_RecoveryRootCause(benchmark::State& state) {
  const std::uint64_t window = static_cast<std::uint64_t>(state.range(0));
  const std::filesystem::path dir = scratch_dir();
  std::filesystem::remove_all(dir);
  support::DiagnosticSink sink;

  WorkerRig rig;
  replay::CheckpointStore store(store_config(dir));
  replay::RecoveryCoordinator coordinator(rig.kernel, store, rig.targets(),
                                          replay::RecoveryPolicy{});
  rig.corrupt_at_tick = 100 + window / 2;
  rig.start();
  rig.kernel.run(SimTime(100 * WorkerRig::kWorkerPs));
  replay::CheckpointStore::WriteResult rung;
  if (!store.checkpoint(rig.targets(), rung, sink)) {
    state.SkipWithError("checkpoint failed");
    return;
  }
  rig.kernel.run(SimTime((100 + window) * WorkerRig::kWorkerPs));
  const std::vector<sim::RecordedEvent> expected = rig.recorder.log();
  const std::uint64_t failure_index = expected.size() - 1;

  std::uint64_t probes = 0;
  for (auto _ : state) {
    const replay::RecoveryCoordinator::RootCauseReport report = coordinator.root_cause(
        expected, failure_index, [&rig] { return rig.counter != rig.ticks; }, sink);
    if (!report.found) {
      state.SkipWithError("root cause not found");
      return;
    }
    probes = report.probes;
  }
  std::filesystem::remove_all(dir);
  state.counters["probes"] = static_cast<double>(probes);
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_RecoveryRootCause)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
