// E6 "ASL interpretation": parse cost and statements/sec for arithmetic,
// attribute, call and signal mixes. Expected shape: attribute access costs
// a map hop over locals; calls dominate when crossing the ObjectContext.
#include <benchmark/benchmark.h>

#include "asl/interpreter.hpp"
#include "asl/parser.hpp"

namespace {

using namespace umlsoc;
using namespace umlsoc::asl;

void BM_AslParse(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < state.range(0); ++i) {
    source += "x" + std::to_string(i) + " := " + std::to_string(i) + " * 3 + 1;";
  }
  for (auto _ : state) {
    support::DiagnosticSink sink;
    auto program = parse(source, sink);
    benchmark::DoNotOptimize(program);
  }
  state.counters["statements"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AslParse)->Arg(10)->Arg(100)->Arg(1000);

void run_program_benchmark(benchmark::State& state, const char* source) {
  support::DiagnosticSink sink;
  auto program = parse(source, sink);
  if (!program.has_value()) {
    state.SkipWithError(sink.str().c_str());
    return;
  }
  MapObject self;
  self.define_operation("work", [](const std::vector<Value>& args) {
    return Value{args.empty() ? 0 : args[0].as_int() + 1};
  });
  std::uint64_t statements = 0;
  for (auto _ : state) {
    Environment environment(self);
    Interpreter interpreter;
    interpreter.execute(*program, environment);
    statements = interpreter.stats().statements_executed;
  }
  state.counters["stmts/s"] = benchmark::Counter(
      static_cast<double>(statements) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_AslArithmeticLoop(benchmark::State& state) {
  run_program_benchmark(state,
                        "acc := 0; i := 0;"
                        "while (i < 1000) { acc := acc * 3 + i % 7; i := i + 1; }"
                        "return acc;");
}
BENCHMARK(BM_AslArithmeticLoop);

void BM_AslAttributeLoop(benchmark::State& state) {
  run_program_benchmark(state,
                        "self.acc := 0; i := 0;"
                        "while (i < 1000) { self.acc := self.acc + i; i := i + 1; }"
                        "return self.acc;");
}
BENCHMARK(BM_AslAttributeLoop);

void BM_AslCallLoop(benchmark::State& state) {
  run_program_benchmark(state,
                        "acc := 0; i := 0;"
                        "while (i < 1000) { acc := work(acc); i := i + 1; }"
                        "return acc;");
}
BENCHMARK(BM_AslCallLoop);

void BM_AslSignalBurst(benchmark::State& state) {
  support::DiagnosticSink sink;
  auto program = parse("i := 0; while (i < 100) { send Bus.req(i); i := i + 1; }", sink);
  for (auto _ : state) {
    MapObject self;  // Fresh: signal log grows per run.
    Environment environment(self);
    Interpreter interpreter;
    interpreter.execute(*program, environment);
    benchmark::DoNotOptimize(self.sent_signals().size());
  }
  state.counters["signals/s"] = benchmark::Counter(
      100.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AslSignalBurst);

}  // namespace
