// E9 "Simulation kernel": events/sec vs process and signal counts, and the
// delta-cycle overhead of signal chains. Expected shape: throughput is flat
// per event (O(log n) queue ops); long combinational chains cost one delta
// per stage.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "sim/signal.hpp"
#include "sim/supervise.hpp"

namespace {

using namespace umlsoc::sim;

void BM_TimedEventThroughput(benchmark::State& state) {
  // Self-rescheduling processes: the classic kernel stress. Each process
  // registers once and re-schedules its own handle (the steady-state hot
  // path: POD queue entries, no std::function per event).
  double total_events = 0;
  Kernel::Stats last_stats;
  for (auto _ : state) {
    state.PauseTiming();
    Kernel kernel;
    const int processes = static_cast<int>(state.range(0));
    std::vector<ProcessId> ids(static_cast<std::size_t>(processes), kInvalidProcess);
    int remaining = 100000;
    for (int p = 0; p < processes; ++p) {
      auto* kernel_ptr = &kernel;
      auto* remaining_ptr = &remaining;
      auto* id = &ids[static_cast<std::size_t>(p)];
      *id = kernel.register_process([kernel_ptr, remaining_ptr, id, p] {
        if (--(*remaining_ptr) > 0) {
          kernel_ptr->schedule(SimTime::ns(static_cast<std::uint64_t>(1 + p % 7)), *id);
        }
      });
      kernel.schedule(SimTime::ns(1), *id);
    }
    state.ResumeTiming();
    kernel.run();
    total_events += static_cast<double>(kernel.events_processed());
    last_stats = kernel.stats();
  }
  state.counters["events/s"] = benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["processes"] = static_cast<double>(state.range(0));
  state.counters["timed_peak"] = static_cast<double>(last_stats.timed_peak);
  state.counters["wheel_hits"] = static_cast<double>(last_stats.wheel_hits);
  state.counters["heap_hits"] = static_cast<double>(last_stats.heap_hits);
  state.counters["max_deltas"] = static_cast<double>(last_stats.max_deltas_per_instant);
}
BENCHMARK(BM_TimedEventThroughput)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SignalChainDeltas(benchmark::State& state) {
  // a0 -> a1 -> ... -> aN combinational chain: one write ripples N deltas.
  const int length = static_cast<int>(state.range(0));
  Kernel kernel;
  std::vector<std::unique_ptr<Signal<int>>> chain;
  for (int i = 0; i <= length; ++i) {
    chain.push_back(std::make_unique<Signal<int>>(kernel, "s" + std::to_string(i), 0));
  }
  for (int i = 0; i < length; ++i) {
    Signal<int>* from = chain[static_cast<std::size_t>(i)].get();
    Signal<int>* to = chain[static_cast<std::size_t>(i + 1)].get();
    from->value_changed().subscribe([from, to] { to->write(from->read() + 1); });
  }
  int stimulus = 0;
  const ProcessId stimulate =
      kernel.register_process([&] { chain[0]->write(++stimulus); });
  for (auto _ : state) {
    kernel.schedule(SimTime::ns(1), stimulate);
    kernel.run();
  }
  state.counters["chain"] = static_cast<double>(length);
  state.counters["deltas"] = static_cast<double>(kernel.delta_count());
}
BENCHMARK(BM_SignalChainDeltas)->Arg(4)->Arg(32)->Arg(256);

void BM_ClockFanout(benchmark::State& state) {
  // One clock driving N sensitive processes for 1000 edges. Subscribers
  // register once; every edge fans out as ProcessId pushes.
  double total_events = 0;
  Kernel::Stats last_stats;
  for (auto _ : state) {
    state.PauseTiming();
    Kernel kernel;
    Clock clock(kernel, "clk", SimTime::ns(10));
    long total = 0;
    for (int p = 0; p < state.range(0); ++p) {
      clock.signal().value_changed().subscribe([&total] { ++total; });
    }
    state.ResumeTiming();
    kernel.run(SimTime::us(5));  // 1000 edges.
    benchmark::DoNotOptimize(total);
    total_events += static_cast<double>(kernel.events_processed());
    last_stats = kernel.stats();
  }
  state.counters["events/s"] = benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["fanout"] = static_cast<double>(state.range(0));
  state.counters["timed_peak"] = static_cast<double>(last_stats.timed_peak);
}
BENCHMARK(BM_ClockFanout)->Arg(1)->Arg(32)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_BusTransactions(benchmark::State& state) {
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(static_cast<std::uint64_t>(state.range(0))));
  std::uint64_t mem[64] = {};
  bus.map_device(
      "ram", 0, sizeof(mem), [&](std::uint64_t a) { return mem[(a / 8) % 64]; },
      [&](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 64] = v; });
  std::uint64_t address = 0;
  for (auto _ : state) {
    bool done = false;
    bus.write(address % 512, address, [&done](BusStatus) { done = true; });
    kernel.run(kernel.now() + SimTime::ns(static_cast<std::uint64_t>(state.range(0))));
    benchmark::DoNotOptimize(done);
    address += 8;
  }
  state.counters["latency_ns"] = static_cast<double>(state.range(0));
  state.counters["xfers/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BusTransactions)->Arg(1)->Arg(8)->Arg(64);

void BM_BusTransactionsFaulty(benchmark::State& state) {
  // Same transaction loop as BM_BusTransactions (at 8ns latency) but on the
  // status-callback API, with an optional fault plan. Arg is the fault
  // probability in 1/10000 units: Arg(0) is the no-plan baseline (measures
  // that an uninstalled plan costs nothing), Arg(100) a 1% error rate
  // (EXPERIMENTS.md E12).
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(8));
  std::uint64_t mem[64] = {};
  bus.map_device(
      "ram", 0, sizeof(mem), [&](std::uint64_t a) { return mem[(a / 8) % 64]; },
      [&](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 64] = v; });
  FaultPlan plan(/*seed=*/1234);
  if (state.range(0) != 0) {
    FaultPlan::SiteConfig config;
    config.error_rate = static_cast<double>(state.range(0)) / 10000.0;
    plan.configure(FaultSite::kBusWrite, config);
    bus.install_fault_plan(&plan);
  }
  std::uint64_t address = 0;
  for (auto _ : state) {
    bool done = false;
    bus.write(address % 512, address, [&done](BusStatus) { done = true; });
    kernel.run(kernel.now() + SimTime::ns(8));
    benchmark::DoNotOptimize(done);
    address += 8;
  }
  state.counters["fault_bp"] = static_cast<double>(state.range(0));
  state.counters["injected"] = static_cast<double>(plan.total_injected());
  state.counters["xfers/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BusTransactionsFaulty)->Arg(0)->Arg(100);

void BM_BusBreaker(benchmark::State& state) {
  // Fault-free supervision overhead (EXPERIMENTS.md E15): the same
  // transaction loop issued through a BusMasterPort directly (Arg 0) vs
  // through a closed CircuitBreaker wrapping that port (Arg 1). No fault
  // plan, so the breaker never opens — the measured delta is the pure cost
  // of the closed-path bookkeeping (one state check, one window update per
  // completion).
  Kernel kernel;
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(8));
  std::uint64_t mem[64] = {};
  bus.map_device(
      "ram", 0, sizeof(mem), [&](std::uint64_t a) { return mem[(a / 8) % 64]; },
      [&](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 64] = v; });
  BusMasterPort port(kernel, bus, "dma");
  CircuitBreaker breaker(kernel, port, "dma");
  const bool through_breaker = state.range(0) != 0;
  std::uint64_t address = 0;
  for (auto _ : state) {
    bool done = false;
    auto completion = [&done](BusStatus) { done = true; };
    if (through_breaker) {
      breaker.write(address % 512, address, completion);
    } else {
      port.write(address % 512, address, completion);
    }
    kernel.run(kernel.now() + SimTime::ns(8));
    benchmark::DoNotOptimize(done);
    address += 8;
  }
  state.counters["breaker"] = through_breaker ? 1 : 0;
  state.counters["opens"] = static_cast<double>(breaker.stats().opens);
  state.counters["xfers/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BusBreaker)->Arg(0)->Arg(1);

void BM_KernelReplay(benchmark::State& state) {
  // Recorder overhead on the timed-event hot path (EXPERIMENTS.md E13).
  // Arg(0): no recorder (the detached cost is one null check per event).
  // Arg(1): full-log recording. Arg(2): bounded ring (flight-recorder
  // configuration, 4096 entries).
  constexpr int kEventsPerIter = 100000;
  double total_events = 0;
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Kernel kernel;
    EventRecorder recorder(state.range(0) == 2 ? 4096 : 0);
    if (state.range(0) != 0) kernel.set_recorder(&recorder);
    int remaining = kEventsPerIter;
    ProcessId id = kInvalidProcess;
    id = kernel.register_process([&] {
      if (--remaining > 0) kernel.schedule(SimTime::ns(1), id);
    });
    kernel.schedule(SimTime::ns(1), id);
    state.ResumeTiming();
    total_events += static_cast<double>(kernel.run());
    recorded = recorder.total_events();
  }
  state.counters["mode"] = static_cast<double>(state.range(0));
  state.counters["recorded"] = static_cast<double>(recorded);
  state.counters["events/s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelReplay)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BusReplay(benchmark::State& state) {
  // Recorder overhead on a realistic workload: bus transactions whose
  // per-event cost includes decode, data phase and completion callbacks.
  // Arg(0): recorder detached. Arg(1): 4096-entry ring attached (the
  // flight-recorder configuration for long adversarial runs).
  Kernel kernel;
  EventRecorder recorder(/*ring_capacity=*/4096);
  if (state.range(0) != 0) kernel.set_recorder(&recorder);
  MemoryMappedBus bus(kernel, "axi", SimTime::ns(8));
  std::uint64_t mem[64] = {};
  bus.map_device(
      "ram", 0, sizeof(mem), [&](std::uint64_t a) { return mem[(a / 8) % 64]; },
      [&](std::uint64_t a, std::uint64_t v) { mem[(a / 8) % 64] = v; });
  std::uint64_t address = 0;
  for (auto _ : state) {
    bool done = false;
    bus.write(address % 512, address, [&done](BusStatus) { done = true; });
    kernel.run(kernel.now() + SimTime::ns(8));
    benchmark::DoNotOptimize(done);
    address += 8;
  }
  state.counters["recorded"] = static_cast<double>(recorder.total_events());
  state.counters["xfers/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BusReplay)->Arg(0)->Arg(1);

}  // namespace
