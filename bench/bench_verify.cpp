// E14 "Explicit-state verification throughput": states explored per second
// over an N-instance handshake network (each instance Idle -req-> Wait
// -ack-> Done -reset-> Idle, interleaved freely: 3^N reachable states,
// 3N-entry alphabet). Expected shape: per-state cost is dominated by
// restore + deliver + capture + hash, so states/s is roughly flat in N
// while the explored space grows exponentially — the budget/bound knobs,
// not throughput, are what limit verification scale.
//
// E16 addendum: BM_VerifyStatesPerSec runs the network on AOT-compiled
// plan-table engines (the verifier's default hot path); the *Interpreted
// variant keeps the reference interpreter for the before/after comparison.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "statechart/compile.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"
#include "verify/explore.hpp"

namespace {

using namespace umlsoc;

std::unique_ptr<statechart::StateMachine> make_handshake() {
  auto machine = std::make_unique<statechart::StateMachine>("Handshake");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& wait = top.add_state("Wait");
  statechart::State& done = top.add_state("Done");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, wait).set_trigger("req");
  top.add_transition(wait, done).set_trigger("ack");
  top.add_transition(done, idle).set_trigger("reset");
  return machine;
}

void run_explore_loop(benchmark::State& state, verify::Network& network) {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  for (auto _ : state) {
    verify::ExploreResult result = verify::explore(network, {});
    benchmark::DoNotOptimize(result.stats.states);
    states += result.stats.states;
    transitions += result.stats.transitions;
  }
  state.counters["space"] = static_cast<double>(states / std::max<std::uint64_t>(
                                                             1, state.iterations()));
  state.counters["states/s"] =
      benchmark::Counter(static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(transitions), benchmark::Counter::kIsRate);
}

void add_handshake_choices(verify::Network& network, const std::string& name) {
  network.add_choice(name, statechart::Event("req"));
  network.add_choice(name, statechart::Event("ack"));
  network.add_choice(name, statechart::Event("reset"));
}

void BM_VerifyStatesPerSec(benchmark::State& state) {
  const auto instance_count = static_cast<std::size_t>(state.range(0));
  auto machine = make_handshake();
  std::vector<std::unique_ptr<statechart::CompiledMachine>> instances;
  verify::Network network;
  for (std::size_t i = 0; i < instance_count; ++i) {
    support::DiagnosticSink sink;
    auto compiled = statechart::compile(*machine, sink);
    if (compiled == nullptr) {
      state.SkipWithError("compile failed");
      return;
    }
    compiled->start();
    instances.push_back(std::move(compiled));
    const std::string name = "hs" + std::to_string(i);
    network.add_instance(name, *instances.back());
    add_handshake_choices(network, name);
  }
  run_explore_loop(state, network);
}
BENCHMARK(BM_VerifyStatesPerSec)->Arg(1)->Arg(4)->Arg(8)->Arg(10);

void BM_VerifyStatesPerSecInterpreted(benchmark::State& state) {
  const auto instance_count = static_cast<std::size_t>(state.range(0));
  auto machine = make_handshake();
  std::vector<std::unique_ptr<statechart::StateMachineInstance>> instances;
  verify::Network network;
  for (std::size_t i = 0; i < instance_count; ++i) {
    instances.push_back(std::make_unique<statechart::StateMachineInstance>(*machine));
    instances.back()->set_trace_enabled(false);
    instances.back()->start();
    const std::string name = "hs" + std::to_string(i);
    network.add_instance(name, *instances.back());
    add_handshake_choices(network, name);
  }
  run_explore_loop(state, network);
}
BENCHMARK(BM_VerifyStatesPerSecInterpreted)->Arg(1)->Arg(4)->Arg(8)->Arg(10);

}  // namespace
