// E10 "HW/SW partitioning": solution quality and runtime of greedy vs
// KL-style vs simulated annealing vs exhaustive on series-parallel task
// graphs. Expected shape: greedy is fastest but worst; KL and SA close the
// gap to the exact optimum (SA ~= exact on small graphs); exhaustive
// explodes exponentially and is only usable to n~20.
#include <benchmark/benchmark.h>

#include "activity/synthetic.hpp"
#include "codesign/partition.hpp"

namespace {

using namespace umlsoc;
using namespace umlsoc::codesign;

TaskGraph graph_for(std::int64_t actions, std::uint64_t seed = 11) {
  auto activity = activity::make_series_parallel(seed, static_cast<std::size_t>(actions));
  return extract_task_graph(*activity);
}

CostModel model_for(const TaskGraph& graph) {
  CostModel model;
  model.area_budget = graph.total_hw_area() * 0.5;
  model.boundary_penalty = 4.0;
  return model;
}

void report(benchmark::State& state, const PartitionResult& result) {
  state.counters["makespan"] = result.evaluation.makespan;
  state.counters["area"] = result.evaluation.area;
  state.counters["cost_evals"] = static_cast<double>(result.evaluations);
}

void BM_PartitionGreedy(benchmark::State& state) {
  TaskGraph graph = graph_for(state.range(0));
  CostModel model = model_for(graph);
  PartitionResult result;
  for (auto _ : state) {
    result = partition_greedy(graph, model);
    benchmark::DoNotOptimize(result);
  }
  report(state, result);
}
BENCHMARK(BM_PartitionGreedy)->Arg(8)->Arg(16)->Arg(40)->Arg(120);

void BM_PartitionKl(benchmark::State& state) {
  TaskGraph graph = graph_for(state.range(0));
  CostModel model = model_for(graph);
  PartitionResult result;
  for (auto _ : state) {
    result = partition_kl(graph, model);
    benchmark::DoNotOptimize(result);
  }
  report(state, result);
}
BENCHMARK(BM_PartitionKl)->Arg(8)->Arg(16)->Arg(40)->Arg(120)->Unit(benchmark::kMillisecond);

void BM_PartitionAnnealing(benchmark::State& state) {
  TaskGraph graph = graph_for(state.range(0));
  CostModel model = model_for(graph);
  PartitionResult result;
  for (auto _ : state) {
    result = partition_annealing(graph, model, 17, 20000);
    benchmark::DoNotOptimize(result);
  }
  report(state, result);
}
BENCHMARK(BM_PartitionAnnealing)
    ->Arg(8)
    ->Arg(16)
    ->Arg(40)
    ->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionExhaustive(benchmark::State& state) {
  TaskGraph graph = graph_for(state.range(0));
  CostModel model = model_for(graph);
  PartitionResult result;
  for (auto _ : state) {
    result = partition_exhaustive(graph, model);
    benchmark::DoNotOptimize(result);
  }
  report(state, result);
}
BENCHMARK(BM_PartitionExhaustive)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_TaskGraphExtraction(benchmark::State& state) {
  auto activity = activity::make_series_parallel(3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    TaskGraph graph = extract_task_graph(*activity);
    benchmark::DoNotOptimize(graph);
  }
  state.counters["actions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TaskGraphExtraction)->Arg(10)->Arg(100);

void BM_ParetoFront(benchmark::State& state) {
  TaskGraph graph = graph_for(state.range(0));
  CostModel model = model_for(graph);
  std::size_t points = 0;
  for (auto _ : state) {
    std::vector<ParetoPoint> front = pareto_front(graph, model);
    points = front.size();
    benchmark::DoNotOptimize(front);
  }
  state.counters["front_points"] = static_cast<double>(points);
}
BENCHMARK(BM_ParetoFront)->Arg(8)->Arg(14)->Unit(benchmark::kMillisecond);

}  // namespace
