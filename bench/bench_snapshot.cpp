// E17 "Binary checkpointing": encode/restore wall time for XML vs binary
// snapshots, and incremental delta size on a SoC-shaped rig (bus, fault
// plan, watchdog, supervisor, breaker, health registry, event recorder,
// value bank, N statecharts). Expected shape: binary encode and restore
// both >=5x faster than XML (no document tree, no text formatting or
// parsing), and a steady-state delta with <20% of sections dirty >=5x
// smaller than its full base.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "replay/binary.hpp"
#include "replay/snapshot.hpp"
#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "statechart/interpreter.hpp"
#include "statechart/model.hpp"

namespace {

using namespace umlsoc;
using sim::SimTime;

std::unique_ptr<statechart::StateMachine> make_machine() {
  auto machine = std::make_unique<statechart::StateMachine>("Bench");
  statechart::Region& top = machine->top();
  statechart::State& idle = top.add_state("Idle");
  statechart::State& busy = top.add_state("Busy");
  top.add_transition(top.add_initial(), idle);
  top.add_transition(idle, busy).set_trigger("go");
  top.add_transition(busy, idle).set_trigger("done");
  return machine;
}

/// A uart_soc-shaped rig scaled to `machine_count` statechart sections.
/// One ticker advances the whole SoC: watchdog kick, a bus read, one
/// machine dispatched round-robin — so between two checkpoints one tick
/// apart, only a fixed handful of sections is dirty regardless of scale.
struct BenchRig {
  static constexpr std::uint64_t kTickPs = 10000;

  sim::Kernel kernel;
  sim::MemoryMappedBus bus;
  sim::FaultPlan plan;
  sim::Watchdog watchdog;
  sim::EventRecorder recorder;
  sim::BusMasterPort port;
  sim::CircuitBreaker breaker;
  sim::Supervisor supervisor;
  sim::HealthRegistry health;
  std::unique_ptr<statechart::StateMachine> machine = make_machine();
  std::vector<std::unique_ptr<statechart::StateMachineInstance>> instances;
  std::vector<std::uint64_t> memory = std::vector<std::uint64_t>(64, 0);
  sim::ProcessId ticker = sim::kInvalidProcess;
  std::uint64_t ticks = 0;
  std::uint64_t read_sum = 0;

  explicit BenchRig(std::size_t machine_count)
      : bus(kernel, "mem", SimTime::ns(4)),
        plan(/*seed=*/7),
        watchdog(kernel, "dog", SimTime::us(10)),
        recorder(/*ring_capacity=*/0),
        port(kernel, bus, "port"),
        breaker(kernel, port, "dma"),
        supervisor(kernel, "soc") {
    for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = 0x1000 + i;
    bus.map_device(
        "ram", 0x0, memory.size() * 8,
        [this](std::uint64_t address) { return memory[address / 8]; },
        [this](std::uint64_t address, std::uint64_t value) { memory[address / 8] = value; });
    sim::FaultPlan::SiteConfig config;
    config.error_rate = 0.05;
    plan.configure(sim::FaultSite::kBusRead, config);
    bus.install_fault_plan(&plan);
    breaker.bind_health(&health, health.register_unit("dma"));
    supervisor.add_child("link", [] { return true; });
    for (std::size_t i = 0; i < machine_count; ++i) {
      instances.push_back(std::make_unique<statechart::StateMachineInstance>(*machine));
      statechart::StateMachineInstance& instance = *instances.back();
      instance.set_trace_enabled(false);
      instance.start();
      for (int v = 0; v < 16; ++v) {
        instance.set_variable("v" + std::to_string(v),
                              static_cast<std::int64_t>(i * 16 + static_cast<std::size_t>(v)));
      }
    }
    ticker = kernel.register_process([this] { tick(); }, "bench.ticker");
    kernel.set_recorder(&recorder);
    watchdog.arm();
    kernel.schedule(SimTime(kTickPs), ticker);
  }

  void tick() {
    ++ticks;
    watchdog.kick();
    bus.read((ticks % memory.size()) * 8,
             sim::MemoryMappedBus::ReadCompletion(
                 [this](sim::BusStatus, std::uint64_t value) { read_sum += value; }));
    statechart::StateMachineInstance& instance = *instances[ticks % instances.size()];
    instance.dispatch(statechart::Event{instance.is_in("Idle") ? "go" : "done",
                                        static_cast<std::int64_t>(ticks)});
    kernel.schedule(SimTime(kTickPs), ticker);
  }

  /// Advances by whole ticks, stopping at a bus-quiescent instant.
  void run_ticks(std::uint64_t count) {
    kernel.run(SimTime(kernel.now().picoseconds() + count * kTickPs + kTickPs / 2));
  }

  [[nodiscard]] replay::SnapshotTargets targets() {
    replay::SnapshotTargets out;
    out.kernel = &kernel;
    out.fault_plan = &plan;
    out.recorder = &recorder;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      out.machines.push_back({"m" + std::to_string(i), instances[i].get()});
    }
    out.buses.push_back({"mem", &bus});
    out.watchdogs.push_back({"dog", &watchdog});
    out.supervisors.push_back({"soc", &supervisor});
    out.breakers.push_back({"dma", &breaker});
    out.health.push_back({"health", &health});
    out.banks.push_back(
        {"memory",
         [this] {
           std::vector<std::pair<std::string, std::uint64_t>> values;
           for (std::size_t i = 0; i < memory.size(); ++i) {
             values.emplace_back("w" + std::to_string(i), memory[i]);
           }
           values.emplace_back("ticks", ticks);
           values.emplace_back("read-sum", read_sum);
           return values;
         },
         [this](const std::vector<std::pair<std::string, std::uint64_t>>& values,
                support::DiagnosticSink& sink) {
           for (const auto& [key, value] : values) {
             if (key == "ticks") {
               ticks = value;
             } else if (key == "read-sum") {
               read_sum = value;
             } else if (key.size() > 1 && key[0] == 'w') {
               memory[static_cast<std::size_t>(std::stoul(key.substr(1)))] = value;
             } else {
               sink.error("memory", "unknown key '" + key + "'");
               return false;
             }
           }
           return true;
         }});
    return out;
  }
};

constexpr std::size_t kMachines = 8;     // The uart_soc-scale rig.
constexpr std::uint64_t kWarmTicks = 200;  // Populates the event log.

void BM_SnapshotXmlEncode(benchmark::State& state) {
  BenchRig rig(kMachines);
  rig.run_ticks(kWarmTicks);
  std::string snapshot;
  support::DiagnosticSink sink;
  for (auto _ : state) {
    snapshot.clear();
    if (!replay::save_snapshot(rig.targets(), snapshot, sink)) state.SkipWithError("save failed");
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["bytes"] = static_cast<double>(snapshot.size());
  state.counters["snapshots/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotXmlEncode)->Unit(benchmark::kMicrosecond);

void BM_SnapshotBinaryEncode(benchmark::State& state) {
  BenchRig rig(kMachines);
  rig.run_ticks(kWarmTicks);
  std::string snapshot;
  support::DiagnosticSink sink;
  for (auto _ : state) {
    snapshot.clear();
    if (!replay::save_snapshot_binary(rig.targets(), snapshot, sink)) {
      state.SkipWithError("save failed");
    }
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["bytes"] = static_cast<double>(snapshot.size());
  state.counters["snapshots/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotBinaryEncode)->Unit(benchmark::kMicrosecond);

void BM_SnapshotXmlRestore(benchmark::State& state) {
  BenchRig source(kMachines);
  source.run_ticks(kWarmTicks);
  std::string snapshot;
  support::DiagnosticSink sink;
  if (!replay::save_snapshot(source.targets(), snapshot, sink)) {
    state.SkipWithError("save failed");
    return;
  }
  BenchRig target(kMachines);
  for (auto _ : state) {
    support::DiagnosticSink restore_sink;
    if (!replay::restore_snapshot(target.targets(), snapshot, restore_sink)) {
      state.SkipWithError("restore failed");
    }
  }
  state.counters["bytes"] = static_cast<double>(snapshot.size());
  state.counters["restores/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotXmlRestore)->Unit(benchmark::kMicrosecond);

void BM_SnapshotBinaryRestore(benchmark::State& state) {
  BenchRig source(kMachines);
  source.run_ticks(kWarmTicks);
  std::string snapshot;
  support::DiagnosticSink sink;
  if (!replay::save_snapshot_binary(source.targets(), snapshot, sink)) {
    state.SkipWithError("save failed");
    return;
  }
  BenchRig target(kMachines);
  for (auto _ : state) {
    support::DiagnosticSink restore_sink;
    if (!replay::restore_snapshot_binary(target.targets(), snapshot, restore_sink)) {
      state.SkipWithError("restore failed");
    }
  }
  state.counters["bytes"] = static_cast<double>(snapshot.size());
  state.counters["restores/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotBinaryRestore)->Unit(benchmark::kMicrosecond);

void BM_SnapshotIncremental(benchmark::State& state) {
  // Steady-state checkpointing: one tick of SoC progress per delta. With 32
  // machines only ~7 of the 41 sections (17%) are dirty per tick, so the
  // delta should be >=5x smaller than the full base it chains to.
  BenchRig rig(static_cast<std::size_t>(state.range(0)));
  rig.run_ticks(kWarmTicks);
  replay::IncrementalEncoder encoder;
  replay::IncrementalEncoder::Result full;
  support::DiagnosticSink sink;
  if (!encoder.encode(rig.targets(), /*force_full=*/true, full, sink)) {
    state.SkipWithError("full encode failed");
    return;
  }
  double delta_bytes = 0;
  double dirty = 0;
  double total = 0;
  double deltas = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rig.run_ticks(1);
    state.ResumeTiming();
    replay::IncrementalEncoder::Result delta;
    if (!encoder.encode(rig.targets(), /*force_full=*/false, delta, sink)) {
      state.SkipWithError("delta encode failed");
      break;
    }
    delta_bytes += static_cast<double>(delta.bytes.size());
    dirty += static_cast<double>(delta.sections_dirty);
    total += static_cast<double>(delta.sections_total);
    deltas += 1;
  }
  if (deltas > 0) {
    state.counters["full_bytes"] = static_cast<double>(full.bytes.size());
    state.counters["delta_bytes"] = delta_bytes / deltas;
    state.counters["size_ratio"] = static_cast<double>(full.bytes.size()) / (delta_bytes / deltas);
    state.counters["dirty_sections"] = dirty / deltas;
    state.counters["dirty_fraction"] = dirty / total;
  }
  state.counters["machines"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SnapshotIncremental)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
