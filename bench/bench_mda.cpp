// E7 "PIM -> PSM transformation": transformation time vs model size for the
// software and hardware platform mappings. Expected shape: ~linear in model
// size; the hardware mapping carries a constant-factor overhead (profile
// install, top synthesis, memory map).
#include <benchmark/benchmark.h>

#include "mda/transform.hpp"
#include "uml/query.hpp"
#include "uml/synthetic.hpp"

namespace {

using namespace umlsoc;

std::unique_ptr<uml::Model> make_profiled_pim(std::int64_t packages) {
  uml::SyntheticSpec spec;
  spec.packages = static_cast<std::size_t>(packages);
  spec.classes_per_package = 8;
  auto model = uml::make_synthetic_model(spec);
  // Tag half the classes as hardware modules with a register each.
  soc::SocProfile profile = soc::SocProfile::install(*model);
  std::size_t i = 0;
  for (uml::Class* cls : uml::collect<uml::Class>(*model)) {
    if (++i % 2 == 0) {
      cls->apply_stereotype(*profile.hw_module);
      uml::Property& reg = cls->add_property("ctrl_reg", &model->primitive("Word", 32));
      reg.apply_stereotype(*profile.hw_register);
      reg.set_tagged_value(*profile.hw_register, "address", "0x0");
    } else {
      cls->apply_stereotype(*profile.sw_task);
    }
  }
  return model;
}

void BM_TransformSoftware(benchmark::State& state) {
  auto pim = make_profiled_pim(state.range(0));
  std::size_t psm_elements = 0;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    mda::MdaResult result = mda::transform(*pim, mda::PlatformDescription::software(), sink);
    psm_elements = result.psm->element_count();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pim_elements"] = static_cast<double>(pim->element_count());
  state.counters["psm_elements"] = static_cast<double>(psm_elements);
}
BENCHMARK(BM_TransformSoftware)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TransformHardware(benchmark::State& state) {
  auto pim = make_profiled_pim(state.range(0));
  std::size_t windows = 0;
  for (auto _ : state) {
    support::DiagnosticSink sink;
    mda::MdaResult result = mda::transform(*pim, mda::PlatformDescription::hardware(), sink);
    windows = result.memory_map.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pim_elements"] = static_cast<double>(pim->element_count());
  state.counters["memory_windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_TransformHardware)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
