#include "codesign/taskgraph.hpp"

#include <unordered_map>
#include <unordered_set>

namespace umlsoc::codesign {

std::size_t TaskGraph::add_task(Task task) {
  tasks_.push_back(std::move(task));
  graph_.add_node();
  return tasks_.size() - 1;
}

void TaskGraph::add_precedence(std::size_t from, std::size_t to, double payload) {
  graph_.add_edge(from, to);
  payloads_.emplace_back(from, to, payload);
}

double TaskGraph::payload(std::size_t from, std::size_t to) const {
  for (const auto& [a, b, value] : payloads_) {
    if (a == from && b == to) return value;
  }
  return 0.0;
}

double TaskGraph::total_sw_cost() const {
  double total = 0;
  for (const Task& task : tasks_) total += task.sw_cost;
  return total;
}

double TaskGraph::total_hw_area() const {
  double total = 0;
  for (const Task& task : tasks_) total += task.hw_area;
  return total;
}

TaskGraph extract_task_graph(const activity::Activity& activity) {
  TaskGraph graph;
  std::unordered_map<const activity::ActivityNode*, std::size_t> index;

  for (const auto& node : activity.nodes()) {
    if (node->node_kind() != activity::NodeKind::kAction) continue;
    Task task;
    task.name = node->name();
    task.sw_cost = node->sw_latency();
    task.hw_cost = node->hw_latency();
    task.hw_area = node->hw_area();
    task.source = node.get();
    index[node.get()] = graph.add_task(std::move(task));
  }

  // For each action, walk forward through non-action nodes to the next
  // actions; each reached action is a direct successor.
  for (const auto& node : activity.nodes()) {
    if (node->node_kind() != activity::NodeKind::kAction) continue;
    std::unordered_set<const activity::ActivityNode*> seen;
    std::vector<const activity::ActivityNode*> frontier;
    for (const activity::ActivityEdge* edge : node->outgoing()) {
      frontier.push_back(&edge->target());
    }
    while (!frontier.empty()) {
      const activity::ActivityNode* current = frontier.back();
      frontier.pop_back();
      if (!seen.insert(current).second) continue;
      if (current->node_kind() == activity::NodeKind::kAction) {
        graph.add_precedence(index.at(node.get()), index.at(current), 1.0);
        continue;  // Stop at the first action on this path.
      }
      for (const activity::ActivityEdge* edge : current->outgoing()) {
        frontier.push_back(&edge->target());
      }
    }
  }
  return graph;
}

}  // namespace umlsoc::codesign
