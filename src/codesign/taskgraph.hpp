// Task graphs for HW/SW codesign, extracted from activity diagrams
// (paper §1/§4: UML-based codesign with "inherent interchangeability
// between hardware and software"). Action nodes become tasks carrying the
// sw/hw cost annotations; control structure collapses to precedence edges.
#pragma once

#include <string>
#include <vector>

#include "activity/model.hpp"
#include "support/graph.hpp"

namespace umlsoc::codesign {

struct Task {
  std::string name;
  double sw_cost = 1.0;   // Execution cycles on the processor.
  double hw_cost = 1.0;   // Execution cycles as a hardware block.
  double hw_area = 1.0;   // Gate cost when implemented in hardware.
  const activity::ActivityNode* source = nullptr;
};

/// Precedence graph over tasks. Edges carry a communication payload used to
/// price HW<->SW boundary crossings.
class TaskGraph {
 public:
  std::size_t add_task(Task task);
  void add_precedence(std::size_t from, std::size_t to, double payload = 1.0);

  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const support::Digraph& graph() const { return graph_; }
  [[nodiscard]] double payload(std::size_t from, std::size_t to) const;
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  [[nodiscard]] double total_sw_cost() const;
  [[nodiscard]] double total_hw_area() const;

 private:
  std::vector<Task> tasks_;
  support::Digraph graph_;
  std::vector<std::tuple<std::size_t, std::size_t, double>> payloads_;
};

/// Builds the task graph of `activity`: one task per action node; a
/// precedence a->b whenever b is reachable from a through non-action nodes
/// only. The activity must be acyclic over its actions.
[[nodiscard]] TaskGraph extract_task_graph(const activity::Activity& activity);

}  // namespace umlsoc::codesign
