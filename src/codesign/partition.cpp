#include "codesign/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

namespace umlsoc::codesign {

namespace {

double partition_area(const TaskGraph& graph, const Partition& partition) {
  double area = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (partition[i]) area += graph.tasks()[i].hw_area;
  }
  return area;
}

struct ScheduleOutput {
  std::vector<double> start;
  std::vector<double> finish;
  double makespan = 0.0;
};

ScheduleOutput list_schedule(const TaskGraph& graph, const Partition& partition,
                             const CostModel& model) {
  std::optional<std::vector<std::size_t>> order = graph.graph().topological_order();
  if (!order.has_value()) {
    throw std::invalid_argument("codesign: task graph has a cycle");
  }
  ScheduleOutput out;
  out.start.resize(graph.size(), 0.0);
  out.finish.resize(graph.size(), 0.0);
  double cpu_free = 0.0;

  for (std::size_t task : *order) {
    double ready = 0.0;
    for (std::size_t pred : graph.graph().predecessors(task)) {
      double arrival = out.finish[pred];
      if (partition[pred] != partition[task]) {
        arrival += graph.payload(pred, task) * model.boundary_penalty;
      }
      ready = std::max(ready, arrival);
    }
    const Task& info = graph.tasks()[task];
    if (partition[task]) {
      out.start[task] = ready;
      out.finish[task] = ready + info.hw_cost;
    } else {
      out.start[task] = std::max(ready, cpu_free);
      out.finish[task] = out.start[task] + info.sw_cost;
      cpu_free = out.finish[task];
    }
    out.makespan = std::max(out.makespan, out.finish[task]);
  }
  return out;
}

}  // namespace

Evaluation evaluate(const TaskGraph& graph, const Partition& partition,
                    const CostModel& model) {
  Evaluation result;
  result.area = partition_area(graph, partition);
  result.feasible = model.area_budget <= 0.0 || result.area <= model.area_budget;
  result.makespan = list_schedule(graph, partition, model).makespan;
  return result;
}

std::vector<ScheduledTask> build_schedule(const TaskGraph& graph, const Partition& partition,
                                          const CostModel& model) {
  ScheduleOutput schedule = list_schedule(graph, partition, model);
  std::vector<ScheduledTask> out;
  out.reserve(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    out.push_back(ScheduledTask{graph.tasks()[i].name, partition[i] != false,
                                schedule.start[i], schedule.finish[i]});
  }
  std::sort(out.begin(), out.end(), [](const ScheduledTask& a, const ScheduledTask& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.name < b.name;
  });
  return out;
}

PartitionResult partition_all_software(const TaskGraph& graph, const CostModel& model) {
  PartitionResult result;
  result.algorithm = "all-sw";
  result.partition.assign(graph.size(), false);
  result.evaluation = evaluate(graph, result.partition, model);
  result.evaluations = 1;
  return result;
}

PartitionResult partition_all_hardware(const TaskGraph& graph, const CostModel& model) {
  PartitionResult result;
  result.algorithm = "all-hw";
  result.partition.assign(graph.size(), true);
  result.evaluation = evaluate(graph, result.partition, model);
  result.evaluations = 1;
  return result;
}

PartitionResult partition_greedy(const TaskGraph& graph, const CostModel& model) {
  PartitionResult result;
  result.algorithm = "greedy";
  result.partition.assign(graph.size(), false);
  result.evaluation = evaluate(graph, result.partition, model);
  result.evaluations = 1;

  std::vector<std::size_t> candidates(graph.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    const Task& ta = graph.tasks()[a];
    const Task& tb = graph.tasks()[b];
    double gain_a = (ta.sw_cost - ta.hw_cost) / std::max(ta.hw_area, 1e-9);
    double gain_b = (tb.sw_cost - tb.hw_cost) / std::max(tb.hw_area, 1e-9);
    return gain_a > gain_b;
  });

  for (std::size_t task : candidates) {
    Partition trial = result.partition;
    trial[task] = true;
    Evaluation trial_eval = evaluate(graph, trial, model);
    ++result.evaluations;
    if (!trial_eval.feasible) continue;
    if (trial_eval.makespan <= result.evaluation.makespan) {
      result.partition = std::move(trial);
      result.evaluation = trial_eval;
    }
  }
  return result;
}

PartitionResult partition_kl(const TaskGraph& graph, const CostModel& model) {
  PartitionResult result;
  result.algorithm = "kl";
  result.partition.assign(graph.size(), false);
  result.evaluation = evaluate(graph, result.partition, model);
  result.evaluations = 1;

  bool improved = true;
  while (improved) {
    improved = false;
    std::size_t best_flip = graph.size();
    Evaluation best_eval = result.evaluation;
    for (std::size_t task = 0; task < graph.size(); ++task) {
      Partition trial = result.partition;
      trial[task] = !trial[task];
      Evaluation trial_eval = evaluate(graph, trial, model);
      ++result.evaluations;
      if (!trial_eval.feasible) continue;
      if (trial_eval.makespan < best_eval.makespan) {
        best_eval = trial_eval;
        best_flip = task;
      }
    }
    if (best_flip != graph.size()) {
      result.partition[best_flip] = !result.partition[best_flip];
      result.evaluation = best_eval;
      improved = true;
    }
  }
  return result;
}

PartitionResult partition_annealing(const TaskGraph& graph, const CostModel& model,
                                    std::uint64_t seed, std::size_t iterations) {
  PartitionResult result;
  result.algorithm = "sa";
  support::Rng rng(seed);

  Partition current(graph.size(), false);
  Evaluation current_eval = evaluate(graph, current, model);
  result.partition = current;
  result.evaluation = current_eval;
  result.evaluations = 1;

  if (graph.size() == 0) return result;

  double temperature = std::max(1.0, graph.total_sw_cost() / 4.0);
  const double cooling = std::pow(0.01 / temperature, 1.0 / static_cast<double>(iterations));

  for (std::size_t i = 0; i < iterations; ++i) {
    std::size_t task = static_cast<std::size_t>(rng.below(graph.size()));
    Partition trial = current;
    trial[task] = !trial[task];
    Evaluation trial_eval = evaluate(graph, trial, model);
    ++result.evaluations;

    // Infeasible states are priced, not forbidden, so the walk can cross.
    auto score = [&](const Evaluation& e) {
      double over = model.area_budget > 0.0 ? std::max(0.0, e.area - model.area_budget) : 0.0;
      return e.makespan + 10.0 * over;
    };
    double delta = score(trial_eval) - score(current_eval);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      current = std::move(trial);
      current_eval = trial_eval;
      if (current_eval.feasible &&
          (!result.evaluation.feasible ||
           current_eval.makespan < result.evaluation.makespan)) {
        result.partition = current;
        result.evaluation = current_eval;
      }
    }
    temperature *= cooling;
  }
  return result;
}

PartitionResult partition_exhaustive(const TaskGraph& graph, const CostModel& model) {
  if (graph.size() > 24) {
    throw std::invalid_argument("codesign: exhaustive search limited to 24 tasks");
  }
  PartitionResult result;
  result.algorithm = "exhaustive";
  result.partition.assign(graph.size(), false);
  result.evaluation = evaluate(graph, result.partition, model);
  result.evaluations = 1;

  const std::uint64_t combinations = 1ULL << graph.size();
  for (std::uint64_t mask = 1; mask < combinations; ++mask) {
    Partition trial(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i) trial[i] = ((mask >> i) & 1) != 0;
    Evaluation trial_eval = evaluate(graph, trial, model);
    ++result.evaluations;
    if (!trial_eval.feasible) continue;
    if (!result.evaluation.feasible || trial_eval.makespan < result.evaluation.makespan) {
      result.partition = std::move(trial);
      result.evaluation = trial_eval;
    }
  }
  return result;
}

std::vector<ParetoPoint> pareto_front(const TaskGraph& graph, const CostModel& model) {
  if (graph.size() > 20) {
    throw std::invalid_argument("codesign: Pareto enumeration limited to 20 tasks");
  }
  CostModel unconstrained = model;
  unconstrained.area_budget = 0.0;  // The front itself explores all areas.

  std::vector<ParetoPoint> points;
  const std::uint64_t combinations = 1ULL << graph.size();
  for (std::uint64_t mask = 0; mask < combinations; ++mask) {
    Partition partition(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i) partition[i] = ((mask >> i) & 1) != 0;
    Evaluation eval = evaluate(graph, partition, unconstrained);
    points.push_back(ParetoPoint{eval.area, eval.makespan, std::move(partition)});
  }

  std::sort(points.begin(), points.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.area != b.area) return a.area < b.area;
    return a.makespan < b.makespan;
  });
  std::vector<ParetoPoint> front;
  double best_makespan = std::numeric_limits<double>::infinity();
  for (ParetoPoint& point : points) {
    if (point.makespan < best_makespan) {
      best_makespan = point.makespan;
      front.push_back(std::move(point));
    }
  }
  return front;
}

}  // namespace umlsoc::codesign
