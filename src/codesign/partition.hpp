// HW/SW partitioning over a TaskGraph: cost model, schedule-based makespan
// evaluation, and four algorithms (greedy ratio, Kernighan–Lin-style moves,
// simulated annealing, exhaustive) compared in benchmark E10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codesign/taskgraph.hpp"
#include "support/rng.hpp"

namespace umlsoc::codesign {

/// Mapping decision per task: true => hardware.
using Partition = std::vector<bool>;

struct CostModel {
  /// Total gate budget for hardware tasks; 0 means unlimited.
  double area_budget = 0.0;
  /// Extra latency added per unit payload crossing the HW/SW boundary.
  double boundary_penalty = 5.0;
};

struct Evaluation {
  double makespan = 0.0;
  double area = 0.0;
  bool feasible = true;
};

/// List-schedule evaluation: hardware tasks run fully parallel (dataflow),
/// software tasks serialize on one processor in topological order; edges
/// crossing the boundary add payload * boundary_penalty latency.
/// The task graph must be acyclic.
[[nodiscard]] Evaluation evaluate(const TaskGraph& graph, const Partition& partition,
                                  const CostModel& model);

/// Per-task schedule from the same evaluation (for reports and examples).
struct ScheduledTask {
  std::string name;
  bool hw = false;
  double start = 0.0;
  double finish = 0.0;
};
[[nodiscard]] std::vector<ScheduledTask> build_schedule(const TaskGraph& graph,
                                                        const Partition& partition,
                                                        const CostModel& model);

struct PartitionResult {
  Partition partition;
  Evaluation evaluation;
  std::uint64_t evaluations = 0;  // Cost-function invocations.
  std::string algorithm;
};

[[nodiscard]] PartitionResult partition_all_software(const TaskGraph& graph,
                                                     const CostModel& model);
[[nodiscard]] PartitionResult partition_all_hardware(const TaskGraph& graph,
                                                     const CostModel& model);

/// Moves tasks to hardware by descending (sw_cost - hw_cost) / hw_area
/// until the area budget is exhausted; keeps a move only if it helps.
[[nodiscard]] PartitionResult partition_greedy(const TaskGraph& graph, const CostModel& model);

/// Hill climbing with single-task flips until no flip improves (KL-style
/// pass structure).
[[nodiscard]] PartitionResult partition_kl(const TaskGraph& graph, const CostModel& model);

/// Simulated annealing over random flips (geometric cooling); deterministic
/// in `seed`.
[[nodiscard]] PartitionResult partition_annealing(const TaskGraph& graph,
                                                  const CostModel& model,
                                                  std::uint64_t seed = 1,
                                                  std::size_t iterations = 20000);

/// Exact optimum by enumeration; requires graph.size() <= 24.
[[nodiscard]] PartitionResult partition_exhaustive(const TaskGraph& graph,
                                                   const CostModel& model);

/// (area, makespan) Pareto front over all 2^n partitions (n <= 20).
struct ParetoPoint {
  double area = 0.0;
  double makespan = 0.0;
  Partition partition;
};
[[nodiscard]] std::vector<ParetoPoint> pareto_front(const TaskGraph& graph,
                                                    const CostModel& model);

}  // namespace umlsoc::codesign
