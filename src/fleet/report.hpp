// FleetReport: per-rig outcomes reduced to fleet-level SLO metrics.
//
// The rollup answers the traffic-serving questions: what fraction of rigs
// finished healthy (availability), what fraction of traffic was delivered,
// how often the resilience machinery had to act (timeouts, retries,
// breaker trips, restarts, rollbacks), what checkpointing cost on top of
// the run, and how much work a crash could lose at worst. Every aggregate
// except the wall-clock fields is a deterministic reduction of
// deterministic per-seed outcomes, so two fleet runs over the same seed
// set produce identical fingerprints no matter how many workers executed
// them — the property the fleet determinism gate pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/driver.hpp"  // FleetStats, RigOutcome


namespace umlsoc::fleet {

struct FleetReport {
  std::uint64_t rigs_total = 0;
  std::uint64_t rigs_ok = 0;
  std::uint64_t rigs_failed = 0;
  std::vector<std::uint64_t> failed_seeds;  ///< Seed order (result-index order).
  std::vector<std::uint64_t> poisoned_seeds;  ///< Quarantined by the process pool.

  SloCounters slo;          ///< Summed across rigs.
  HealthRollup health;      ///< Final per-unit health counts across rigs.
  sim::Kernel::Stats kernel;  ///< reduce()d across rigs.

  /// Per-fault-template slice of the rollup: how each swept fault
  /// configuration fared across its share of the fleet. Indexed by
  /// RigOutcome::fault_template (dense; deterministic because template
  /// assignment is index-based). Single-template fleets get one entry.
  struct TemplateRollup {
    std::uint64_t rigs = 0;
    std::uint64_t rigs_ok = 0;
    SloCounters slo;
    [[nodiscard]] double availability() const {
      return rigs == 0 ? 1.0 : static_cast<double>(rigs_ok) / static_cast<double>(rigs);
    }
  };
  std::vector<TemplateRollup> templates;

  std::uint64_t sim_time_ps_total = 0;
  std::uint64_t sim_time_ps_max = 0;
  std::uint64_t events_total = 0;

  /// Host-time fields — nondeterministic, excluded from fingerprint().
  std::uint64_t rig_wall_ns_total = 0;  ///< Sum of per-rig wall times (~CPU time).

  // --- Derived SLO metrics (deterministic) -----------------------------------

  /// Fraction of rigs that finished ok (1.0 for an empty fleet).
  [[nodiscard]] double availability() const;
  /// delivered / (delivered + lost); 1.0 with no traffic.
  [[nodiscard]] double delivery_rate() const;
  /// timeouts / transactions; 0.0 with no transactions.
  [[nodiscard]] double timeout_rate() const;
  /// errors_unhandled / errors_raised; 0.0 with none raised.
  [[nodiscard]] double unhandled_error_rate() const;
  /// Fraction of fleet-wide units that ended healthy; 1.0 with no units.
  [[nodiscard]] double unit_health_rate() const;
  /// Host time spent encoding/restoring checkpoints relative to total rig
  /// wall time — the checkpoint tax on the fleet. Nondeterministic (wall).
  [[nodiscard]] double checkpoint_overhead() const;

  /// Reduces outcomes in index order. Deterministic given deterministic
  /// outcomes: same seeds, same report, regardless of how they were run.
  [[nodiscard]] static FleetReport aggregate(const std::vector<RigOutcome>& outcomes);

  /// Canonical serialization of every deterministic field — the value the
  /// jobs=1 vs jobs=N gate compares. Wall-time fields are excluded.
  [[nodiscard]] std::string fingerprint() const;

  /// Multi-line human rollup ("fleet SLO rollup: ..."); includes the
  /// wall-time-derived throughput numbers when `stats` is provided.
  [[nodiscard]] std::string str(const FleetStats* stats = nullptr) const;
};

}  // namespace umlsoc::fleet
