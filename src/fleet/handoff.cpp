#include "fleet/handoff.hpp"

#include <algorithm>
#include <cstring>

namespace umlsoc::fleet {

namespace {

constexpr std::uint32_t kFrameMagic = 0x55465031;  // "UFP1"
constexpr std::size_t kHeaderSize = 4 + 1 + 4;
constexpr std::uint32_t kMaxPayload = 16u << 20;  // Desync guard, not a real limit.
constexpr std::uint32_t kResultVersion = 1;

// Little-endian scalar writer/reader. The pipe never leaves the host, but a
// fixed byte order keeps encoded results comparable as bytes (and the codec
// testable against pinned vectors).
void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_string(std::string& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out += value;
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& value) {
    if (offset_ + 1 > data_.size()) return fail();
    value = static_cast<std::uint8_t>(data_[offset_++]);
    return true;
  }
  bool u32(std::uint32_t& value) {
    if (offset_ + 4 > data_.size()) return fail();
    value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[offset_++]))
               << shift;
    }
    return true;
  }
  bool u64(std::uint64_t& value) {
    if (offset_ + 8 > data_.size()) return fail();
    value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[offset_++]))
               << shift;
    }
    return true;
  }
  bool str(std::string& value) {
    std::uint32_t size = 0;
    if (!u32(size)) return false;
    if (offset_ + size > data_.size()) return fail();
    value.assign(data_.data() + offset_, size);
    offset_ += size;
    return true;
  }
  [[nodiscard]] bool exhausted() const { return ok_ && offset_ == data_.size(); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  std::string_view data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

// Field-order helpers shared by the encode and decode sides so the two can
// never drift: each visits every scalar of the nested structs in one fixed
// order.
template <typename Slo, typename Fn>
void visit_slo(Slo& slo, Fn&& fn) {
  for (auto* field :
       {&slo.requests, &slo.delivered, &slo.lost, &slo.transactions, &slo.timeouts,
        &slo.retries, &slo.recovered, &slo.exhausted, &slo.errors_raised,
        &slo.errors_unhandled, &slo.restarts, &slo.escalations, &slo.give_ups,
        &slo.watchdog_trips, &slo.breaker_opens, &slo.breaker_closes,
        &slo.breaker_fast_failed, &slo.rollbacks, &slo.checkpoints_written,
        &slo.checkpoint_write_faults, &slo.rungs_quarantined, &slo.ladder_recoveries,
        &slo.crash_recoveries, &slo.seeds_poisoned, &slo.lost_work_ps_max}) {
    fn(*field);
  }
}

template <typename Stats, typename Fn>
void visit_kernel(Stats& stats, Fn&& fn) {
  for (auto* field :
       {&stats.timed_peak, &stats.max_deltas_per_instant, &stats.wheel_hits,
        &stats.heap_hits, &stats.cascades, &stats.processes_registered,
        &stats.collapsed_notifications, &stats.snapshot.encodes,
        &stats.snapshot.restores, &stats.snapshot.bytes_written,
        &stats.snapshot.sections_dirty, &stats.snapshot.sections_total,
        &stats.snapshot.encode_wall_ns, &stats.snapshot.restore_wall_ns}) {
    fn(*field);
  }
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  if (corrupt_) return;
  // Compact lazily: only when the consumed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameReader::next(Frame& out) {
  if (corrupt_) return false;
  if (buffer_.size() - consumed_ < kHeaderSize) return false;
  Cursor cursor(std::string_view(buffer_).substr(consumed_));
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint32_t length = 0;
  if (!cursor.u32(magic) || !cursor.u8(type) || !cursor.u32(length)) return false;
  if (magic != kFrameMagic || length > kMaxPayload ||
      type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    corrupt_ = true;
    return false;
  }
  if (buffer_.size() - consumed_ < kHeaderSize + length) return false;
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buffer_, consumed_ + kHeaderSize, length);
  consumed_ += kHeaderSize + length;
  return true;
}

std::string encode_hello(std::uint64_t pid) {
  std::string out;
  put_u64(out, pid);
  return out;
}

bool decode_hello(std::string_view payload, std::uint64_t& pid) {
  Cursor cursor(payload);
  return cursor.u64(pid) && cursor.exhausted();
}

std::string encode_start_seed(std::uint64_t index, std::uint32_t attempt) {
  std::string out;
  put_u64(out, index);
  put_u32(out, attempt);
  return out;
}

bool decode_start_seed(std::string_view payload, std::uint64_t& index,
                       std::uint32_t& attempt) {
  Cursor cursor(payload);
  return cursor.u64(index) && cursor.u32(attempt) && cursor.exhausted();
}

std::string encode_assign(const std::vector<Grant>& grants) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(grants.size()));
  for (const Grant& grant : grants) {
    put_u64(out, grant.index);
    put_u64(out, grant.seed);
    put_u32(out, grant.attempt);
    put_u32(out, grant.fault_template);
  }
  return out;
}

bool decode_assign(std::string_view payload, std::vector<Grant>& grants) {
  Cursor cursor(payload);
  std::uint32_t count = 0;
  if (!cursor.u32(count)) return false;
  grants.clear();
  grants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Grant grant;
    if (!cursor.u64(grant.index) || !cursor.u64(grant.seed) ||
        !cursor.u32(grant.attempt) || !cursor.u32(grant.fault_template)) {
      return false;
    }
    grants.push_back(grant);
  }
  return cursor.exhausted();
}

std::string encode_result(std::uint64_t index, const RigOutcome& outcome) {
  std::string out;
  put_u32(out, kResultVersion);
  put_u64(out, index);
  put_u64(out, outcome.seed);
  out.push_back(outcome.ok ? 1 : 0);
  put_string(out, outcome.failure);
  put_u64(out, outcome.sim_time_ps);
  put_u64(out, outcome.events_processed);
  visit_slo(outcome.slo, [&out](const std::uint64_t& field) { put_u64(out, field); });
  put_u64(out, outcome.health.healthy);
  put_u64(out, outcome.health.degraded);
  put_u64(out, outcome.health.failed);
  visit_kernel(outcome.kernel,
               [&out](const std::uint64_t& field) { put_u64(out, field); });
  put_u32(out, outcome.fault_template);
  put_u64(out, outcome.wall_ns);
  put_u32(out, outcome.attempts);
  put_u64(out, outcome.resumed_from_seq);
  return out;
}

bool decode_result(std::string_view payload, std::uint64_t& index, RigOutcome& outcome) {
  Cursor cursor(payload);
  std::uint32_t version = 0;
  if (!cursor.u32(version) || version != kResultVersion) return false;
  if (!cursor.u64(index)) return false;
  outcome = RigOutcome{};
  std::uint8_t ok = 0;
  if (!cursor.u64(outcome.seed) || !cursor.u8(ok) || !cursor.str(outcome.failure) ||
      !cursor.u64(outcome.sim_time_ps) || !cursor.u64(outcome.events_processed)) {
    return false;
  }
  outcome.ok = ok != 0;
  visit_slo(outcome.slo, [&cursor](std::uint64_t& field) { (void)cursor.u64(field); });
  if (!cursor.u64(outcome.health.healthy) || !cursor.u64(outcome.health.degraded) ||
      !cursor.u64(outcome.health.failed)) {
    return false;
  }
  visit_kernel(outcome.kernel,
               [&cursor](std::uint64_t& field) { (void)cursor.u64(field); });
  if (!cursor.u32(outcome.fault_template) || !cursor.u64(outcome.wall_ns) ||
      !cursor.u32(outcome.attempts) || !cursor.u64(outcome.resumed_from_seq)) {
    return false;
  }
  return cursor.exhausted();
}

// --- HandoffLedger ------------------------------------------------------------

HandoffLedger::HandoffLedger(std::uint64_t total, std::uint32_t quarantine_threshold)
    : seeds_(total), quarantine_threshold_(std::max<std::uint32_t>(1, quarantine_threshold)) {}

std::vector<std::uint64_t> HandoffLedger::claim(unsigned worker, std::uint64_t max) {
  std::vector<std::uint64_t> granted;
  while (granted.size() < max && !requeue_.empty()) {
    const std::uint64_t index = requeue_.front();
    requeue_.erase(requeue_.begin());
    SeedRecord& record = seeds_[index];
    record.state = SeedState::kAssigned;
    record.owner = worker;
    granted.push_back(index);
    ++redispatches_;
  }
  while (granted.size() < max && cursor_ < seeds_.size()) {
    const std::uint64_t index = cursor_++;
    SeedRecord& record = seeds_[index];
    record.state = SeedState::kAssigned;
    record.owner = worker;
    granted.push_back(index);
  }
  return granted;
}

bool HandoffLedger::start(unsigned worker, std::uint64_t index) {
  if (index >= seeds_.size()) return false;
  SeedRecord& record = seeds_[index];
  if (record.state != SeedState::kAssigned || record.owner != worker) return false;
  record.state = SeedState::kInFlight;
  return true;
}

bool HandoffLedger::accept(unsigned worker, std::uint64_t index) {
  if (index >= seeds_.size()) return false;
  SeedRecord& record = seeds_[index];
  if (record.state != SeedState::kAssigned && record.state != SeedState::kInFlight) {
    return false;  // Duplicate or never granted: drop.
  }
  if (record.owner != worker) return false;
  record.state = SeedState::kDone;
  ++record.attempt;
  ++done_;
  return true;
}

HandoffLedger::DeathReport HandoffLedger::on_worker_death(unsigned worker) {
  DeathReport report;
  for (std::uint64_t index = 0; index < seeds_.size(); ++index) {
    SeedRecord& record = seeds_[index];
    if (record.owner != worker) continue;
    if (record.state == SeedState::kInFlight) {
      // The seed the worker was executing when it died gets the blame.
      ++record.kills;
      ++record.attempt;
      if (record.kills >= quarantine_threshold_) {
        record.state = SeedState::kPoisoned;
        ++poisoned_;
        report.poisoned.push_back(index);
        continue;
      }
      record.state = SeedState::kPending;
      requeue_.push_back(index);
      report.requeued.push_back(index);
    } else if (record.state == SeedState::kAssigned) {
      // Granted but never started: re-dispatch without blame.
      record.state = SeedState::kPending;
      requeue_.push_back(index);
      report.requeued.push_back(index);
    }
  }
  return report;
}

}  // namespace umlsoc::fleet
