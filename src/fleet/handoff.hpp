// Checkpoint-based work handoff for the cross-process fleet: the wire
// protocol the process pool speaks over its worker pipes, and the ledger
// that makes re-dispatch after a worker death safe.
//
// Protocol. Each direction of a worker pipe carries a stream of framed
// messages: [magic u32][type u8][length u32][payload]. The parent sends
// kAssign (a batch of seed grants) and kShutdown; a worker sends kHello
// once after exec-less fork, kHeartbeat on a timer thread, kStartSeed
// before it begins a grant and kResult after. Frames are written whole
// under a worker-side mutex (heartbeat thread and runner share the pipe),
// so the parent never sees two messages interleaved; a worker killed
// mid-write leaves at most one truncated frame at the end of the stream,
// which FrameReader simply never completes. Every payload integer is
// little-endian and the RigOutcome codec is versioned, so a result
// round-trips bit-exactly — the property that keeps a process-isolated
// fleet's report fingerprint identical to an in-process run.
//
// Ledger. HandoffLedger owns the at-most-once outcome accounting: every
// seed moves Pending -> Assigned -> InFlight -> Done, a worker death
// requeues its unfinished grants (re-dispatch), a result for a seed that
// is already Done is rejected (the pool drains a dead worker's pipe before
// requeueing, so a result that raced the kill is accepted once and only
// once), and a seed whose execution killed `quarantine_threshold`
// consecutive workers is poisoned instead of requeued — the pool
// synthesizes a failed outcome for it and the fleet moves on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/outcome.hpp"

namespace umlsoc::fleet {

// --- Wire protocol ------------------------------------------------------------

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker -> parent: ready (payload: u64 pid).
  kHeartbeat = 2,  ///< worker -> parent: liveness beat (empty payload).
  kStartSeed = 3,  ///< worker -> parent: beginning a grant (u64 index, u32 attempt).
  kResult = 4,     ///< worker -> parent: u64 index + encoded RigOutcome.
  kAssign = 5,     ///< parent -> worker: batch of Grants.
  kShutdown = 6,   ///< parent -> worker: drain and _exit(0) (empty payload).
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// One unit of work the parent hands a worker.
struct Grant {
  std::uint64_t index = 0;  ///< Dense result-slot index.
  std::uint64_t seed = 0;
  std::uint32_t attempt = 0;         ///< 0 first dispatch, +1 per re-dispatch.
  std::uint32_t fault_template = 0;  ///< index % templates, stamped by the driver.
};

/// Serializes one frame (header + payload) ready for write().
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame decoder over a pipe byte stream. Feed bytes as they
/// arrive; next() yields complete frames in order. A bad magic or an
/// implausible length marks the stream corrupt — the connection is
/// unusable from that point and the worker should be treated as dead.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size);
  /// Extracts the next complete frame; false when none is buffered (or the
  /// stream is corrupt). A truncated tail (worker killed mid-write) is
  /// simply never completed and is discarded with the reader.
  [[nodiscard]] bool next(Frame& out);
  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

// Payload codecs. Decoders return false on truncated or malformed input
// (never read out of bounds, never throw).
[[nodiscard]] std::string encode_hello(std::uint64_t pid);
[[nodiscard]] bool decode_hello(std::string_view payload, std::uint64_t& pid);
[[nodiscard]] std::string encode_start_seed(std::uint64_t index, std::uint32_t attempt);
[[nodiscard]] bool decode_start_seed(std::string_view payload, std::uint64_t& index,
                                     std::uint32_t& attempt);
[[nodiscard]] std::string encode_assign(const std::vector<Grant>& grants);
[[nodiscard]] bool decode_assign(std::string_view payload, std::vector<Grant>& grants);

/// Versioned bit-exact RigOutcome codec: every field, including the
/// host-side ones (wall_ns, attempts, resumed_from_seq) — the parent, not
/// the wire, decides what feeds determinism checks.
[[nodiscard]] std::string encode_result(std::uint64_t index, const RigOutcome& outcome);
[[nodiscard]] bool decode_result(std::string_view payload, std::uint64_t& index,
                                 RigOutcome& outcome);

// --- At-most-once work ledger -------------------------------------------------

class HandoffLedger {
 public:
  enum class SeedState : std::uint8_t {
    kPending,   ///< Never dispatched (or requeued and awaiting a claim).
    kAssigned,  ///< Granted to a worker, not yet started.
    kInFlight,  ///< Worker reported kStartSeed.
    kDone,      ///< Outcome accepted (exactly once).
    kPoisoned,  ///< Quarantined: killed `quarantine_threshold` workers.
  };

  HandoffLedger() = default;
  HandoffLedger(std::uint64_t total, std::uint32_t quarantine_threshold);

  /// Claims up to `max` grants for `worker`: requeued seeds first (oldest
  /// death first, so a re-dispatched seed never starves behind fresh work),
  /// then fresh seeds in index order. Claimed seeds become kAssigned.
  [[nodiscard]] std::vector<std::uint64_t> claim(unsigned worker, std::uint64_t max);

  /// Worker reported it began `index`. False if the worker does not hold
  /// that grant (stale frame) — the pool treats that as protocol corruption.
  [[nodiscard]] bool start(unsigned worker, std::uint64_t index);

  /// Accepts the outcome for `index` at most once. False means the result
  /// must be dropped: duplicate (already done/poisoned) or not granted to
  /// this worker.
  [[nodiscard]] bool accept(unsigned worker, std::uint64_t index);

  struct DeathReport {
    std::vector<std::uint64_t> requeued;  ///< Unfinished grants, back to pending.
    std::vector<std::uint64_t> poisoned;  ///< Newly quarantined (not requeued).
  };

  /// Settles a dead worker's grants. The in-flight seed (started, no result)
  /// is charged one worker kill; at `quarantine_threshold` kills it is
  /// poisoned, otherwise requeued with the rest of the unfinished grants,
  /// each with attempt + 1.
  [[nodiscard]] DeathReport on_worker_death(unsigned worker);

  /// Attempt counter the next dispatch of `index` should carry.
  [[nodiscard]] std::uint32_t attempt(std::uint64_t index) const {
    return seeds_[index].attempt;
  }
  [[nodiscard]] std::uint32_t kills(std::uint64_t index) const {
    return seeds_[index].kills;
  }
  [[nodiscard]] SeedState state(std::uint64_t index) const {
    return seeds_[index].state;
  }

  /// True when every seed is Done or Poisoned — the fleet run is complete.
  [[nodiscard]] bool settled() const { return done_ + poisoned_ == seeds_.size(); }
  /// True when no unfinished work remains to claim (all assigned or settled).
  [[nodiscard]] bool drained() const { return requeue_.empty() && cursor_ == seeds_.size(); }
  [[nodiscard]] std::uint64_t done() const { return done_; }
  [[nodiscard]] std::uint64_t poisoned() const { return poisoned_; }
  [[nodiscard]] std::uint64_t redispatches() const { return redispatches_; }

 private:
  struct SeedRecord {
    SeedState state = SeedState::kPending;
    unsigned owner = 0;        ///< Valid while kAssigned/kInFlight.
    std::uint32_t attempt = 0; ///< Dispatch count charged so far.
    std::uint32_t kills = 0;   ///< Workers that died while this seed was in flight.
  };

  std::vector<SeedRecord> seeds_;
  std::vector<std::uint64_t> requeue_;  ///< FIFO of seeds to re-dispatch.
  std::uint64_t cursor_ = 0;            ///< Next fresh (never-dispatched) index.
  std::uint64_t done_ = 0;
  std::uint64_t poisoned_ = 0;
  std::uint64_t redispatches_ = 0;
  std::uint32_t quarantine_threshold_ = 3;
};

}  // namespace umlsoc::fleet
