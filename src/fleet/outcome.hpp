// Per-rig fleet results: the data one independently-seeded rig contributes
// to the fleet-level SLO rollup.
//
// A fleet run executes thousands of isolated SoC rigs (one kernel + fault
// plan + supervision tree + checkpoint ladder each) across worker threads.
// Every rig reduces its run to a RigOutcome: a verdict, the SLO-relevant
// counters (traffic, resilience, supervision, recovery), a HealthRegistry
// rollup and a reduced kernel Stats record. Outcomes are pure functions of
// the rig's seed — nothing in them may depend on which worker ran the rig
// or in what order — which is what makes fleet results bit-identical across
// `--jobs` counts. Host wall time is the one deliberate exception; it lives
// in a clearly-marked field excluded from the determinism fingerprint.
#pragma once

#include <cstdint>
#include <string>

#include "sim/kernel.hpp"
#include "sim/supervise.hpp"

namespace umlsoc::fleet {

/// Identifies one rig of a fleet run: its dense index into the result
/// vector and the seed it runs under. `worker` is the worker slot that
/// happened to execute the rig — observability only; rig behavior and
/// outcome content must never read it.
struct RigJob {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  unsigned worker = 0;

  /// Re-dispatch count: 0 on the first execution, incremented every time the
  /// seed is handed to a new worker after the previous one died. Runners may
  /// use it to look for a predecessor's checkpoint ladder (handoff resume);
  /// deterministic outcome content must never depend on it.
  std::uint32_t attempt = 0;

  /// Fault-plan template slot, assigned by the driver as `index % templates`
  /// so the same rig gets the same template regardless of worker count or
  /// isolation mode. Clients map it to a concrete fault configuration
  /// (error/drop/crash-rate sweeps across the fleet).
  std::uint32_t fault_template = 0;
};

/// SLO-relevant counters a rig contributes to the fleet rollup. All fields
/// are simulation-deterministic (derived from kernel/bus/supervision state,
/// never from host clocks), so per-seed values are identical across thread
/// counts and the fleet totals reduce deterministically.
struct SloCounters {
  // Traffic served by the rig's workload.
  std::uint64_t requests = 0;   ///< Bytes/operations the workload attempted.
  std::uint64_t delivered = 0;  ///< Completed OK.
  std::uint64_t lost = 0;       ///< Completed with error (incl. fast-fails).

  // Bus/port resilience.
  std::uint64_t transactions = 0;  ///< Port-level transactions issued.
  std::uint64_t timeouts = 0;      ///< Attempts that timed out.
  std::uint64_t retries = 0;       ///< Retry attempts issued.
  std::uint64_t recovered = 0;     ///< Transactions that recovered via retry.
  std::uint64_t exhausted = 0;     ///< Transactions that exhausted retries.

  // Statechart error channel.
  std::uint64_t errors_raised = 0;
  std::uint64_t errors_unhandled = 0;

  // Supervision.
  std::uint64_t restarts = 0;        ///< Successful supervised restarts.
  std::uint64_t escalations = 0;     ///< Supervisor escalations to a parent.
  std::uint64_t give_ups = 0;        ///< Terminal supervisor give-ups.
  std::uint64_t watchdog_trips = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_fast_failed = 0;
  std::uint64_t rollbacks = 0;       ///< Coordinator-driven rollback recoveries.

  // Checkpointing and recovery.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_write_faults = 0;  ///< Injected write faults taken.
  std::uint64_t rungs_quarantined = 0;        ///< Corrupt rungs skipped on restore.
  std::uint64_t ladder_recoveries = 0;        ///< restore_latest_good successes.
  std::uint64_t crash_recoveries = 0;         ///< Crash-twin coordinator recoveries.
  std::uint64_t lost_work_ps_max = 0;         ///< Worst crash-recovery lost work.

  // Cross-process fleet.
  std::uint64_t seeds_poisoned = 0;  ///< Seeds quarantined after killing K workers.

  /// Element-wise accumulation (max for lost_work_ps_max).
  void add(const SloCounters& other);

  friend bool operator==(const SloCounters&, const SloCounters&) = default;
};

/// HealthRegistry rollup: unit counts per final health state. A fleet
/// aggregates these across rigs — "how many units fleet-wide ended
/// degraded" is the availability signal the per-rig boolean all_healthy()
/// cannot express.
struct HealthRollup {
  std::uint64_t healthy = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;

  /// Counts `registry`'s units into this rollup.
  void add(const sim::HealthRegistry& registry);
  void add(const HealthRollup& other);

  [[nodiscard]] std::uint64_t units() const { return healthy + degraded + failed; }
  friend bool operator==(const HealthRollup&, const HealthRollup&) = default;
};

/// Kernel Stats reduction: counters sum, high-water marks take the max.
/// Used both to fold a multi-kernel rig (e.g. the chaos soak's reference /
/// restored / crash legs) into one record and to fold rig records into the
/// fleet report.
void reduce(sim::Kernel::Stats& into, const sim::Kernel::Stats& stats);

/// Everything one rig reports back to the fleet. Aside from `wall_ns`
/// (host time, nondeterministic by nature) every field must be a pure
/// function of `seed`.
struct RigOutcome {
  std::uint64_t seed = 0;
  bool ok = false;
  std::string failure;  ///< Empty iff ok.

  std::uint64_t sim_time_ps = 0;         ///< Simulated time the rig covered.
  std::uint64_t events_processed = 0;    ///< Kernel callbacks across the rig's kernels.
  SloCounters slo;
  HealthRollup health;
  sim::Kernel::Stats kernel;  ///< reduce()d across the rig's kernels.

  /// Fault-plan template the rig ran under (RigJob::fault_template, stamped
  /// by the driver). Deterministic: assignment is index-based.
  std::uint32_t fault_template = 0;

  std::uint64_t wall_ns = 0;  ///< Host time; excluded from determinism checks.

  // Cross-process execution accounting. Which worker ran a rig, how many
  // times it was dispatched and whether a re-dispatch resumed from a dead
  // predecessor's checkpoint ladder all depend on host scheduling and kill
  // timing — like wall_ns they are excluded from determinism checks.
  std::uint32_t attempts = 0;          ///< Dispatches it took to land this outcome.
  std::uint64_t resumed_from_seq = 0;  ///< Handoff resume rung (0 = ran from scratch).

  /// Deterministic equality: every field except wall_ns. The fleet
  /// determinism gate compares per-seed outcomes across thread counts with
  /// this, not operator==.
  [[nodiscard]] bool deterministic_equal(const RigOutcome& other) const;
};

}  // namespace umlsoc::fleet
