// ProcPool: supervised worker-process pool behind the FleetDriver interface.
//
// The parent forks N workers (no exec — each child inherits the rig runner
// closure and runs grants exactly like a worker thread would), connected by
// a pipe pair per worker speaking the framed handoff protocol. The parent
// is a single-threaded poll() event loop: it assigns seed chunks, collects
// results into the slot-indexed outcome vector, and supervises liveness —
// a worker that exits nonzero, is SIGKILLed, or goes silent past the
// heartbeat deadline (or sits on one seed past the per-seed watchdog) is
// reaped, its pipe drained for results that raced the death, its unfinished
// grants re-dispatched through the HandoffLedger, and a replacement forked
// with exponential backoff. Re-dispatched rigs re-run from the seed alone;
// runners that keep a checkpoint ladder on disk may resume from it (the
// grant carries the attempt number so the runner knows to look).
//
// Failure policy. A seed whose execution kills `quarantine_threshold`
// consecutive workers is poisoned: the pool synthesizes a failed outcome
// for it (counted in SloCounters::seeds_poisoned) instead of re-dispatching
// forever. If deaths degrade the pool below `min_workers` usable slots, the
// pool stops forking and finishes the remaining rigs inline in the parent —
// a degraded but complete run beats a wedged one.
//
// Determinism. Outcomes are pure functions of (seed, fault_template), both
// assigned by index; the ledger guarantees at-most-once acceptance per
// seed. A process-isolated run therefore produces the same slot-indexed
// outcome vector — and the same FleetReport fingerprint — as an in-process
// run, even with workers dying mid-shard, PROVIDED no seed is poisoned: a
// quarantined seed gets a synthesized failed outcome (and a poisoned-seeds
// fingerprint line) that only exists under process isolation, so parity
// gates must assert poisoned == 0 before comparing fingerprints.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/driver.hpp"
#include "fleet/outcome.hpp"

namespace umlsoc::fleet {

/// Runs one fleet across forked worker processes. Constructed per run by
/// FleetDriver when `config.isolation == Isolation::kProcess`.
class ProcPool {
 public:
  ProcPool(const FleetConfig& config, unsigned jobs, std::uint64_t chunk);

  /// Executes the fleet; fills `stats` (including FleetStats::pool) and
  /// returns outcomes indexed like `seeds`. Invokes `progress` from the
  /// supervisor thread only (already serialized).
  std::vector<RigOutcome> run(const std::vector<std::uint64_t>& seeds,
                              const FleetDriver::RigRunner& runner,
                              const FleetDriver::Progress& progress,
                              FleetStats& stats);

 private:
  FleetConfig config_;
  unsigned jobs_ = 1;
  std::uint64_t chunk_ = 1;
};

}  // namespace umlsoc::fleet
