#include "fleet/driver.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "fleet/procpool.hpp"

namespace umlsoc::fleet {

void SloCounters::add(const SloCounters& other) {
  requests += other.requests;
  delivered += other.delivered;
  lost += other.lost;
  transactions += other.transactions;
  timeouts += other.timeouts;
  retries += other.retries;
  recovered += other.recovered;
  exhausted += other.exhausted;
  errors_raised += other.errors_raised;
  errors_unhandled += other.errors_unhandled;
  restarts += other.restarts;
  escalations += other.escalations;
  give_ups += other.give_ups;
  watchdog_trips += other.watchdog_trips;
  breaker_opens += other.breaker_opens;
  breaker_closes += other.breaker_closes;
  breaker_fast_failed += other.breaker_fast_failed;
  rollbacks += other.rollbacks;
  checkpoints_written += other.checkpoints_written;
  checkpoint_write_faults += other.checkpoint_write_faults;
  rungs_quarantined += other.rungs_quarantined;
  ladder_recoveries += other.ladder_recoveries;
  crash_recoveries += other.crash_recoveries;
  seeds_poisoned += other.seeds_poisoned;
  lost_work_ps_max = std::max(lost_work_ps_max, other.lost_work_ps_max);
}

void HealthRollup::add(const sim::HealthRegistry& registry) {
  for (sim::HealthRegistry::UnitId unit = 0; unit < registry.unit_count(); ++unit) {
    switch (registry.health(unit)) {
      case sim::UnitHealth::kHealthy: ++healthy; break;
      case sim::UnitHealth::kDegraded: ++degraded; break;
      case sim::UnitHealth::kFailed: ++failed; break;
    }
  }
}

void HealthRollup::add(const HealthRollup& other) {
  healthy += other.healthy;
  degraded += other.degraded;
  failed += other.failed;
}

void reduce(sim::Kernel::Stats& into, const sim::Kernel::Stats& stats) {
  into.timed_peak = std::max(into.timed_peak, stats.timed_peak);
  into.max_deltas_per_instant =
      std::max(into.max_deltas_per_instant, stats.max_deltas_per_instant);
  into.wheel_hits += stats.wheel_hits;
  into.heap_hits += stats.heap_hits;
  into.cascades += stats.cascades;
  into.processes_registered += stats.processes_registered;
  into.collapsed_notifications += stats.collapsed_notifications;
  into.snapshot.encodes += stats.snapshot.encodes;
  into.snapshot.restores += stats.snapshot.restores;
  into.snapshot.bytes_written += stats.snapshot.bytes_written;
  into.snapshot.sections_dirty += stats.snapshot.sections_dirty;
  into.snapshot.sections_total += stats.snapshot.sections_total;
  into.snapshot.encode_wall_ns += stats.snapshot.encode_wall_ns;
  into.snapshot.restore_wall_ns += stats.snapshot.restore_wall_ns;
}

bool RigOutcome::deterministic_equal(const RigOutcome& other) const {
  // Kernel wall-clock fields are host-time measurements of deterministic
  // work; everything else in Stats is simulation-deterministic.
  const auto deterministic_kernel = [](sim::Kernel::Stats stats) {
    stats.snapshot.encode_wall_ns = 0;
    stats.snapshot.restore_wall_ns = 0;
    return stats;
  };
  const sim::Kernel::Stats mine = deterministic_kernel(kernel);
  const sim::Kernel::Stats theirs = deterministic_kernel(other.kernel);
  return seed == other.seed && ok == other.ok && failure == other.failure &&
         sim_time_ps == other.sim_time_ps &&
         events_processed == other.events_processed && slo == other.slo &&
         health == other.health && fault_template == other.fault_template &&
         mine.timed_peak == theirs.timed_peak &&
         mine.max_deltas_per_instant == theirs.max_deltas_per_instant &&
         mine.wheel_hits == theirs.wheel_hits && mine.heap_hits == theirs.heap_hits &&
         mine.cascades == theirs.cascades &&
         mine.processes_registered == theirs.processes_registered &&
         mine.collapsed_notifications == theirs.collapsed_notifications &&
         mine.snapshot.encodes == theirs.snapshot.encodes &&
         mine.snapshot.restores == theirs.snapshot.restores &&
         mine.snapshot.bytes_written == theirs.snapshot.bytes_written &&
         mine.snapshot.sections_dirty == theirs.snapshot.sections_dirty &&
         mine.snapshot.sections_total == theirs.snapshot.sections_total;
}

FleetDriver::FleetDriver(FleetConfig config) : config_(config) {}

unsigned FleetDriver::resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<RigOutcome> FleetDriver::run_range(std::uint64_t seed_base,
                                               std::uint64_t count,
                                               const RigRunner& runner) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(seed_base + i);
  return run(seeds, runner);
}

std::vector<RigOutcome> FleetDriver::run(const std::vector<std::uint64_t>& seeds,
                                         const RigRunner& runner) {
  const std::uint64_t total = seeds.size();
  const unsigned jobs =
      static_cast<unsigned>(std::min<std::uint64_t>(resolve_jobs(config_.jobs),
                                                    std::max<std::uint64_t>(total, 1)));
  std::uint64_t chunk = config_.chunk;
  if (chunk == 0) {
    // ~4 chunks per worker: enough slack to back-fill a slow worker without
    // hammering the claim cursor.
    chunk = std::max<std::uint64_t>(1, total / (4 * static_cast<std::uint64_t>(jobs)));
  }

  std::vector<RigOutcome> outcomes(total);
  stats_ = FleetStats{};
  stats_.jobs = jobs;
  stats_.chunk = chunk;
  stats_.rigs = total;
  stats_.rigs_per_worker.assign(jobs, 0);
  if (total == 0) return outcomes;

  const std::uint32_t templates =
      config_.fault_templates == 0 ? 1 : config_.fault_templates;

  if (config_.isolation == Isolation::kProcess) {
    // Supervised worker-process pool: same slot-indexed outcomes, same
    // index-based template assignment, so the report fingerprint matches
    // the thread path bit for bit.
    const auto wall_start = std::chrono::steady_clock::now();
    ProcPool pool(config_, jobs, chunk);
    outcomes = pool.run(seeds, runner, progress_, stats_);
    stats_.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    return outcomes;
  }

  // Shared fleet state: the chunk cursor (the only hot-path shared write),
  // a completion counter and a mutex serializing the progress hook.
  std::atomic<std::uint64_t> next_chunk{0};
  std::atomic<std::uint64_t> chunks_claimed{0};
  std::atomic<std::uint64_t> done{0};
  std::mutex progress_mutex;

  const auto run_one = [&](std::uint64_t index, unsigned worker) {
    RigJob job;
    job.index = index;
    job.seed = seeds[index];
    job.worker = worker;
    job.fault_template = static_cast<std::uint32_t>(index % templates);
    RigOutcome& slot = outcomes[index];
    const auto start = std::chrono::steady_clock::now();
    try {
      slot = runner(job);
    } catch (const std::exception& error) {
      slot = RigOutcome{};
      slot.ok = false;
      slot.failure = std::string("uncaught exception: ") + error.what();
    } catch (...) {
      slot = RigOutcome{};
      slot.ok = false;
      slot.failure = "uncaught exception (non-standard)";
    }
    slot.seed = job.seed;
    slot.fault_template = job.fault_template;
    if (slot.attempts == 0) slot.attempts = 1;
    if (slot.wall_ns == 0) {
      slot.wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    ++stats_.rigs_per_worker[worker];
    const std::uint64_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress_(job, slot, completed, total);
    }
  };

  const auto worker_body = [&](unsigned worker) {
    for (;;) {
      const std::uint64_t begin =
          next_chunk.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= total) return;
      chunks_claimed.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t end = std::min(total, begin + chunk);
      for (std::uint64_t index = begin; index < end; ++index) run_one(index, worker);
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  if (jobs == 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned worker = 0; worker < jobs; ++worker) {
      workers.emplace_back(worker_body, worker);
    }
    for (std::thread& thread : workers) thread.join();
  }
  stats_.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  stats_.chunks_claimed = chunks_claimed.load(std::memory_order_relaxed);
  return outcomes;
}

}  // namespace umlsoc::fleet
