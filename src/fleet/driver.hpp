// FleetDriver: sharded multi-rig simulation across worker threads.
//
// The driver turns "run this rig once per seed" into a fleet run: seeds are
// split into contiguous chunks, worker threads claim chunks from a single
// atomic cursor (chunked work queue — claiming is one fetch_add, so the
// steady state has no locks and no shared mutable state beyond the cursor),
// and each claimed rig runs start-to-finish on its worker with everything
// it owns — kernel, fault plan, supervision tree, checkpoint ladder —
// constructed, used and destroyed on that thread. Rigs never share state,
// which is both the scaling story (no cross-rig synchronization on the hot
// path) and the determinism story (a rig's outcome is a pure function of
// its seed, so per-seed results are bit-identical across `jobs` counts and
// chunk sizes; results land in a pre-sized slot vector indexed by rig,
// never appended in completion order).
//
// Isolation contract for rig runners: the runner may read shared immutable
// inputs (models, profiles, configs built before run() is called) but must
// not write anything outside its own rig or its result slot. Filesystem
// scratch must be partitioned by seed. The TSAN CI job enforces this
// contract on the real chaos-soak client.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fleet/outcome.hpp"

namespace umlsoc::fleet {

/// How rigs are isolated from one another. Threads share the address space
/// (fast, but one rig that corrupts memory or aborts takes the fleet down);
/// processes are forked workers supervised over pipes — a rig that
/// SIGKILLs, exits nonzero or goes silent is reaped and its work is
/// re-dispatched, so the fleet survives individual failures.
enum class Isolation : std::uint8_t { kThread, kProcess };

struct FleetConfig {
  /// Worker threads (or processes under kProcess isolation). 0 = one per
  /// hardware thread. 1 with kThread runs every rig inline on the calling
  /// thread (no thread is spawned) — the baseline the scaling curve and
  /// the determinism gate compare against.
  unsigned jobs = 0;

  /// Rigs per shard-queue chunk. 0 = automatic: enough chunks that the
  /// slowest worker can be back-filled (about 4 chunks per worker), but
  /// never less than 1 rig. Larger chunks amortize the (already tiny)
  /// claim cost; smaller chunks smooth out rigs with uneven run times.
  std::uint64_t chunk = 0;

  Isolation isolation = Isolation::kThread;

  /// Fault-plan template slots swept across the fleet: the driver stamps
  /// RigJob::fault_template = index % fault_templates before the runner
  /// sees the job, identically in every isolation/jobs configuration.
  /// 1 = uniform fleet (every rig gets template 0).
  std::uint32_t fault_templates = 1;

  // --- Process-isolation supervision knobs (ignored under kThread) ----------

  /// Worker heartbeat cadence. A worker beats from a dedicated thread, so
  /// a beat proves the process is scheduled, not that the rig progresses.
  std::uint32_t heartbeat_interval_ms = 250;
  /// Silence (no frame of any kind) longer than this SIGKILLs the worker.
  std::uint32_t heartbeat_deadline_ms = 5000;
  /// Per-seed watchdog: one rig running longer than this SIGKILLs the
  /// worker even if heartbeats still flow (hung or livelocked rig).
  std::uint32_t seed_timeout_ms = 120000;
  /// A seed whose execution kills this many consecutive workers is
  /// quarantined (poisoned) instead of re-dispatched forever.
  std::uint32_t quarantine_threshold = 3;
  /// Worker respawns (per slot) before the slot is abandoned.
  std::uint32_t max_respawns = 8;
  /// When fewer slots than this remain usable, the driver stops forking
  /// and finishes the remaining rigs inline (graceful in-process fallback).
  std::uint32_t min_workers = 1;
  /// Chaos knob for tests/CI: the supervisor SIGKILLs this many randomly
  /// chosen busy workers, spaced across the run — exercising the death,
  /// re-dispatch and handoff-resume paths on demand.
  std::uint32_t chaos_kill_workers = 0;
};

/// Fleet-run observability. Everything here describes the host-side
/// execution (which is allowed to vary run to run); nothing feeds outcomes.
struct FleetStats {
  unsigned jobs = 0;                ///< Workers actually used.
  std::uint64_t chunk = 0;          ///< Chunk size actually used.
  std::uint64_t chunks_claimed = 0; ///< Chunk claims across all workers.
  std::uint64_t rigs = 0;           ///< Rigs executed.
  std::uint64_t wall_ns = 0;        ///< run() wall time.
  std::vector<std::uint64_t> rigs_per_worker;  ///< Load balance per slot.

  /// Process-pool supervision accounting (kProcess isolation only).
  struct PoolStats {
    std::uint64_t forks = 0;            ///< Workers forked (initial + respawns).
    std::uint64_t respawns = 0;         ///< Replacement forks after a death.
    std::uint64_t deaths = 0;           ///< Workers that exited abnormally.
    std::uint64_t heartbeat_kills = 0;  ///< SIGKILLs for heartbeat silence.
    std::uint64_t seed_timeout_kills = 0;  ///< SIGKILLs for per-seed watchdog.
    std::uint64_t chaos_kills = 0;      ///< Supervisor-injected SIGKILLs.
    std::uint64_t redispatches = 0;     ///< Grants re-dispatched after a death.
    std::uint64_t resumes = 0;          ///< Re-dispatches that resumed from a ladder.
    std::uint64_t poisoned = 0;         ///< Seeds quarantined.
    std::uint64_t inline_fallback_rigs = 0;  ///< Rigs finished in-process after degrade.
    bool degraded_to_inline = false;    ///< Pool fell below min_workers.
  };
  PoolStats pool;
};

/// Runs a fleet of independently-seeded rigs across worker threads.
class FleetDriver {
 public:
  /// Builds, runs and reduces one rig. Invoked on a worker thread; must
  /// honor the isolation contract above. A thrown exception is caught by
  /// the driver and recorded as a failed outcome for that rig alone.
  using RigRunner = std::function<RigOutcome(const RigJob&)>;

  /// Completion hook for progress reporting. Serialized by the driver (at
  /// most one invocation at a time, under a mutex), invoked after each rig
  /// completes with the fleet-wide completion count. Ordering across rigs
  /// follows completion, not seed order — print progress here, never
  /// results that claim an order.
  using Progress = std::function<void(const RigJob& job, const RigOutcome& outcome,
                                      std::uint64_t done, std::uint64_t total)>;

  explicit FleetDriver(FleetConfig config = {});

  void set_progress(Progress progress) { progress_ = std::move(progress); }

  /// Runs one rig per seed and returns outcomes indexed like `seeds`.
  /// Deterministic: outcomes[i] depends only on seeds[i] (given a
  /// contract-honoring runner), regardless of jobs/chunk configuration.
  std::vector<RigOutcome> run(const std::vector<std::uint64_t>& seeds,
                              const RigRunner& runner);

  /// Convenience over the dense seed range [seed_base, seed_base + count).
  std::vector<RigOutcome> run_range(std::uint64_t seed_base, std::uint64_t count,
                                    const RigRunner& runner);

  /// Stats of the most recent run().
  [[nodiscard]] const FleetStats& stats() const { return stats_; }

  /// The worker count a config resolves to on this host.
  [[nodiscard]] static unsigned resolve_jobs(unsigned requested);

 private:
  FleetConfig config_;
  Progress progress_;
  FleetStats stats_;
};

}  // namespace umlsoc::fleet
