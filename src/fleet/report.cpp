#include "fleet/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace umlsoc::fleet {

namespace {

double ratio(std::uint64_t numerator, std::uint64_t denominator, double empty) {
  if (denominator == 0) return empty;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

void append_line(std::string& out, const char* format, ...) {
  char line[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(line, sizeof(line), format, args);
  va_end(args);
  out += line;
  out += '\n';
}

}  // namespace

double FleetReport::availability() const { return ratio(rigs_ok, rigs_total, 1.0); }

double FleetReport::delivery_rate() const {
  return ratio(slo.delivered, slo.delivered + slo.lost, 1.0);
}

double FleetReport::timeout_rate() const {
  return ratio(slo.timeouts, slo.transactions, 0.0);
}

double FleetReport::unhandled_error_rate() const {
  return ratio(slo.errors_unhandled, slo.errors_raised, 0.0);
}

double FleetReport::unit_health_rate() const {
  return ratio(health.healthy, health.units(), 1.0);
}

double FleetReport::checkpoint_overhead() const {
  return ratio(kernel.snapshot.encode_wall_ns + kernel.snapshot.restore_wall_ns,
               rig_wall_ns_total, 0.0);
}

FleetReport FleetReport::aggregate(const std::vector<RigOutcome>& outcomes) {
  FleetReport report;
  report.rigs_total = outcomes.size();
  for (const RigOutcome& outcome : outcomes) {
    if (outcome.ok) {
      ++report.rigs_ok;
    } else {
      ++report.rigs_failed;
      report.failed_seeds.push_back(outcome.seed);
    }
    if (outcome.slo.seeds_poisoned != 0) report.poisoned_seeds.push_back(outcome.seed);
    report.slo.add(outcome.slo);
    report.health.add(outcome.health);
    reduce(report.kernel, outcome.kernel);
    report.sim_time_ps_total += outcome.sim_time_ps;
    report.sim_time_ps_max = std::max(report.sim_time_ps_max, outcome.sim_time_ps);
    report.events_total += outcome.events_processed;
    report.rig_wall_ns_total += outcome.wall_ns;
    if (outcome.fault_template >= report.templates.size()) {
      report.templates.resize(outcome.fault_template + 1);
    }
    TemplateRollup& slice = report.templates[outcome.fault_template];
    ++slice.rigs;
    if (outcome.ok) ++slice.rigs_ok;
    slice.slo.add(outcome.slo);
  }
  return report;
}

std::string FleetReport::fingerprint() const {
  std::string out;
  out.reserve(1024);
  append_line(out, "rigs=%" PRIu64 "/%" PRIu64, rigs_ok, rigs_total);
  out += "failed-seeds=";
  for (std::uint64_t seed : failed_seeds) {
    out += std::to_string(seed);
    out += ',';
  }
  out += '\n';
  append_line(out,
              "traffic=%" PRIu64 "/%" PRIu64 "/%" PRIu64
              " bus=%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64,
              slo.requests, slo.delivered, slo.lost, slo.transactions, slo.timeouts,
              slo.retries, slo.recovered, slo.exhausted);
  append_line(out, "errors=%" PRIu64 "/%" PRIu64, slo.errors_raised,
              slo.errors_unhandled);
  append_line(out,
              "supervision=%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64
              " breaker=%" PRIu64 "/%" PRIu64 "/%" PRIu64 " rollbacks=%" PRIu64,
              slo.restarts, slo.escalations, slo.give_ups, slo.watchdog_trips,
              slo.breaker_opens, slo.breaker_closes, slo.breaker_fast_failed,
              slo.rollbacks);
  append_line(out,
              "recovery=%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64
              " lost-work-ps=%" PRIu64,
              slo.checkpoints_written, slo.checkpoint_write_faults,
              slo.rungs_quarantined, slo.ladder_recoveries, slo.crash_recoveries,
              slo.lost_work_ps_max);
  append_line(out, "health=%" PRIu64 "/%" PRIu64 "/%" PRIu64, health.healthy,
              health.degraded, health.failed);
  append_line(out,
              "kernel=%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64
              " snapshot=%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64,
              kernel.wheel_hits, kernel.heap_hits, kernel.cascades,
              kernel.processes_registered, kernel.collapsed_notifications,
              kernel.snapshot.encodes, kernel.snapshot.restores,
              kernel.snapshot.bytes_written, kernel.snapshot.sections_dirty,
              kernel.snapshot.sections_total);
  append_line(out, "sim-time=%" PRIu64 "/%" PRIu64 " events=%" PRIu64,
              sim_time_ps_total, sim_time_ps_max, events_total);
  out += "poisoned-seeds=";
  for (std::uint64_t seed : poisoned_seeds) {
    out += std::to_string(seed);
    out += ',';
  }
  out += '\n';
  for (std::size_t t = 0; t < templates.size(); ++t) {
    const TemplateRollup& slice = templates[t];
    append_line(out,
                "template[%zu]=%" PRIu64 "/%" PRIu64 " traffic=%" PRIu64 "/%" PRIu64
                "/%" PRIu64 " bus=%" PRIu64 "/%" PRIu64 "/%" PRIu64
                " errors=%" PRIu64 "/%" PRIu64 " giveups=%" PRIu64,
                t, slice.rigs_ok, slice.rigs, slice.slo.requests, slice.slo.delivered,
                slice.slo.lost, slice.slo.transactions, slice.slo.timeouts,
                slice.slo.exhausted, slice.slo.errors_raised,
                slice.slo.errors_unhandled, slice.slo.give_ups);
  }
  return out;
}

std::string FleetReport::str(const FleetStats* stats) const {
  std::string out;
  out.reserve(1024);
  append_line(out,
              "fleet SLO rollup: %" PRIu64 " rigs, %" PRIu64 " ok, %" PRIu64
              " failed — availability %.4f",
              rigs_total, rigs_ok, rigs_failed, availability());
  if (!failed_seeds.empty()) {
    out += "  failed seeds:";
    for (std::uint64_t seed : failed_seeds) {
      out += ' ';
      out += std::to_string(seed);
    }
    out += '\n';
  }
  append_line(out,
              "  traffic: %" PRIu64 " requests, %" PRIu64 " delivered (%.4f), %" PRIu64
              " lost",
              slo.requests, slo.delivered, delivery_rate(), slo.lost);
  append_line(out,
              "  bus: %" PRIu64 " transactions, %" PRIu64 " timeouts (%.4f), %" PRIu64
              " retries, %" PRIu64 " recovered, %" PRIu64 " exhausted",
              slo.transactions, slo.timeouts, timeout_rate(), slo.retries,
              slo.recovered, slo.exhausted);
  append_line(out, "  errors: %" PRIu64 " raised, %" PRIu64 " unhandled (%.4f)",
              slo.errors_raised, slo.errors_unhandled, unhandled_error_rate());
  append_line(out,
              "  supervision: %" PRIu64 " restarts, %" PRIu64 " watchdog trips, %" PRIu64
              " escalations, %" PRIu64 " give-ups, %" PRIu64 " rollbacks",
              slo.restarts, slo.watchdog_trips, slo.escalations, slo.give_ups,
              slo.rollbacks);
  append_line(out,
              "  breaker: %" PRIu64 " opens, %" PRIu64 " closes, %" PRIu64
              " fast-failed",
              slo.breaker_opens, slo.breaker_closes, slo.breaker_fast_failed);
  append_line(out,
              "  recovery: %" PRIu64 " checkpoints (%" PRIu64 " write faults, %" PRIu64
              " rungs quarantined), %" PRIu64 " ladder + %" PRIu64
              " crash recoveries, max lost work %s",
              slo.checkpoints_written, slo.checkpoint_write_faults,
              slo.rungs_quarantined, slo.ladder_recoveries, slo.crash_recoveries,
              sim::SimTime(slo.lost_work_ps_max).str().c_str());
  append_line(out,
              "  health: %" PRIu64 " units healthy, %" PRIu64 " degraded, %" PRIu64
              " failed (healthy rate %.4f)",
              health.healthy, health.degraded, health.failed, unit_health_rate());
  append_line(out,
              "  checkpoint overhead: %.4f of rig wall time (%" PRIu64 " encodes, %" PRIu64
              " restores, %" PRIu64 " bytes)",
              checkpoint_overhead(), kernel.snapshot.encodes, kernel.snapshot.restores,
              kernel.snapshot.bytes_written);
  if (!poisoned_seeds.empty()) {
    out += "  poisoned seeds (quarantined after killing workers):";
    for (std::uint64_t seed : poisoned_seeds) {
      out += ' ';
      out += std::to_string(seed);
    }
    out += '\n';
  }
  if (templates.size() > 1) {
    append_line(out, "  fault-template sweep (%zu templates):", templates.size());
    for (std::size_t t = 0; t < templates.size(); ++t) {
      const TemplateRollup& slice = templates[t];
      append_line(out,
                  "    template %zu: %" PRIu64 " rigs, availability %.4f, %" PRIu64
                  " timeouts, %" PRIu64 " exhausted, %" PRIu64 " lost, %" PRIu64
                  " unhandled errors",
                  t, slice.rigs, slice.availability(), slice.slo.timeouts,
                  slice.slo.exhausted, slice.slo.lost, slice.slo.errors_unhandled);
    }
  }
  if (stats != nullptr && stats->wall_ns > 0) {
    const double seconds = static_cast<double>(stats->wall_ns) / 1e9;
    append_line(out,
                "  throughput: %.2f rigs/s, %.0f events/s over %u jobs "
                "(chunk %" PRIu64 ", %" PRIu64 " chunks, %.2fs wall)",
                static_cast<double>(rigs_total) / seconds,
                static_cast<double>(events_total) / seconds, stats->jobs, stats->chunk,
                stats->chunks_claimed, seconds);
  }
  if (stats != nullptr && stats->pool.forks > 0) {
    const FleetStats::PoolStats& pool = stats->pool;
    append_line(out,
                "  fleet worker pool: %" PRIu64 " forks (%" PRIu64 " respawns), %" PRIu64
                " deaths (%" PRIu64 " heartbeat, %" PRIu64 " seed-timeout, %" PRIu64
                " chaos kills), %" PRIu64 " re-dispatches, %" PRIu64 " ladder resumes, %" PRIu64
                " poisoned%s",
                pool.forks, pool.respawns, pool.deaths, pool.heartbeat_kills,
                pool.seed_timeout_kills, pool.chaos_kills, pool.redispatches,
                pool.resumes, pool.poisoned,
                pool.degraded_to_inline ? " — DEGRADED to in-process" : "");
  }
  return out;
}

}  // namespace umlsoc::fleet
