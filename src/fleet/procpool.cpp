#include "fleet/procpool.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <random>
#include <string>
#include <thread>

#include "fleet/handoff.hpp"

namespace umlsoc::fleet {
namespace {

using Clock = std::chrono::steady_clock;

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Runs one grant exactly like FleetDriver's in-process run_one: exceptions
/// become failed outcomes, never process exits, and the outcome carries its
/// dispatch provenance (attempts, fault_template) stamped authoritatively.
RigOutcome execute_grant(const Grant& grant, unsigned worker,
                         const FleetDriver::RigRunner& runner) {
  RigJob job;
  job.index = grant.index;
  job.seed = grant.seed;
  job.worker = worker;
  job.attempt = grant.attempt;
  job.fault_template = grant.fault_template;
  RigOutcome out;
  const auto start = Clock::now();
  try {
    out = runner(job);
  } catch (const std::exception& error) {
    out = RigOutcome{};
    out.ok = false;
    out.failure = std::string("uncaught exception: ") + error.what();
  } catch (...) {
    out = RigOutcome{};
    out.ok = false;
    out.failure = "uncaught exception (non-standard)";
  }
  out.seed = grant.seed;
  out.fault_template = grant.fault_template;
  out.attempts = grant.attempt + 1;
  if (out.wall_ns == 0) {
    out.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
  }
  return out;
}

/// Worker-process body after fork. Speaks the handoff protocol over the two
/// pipe fds; never returns. The heartbeat thread shares the write fd with
/// the runner, so every frame goes out whole under the pipe mutex — the
/// parent never sees interleaved messages, and a SIGKILL mid-write leaves
/// at most one truncated frame at the tail of the stream.
[[noreturn]] void worker_main(int read_fd, int write_fd, unsigned worker,
                              const FleetDriver::RigRunner& runner,
                              std::uint32_t heartbeat_interval_ms) {
  ::signal(SIGPIPE, SIG_IGN);
  std::mutex pipe_mutex;
  const auto send = [&](FrameType type, std::string_view payload) {
    const std::string frame = encode_frame(type, payload);
    std::lock_guard<std::mutex> lock(pipe_mutex);
    return write_all(write_fd, frame.data(), frame.size());
  };
  (void)send(FrameType::kHello, encode_hello(static_cast<std::uint64_t>(::getpid())));

  std::atomic<bool> stop{false};
  std::thread heartbeat([&] {
    const auto interval = std::chrono::milliseconds(
        heartbeat_interval_ms == 0 ? 1 : heartbeat_interval_ms);
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(interval);
      if (stop.load(std::memory_order_relaxed)) break;
      if (!send(FrameType::kHeartbeat, {})) break;
    }
  });

  FrameReader reader;
  char buf[4096];
  bool running = true;
  while (running) {
    const ssize_t n = ::read(read_fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // parent closed the pipe (or died): drain out
    reader.feed(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (running && reader.next(frame)) {
      if (frame.type == FrameType::kShutdown) {
        running = false;
        break;
      }
      if (frame.type != FrameType::kAssign) continue;
      std::vector<Grant> grants;
      if (!decode_assign(frame.payload, grants)) {
        running = false;
        break;
      }
      for (const Grant& grant : grants) {
        if (!send(FrameType::kStartSeed,
                  encode_start_seed(grant.index, grant.attempt)) ||
            !send(FrameType::kResult,
                  encode_result(grant.index, execute_grant(grant, worker, runner)))) {
          running = false;
          break;
        }
      }
    }
    if (reader.corrupt()) break;
  }
  stop.store(true, std::memory_order_relaxed);
  heartbeat.join();
  // _exit, not exit: no atexit handlers, no stdio flush — the child shares
  // the parent's pre-fork buffers and must not flush them a second time.
  ::_exit(0);
}

struct Slot {
  pid_t pid = -1;
  int to_child = -1;    ///< Parent's write end (assigns, shutdown).
  int from_child = -1;  ///< Parent's read end (hello, beats, results).
  FrameReader reader;
  bool alive = false;
  Clock::time_point last_heard;
  bool has_inflight = false;
  std::uint64_t inflight = 0;
  Clock::time_point seed_start;
  std::uint64_t outstanding = 0;  ///< Grants assigned, results not yet accepted.
  std::uint32_t respawns = 0;
  bool abandoned = false;        ///< Respawn budget exhausted.
  bool respawn_pending = false;  ///< Waiting out the backoff before re-fork.
  Clock::time_point respawn_at;
};

}  // namespace

ProcPool::ProcPool(const FleetConfig& config, unsigned jobs, std::uint64_t chunk)
    : config_(config), jobs_(jobs == 0 ? 1 : jobs), chunk_(chunk == 0 ? 1 : chunk) {}

std::vector<RigOutcome> ProcPool::run(const std::vector<std::uint64_t>& seeds,
                                      const FleetDriver::RigRunner& runner,
                                      const FleetDriver::Progress& progress,
                                      FleetStats& stats) {
  const std::uint64_t total = seeds.size();
  std::vector<RigOutcome> outcomes(total);
  if (total == 0) return outcomes;

  const std::uint32_t templates =
      config_.fault_templates == 0 ? 1 : config_.fault_templates;
  const auto template_of = [templates](std::uint64_t index) {
    return static_cast<std::uint32_t>(index % templates);
  };

  // A dead worker must not kill the supervisor with a write to its pipe.
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction old_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  HandoffLedger ledger(total, config_.quarantine_threshold == 0
                                  ? 1
                                  : config_.quarantine_threshold);
  std::vector<Slot> slots(jobs_);
  std::uint64_t completed = 0;
  bool degraded = false;

  const auto job_for = [&](std::uint64_t index, unsigned worker) {
    RigJob job;
    job.index = index;
    job.seed = seeds[index];
    job.worker = worker;
    job.attempt = ledger.attempt(index) == 0 ? 0 : ledger.attempt(index) - 1;
    job.fault_template = template_of(index);
    return job;
  };

  const auto spawn = [&](unsigned w) {
    Slot& slot = slots[w];
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0) {
      slot.abandoned = true;
      return false;
    }
    if (::pipe(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      slot.abandoned = true;
      return false;
    }
    std::fflush(nullptr);  // don't let the child inherit unflushed stdio
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      slot.abandoned = true;
      return false;
    }
    if (pid == 0) {
      // Child. Drop every fd that is not ours — a sibling holding a stray
      // write end would keep a dead worker's pipe from ever reaching EOF.
      ::close(to_child[1]);
      ::close(from_child[0]);
      for (const Slot& other : slots) {
        if (other.to_child >= 0) ::close(other.to_child);
        if (other.from_child >= 0) ::close(other.from_child);
      }
      worker_main(to_child[0], from_child[1], w, runner,
                  config_.heartbeat_interval_ms);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    set_nonblocking(from_child[0]);
    slot.pid = pid;
    slot.to_child = to_child[1];
    slot.from_child = from_child[0];
    slot.reader = FrameReader{};
    slot.alive = true;
    slot.last_heard = Clock::now();
    slot.has_inflight = false;
    slot.outstanding = 0;
    slot.respawn_pending = false;
    ++stats.pool.forks;
    return true;
  };

  const auto poison = [&](std::uint64_t index) {
    RigOutcome out;
    out.seed = seeds[index];
    out.ok = false;
    out.failure = "quarantined: seed killed " + std::to_string(ledger.kills(index)) +
                  " consecutive workers";
    out.slo.seeds_poisoned = 1;
    out.health.failed = 1;  // the rig itself, as a failed unit in the rollup
    out.fault_template = template_of(index);
    out.attempts = ledger.attempt(index);
    outcomes[index] = std::move(out);
    ++stats.pool.poisoned;
    ++completed;
    if (progress) progress(job_for(index, 0), outcomes[index], completed, total);
  };

  const auto accept_result = [&](unsigned w, std::string_view payload) {
    std::uint64_t index = 0;
    RigOutcome out;
    if (!decode_result(payload, index, out)) return false;
    if (index >= total) return false;
    // Acceptance first: a duplicate or stale result must not free up the
    // slot's accounting (outstanding, inflight) — a worker replaying results
    // could otherwise be fed fresh grants while real ones are in flight.
    // From a live worker that is a protocol violation (the caller kills it);
    // the dead-worker drain in settle_death ignores the verdict.
    if (!ledger.accept(w, index)) return false;
    Slot& slot = slots[w];
    if (slot.has_inflight && slot.inflight == index) slot.has_inflight = false;
    if (slot.outstanding > 0) --slot.outstanding;
    out.seed = seeds[index];
    if (out.resumed_from_seq != 0) ++stats.pool.resumes;
    outcomes[index] = std::move(out);
    ++stats.rigs_per_worker[w];
    ++completed;
    if (progress) progress(job_for(index, w), outcomes[index], completed, total);
    return true;
  };

  // Settles a dead worker: drain the pipe first so results that raced the
  // death are accepted (exactly once, via the ledger), then reap, requeue
  // its unfinished grants and schedule a backoff respawn.
  const auto settle_death = [&](unsigned w, bool allow_respawn) {
    Slot& slot = slots[w];
    if (!slot.alive) return;
    for (;;) {
      char buf[4096];
      const ssize_t n = ::read(slot.from_child, buf, sizeof(buf));
      if (n > 0) {
        slot.reader.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, or nothing buffered
    }
    Frame frame;
    while (slot.reader.next(frame)) {
      if (frame.type == FrameType::kResult) {
        (void)accept_result(w, frame.payload);
      } else if (frame.type == FrameType::kStartSeed) {
        // A start that raced the death still moves the seed to InFlight so
        // the kill is charged to it (quarantine attribution).
        std::uint64_t index = 0;
        std::uint32_t attempt = 0;
        if (decode_start_seed(frame.payload, index, attempt)) {
          (void)ledger.start(w, index);
        }
      }
    }
    ::close(slot.from_child);
    ::close(slot.to_child);
    slot.from_child = slot.to_child = -1;
    if (slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
    }
    slot.pid = -1;
    slot.alive = false;
    slot.has_inflight = false;
    slot.outstanding = 0;
    slot.reader = FrameReader{};
    ++stats.pool.deaths;
    const HandoffLedger::DeathReport report = ledger.on_worker_death(w);
    stats.pool.redispatches += report.requeued.size();
    for (const std::uint64_t index : report.poisoned) poison(index);
    if (allow_respawn && !ledger.settled() && slot.respawns < config_.max_respawns) {
      const std::uint32_t shift = std::min<std::uint32_t>(slot.respawns, 6u);
      slot.respawn_pending = true;
      slot.respawn_at = Clock::now() + std::chrono::milliseconds(100u << shift);
    } else {
      slot.abandoned = true;
    }
  };

  const auto kill_worker = [&](unsigned w) {
    Slot& slot = slots[w];
    if (!slot.alive) return;
    if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
    settle_death(w, /*allow_respawn=*/true);
  };

  // Chaos-kill schedule: SIGKILL a randomly chosen busy worker each time
  // completion crosses a trigger, spacing kills across the run so both the
  // early (cold ladder) and late (warm ladder) re-dispatch paths get hit.
  std::vector<std::uint64_t> chaos_triggers;
  for (std::uint32_t i = 0; i < config_.chaos_kill_workers; ++i) {
    chaos_triggers.push_back((i + 1) * total /
                             (static_cast<std::uint64_t>(config_.chaos_kill_workers) + 2));
  }
  std::size_t chaos_next = 0;
  std::minstd_rand chaos_rng(
      static_cast<std::uint32_t>(total ^ (seeds[0] * 2654435761u) ^ 0x9e3779b9u));

  const auto process_frames = [&](unsigned w) {
    Slot& slot = slots[w];
    Frame frame;
    while (slot.alive && slot.reader.next(frame)) {
      slot.last_heard = Clock::now();
      switch (frame.type) {
        case FrameType::kHello:
        case FrameType::kHeartbeat:
          break;
        case FrameType::kStartSeed: {
          std::uint64_t index = 0;
          std::uint32_t attempt = 0;
          if (!decode_start_seed(frame.payload, index, attempt) ||
              !ledger.start(w, index)) {
            kill_worker(w);  // protocol violation: untrusted stream
            return;
          }
          slot.has_inflight = true;
          slot.inflight = index;
          slot.seed_start = Clock::now();
          break;
        }
        case FrameType::kResult:
          if (!accept_result(w, frame.payload)) {
            kill_worker(w);
            return;
          }
          break;
        default:
          kill_worker(w);
          return;
      }
    }
    if (slot.alive && slot.reader.corrupt()) kill_worker(w);
  };

  // --- Initial fleet ----------------------------------------------------------
  for (unsigned w = 0; w < jobs_; ++w) (void)spawn(w);

  // --- Supervisor event loop --------------------------------------------------
  while (!ledger.settled()) {
    const auto now = Clock::now();

    // Respawns whose backoff has elapsed.
    for (unsigned w = 0; w < jobs_; ++w) {
      Slot& slot = slots[w];
      if (slot.respawn_pending && now >= slot.respawn_at) {
        // Consume the pending flag up front: if spawn() fails it marks the
        // slot abandoned, and an abandoned slot must neither count toward
        // the degrade check nor be retried on every loop pass.
        slot.respawn_pending = false;
        ++slot.respawns;
        if (spawn(w)) ++stats.pool.respawns;
      }
    }

    // Degrade check: with too few usable slots left, stop forking and
    // finish inline rather than wedge.
    unsigned usable = 0;
    for (const Slot& slot : slots) {
      if (slot.alive || slot.respawn_pending) ++usable;
    }
    if (usable < config_.min_workers) {
      degraded = true;
      break;
    }

    // Feed idle workers.
    for (unsigned w = 0; w < jobs_; ++w) {
      Slot& slot = slots[w];
      if (!slot.alive || slot.outstanding != 0) continue;
      const std::vector<std::uint64_t> indices = ledger.claim(w, chunk_);
      if (indices.empty()) continue;
      ++stats.chunks_claimed;
      std::vector<Grant> grants;
      grants.reserve(indices.size());
      for (const std::uint64_t index : indices) {
        grants.push_back(Grant{index, seeds[index], ledger.attempt(index),
                               template_of(index)});
      }
      const std::string frame =
          encode_frame(FrameType::kAssign, encode_assign(grants));
      if (write_all(slot.to_child, frame.data(), frame.size())) {
        slot.outstanding = indices.size();
      }
      // On write failure the child is dying; EOF surfaces via poll and the
      // grants (still charged to w in the ledger) are requeued then.
    }

    // Wait for worker traffic.
    std::vector<pollfd> fds;
    std::vector<unsigned> fd_worker;
    for (unsigned w = 0; w < jobs_; ++w) {
      if (!slots[w].alive) continue;
      fds.push_back(pollfd{slots[w].from_child, POLLIN, 0});
      fd_worker.push_back(w);
    }
    if (fds.empty()) {
      // No live workers; loop back to respawn/degrade logic after a nap.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const unsigned w = fd_worker[i];
      Slot& slot = slots[w];
      if (!slot.alive) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      for (;;) {
        char buf[4096];
        const ssize_t n = ::read(slot.from_child, buf, sizeof(buf));
        if (n > 0) {
          slot.reader.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n == 0) eof = true;  // worker died (nothing sends EOF otherwise)
        break;
      }
      process_frames(w);
      if (eof && slot.alive) settle_death(w, /*allow_respawn=*/true);
    }

    // Liveness deadlines.
    const auto after = Clock::now();
    for (unsigned w = 0; w < jobs_; ++w) {
      Slot& slot = slots[w];
      if (!slot.alive) continue;
      if (after - slot.last_heard >
          std::chrono::milliseconds(config_.heartbeat_deadline_ms)) {
        ++stats.pool.heartbeat_kills;
        kill_worker(w);
        continue;
      }
      if (slot.has_inflight &&
          after - slot.seed_start >
              std::chrono::milliseconds(config_.seed_timeout_ms)) {
        ++stats.pool.seed_timeout_kills;
        kill_worker(w);
      }
    }

    // Supervisor-injected chaos.
    while (chaos_next < chaos_triggers.size() &&
           completed >= chaos_triggers[chaos_next]) {
      std::vector<unsigned> busy;
      for (unsigned w = 0; w < jobs_; ++w) {
        if (slots[w].alive && slots[w].has_inflight) busy.push_back(w);
      }
      if (busy.empty()) break;  // retry on a later pass
      const unsigned victim =
          busy[static_cast<std::size_t>(chaos_rng()) % busy.size()];
      ++stats.pool.chaos_kills;
      kill_worker(victim);
      ++chaos_next;
    }
  }

  // --- Degraded teardown ------------------------------------------------------
  // Must run BEFORE the generic shutdown: workers that are still alive hold
  // grants in the ledger, and only settle_death() drains their pipes (raced
  // results) and requeues their unfinished grants via on_worker_death().
  // The shutdown path below reaps without settling — running it first would
  // strand those seeds in kAssigned/kInFlight forever and the inline
  // fallback would return default-constructed outcomes for them.
  if (degraded) {
    for (unsigned w = 0; w < jobs_; ++w) {
      if (slots[w].alive) {
        if (slots[w].pid > 0) ::kill(slots[w].pid, SIGKILL);
        settle_death(w, /*allow_respawn=*/false);
      }
    }
  }

  // --- Shutdown ---------------------------------------------------------------
  const std::string shutdown_frame = encode_frame(FrameType::kShutdown, {});
  for (Slot& slot : slots) {
    if (!slot.alive) continue;
    (void)write_all(slot.to_child, shutdown_frame.data(), shutdown_frame.size());
    ::close(slot.to_child);  // belt and braces: EOF also ends the worker loop
    slot.to_child = -1;
  }
  const auto shutdown_deadline = Clock::now() + std::chrono::seconds(2);
  for (Slot& slot : slots) {
    if (slot.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped == slot.pid || (reaped < 0 && errno == ECHILD)) break;
      if (Clock::now() >= shutdown_deadline) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    slot.pid = -1;
    if (slot.from_child >= 0) {
      ::close(slot.from_child);
      slot.from_child = -1;
    }
    if (slot.to_child >= 0) {
      ::close(slot.to_child);
      slot.to_child = -1;
    }
    slot.alive = false;
  }

  // --- Degraded inline fallback ----------------------------------------------
  if (degraded && !ledger.settled()) {
    stats.pool.degraded_to_inline = true;
    while (!ledger.settled()) {
      const std::vector<std::uint64_t> indices = ledger.claim(0, chunk_);
      if (indices.empty()) break;
      ++stats.chunks_claimed;
      for (const std::uint64_t index : indices) {
        (void)ledger.start(0, index);
        const Grant grant{index, seeds[index], ledger.attempt(index),
                          template_of(index)};
        RigOutcome out = execute_grant(grant, 0, runner);
        if (!ledger.accept(0, index)) continue;
        outcomes[index] = std::move(out);
        ++stats.rigs_per_worker[0];
        ++stats.pool.inline_fallback_rigs;
        ++completed;
        if (progress) progress(job_for(index, 0), outcomes[index], completed, total);
      }
    }
  }

  stats.pool.degraded_to_inline = stats.pool.degraded_to_inline || degraded;
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  return outcomes;
}

}  // namespace umlsoc::fleet
