#include "soc/iplibrary.hpp"

#include "uml/instance.hpp"

namespace umlsoc::soc {

IpLibrary::IpLibrary() {
  catalog_ = std::make_unique<uml::Model>("IpLibrary");
  profile_ = SocProfile::install(*catalog_);
}

void IpLibrary::register_ip(uml::Component& component) {
  component.apply_stereotype(*profile_.ip_core);
  ips_.push_back(&component);
}

uml::Component* IpLibrary::find_ip(std::string_view name) const {
  for (uml::Component* ip : ips_) {
    if (ip->name() == name) return ip;
  }
  return nullptr;
}

std::vector<std::string> IpLibrary::ip_names() const {
  std::vector<std::string> names;
  names.reserve(ips_.size());
  for (const uml::Component* ip : ips_) names.push_back(ip->name());
  return names;
}

namespace {

/// Interns `type` (by name) into the target model when it is a primitive;
/// other classifier kinds cannot be carried across models.
uml::Classifier* rebind_type(const uml::Classifier* type, uml::Model& target) {
  if (type == nullptr) return nullptr;
  if (const auto* primitive = dynamic_cast<const uml::PrimitiveType*>(type)) {
    return &target.primitive(primitive->name(), primitive->bit_width());
  }
  return nullptr;
}

/// Re-applies the source element's stereotypes (matched by name) from the
/// target model's SoC profile, copying all tagged values.
void rebind_stereotypes(const uml::Element& source, uml::Element& copy,
                        const SocProfile& target_profile) {
  for (const uml::StereotypeApplication& application : source.stereotype_applications()) {
    uml::Stereotype* target_stereotype =
        target_profile.profile->find_stereotype(application.stereotype->name());
    if (target_stereotype == nullptr) continue;
    copy.apply_stereotype(*target_stereotype);
    for (const auto& [key, value] : application.tagged_values) {
      copy.set_tagged_value(*target_stereotype, key, value);
    }
  }
}

}  // namespace

uml::Component* IpLibrary::instantiate(std::string_view ip_name, uml::Model& target_model,
                                       uml::Package& package, std::string instance_name,
                                       support::DiagnosticSink& sink) {
  uml::Component* source = find_ip(ip_name);
  if (source == nullptr) {
    sink.error("IpLibrary", "unknown IP core '" + std::string(ip_name) + "'");
    return nullptr;
  }
  SocProfile target_profile = SocProfile::install(target_model);

  uml::Component& copy = package.add_component(std::move(instance_name));
  copy.set_documentation(source->documentation());
  copy.set_active(source->is_active());
  rebind_stereotypes(*source, copy, target_profile);

  for (const auto& property : source->properties()) {
    uml::Property& property_copy = copy.add_property(property->name());
    if (uml::Classifier* type = rebind_type(property->type(), target_model)) {
      property_copy.set_type(*type);
    } else if (property->type() != nullptr) {
      sink.warning(property_copy.qualified_name(),
                   "non-primitive property type '" + property->type()->name() +
                       "' not carried across models");
    }
    property_copy.set_multiplicity(property->multiplicity());
    property_copy.set_default_value(property->default_value());
    property_copy.set_read_only(property->is_read_only());
    rebind_stereotypes(*property, property_copy, target_profile);
  }

  for (const auto& operation : source->operations()) {
    uml::Operation& operation_copy = copy.add_operation(operation->name());
    operation_copy.set_body(operation->body());
    operation_copy.set_query(operation->is_query());
    for (const auto& parameter : operation->parameters()) {
      uml::Parameter& parameter_copy =
          operation_copy.add_parameter(parameter->name(), nullptr, parameter->direction());
      if (uml::Classifier* type = rebind_type(parameter->type(), target_model)) {
        parameter_copy.set_type(*type);
      }
      parameter_copy.set_default_value(parameter->default_value());
    }
  }

  for (const auto& port : source->ports()) {
    uml::Port& port_copy = copy.add_port(port->name(), port->direction());
    port_copy.set_width(port->width());
    port_copy.set_service(port->is_service());
    if (uml::Classifier* type = rebind_type(port->type(), target_model)) {
      port_copy.set_type(*type);
    }
    rebind_stereotypes(*port, port_copy, target_profile);
  }

  return &copy;
}

void IpLibrary::add_standard_ips() {
  uml::Package& cores = catalog_->add_package("cores");
  uml::PrimitiveType& bit = catalog_->primitive("Bit", 1);
  uml::PrimitiveType& byte = catalog_->primitive("Byte", 8);
  uml::PrimitiveType& word = catalog_->primitive("Word", 32);

  auto add_register = [&](uml::Component& component, const char* name, const char* address,
                          const char* access) -> uml::Property& {
    uml::Property& reg = component.add_property(name, &word);
    reg.apply_stereotype(*profile_.hw_register);
    reg.set_tagged_value(*profile_.hw_register, "address", address);
    reg.set_tagged_value(*profile_.hw_register, "access", access);
    return reg;
  };

  // --- Uart -------------------------------------------------------------------
  {
    uml::Component& uart = cores.add_component("Uart");
    uart.set_documentation("8N1 UART with fixed divisor and status register");
    uart.apply_stereotype(*profile_.hw_module);
    uart.set_tagged_value(*profile_.hw_module, "clockMHz", "50");
    uart.set_tagged_value(*profile_.hw_module, "areaGates", "1200");
    add_register(uart, "tx_data", "0x00", "w");
    add_register(uart, "rx_data", "0x04", "r");
    add_register(uart, "status", "0x08", "r");
    add_register(uart, "divisor", "0x0C", "rw");
    uart.add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile_.clock);
    uart.add_port("rst_n", uml::PortDirection::kIn);
    uart.add_port("rx", uml::PortDirection::kIn).set_type(bit);
    uart.add_port("tx", uml::PortDirection::kOut).set_type(bit);
    uml::Operation& send = uart.add_operation("send");
    send.add_parameter("value", &byte);
    send.set_body("self.tx_data := value; self.status := 1;");
    uml::Operation& receive = uart.add_operation("receive");
    receive.set_return_type(byte);
    receive.set_body("self.status := 0; return self.rx_data;");
    register_ip(uart);
  }

  // --- SpiMaster ---------------------------------------------------------------
  {
    uml::Component& spi = cores.add_component("SpiMaster");
    spi.set_documentation("Mode-0 SPI master, single chip select");
    spi.apply_stereotype(*profile_.hw_module);
    spi.set_tagged_value(*profile_.hw_module, "clockMHz", "100");
    spi.set_tagged_value(*profile_.hw_module, "areaGates", "900");
    add_register(spi, "data", "0x00", "rw");
    add_register(spi, "ctrl", "0x04", "rw");
    spi.add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile_.clock);
    spi.add_port("mosi", uml::PortDirection::kOut).set_type(bit);
    spi.add_port("miso", uml::PortDirection::kIn).set_type(bit);
    spi.add_port("sclk", uml::PortDirection::kOut).set_type(bit);
    spi.add_port("cs_n", uml::PortDirection::kOut).set_type(bit);
    uml::Operation& transfer = spi.add_operation("transfer");
    transfer.add_parameter("value", &byte);
    transfer.set_return_type(byte);
    transfer.set_body("self.data := value; self.ctrl := 1; return self.data;");
    register_ip(spi);
  }

  // --- Timer -----------------------------------------------------------------------
  {
    uml::Component& timer = cores.add_component("Timer");
    timer.set_documentation("32-bit down-counter with auto-reload and IRQ");
    timer.apply_stereotype(*profile_.hw_module);
    timer.set_tagged_value(*profile_.hw_module, "clockMHz", "100");
    timer.set_tagged_value(*profile_.hw_module, "areaGates", "600");
    add_register(timer, "load", "0x00", "rw");
    add_register(timer, "value", "0x04", "r");
    add_register(timer, "ctrl", "0x08", "rw");
    timer.add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile_.clock);
    timer.add_port("irq", uml::PortDirection::kOut).set_type(bit);
    uml::Operation& start = timer.add_operation("start");
    start.add_parameter("ticks", &word);
    start.set_body("self.load := ticks; self.value := ticks; self.ctrl := 1;");
    register_ip(timer);
  }

  // --- DmaEngine ------------------------------------------------------------------
  {
    uml::Component& dma = cores.add_component("DmaEngine");
    dma.set_documentation("Single-channel memory-to-memory DMA");
    dma.apply_stereotype(*profile_.hw_module);
    dma.set_tagged_value(*profile_.hw_module, "clockMHz", "200");
    dma.set_tagged_value(*profile_.hw_module, "areaGates", "3500");
    add_register(dma, "src", "0x00", "rw");
    add_register(dma, "dst", "0x04", "rw");
    add_register(dma, "len", "0x08", "rw");
    add_register(dma, "ctrl", "0x0C", "rw");
    dma.add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile_.clock);
    dma.add_port("done_irq", uml::PortDirection::kOut).set_type(bit);
    uml::Operation& kick = dma.add_operation("kick");
    kick.add_parameter("source", &word);
    kick.add_parameter("destination", &word);
    kick.add_parameter("length", &word);
    kick.set_body(
        "self.src := source; self.dst := destination; self.len := length; self.ctrl := 1;");
    register_ip(dma);
  }

  // --- AxiLiteBus --------------------------------------------------------------------
  {
    uml::Component& axi = cores.add_component("AxiLiteBus");
    axi.set_documentation("Single-master AXI-lite style interconnect");
    axi.apply_stereotype(*profile_.bus);
    axi.set_tagged_value(*profile_.bus, "width", "32");
    axi.set_tagged_value(*profile_.bus, "latency_ns", "8");
    axi.add_port("clk", uml::PortDirection::kIn).apply_stereotype(*profile_.clock);
    uml::Operation& read = axi.add_operation("read");
    read.add_parameter("address", &word);
    read.set_return_type(word);
    uml::Operation& write = axi.add_operation("write");
    write.add_parameter("address", &word);
    write.add_parameter("value", &word);
    register_ip(axi);
  }
}

}  // namespace umlsoc::soc
