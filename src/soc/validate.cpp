#include "soc/validate.hpp"

#include <map>

#include "uml/query.hpp"

namespace umlsoc::soc {

namespace {

bool is_access_mode(const std::string& access) {
  return access == "r" || access == "w" || access == "rw";
}

}  // namespace

bool validate_soc(uml::Model& model, const SocProfile& profile,
                  support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();

  for (uml::Class* cls : uml::collect<uml::Class>(model)) {
    const bool is_hw = cls->has_stereotype(*profile.hw_module);
    const bool is_sw = cls->has_stereotype(*profile.sw_task);
    const bool is_cpu = cls->has_stereotype(*profile.processor);

    if (is_hw && is_sw) {
      sink.error(cls->qualified_name(), "class is both «HwModule» and «SwTask»");
    }

    if (is_hw) {
      if (profile.clock_mhz(*cls) <= 0) {
        sink.error(cls->qualified_name(), "«HwModule» clockMHz must be positive");
      }
      for (const auto& port : cls->ports()) {
        if (port->direction() == uml::PortDirection::kInOut &&
            !port->has_stereotype(*profile.clock)) {
          sink.warning(port->qualified_name(),
                       "«HwModule» port without direction (inout) is not synthesizable");
        }
      }
      // Register addresses: parsable, unique within the module.
      std::map<std::uint64_t, std::string> used_addresses;
      for (const auto& property : cls->properties()) {
        if (!property->has_stereotype(*profile.hw_register)) continue;
        std::optional<std::uint64_t> address = profile.register_address(*property);
        if (!address.has_value()) {
          sink.error(property->qualified_name(), "«Register» address is not parsable");
          continue;
        }
        auto [it, inserted] = used_addresses.emplace(*address, property->name());
        if (!inserted) {
          sink.error(property->qualified_name(),
                     "«Register» address collides with '" + it->second + "'");
        }
        if (!is_access_mode(profile.register_access(*property))) {
          sink.error(property->qualified_name(),
                     "«Register» access must be one of r, w, rw");
        }
      }
    }

    if (is_sw && !cls->is_active()) {
      sink.warning(cls->qualified_name(),
                   "«SwTask» classes are expected to be active (own a thread of control)");
    }
    if (is_sw && profile.sw_priority(*cls) < 0) {
      sink.error(cls->qualified_name(), "«SwTask» priority must be non-negative");
    }
    if (is_cpu && profile.processor_mips(*cls) <= 0) {
      sink.error(cls->qualified_name(), "«Processor» mips must be positive");
    }
    if (cls->has_stereotype(*profile.bus)) {
      if (profile.bus_latency_ns(*cls) <= 0) {
        sink.error(cls->qualified_name(), "«Bus» latency_ns must be positive");
      }
      const int width = profile.bus_width(*cls);
      if (width != 8 && width != 16 && width != 32 && width != 64 && width != 128) {
        sink.warning(cls->qualified_name(),
                     "«Bus» width " + std::to_string(width) + " is unusual");
      }
    }

    // Registers on non-HW classes are meaningless.
    if (!is_hw) {
      for (const auto& property : cls->properties()) {
        if (property->has_stereotype(*profile.hw_register)) {
          sink.error(property->qualified_name(),
                     "«Register» requires the owning class to be a «HwModule»");
        }
      }
    }
  }

  for (uml::Dependency* dependency : uml::collect<uml::Dependency>(model)) {
    if (!dependency->has_stereotype(*profile.allocate)) continue;
    const std::string target = profile.allocation_target(*dependency);
    if (target != "hw" && target != "sw") {
      sink.error(dependency->qualified_name(),
                 "«Allocate» target must be 'hw' or 'sw', got '" + target + "'");
      continue;
    }
    auto* supplier = dynamic_cast<uml::Class*>(dependency->supplier());
    if (supplier == nullptr) {
      sink.warning(dependency->qualified_name(), "«Allocate» supplier is not a class");
      continue;
    }
    if (target == "sw" && !supplier->has_stereotype(*profile.processor)) {
      sink.warning(dependency->qualified_name(),
                   "software allocation should target a «Processor»");
    }
    if (target == "hw" && !supplier->has_stereotype(*profile.hw_module)) {
      sink.warning(dependency->qualified_name(),
                   "hardware allocation should target a «HwModule»");
    }
  }

  return sink.error_count() == errors_before;
}

}  // namespace umlsoc::soc
