#include "soc/profile.hpp"

#include <cstdlib>

namespace umlsoc::soc {

namespace {

double parse_double(const std::string& text, double fallback) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  return end == text.c_str() ? fallback : value;
}

int parse_int(const std::string& text, int fallback) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  return end == text.c_str() ? fallback : static_cast<int>(value);
}

}  // namespace

std::optional<std::uint64_t> parse_address(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  std::uint64_t value = std::strtoull(text.c_str(), &end, 0);  // Base 0: 0x ok.
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return value;
}

SocProfile SocProfile::install(uml::Model& model) {
  if (std::optional<SocProfile> existing = find(model)) return *existing;

  SocProfile p;
  p.profile = &model.add_profile("SoC");

  auto make = [&](const char* name,
                  std::initializer_list<uml::ElementKind> extends) -> uml::Stereotype& {
    uml::Stereotype& stereotype = p.profile->add_stereotype(name);
    for (uml::ElementKind kind : extends) stereotype.add_extended_metaclass(kind);
    return stereotype;
  };

  p.hw_module = &make("HwModule", {uml::ElementKind::kClass, uml::ElementKind::kComponent});
  p.hw_module->add_tag_definition("clockMHz", "100");
  p.hw_module->add_tag_definition("areaGates", "0");
  p.hw_module->add_tag_definition("technology", "generic");

  p.sw_task = &make("SwTask", {uml::ElementKind::kClass});
  p.sw_task->add_tag_definition("priority", "5");
  p.sw_task->add_tag_definition("period_us", "0");
  p.sw_task->add_tag_definition("processor", "cpu0");

  p.processor = &make("Processor", {uml::ElementKind::kClass});
  p.processor->add_tag_definition("mips", "100");
  p.processor->add_tag_definition("cores", "1");

  p.memory = &make("Memory", {uml::ElementKind::kClass});
  p.memory->add_tag_definition("size_kb", "64");
  p.memory->add_tag_definition("base", "0x0");

  p.bus = &make("Bus", {uml::ElementKind::kClass, uml::ElementKind::kComponent,
                        uml::ElementKind::kAssociation});
  p.bus->add_tag_definition("width", "32");
  p.bus->add_tag_definition("latency_ns", "10");
  p.bus->add_tag_definition("protocol", "axi-lite");

  p.ip_core = &make("IpCore", {uml::ElementKind::kClass, uml::ElementKind::kComponent});
  p.ip_core->add_tag_definition("vendor", "umlsoc");
  p.ip_core->add_tag_definition("version", "1.0");

  p.hw_register = &make("Register", {uml::ElementKind::kProperty});
  p.hw_register->add_tag_definition("address", "0x0");
  p.hw_register->add_tag_definition("access", "rw");
  p.hw_register->add_tag_definition("reset", "0");

  p.clock = &make("Clock", {uml::ElementKind::kPort, uml::ElementKind::kProperty});
  p.clock->add_tag_definition("freqMHz", "100");

  p.channel = &make("Channel", {uml::ElementKind::kAssociation, uml::ElementKind::kConnector});
  p.channel->add_tag_definition("depth", "1");

  p.allocate = &make("Allocate", {uml::ElementKind::kDependency});
  p.allocate->add_tag_definition("target", "");

  model.apply_profile(*p.profile);
  return p;
}

std::optional<SocProfile> SocProfile::find(const uml::Model& model) {
  for (const auto& member : model.members()) {
    auto* profile = dynamic_cast<uml::Profile*>(member.get());
    if (profile == nullptr || profile->name() != "SoC") continue;

    SocProfile p;
    p.profile = profile;
    p.hw_module = profile->find_stereotype("HwModule");
    p.sw_task = profile->find_stereotype("SwTask");
    p.processor = profile->find_stereotype("Processor");
    p.memory = profile->find_stereotype("Memory");
    p.bus = profile->find_stereotype("Bus");
    p.ip_core = profile->find_stereotype("IpCore");
    p.hw_register = profile->find_stereotype("Register");
    p.clock = profile->find_stereotype("Clock");
    p.channel = profile->find_stereotype("Channel");
    p.allocate = profile->find_stereotype("Allocate");
    if (p.hw_module == nullptr || p.sw_task == nullptr) return std::nullopt;
    return p;
  }
  return std::nullopt;
}

double SocProfile::clock_mhz(const uml::Element& element) const {
  return parse_double(element.tagged_value(*hw_module, "clockMHz"), 100.0);
}

double SocProfile::area_gates(const uml::Element& element) const {
  return parse_double(element.tagged_value(*hw_module, "areaGates"), 0.0);
}

int SocProfile::sw_priority(const uml::Element& element) const {
  return parse_int(element.tagged_value(*sw_task, "priority"), 5);
}

double SocProfile::processor_mips(const uml::Element& element) const {
  return parse_double(element.tagged_value(*processor, "mips"), 100.0);
}

int SocProfile::bus_width(const uml::Element& element) const {
  return parse_int(element.tagged_value(*bus, "width"), 32);
}

double SocProfile::bus_latency_ns(const uml::Element& element) const {
  return parse_double(element.tagged_value(*bus, "latency_ns"), 10.0);
}

std::optional<std::uint64_t> SocProfile::register_address(const uml::Property& reg) const {
  return parse_address(reg.tagged_value(*hw_register, "address"));
}

std::string SocProfile::register_access(const uml::Property& reg) const {
  std::string access = reg.tagged_value(*hw_register, "access");
  return access.empty() ? "rw" : access;
}

std::string SocProfile::allocation_target(const uml::Dependency& dependency) const {
  return dependency.tagged_value(*allocate, "target");
}

}  // namespace umlsoc::soc
