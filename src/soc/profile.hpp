// The UML-for-SoC profile (paper §2/§4: "to apply UML to SoC design, it is
// important to define such a domain specific subset of the UML and its
// semantics"). Installs the stereotypes that give hardware meaning to UML
// elements, and typed accessors over their tagged values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "uml/package.hpp"

namespace umlsoc::soc {

/// Handle to the installed profile's stereotypes. Create via install().
struct SocProfile {
  uml::Profile* profile = nullptr;

  uml::Stereotype* hw_module = nullptr;   // «HwModule»  : Class/Component
  uml::Stereotype* sw_task = nullptr;     // «SwTask»    : Class
  uml::Stereotype* processor = nullptr;   // «Processor» : Class
  uml::Stereotype* memory = nullptr;      // «Memory»    : Class
  uml::Stereotype* bus = nullptr;         // «Bus»       : Class/Component/Association
  uml::Stereotype* ip_core = nullptr;     // «IpCore»    : Class/Component
  uml::Stereotype* hw_register = nullptr; // «Register»  : Property
  uml::Stereotype* clock = nullptr;       // «Clock»     : Port/Property
  uml::Stereotype* channel = nullptr;     // «Channel»   : Association/Connector
  uml::Stereotype* allocate = nullptr;    // «Allocate»  : Dependency

  /// Creates the profile inside `model` and applies it. Idempotent: a
  /// second call returns the already-installed profile.
  static SocProfile install(uml::Model& model);

  /// Rebinds to an existing "SoC" profile (e.g. after deserialization).
  static std::optional<SocProfile> find(const uml::Model& model);

  // --- Typed tag accessors (fall back to defaults on unparsable text) -------
  [[nodiscard]] double clock_mhz(const uml::Element& element) const;
  [[nodiscard]] double area_gates(const uml::Element& element) const;
  [[nodiscard]] int sw_priority(const uml::Element& element) const;
  [[nodiscard]] double processor_mips(const uml::Element& element) const;
  [[nodiscard]] int bus_width(const uml::Element& element) const;
  [[nodiscard]] double bus_latency_ns(const uml::Element& element) const;
  [[nodiscard]] std::optional<std::uint64_t> register_address(const uml::Property& reg) const;
  [[nodiscard]] std::string register_access(const uml::Property& reg) const;
  /// "hw" or "sw" for an «Allocate» dependency; empty when untagged.
  [[nodiscard]] std::string allocation_target(const uml::Dependency& dependency) const;
};

/// Parses a decimal or 0x-prefixed hexadecimal unsigned literal.
[[nodiscard]] std::optional<std::uint64_t> parse_address(const std::string& text);

}  // namespace umlsoc::soc
