// IP core library: reusable «IpCore» components and their instantiation
// into user models (paper §1: "better reuse and integration of IPs").
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "soc/profile.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::soc {

/// Owns a catalog model full of «IpCore» components; instantiate() deep-
/// copies one into a target model, re-binding types and stereotypes to the
/// target's primitives and profile.
class IpLibrary {
 public:
  IpLibrary();
  IpLibrary(const IpLibrary&) = delete;
  IpLibrary& operator=(const IpLibrary&) = delete;

  [[nodiscard]] uml::Model& catalog() { return *catalog_; }
  [[nodiscard]] const SocProfile& profile() const { return profile_; }

  /// Registers a component of the catalog under its name.
  void register_ip(uml::Component& component);
  [[nodiscard]] uml::Component* find_ip(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> ip_names() const;

  /// Deep-copies the named IP into `package` of `target_model` under
  /// `instance_name`. Ports, properties (registers incl. tags), operations
  /// with parameters and ASL bodies, and stereotype applications are
  /// copied; primitive types are interned into the target model. Returns
  /// nullptr (with diagnostics) when the IP is unknown.
  uml::Component* instantiate(std::string_view ip_name, uml::Model& target_model,
                              uml::Package& package, std::string instance_name,
                              support::DiagnosticSink& sink);

  /// Populates the catalog with the standard cores: Uart, SpiMaster,
  /// Timer, DmaEngine, AxiLiteBus.
  void add_standard_ips();

 private:
  std::unique_ptr<uml::Model> catalog_;
  SocProfile profile_;
  std::vector<uml::Component*> ips_;
};

}  // namespace umlsoc::soc
