// Well-formedness rules of the SoC profile, layered on top of uml::validate.
#pragma once

#include "soc/profile.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::soc {

/// Checks profile-specific constraints: register placement/addresses,
/// port directions on hardware modules, allocation targets, bus/processor
/// parameters. Returns true when no errors were reported.
bool validate_soc(uml::Model& model, const SocProfile& profile,
                  support::DiagnosticSink& sink);

}  // namespace umlsoc::soc
