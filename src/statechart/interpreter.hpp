// Run-to-completion executor for state machines (STATEMATE-style semantics,
// paper ref [2]). One instance holds the active configuration, event pool,
// and history memory of one machine execution.
//
// Semantics implemented:
//  * RTC step: one event is dispatched, a maximal conflict-free set of
//    enabled transitions fires (innermost-first priority), then completion
//    (trigger-less) transitions fire until quiescence.
//  * Exit set = active states inside the transition's domain (the innermost
//    region containing source and target); exits run innermost-first,
//    entries outermost-first, effects in between.
//  * Choice/junction chains are resolved at selection time, collecting the
//    segment effects in order (documented simplification for choice: guards
//    see the state before segment effects run).
//  * Shallow history restores the last active direct substate; deep history
//    restores the full leaf configuration of the region.
//  * Events deferred by an active state are retained and recalled — ahead
//    of newer queue entries — after the next configuration change.
//  * Entering a terminate pseudostate kills the instance: the configuration
//    and event pool are dropped and dispatch becomes a no-op.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "statechart/engine.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

class StateMachineInstance final : public Engine {
 public:
  /// Bound but not started; call start() to enter the initial configuration.
  explicit StateMachineInstance(const StateMachine& machine);

  /// Enters the top region through its initial pseudostate and runs
  /// completion transitions to quiescence.
  void start() override;

  /// Queues an event and processes the queue to quiescence. Returns true
  /// when at least one transition fired for this event.
  bool dispatch(Event event) override;

  /// Queues without processing (used by actions raising internal events).
  void post(Event event) override;

  /// Events waiting in the ordinary pool (excludes the deferred pool).
  /// Network harnesses (verify::Network) poll this to drain cross-posted
  /// work to quiescence without capturing a snapshot.
  [[nodiscard]] std::size_t pending_events() const override { return queue_.size(); }

  /// Error-event channel: fault monitors (bus ports, watchdogs) report
  /// failures here. Error events jump ahead of the normal pool — an error
  /// preempts pending ordinary work — and are counted separately; an error
  /// event that fires no transition is recorded as unhandled so harnesses
  /// can assert that every declared fault reaches an error state.
  bool dispatch_error(Event event) override;

  /// Queues an error event at the front without processing.
  void post_error(Event event) override;

  /// Processes queued events until the pool is empty.
  void run_to_quiescence() override;

  // --- Introspection --------------------------------------------------------

  [[nodiscard]] const StateMachine& machine() const override { return machine_; }
  [[nodiscard]] bool is_active(const State& state) const { return config_.contains(&state); }
  /// True when any active state (at any depth) has this name.
  [[nodiscard]] bool is_in(std::string_view state_name) const override;
  /// Names of active simple (leaf) states, in stable order.
  [[nodiscard]] std::vector<std::string> active_leaf_names() const override;
  [[nodiscard]] const std::unordered_set<const State*>& configuration() const { return config_; }
  /// True when the top region has reached a final state.
  [[nodiscard]] bool is_in_final_state() const override;
  /// True after a terminate pseudostate was reached; the instance is dead
  /// (dispatch becomes a no-op).
  [[nodiscard]] bool is_terminated() const override { return terminated_; }
  [[nodiscard]] bool started() const override { return started_; }

  // --- Observability ---------------------------------------------------------

  /// When enabled (default), records "enter:X" / "exit:X" / "fire:..." /
  /// "event:E" / "discard:E" entries; tests and MSC conformance use this.
  void set_trace_enabled(bool enabled) override { trace_enabled_ = enabled; }
  [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  [[nodiscard]] std::uint64_t events_processed() const override { return events_processed_; }
  [[nodiscard]] std::uint64_t transitions_fired() const override { return transitions_fired_; }
  [[nodiscard]] std::uint64_t errors_raised() const override { return errors_raised_; }
  [[nodiscard]] std::uint64_t errors_unhandled() const override { return errors_unhandled_; }

  /// Machine-variable store available to guards/effects via ActionContext.
  [[nodiscard]] std::int64_t variable(const std::string& name) const override;
  void set_variable(const std::string& name, std::int64_t value) override;

  void set_state_listener(StateListener listener) override { listener_ = std::move(listener); }

  // --- Checkpoint / restore --------------------------------------------------

  /// Captures the instance's execution state in machine-independent,
  /// deterministic form (indices ascending, variables sorted by name).
  [[nodiscard]] InstanceSnapshot capture() const override;
  /// As capture(), but reuses `out`'s buffers — the verify explorer calls
  /// this per exploration step, where a fresh snapshot's allocations are
  /// the dominant cost.
  void capture_into(InstanceSnapshot& out) const override;

  /// Replaces this instance's execution state with `snapshot`. Validates the
  /// snapshot against the bound machine before mutating anything: on any
  /// out-of-range or kind-mismatched index it reports through `sink` and
  /// returns false with the instance unchanged. No entry/exit behaviors run
  /// and no listener fires — restore reproduces state, not history.
  bool restore(const InstanceSnapshot& snapshot, support::DiagnosticSink& sink) override;

  /// Completion-transition microstep bound; exceeding it throws
  /// std::runtime_error (livelock guard).
  static constexpr int kMaxMicrosteps = 10000;

 private:
  struct ResolvedPath {
    const Vertex* final_target = nullptr;       // State, FinalState, or history.
    std::vector<const Behavior*> effects;        // Segment effects, in order.
    bool broken = false;                         // Unresolvable choice, etc.
  };

  void note(std::string entry) {
    if (trace_enabled_) trace_.push_back(std::move(entry));
  }

  /// Follows choice/junction chains from `transition`, evaluating guards now.
  ResolvedPath resolve_path(const Transition& transition, ActionContext& context);

  /// Innermost region containing both vertices (the transition domain).
  [[nodiscard]] const Region* domain_of(const Vertex& source, const Vertex& target) const;

  /// Active states lying inside `scope` (at any depth).
  [[nodiscard]] std::vector<const State*> active_within(const Region& scope) const;

  void exit_states(const std::vector<const State*>& states, ActionContext& context);
  void record_history(const State& exiting);

  void enter_single(const State& state, ActionContext& context);
  /// Enters the chain of states from `scope` (exclusive) down to `vertex`,
  /// then processes `vertex` itself (state entry, final marking, history
  /// restoration). `scope` must contain `vertex`.
  void enter_target(const Vertex& vertex, const Region& scope, ActionContext& context);
  void default_enter_region(const Region& region, ActionContext& context);
  void enter_state_and_regions(const State& state, const Region& scope, ActionContext& context);
  void restore_deep_history(const Region& region, ActionContext& context);

  /// Fires one resolved external/internal transition.
  void fire(const Transition& transition, ActionContext& context);

  /// One RTC step for `event`; returns number of transitions fired.
  std::size_t rtc_step(const Event& event);
  /// Fires completion transitions until none are enabled.
  void run_completions();
  [[nodiscard]] bool state_completed(const State& state) const;
  [[nodiscard]] bool region_in_final(const Region& region) const;

  /// Greedy maximal conflict-free selection, innermost priority.
  std::vector<const Transition*> select_transitions(const Event* event);

  /// Pre-order position of `vertex` in machine().all_vertices() — the
  /// document order used as the deterministic tie-break wherever same-depth
  /// states compete (transition selection, exit order, history leaves).
  [[nodiscard]] std::uint32_t vertex_order(const Vertex& vertex) const {
    return vertex_order_.at(&vertex);
  }

  const StateMachine& machine_;
  // Snapshot addressing and ordering caches, built once at construction:
  // all_vertices()/all_regions() in pre-order plus the inverse maps. Shared
  // by capture/restore (no per-call index rebuild) and by the deterministic
  // sort comparators.
  std::vector<const Vertex*> vertex_list_;
  std::vector<const Region*> region_list_;
  std::unordered_map<const Vertex*, std::uint32_t> vertex_order_;
  std::unordered_map<const Region*, std::uint32_t> region_order_;
  std::unordered_set<const State*> config_;
  std::deque<const State*> pending_regions_;
  int entry_depth_ = 0;
  std::unordered_set<const FinalState*> active_finals_;
  std::unordered_map<const Region*, const State*> shallow_history_;
  std::unordered_map<const Region*, std::vector<const State*>> deep_history_;
  std::unordered_map<std::string, std::int64_t> variables_;
  std::deque<Event> queue_;
  std::vector<Event> deferred_pool_;
  StateListener listener_;
  std::vector<std::string> trace_;
  bool trace_enabled_ = true;
  bool started_ = false;
  bool terminated_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t transitions_fired_ = 0;
  std::uint64_t errors_raised_ = 0;
  std::uint64_t errors_unhandled_ = 0;
};

}  // namespace umlsoc::statechart
