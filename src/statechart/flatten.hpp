// Flattening of hierarchical (non-orthogonal) state machines into a plain
// transition table: one leaf state is active at a time and each row maps
// (leaf, trigger) to a successor leaf. Consumed by benchmark E3 (flat vs
// hierarchical dispatch) and by the differential harness; the AOT plan-table
// compiler (compile.hpp) generalizes this row/group layout to hierarchical
// configurations.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

/// One row of the flat transition table.
struct FlatTransition {
  std::size_t from = 0;       // Leaf-state index.
  std::string trigger;        // Event name (flattening rejects completion).
  std::size_t to = 0;         // Leaf-state index.
  const Transition* origin;   // Hierarchical transition this row came from.
};

/// Rows of one (from, trigger) key: a contiguous run in `row_order`, in
/// innermost-first priority order.
struct FlatRowGroup {
  std::size_t from = 0;
  std::string trigger;
  std::size_t first_row = 0;  // Offset into FlatStateMachine::row_order.
  std::size_t row_count = 0;
};

/// Flattened machine: exactly one leaf state is active at a time.
struct FlatStateMachine {
  std::vector<const State*> states;  // Leaf states, stable order.
  std::vector<std::string> state_names;
  std::size_t initial_state = 0;
  std::vector<FlatTransition> transitions;
  /// Dispatch index, sorted by (from, trigger): binary search locates the
  /// group, `row_order` lists its row indices in priority order. Replaces
  /// the old string-keyed hash map — no key formatting or hashing per
  /// dispatch, and the sorted layout is what the RTL generator emits.
  std::vector<FlatRowGroup> groups;
  std::vector<std::size_t> row_order;

  /// Group for (from, trigger), or nullptr when no row matches.
  [[nodiscard]] const FlatRowGroup* find_group(std::size_t from,
                                               std::string_view trigger) const;
};

/// Flattens `machine`. Requirements (else error + nullopt): no orthogonal
/// regions, no history pseudostates, no completion transitions from states,
/// guard-free unconditional default entries (no choice off initial).
/// Guards/effects on event transitions are preserved via `origin`.
[[nodiscard]] std::optional<FlatStateMachine> flatten(const StateMachine& machine,
                                                      support::DiagnosticSink& sink);

/// Minimal executor over a flat table; semantically equivalent to the
/// hierarchical interpreter on flattenable machines (tested property).
class FlatExecutor {
 public:
  explicit FlatExecutor(const FlatStateMachine& flat, StateMachineInstance* guard_host = nullptr)
      : flat_(&flat), guard_host_(guard_host), current_(flat.initial_state) {}

  [[nodiscard]] std::size_t current() const { return current_; }
  [[nodiscard]] const std::string& current_name() const { return flat_->state_names[current_]; }

  /// Dispatches one event; returns true when a row fired. Guards of the
  /// originating hierarchical transitions are honored (evaluated against
  /// `guard_host` when provided).
  bool dispatch(const Event& event);

  [[nodiscard]] std::uint64_t transitions_fired() const { return fired_; }

 private:
  const FlatStateMachine* flat_;
  StateMachineInstance* guard_host_;
  std::size_t current_;
  std::uint64_t fired_ = 0;
};

}  // namespace umlsoc::statechart
