// Flattening of hierarchical (non-orthogonal) state machines into a plain
// transition table. Used by the RTL code generator (one state register, one
// case block) and by benchmark E3 to compare flat vs hierarchical dispatch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

/// One row of the flat transition table.
struct FlatTransition {
  std::size_t from = 0;       // Leaf-state index.
  std::string trigger;        // Event name (flattening rejects completion).
  std::size_t to = 0;         // Leaf-state index.
  const Transition* origin;   // Hierarchical transition this row came from.
};

/// Flattened machine: exactly one leaf state is active at a time.
struct FlatStateMachine {
  std::vector<const State*> states;  // Leaf states, stable order.
  std::vector<std::string> state_names;
  std::size_t initial_state = 0;
  std::vector<FlatTransition> transitions;
  /// Row indices grouped by (from, trigger) for O(1)-ish dispatch.
  std::unordered_map<std::string, std::vector<std::size_t>> rows_by_key;

  [[nodiscard]] static std::string key(std::size_t from, const std::string& trigger) {
    return std::to_string(from) + "#" + trigger;
  }
};

/// Flattens `machine`. Requirements (else error + nullopt): no orthogonal
/// regions, no history pseudostates, no completion transitions from states,
/// guard-free unconditional default entries (no choice off initial).
/// Guards/effects on event transitions are preserved via `origin`.
[[nodiscard]] std::optional<FlatStateMachine> flatten(const StateMachine& machine,
                                                      support::DiagnosticSink& sink);

/// Minimal executor over a flat table; semantically equivalent to the
/// hierarchical interpreter on flattenable machines (tested property).
class FlatExecutor {
 public:
  explicit FlatExecutor(const FlatStateMachine& flat, StateMachineInstance* guard_host = nullptr)
      : flat_(&flat), guard_host_(guard_host), current_(flat.initial_state) {}

  [[nodiscard]] std::size_t current() const { return current_; }
  [[nodiscard]] const std::string& current_name() const { return flat_->state_names[current_]; }

  /// Dispatches one event; returns true when a row fired. Guards of the
  /// originating hierarchical transitions are honored (evaluated against
  /// `guard_host` when provided).
  bool dispatch(const Event& event);

  [[nodiscard]] std::uint64_t transitions_fired() const { return fired_; }

 private:
  const FlatStateMachine* flat_;
  StateMachineInstance* guard_host_;
  std::size_t current_;
  std::uint64_t fired_ = 0;
};

}  // namespace umlsoc::statechart
