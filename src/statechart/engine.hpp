// Execution-engine abstraction for state machines. Two engines implement
// it: the hierarchical reference interpreter (interpreter.hpp) and the
// AOT-compiled plan-table stepper (compile.hpp). Guards and actions see the
// engine only through ActionContext (model.hpp), and harnesses — the verify
// network, the sim-kernel timer binding, replay snapshots — program against
// this interface, so either engine slots in without the caller knowing.
//
// The interpreter remains the reference semantics; the compiled engine is
// held to it by the differential harness (statechart_differential_test).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

/// Checkpointable execution state of one engine. Vertices and regions are
/// addressed by their pre-order index (StateMachine::all_vertices /
/// all_regions), so a snapshot restores into any engine bound to a
/// structurally identical machine — in particular one rebuilt by a fresh
/// process, or one running the other engine. Captured: active
/// configuration, final flags, history memory, variables, the
/// pending/deferred event pools, and counters. Not captured: listeners,
/// trace contents, or mid-RTC-step state (capture between dispatches).
struct InstanceSnapshot {
  struct EventRecord {
    std::string name;
    std::int64_t data = 0;
    std::string tag;

    bool operator==(const EventRecord&) const = default;
  };

  bool started = false;
  bool terminated = false;
  std::vector<std::uint32_t> active_states;  ///< Vertex indices, ascending.
  std::vector<std::uint32_t> active_finals;  ///< Vertex indices, ascending.
  /// (region index, state vertex index), ascending by region.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> shallow_history;
  /// (region index, leaf state vertex indices in recorded order).
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> deep_history;
  std::vector<std::pair<std::string, std::int64_t>> variables;  ///< Sorted by name.
  std::vector<EventRecord> queue;
  std::vector<EventRecord> deferred;
  std::uint64_t events_processed = 0;
  std::uint64_t transitions_fired = 0;
  std::uint64_t errors_raised = 0;
  std::uint64_t errors_unhandled = 0;

  bool operator==(const InstanceSnapshot&) const = default;
};

/// One executing state machine, independent of execution strategy.
class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual const StateMachine& machine() const = 0;

  /// Enters the top region through its initial pseudostate and runs
  /// completion transitions to quiescence.
  virtual void start() = 0;

  /// Queues an event and processes the queue to quiescence. Returns true
  /// when at least one transition fired for this event.
  virtual bool dispatch(Event event) = 0;

  /// Queues without processing (used by actions raising internal events).
  virtual void post(Event event) = 0;

  /// Error-event channel: error events jump ahead of the normal pool and
  /// are counted separately; one that fires no transition is recorded as
  /// unhandled.
  virtual bool dispatch_error(Event event) = 0;

  /// Queues an error event at the front without processing.
  virtual void post_error(Event event) = 0;

  /// Processes queued events until the pool is empty.
  virtual void run_to_quiescence() = 0;

  /// Conservative no-op filter: false only when delivering `event` via
  /// dispatch() is *guaranteed* to leave the execution state unchanged —
  /// no transition can fire, the event is not deferrable here, and no
  /// queued work would run. The verifier prunes such deliveries; engines
  /// without a cheap answer keep the default `true` (always sound). The
  /// error channel is excluded: an unhandled error event still counts, so
  /// callers must not consult this for dispatch_error().
  [[nodiscard]] virtual bool can_react(const Event& event) { (void)event; return true; }

  /// Events waiting in the ordinary pool (excludes the deferred pool).
  [[nodiscard]] virtual std::size_t pending_events() const = 0;

  /// True when any active state (at any depth) has this name.
  [[nodiscard]] virtual bool is_in(std::string_view state_name) const = 0;
  /// Names of active simple (leaf) states, in stable order.
  [[nodiscard]] virtual std::vector<std::string> active_leaf_names() const = 0;
  /// True when the top region has reached a final state.
  [[nodiscard]] virtual bool is_in_final_state() const = 0;
  /// True after a terminate pseudostate was reached (dispatch is a no-op).
  [[nodiscard]] virtual bool is_terminated() const = 0;
  [[nodiscard]] virtual bool started() const = 0;

  /// Trace capture is interpreter-only; the compiled engine ignores this.
  virtual void set_trace_enabled(bool enabled) = 0;

  [[nodiscard]] virtual std::uint64_t events_processed() const = 0;
  [[nodiscard]] virtual std::uint64_t transitions_fired() const = 0;
  [[nodiscard]] virtual std::uint64_t errors_raised() const = 0;
  [[nodiscard]] virtual std::uint64_t errors_unhandled() const = 0;

  /// Machine-variable store available to guards/effects via ActionContext.
  [[nodiscard]] virtual std::int64_t variable(const std::string& name) const = 0;
  virtual void set_variable(const std::string& name, std::int64_t value) = 0;

  /// Observer invoked on every state entry (entered=true) and exit
  /// (entered=false); used by the sim-kernel timer binding and by monitors.
  using StateListener = std::function<void(const State&, bool entered)>;
  virtual void set_state_listener(StateListener listener) = 0;

  /// Captures the engine's execution state in machine-independent,
  /// deterministic form (indices ascending, variables sorted by name).
  [[nodiscard]] virtual InstanceSnapshot capture() const = 0;
  /// As capture(), but reuses `out`'s buffers (hot path in the explorer).
  virtual void capture_into(InstanceSnapshot& out) const = 0;

  /// Replaces this engine's execution state with `snapshot`. Validates the
  /// snapshot against the bound machine before mutating anything: on any
  /// out-of-range or kind-mismatched index it reports through `sink` and
  /// returns false with the engine unchanged. No entry/exit behaviors run
  /// and no listener fires — restore reproduces state, not history.
  virtual bool restore(const InstanceSnapshot& snapshot, support::DiagnosticSink& sink) = 0;
};

}  // namespace umlsoc::statechart
