#include "statechart/synthetic.hpp"

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace umlsoc::statechart {

std::unique_ptr<StateMachine> make_chain_machine(std::size_t states) {
  auto machine = std::make_unique<StateMachine>("chain" + std::to_string(states));
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();

  std::vector<State*> chain;
  for (std::size_t i = 0; i < states; ++i) {
    chain.push_back(&top.add_state("s" + std::to_string(i)));
  }
  top.add_transition(initial, *chain.front());
  for (std::size_t i = 0; i < states; ++i) {
    top.add_transition(*chain[i], *chain[(i + 1) % states]).set_trigger("e");
  }
  return machine;
}

std::unique_ptr<StateMachine> make_nested_machine(std::size_t depth, std::size_t width) {
  auto machine = std::make_unique<StateMachine>("nested_d" + std::to_string(depth) + "_w" +
                                                std::to_string(width));
  Region* region = &machine->top();
  State* outermost = nullptr;

  for (std::size_t level = 0; level < depth; ++level) {
    Pseudostate& initial = region->add_initial();
    const std::string suffix = "_L" + std::to_string(level);

    State& composite = region->add_state("c" + suffix);
    region->add_transition(initial, composite);
    if (outermost == nullptr) outermost = &composite;

    Region& inner = composite.add_region("r" + suffix);
    if (level + 1 == depth) {
      // Innermost level: a cycle of `width` leaves on "step".
      Pseudostate& leaf_initial = inner.add_initial();
      std::vector<State*> leaves;
      for (std::size_t i = 0; i < width; ++i) {
        leaves.push_back(&inner.add_state("leaf" + suffix + "_" + std::to_string(i)));
      }
      inner.add_transition(leaf_initial, *leaves.front());
      for (std::size_t i = 0; i < width; ++i) {
        inner.add_transition(*leaves[i], *leaves[(i + 1) % width]).set_trigger("step");
      }
    } else {
      region = &inner;
    }
  }
  // Outer-level handler: "reset" re-enters the outermost composite, forcing
  // the interpreter to search the whole ancestor chain on every dispatch.
  if (outermost != nullptr) {
    machine->top().add_transition(*outermost, *outermost).set_trigger("reset");
  }
  return machine;
}

std::unique_ptr<StateMachine> make_orthogonal_machine(std::size_t regions,
                                                      std::size_t states_per_region) {
  auto machine = std::make_unique<StateMachine>("ortho_r" + std::to_string(regions) + "_s" +
                                                std::to_string(states_per_region));
  Region& top = machine->top();
  Pseudostate& initial = top.add_initial();
  State& parallel = top.add_state("parallel");
  top.add_transition(initial, parallel);

  for (std::size_t r = 0; r < regions; ++r) {
    Region& region = parallel.add_region("r" + std::to_string(r));
    Pseudostate& region_initial = region.add_initial();
    std::vector<State*> cycle;
    for (std::size_t s = 0; s < states_per_region; ++s) {
      cycle.push_back(&region.add_state("q" + std::to_string(r) + "_" + std::to_string(s)));
    }
    region.add_transition(region_initial, *cycle.front());
    for (std::size_t s = 0; s < states_per_region; ++s) {
      State& from = *cycle[s];
      State& to = *cycle[(s + 1) % states_per_region];
      region.add_transition(from, to).set_trigger("tick");
      region.add_transition(from, to).set_trigger("r" + std::to_string(r));
    }
  }
  return machine;
}


std::unique_ptr<StateMachine> make_random_hierarchical_machine(std::uint64_t seed,
                                                               std::size_t max_depth,
                                                               std::size_t states_per_region,
                                                               std::size_t events) {
  support::Rng rng(seed);
  auto machine = std::make_unique<StateMachine>("rand" + std::to_string(seed));
  std::size_t name_counter = 0;

  // Recursive region fill; returns the states created directly in `region`.
  std::function<void(Region&, std::size_t)> fill = [&](Region& region, std::size_t depth) {
    Pseudostate& initial = region.add_initial();
    std::vector<State*> states;
    for (std::size_t i = 0; i < states_per_region; ++i) {
      State& state = region.add_state("s" + std::to_string(name_counter++));
      states.push_back(&state);
      if (depth < max_depth && rng.chance(0.4)) {
        fill(state.add_region("r" + std::to_string(name_counter++)), depth + 1);
      }
    }
    region.add_transition(initial, *states.front());
    // Random event-triggered transitions within this region.
    for (State* state : states) {
      for (std::size_t e = 0; e < events; ++e) {
        if (!rng.chance(0.6)) continue;
        State& target = *states[static_cast<std::size_t>(rng.below(states.size()))];
        region.add_transition(*state, target).set_trigger("e" + std::to_string(e));
      }
    }
  };
  fill(machine->top(), 0);
  return machine;
}

}  // namespace umlsoc::statechart
