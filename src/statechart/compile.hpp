// AOT compilation of hierarchical state machines to flat transition-plan
// tables (DESIGN.md "AOT statechart compilation").
//
// For each (configuration, event) pair the compiler precomputes the full
// RTC step plan the interpreter would derive by walking the region tree:
// the conflict-resolved candidate set in innermost-first priority order
// (with per-candidate conflict claim masks), the exit set in reverse
// document order with its history-record slots, the final-flag clears, the
// transition effect, and the entry set with default/initial completion
// fully linearized. Plans live in flat POD arrays — an extension of the
// flatten.hpp row/group layout from single-leaf machines to hierarchical
// configurations, where a "group" is the plan of one (configuration,
// event) key and its "rows" are candidate transitions.
//
// Configurations (active-state + final-flag bitsets) are interned to dense
// ids. compile() seeds the tables with a breadth-first closure over the
// guard-free successor relation; configurations or events first reached at
// run time (guard outcomes, history restores, snapshot restores) extend
// the tables lazily and are then cached. CompiledMachine::dispatch
// executes a plan with no tree walking and no allocation in steady state;
// only entries through history pseudostates fall back to a generic
// (still index-based) entry walk, because the restored configuration is
// not known statically.
//
// Fallback contract: compile() supports the full interpreter feature set
// except choice/junction pseudostates (their branch resolution interleaves
// guard evaluation with segment effects, which has no static plan) —
// machines using them are rejected with a diagnostic and run on the
// interpreter. The interpreter remains the reference semantics; the
// differential harness (tests/statechart_differential_test.cpp) holds this
// engine to it snapshot-for-snapshot after every dispatch.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "statechart/engine.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

class CompiledMachine;

/// Compiles `machine` into plan tables and returns an executable engine
/// bound to it. Returns nullptr (reporting through `sink`) when the
/// machine uses an unsupported feature — choice/junction pseudostates, or
/// a transition targeting an initial pseudostate — in which case callers
/// fall back to the interpreter. `machine` must outlive the result.
[[nodiscard]] std::unique_ptr<CompiledMachine> compile(const StateMachine& machine,
                                                       support::DiagnosticSink& sink);

/// One compiled machine: the plan tables plus one execution context over
/// them. Implements the full Engine contract — snapshots are
/// interchangeable with the interpreter's.
class CompiledMachine final : public Engine {
 public:
  /// Step opcodes of a firing program, executed in order. `a`/`b` operands
  /// are pre-order vertex/region indices or pool offsets.
  enum class Op : std::uint8_t {
    kRecordShallow,  ///< a = region, b = state: latch shallow history.
    kRecordDeep,     ///< a = region, b = leaf_pool offset (count, leaves...).
    kExitState,      ///< a = state: exit behavior, clear bit, listener.
    kClearFinal,     ///< a = final vertex: clear its flag.
    kEffect,         ///< a = transition row: run its effect behavior.
    kEnterState,     ///< a = state: set bit, entry/do behaviors, listener.
    kEnterFinal,     ///< a = final vertex: set its flag.
    kTerminate,      ///< Kill the instance (clear configuration and queue).
  };

  struct Step {
    Op op = Op::kEffect;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };

  /// One transition of the machine in flat form (row of the table).
  struct TransitionRow {
    const Transition* origin = nullptr;
    std::uint32_t source = 0;  ///< Pre-order vertex index.
    std::uint32_t target = 0;
    std::uint32_t domain = 0;  ///< Pre-order region index (external only).
    bool internal = false;
    bool completion = false;
  };

  /// One enabled-transition candidate of a plan, in selection priority
  /// order (source depth descending, document order ascending, declaration
  /// order within a source).
  struct Candidate {
    std::uint32_t transition = 0;    ///< TransitionRow index.
    std::uint32_t claim_offset = 0;  ///< words() u64s in claim_pool().
    std::uint32_t first_step = 0;
    std::uint32_t step_count = 0;
    std::uint32_t entry_target = 0;  ///< Dynamic entry only: vertex index.
    std::uint32_t entry_scope = 0;   ///< Dynamic entry only: region index.
    bool internal = false;
    bool has_guard = false;
    /// True when the entry phase crosses a history pseudostate: the steps
    /// cover exit/effect only and entry runs the generic walk at run time.
    bool dynamic_entry = false;
  };

  /// The plan of one (configuration, event) key.
  struct Plan {
    std::uint32_t config = 0;
    std::uint32_t event = 0;  ///< Interned event id; 0 = completion.
    std::uint32_t first_candidate = 0;
    std::uint32_t candidate_count = 0;
    /// Some active state defers the event: park it instead of discarding.
    bool defer_if_unfired = false;
  };

  // --- Engine interface ------------------------------------------------------

  [[nodiscard]] const StateMachine& machine() const override { return *machine_; }
  void start() override;
  bool dispatch(Event event) override;
  void post(Event event) override;
  bool dispatch_error(Event event) override;
  void post_error(Event event) override;
  void run_to_quiescence() override;
  /// O(1) from the plan table: false when the (configuration, event) plan
  /// has no candidates, the event is not deferrable here, and no queued
  /// work is pending — dispatch() would provably change nothing.
  [[nodiscard]] bool can_react(const Event& event) override;
  [[nodiscard]] std::size_t pending_events() const override { return queue_.size(); }
  [[nodiscard]] bool is_in(std::string_view state_name) const override;
  [[nodiscard]] std::vector<std::string> active_leaf_names() const override;
  [[nodiscard]] bool is_in_final_state() const override;
  [[nodiscard]] bool is_terminated() const override { return terminated_; }
  [[nodiscard]] bool started() const override { return started_; }
  void set_trace_enabled(bool) override {}  // No trace capture (documented).
  [[nodiscard]] std::uint64_t events_processed() const override { return events_processed_; }
  [[nodiscard]] std::uint64_t transitions_fired() const override { return transitions_fired_; }
  [[nodiscard]] std::uint64_t errors_raised() const override { return errors_raised_; }
  [[nodiscard]] std::uint64_t errors_unhandled() const override { return errors_unhandled_; }
  [[nodiscard]] std::int64_t variable(const std::string& name) const override;
  void set_variable(const std::string& name, std::int64_t value) override;
  void set_state_listener(StateListener listener) override { listener_ = std::move(listener); }
  [[nodiscard]] InstanceSnapshot capture() const override;
  void capture_into(InstanceSnapshot& out) const override;
  bool restore(const InstanceSnapshot& snapshot, support::DiagnosticSink& sink) override;

  /// Completion-transition microstep bound, matching the interpreter's
  /// livelock guard (exceeding it throws std::runtime_error).
  static constexpr int kMaxMicrosteps = 10000;

  // --- Table introspection (codegen/software emission, DESIGN.md) -----------

  [[nodiscard]] std::size_t vertex_count() const { return vinfo_.size(); }
  [[nodiscard]] std::size_t region_count() const { return rinfo_.size(); }
  /// Bitset width of configurations and claim masks, in 64-bit words.
  [[nodiscard]] std::size_t words() const { return words_; }
  [[nodiscard]] const std::vector<TransitionRow>& transition_table() const { return tinfo_; }
  [[nodiscard]] const std::vector<Plan>& plan_table() const { return plans_; }
  [[nodiscard]] const std::vector<Candidate>& candidate_table() const { return candidates_; }
  [[nodiscard]] const std::vector<Step>& step_table() const { return steps_; }
  [[nodiscard]] const std::vector<std::uint64_t>& claim_pool() const { return claim_pool_; }
  [[nodiscard]] const std::vector<std::uint32_t>& leaf_pool() const { return leaf_pool_; }
  [[nodiscard]] std::size_t configuration_count() const { return configs_.size(); }
  /// Active state/final vertex indices of an interned configuration,
  /// ascending (states first, then finals).
  [[nodiscard]] std::vector<std::uint32_t> configuration_members(std::uint32_t config) const;
  [[nodiscard]] std::size_t event_count() const { return event_names_.size(); }
  [[nodiscard]] const std::string& event_name(std::uint32_t id) const { return event_names_[id]; }
  [[nodiscard]] std::uint32_t current_configuration() const { return config_id_; }
  /// Approximate resident size of the plan tables (pools + rows + interned
  /// configurations), for the memory-cost accounting in DESIGN.md.
  [[nodiscard]] std::size_t table_bytes() const;

 private:
  friend std::unique_ptr<CompiledMachine> compile(const StateMachine&, support::DiagnosticSink&);

  struct VertexInfo {
    VertexKind kind = VertexKind::kState;
    std::int32_t parent_state = -1;  ///< Vertex index of containing composite.
    std::uint32_t container = 0;     ///< Region index.
    std::uint16_t depth = 0;
    const State* state = nullptr;    ///< Non-null for kState.
    std::vector<std::uint32_t> regions;   ///< Composite: child region indices.
    std::vector<std::uint32_t> outgoing;  ///< TransitionRow indices, decl order.
  };

  struct RegionInfo {
    const Region* region = nullptr;
    std::int32_t owner = -1;                   ///< Owner state vertex index.
    const Transition* initial = nullptr;       ///< Default-entry transition.
    std::vector<std::uint32_t> child_states;   ///< Direct children, decl order.
    std::vector<std::uint32_t> finals;         ///< Direct final vertices.
  };

  struct ConfigRec {
    std::uint32_t bits_offset = 0;     ///< words() u64s in config_bits_pool_.
    std::uint32_t members_offset = 0;  ///< Into config_member_pool_.
    std::uint32_t state_count = 0;
    std::uint32_t final_count = 0;
  };

  /// Compile-time symbolic execution context for the entry phase: the same
  /// chain/sweep algorithm the interpreter runs, recording steps instead of
  /// running behaviors. `dynamic` flips when a history pseudostate is hit.
  struct EntrySim {
    std::vector<std::uint64_t> bits;
    std::vector<Step>* out = nullptr;
    std::deque<std::uint32_t> pending;
    int depth = 0;
    bool dynamic = false;
  };

  explicit CompiledMachine(const StateMachine& machine);

  // Table construction (compile time and lazy extension).
  void build_static_tables();
  [[nodiscard]] bool check_supported(support::DiagnosticSink& sink) const;
  void build_start_program();
  void seed_reachable_plans();
  [[nodiscard]] std::uint32_t intern_config(const std::uint64_t* bits);
  [[nodiscard]] std::uint32_t intern_event(const std::string& name);
  [[nodiscard]] std::uint32_t plan_for(std::uint32_t config, std::uint32_t event_id);
  [[nodiscard]] std::uint32_t build_plan(std::uint32_t config, std::uint32_t event_id);
  void build_fire_program(std::uint32_t config, std::uint32_t transition, Candidate& candidate);
  void sim_enter_target(EntrySim& sim, std::uint32_t vertex, std::uint32_t scope);
  void sim_enter_single(EntrySim& sim, std::uint32_t state);
  void sim_default_enter(EntrySim& sim, std::uint32_t region);
  [[nodiscard]] bool sim_region_active(const EntrySim& sim, std::uint32_t region) const;
  [[nodiscard]] bool config_state_completed(std::uint32_t config, std::uint32_t state) const;

  // Index-based structural queries over the static tables.
  [[nodiscard]] bool vertex_within_region(std::uint32_t vertex, std::uint32_t region) const;
  [[nodiscard]] std::uint32_t domain_of(std::uint32_t source, std::uint32_t target) const;

  // Runtime execution.
  [[nodiscard]] bool bit(const std::vector<std::uint64_t>& bits, std::uint32_t index) const {
    return (bits[index >> 6] >> (index & 63)) & 1u;
  }
  void set_bit(std::vector<std::uint64_t>& bits, std::uint32_t index) const {
    bits[index >> 6] |= std::uint64_t{1} << (index & 63);
  }
  void clear_bit(std::vector<std::uint64_t>& bits, std::uint32_t index) const {
    bits[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }
  [[nodiscard]] std::uint32_t current_config();
  std::size_t rtc_step(const Event& event);
  void run_completions();
  std::size_t select_and_fire(std::uint32_t plan_index, ActionContext& context);
  void execute_candidate(const Candidate& candidate, ActionContext& context);
  void execute_steps(std::uint32_t first, std::uint32_t count, ActionContext& context);
  void do_terminate();

  // Generic (dynamic) entry walk, mirroring the interpreter's entry phase;
  // used when a plan's entry crosses a history pseudostate.
  void rt_enter_target(std::uint32_t vertex, std::uint32_t scope, ActionContext& context);
  void rt_enter_single(std::uint32_t state, ActionContext& context);
  void rt_default_enter(std::uint32_t region, ActionContext& context);
  [[nodiscard]] bool rt_region_active(std::uint32_t region) const;

  // --- Static tables ---------------------------------------------------------
  const StateMachine* machine_;
  std::vector<const Vertex*> vertex_list_;
  std::vector<const Region*> region_list_;
  std::vector<VertexInfo> vinfo_;
  std::vector<RegionInfo> rinfo_;
  std::vector<TransitionRow> tinfo_;
  std::unordered_map<const Transition*, std::uint32_t> transition_index_;
  std::uint32_t words_ = 1;

  // --- Interned configurations / events / plans (lazily extended) -----------
  std::vector<ConfigRec> configs_;
  std::vector<std::uint64_t> config_bits_pool_;
  std::vector<std::uint32_t> config_member_pool_;
  std::vector<std::uint32_t> config_slots_;  ///< Open addressing: id or ~0u.
  std::vector<std::string> event_names_;
  std::unordered_map<std::string, std::uint32_t> event_ids_;
  std::vector<Plan> plans_;
  std::vector<Candidate> candidates_;
  std::vector<Step> steps_;
  std::vector<std::uint64_t> claim_pool_;
  std::vector<std::uint32_t> leaf_pool_;
  std::unordered_map<std::uint64_t, std::uint32_t> plan_ids_;
  std::uint32_t start_first_step_ = 0;
  std::uint32_t start_step_count_ = 0;
  bool start_dynamic_ = false;

  // --- Execution state -------------------------------------------------------
  std::vector<std::uint64_t> bits_;  ///< Active states + final flags.
  std::uint32_t config_id_ = 0;
  std::vector<std::int32_t> shallow_slot_;        ///< Per region: vertex or -1.
  std::vector<std::uint8_t> deep_set_;            ///< Per region: slot engaged.
  std::vector<std::vector<std::uint32_t>> deep_slot_;
  std::unordered_map<std::string, std::int64_t> variables_;
  std::deque<Event> queue_;
  std::vector<Event> deferred_pool_;
  StateListener listener_;
  bool started_ = false;
  bool terminated_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t transitions_fired_ = 0;
  std::uint64_t errors_raised_ = 0;
  std::uint64_t errors_unhandled_ = 0;

  // Dispatch scratch (reused; steady-state allocation-free).
  std::vector<std::uint64_t> claimed_scratch_;
  std::vector<std::uint32_t> selected_scratch_;
  std::vector<std::uint32_t> order_scratch_;
  std::deque<std::uint32_t> pending_composites_;  ///< Dynamic entry sweep.
  int entry_depth_ = 0;
};

}  // namespace umlsoc::statechart
