#include "statechart/validate.hpp"

#include <unordered_map>
#include <unordered_set>

namespace umlsoc::statechart {

namespace {

class Validator {
 public:
  Validator(const StateMachine& machine, support::DiagnosticSink& sink)
      : machine_(machine), sink_(sink) {}

  void run() {
    check_region(machine_.top());
    check_reachability();
  }

 private:
  void check_region(const Region& region) {
    std::unordered_map<std::string, int> names;
    int initial_count = 0;
    int shallow_count = 0;
    int deep_count = 0;

    for (const auto& vertex : region.vertices()) {
      ++names[vertex->name()];
      switch (vertex->vertex_kind()) {
        case VertexKind::kInitial: {
          ++initial_count;
          if (!vertex->incoming().empty()) {
            sink_.error(vertex->qualified_name(), "initial pseudostate has incoming transitions");
          }
          if (vertex->outgoing().size() != 1) {
            sink_.error(vertex->qualified_name(),
                        "initial pseudostate needs exactly one outgoing transition, has " +
                            std::to_string(vertex->outgoing().size()));
          } else {
            const Transition& transition = *vertex->outgoing().front();
            if (!transition.is_completion()) {
              sink_.error(vertex->qualified_name(),
                          "initial transition must not have a trigger");
            }
            if (transition.guard().fn != nullptr || transition.guard().is_else()) {
              sink_.error(vertex->qualified_name(), "initial transition must not have a guard");
            }
          }
          break;
        }
        case VertexKind::kChoice:
        case VertexKind::kJunction: {
          if (vertex->outgoing().empty()) {
            sink_.error(vertex->qualified_name(),
                        std::string(to_string(vertex->vertex_kind())) +
                            " pseudostate has no outgoing transitions");
          }
          int else_count = 0;
          bool has_open_branch = false;
          for (const Transition* branch : vertex->outgoing()) {
            if (branch->guard().is_else()) ++else_count;
            if (branch->guard().always_true()) has_open_branch = true;
            if (!branch->is_completion()) {
              sink_.error(vertex->qualified_name(),
                          "pseudostate segment must not have a trigger");
            }
          }
          if (else_count > 1) {
            sink_.error(vertex->qualified_name(), "more than one 'else' branch");
          }
          if (else_count == 0 && !has_open_branch) {
            sink_.warning(vertex->qualified_name(),
                          "no 'else' branch and no unconditional branch; may dead-end at runtime");
          }
          break;
        }
        case VertexKind::kShallowHistory:
          ++shallow_count;
          check_history(*vertex);
          break;
        case VertexKind::kDeepHistory:
          ++deep_count;
          check_history(*vertex);
          break;
        case VertexKind::kFinal:
          if (!vertex->outgoing().empty()) {
            sink_.error(vertex->qualified_name(), "final state has outgoing transitions");
          }
          break;
        case VertexKind::kTerminate:
          if (!vertex->outgoing().empty()) {
            sink_.error(vertex->qualified_name(),
                        "terminate pseudostate has outgoing transitions");
          }
          break;
        case VertexKind::kState: {
          const auto& state = static_cast<const State&>(*vertex);
          check_state_transitions(state);
          for (const auto& subregion : state.regions()) check_region(*subregion);
          break;
        }
      }
    }

    for (const auto& [name, count] : names) {
      if (count > 1) {
        sink_.error(region.name(), "duplicate vertex name '" + name + "' in region");
      }
    }
    if (initial_count == 0 && !region.vertices().empty()) {
      sink_.error(region_subject(region), "region has no initial pseudostate");
    }
    if (initial_count > 1) {
      sink_.error(region_subject(region), "region has multiple initial pseudostates");
    }
    if (shallow_count > 1 || deep_count > 1) {
      sink_.error(region_subject(region), "region has duplicate history pseudostates");
    }
  }

  [[nodiscard]] std::string region_subject(const Region& region) const {
    if (region.owner_state() != nullptr) {
      return region.owner_state()->qualified_name() + "." + region.name();
    }
    return machine_.name() + "." + region.name();
  }

  void check_history(const Vertex& history) {
    if (history.outgoing().size() > 1) {
      sink_.error(history.qualified_name(),
                  "history pseudostate has more than one default transition");
    }
    if (history.container()->owner_state() == nullptr) {
      // The top region never exits, so its history is never recorded.
      sink_.warning(history.qualified_name(),
                    "history pseudostate in the top region will never restore anything");
    }
  }

  void check_state_transitions(const State& state) {
    // Nondeterminism warning: same trigger, both unguarded.
    std::unordered_map<std::string, int> unguarded_triggers;
    for (const Transition* transition : state.outgoing()) {
      if (transition->is_internal() && &transition->target() != &state) {
        sink_.error(state.qualified_name(),
                    "internal transition must have the same source and target");
      }
      if (transition->target().vertex_kind() == VertexKind::kInitial) {
        sink_.error(state.qualified_name(), "transition targets an initial pseudostate");
      }
      if (transition->guard().always_true()) {
        ++unguarded_triggers[transition->trigger()];
      }
    }
    for (const auto& [trigger, count] : unguarded_triggers) {
      if (count > 1) {
        sink_.warning(state.qualified_name(),
                      trigger.empty()
                          ? std::string("multiple unguarded completion transitions")
                          : "multiple unguarded transitions on trigger '" + trigger + "'");
      }
    }
  }

  void check_reachability() {
    // Forward closure over transitions and default-entry edges.
    std::unordered_set<const Vertex*> reached;
    std::vector<const Vertex*> frontier;
    auto push = [&](const Vertex* vertex) {
      if (vertex != nullptr && reached.insert(vertex).second) frontier.push_back(vertex);
    };
    if (const Pseudostate* initial = machine_.top().initial()) push(initial);

    while (!frontier.empty()) {
      const Vertex* vertex = frontier.back();
      frontier.pop_back();
      for (const Transition* transition : vertex->outgoing()) push(&transition->target());
      if (const auto* state = dynamic_cast<const State*>(vertex)) {
        for (const auto& region : state->regions()) {
          push(region->initial());
          // History restoration can reactivate any state of the region.
          for (const auto& child : region->vertices()) {
            bool region_has_history = false;
            for (const auto& other : region->vertices()) {
              VertexKind kind = other->vertex_kind();
              if (kind == VertexKind::kShallowHistory || kind == VertexKind::kDeepHistory) {
                region_has_history = true;
              }
            }
            if (region_has_history) push(child.get());
          }
        }
      }
      // Entering a state makes its ancestors active too.
      push(vertex->containing_state());
    }

    for (const State* state : machine_.all_states()) {
      if (!reached.contains(state)) {
        sink_.warning(state->qualified_name(), "state is unreachable from the initial state");
      }
    }
  }

  const StateMachine& machine_;
  support::DiagnosticSink& sink_;
};

}  // namespace

bool validate(const StateMachine& machine, support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();
  Validator(machine, sink).run();
  return sink.error_count() == errors_before;
}

}  // namespace umlsoc::statechart
