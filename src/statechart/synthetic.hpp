// Deterministic state-machine generators for tests and benchmark E3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "statechart/model.hpp"

namespace umlsoc::statechart {

/// Linear chain: s0 -e-> s1 -e-> ... -e-> s(n-1) -e-> s0 (cyclic).
/// Every dispatch of "e" fires exactly one transition.
[[nodiscard]] std::unique_ptr<StateMachine> make_chain_machine(std::size_t states);

/// Nested machine of the given depth: each level is a composite state with
/// `width` leaf siblings cycling on event "step"; the innermost level also
/// reacts to "reset" handled at the outermost composite (exercises the
/// ancestor-transition lookup that makes hierarchical dispatch costly).
[[nodiscard]] std::unique_ptr<StateMachine> make_nested_machine(std::size_t depth,
                                                                std::size_t width);

/// One orthogonal composite with `regions` parallel regions, each a cycle of
/// `states_per_region` states reacting to a region-specific event "rK".
/// Dispatching "tick" advances every region at once (tests maximal
/// conflict-free firing across orthogonal regions).
[[nodiscard]] std::unique_ptr<StateMachine> make_orthogonal_machine(
    std::size_t regions, std::size_t states_per_region);

/// Randomized *flattenable* machine (no orthogonality/history/completion):
/// each region holds `states_per_region` states, states recursively become
/// composites up to `max_depth`, and every state gets transitions on a
/// random subset of events "e0".."e(events-1)" to random same-region
/// targets. Deterministic in `seed`; passes validate() (unreachable-state
/// warnings aside). Used by the interpreter-vs-flattened differential test.
[[nodiscard]] std::unique_ptr<StateMachine> make_random_hierarchical_machine(
    std::uint64_t seed, std::size_t max_depth, std::size_t states_per_region,
    std::size_t events);

}  // namespace umlsoc::statechart
