// UML 2.0 state machine metamodel (paper §2: "detailed behavioral
// specifications usually rely on State Machine Diagrams", Harel StateChart
// variant with STATEMATE-style semantics [2]).
//
// Supported subset: hierarchical composite states, orthogonal regions,
// initial pseudostates, final states, shallow/deep history, choice and
// junction pseudostates, terminate, internal/external transitions with
// event triggers, guards and effects, completion (trigger-less)
// transitions, and deferrable events.
// Fork/join pseudostates are not modeled; orthogonal regions enter through
// their initial pseudostates instead (documented substitution, DESIGN.md).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace umlsoc::uml {
class Class;
}

namespace umlsoc::statechart {

class Engine;
class Region;
class State;
class StateMachine;
class StateMachineInstance;
class Transition;

/// An event instance offered to a machine. `data` carries a scalar payload
/// (enough for guards like "data > 3"); richer payloads attach via `tag`.
struct Event {
  Event() = default;
  Event(std::string name, std::int64_t data = 0, std::string tag = {})
      : name(std::move(name)), data(data), tag(std::move(tag)) {}

  std::string name;
  std::int64_t data = 0;
  std::string tag;
};

/// Runtime context passed to guards and actions. `instance` is the engine
/// executing the machine (interpreter or compiled stepper — see
/// engine.hpp), so behaviors written against it run under either.
struct ActionContext {
  Engine& instance;
  const Event* event = nullptr;  // Null for entry/exit/completion contexts.
};

/// A behavior attached to a state or transition. `text` is the model-level
/// label (also used by code generators); `fn` is the executable binding.
struct Behavior {
  std::string text;
  std::function<void(ActionContext&)> fn;

  [[nodiscard]] bool empty() const { return text.empty() && fn == nullptr; }
};

/// A guard on a transition. A null `fn` with empty text is always-true;
/// the text "else" marks the default branch out of a choice/junction.
struct Guard {
  std::string text;
  std::function<bool(const ActionContext&)> fn;

  [[nodiscard]] bool is_else() const { return text == "else"; }
  [[nodiscard]] bool always_true() const { return fn == nullptr && !is_else(); }
};

enum class VertexKind {
  kState, kFinal, kInitial, kChoice, kJunction, kShallowHistory, kDeepHistory, kTerminate,
};

[[nodiscard]] std::string_view to_string(VertexKind kind);

[[nodiscard]] constexpr bool is_pseudostate(VertexKind kind) {
  return kind != VertexKind::kState && kind != VertexKind::kFinal;
}

/// Node of the state graph: a State, FinalState, or pseudostate.
class Vertex {
 public:
  virtual ~Vertex() = default;
  Vertex(const Vertex&) = delete;
  Vertex& operator=(const Vertex&) = delete;

  [[nodiscard]] virtual VertexKind vertex_kind() const = 0;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Region* container() const { return container_; }
  /// The composite state directly containing this vertex, or nullptr at top.
  [[nodiscard]] State* containing_state() const;
  /// Number of composite-state ancestors (top-level vertices have depth 0).
  [[nodiscard]] std::size_t depth() const;
  /// "Machine.StateA.sub.StateB"-style path for diagnostics.
  [[nodiscard]] std::string qualified_name() const;

  [[nodiscard]] const std::vector<Transition*>& outgoing() const { return outgoing_; }
  [[nodiscard]] const std::vector<Transition*>& incoming() const { return incoming_; }

 protected:
  Vertex(std::string name, Region& container) : name_(std::move(name)), container_(&container) {}

 private:
  friend class Region;  // Wires outgoing_/incoming_ when transitions are added.

  std::string name_;
  Region* container_;
  std::vector<Transition*> outgoing_;
  std::vector<Transition*> incoming_;
};

class Pseudostate final : public Vertex {
 public:
  Pseudostate(std::string name, Region& container, VertexKind kind)
      : Vertex(std::move(name), container), kind_(kind) {}

  [[nodiscard]] VertexKind vertex_kind() const override { return kind_; }

 private:
  VertexKind kind_;
};

class FinalState final : public Vertex {
 public:
  FinalState(std::string name, Region& container) : Vertex(std::move(name), container) {}

  [[nodiscard]] VertexKind vertex_kind() const override { return VertexKind::kFinal; }
};

/// A (possibly composite / orthogonal) state.
class State final : public Vertex {
 public:
  State(std::string name, Region& container) : Vertex(std::move(name), container) {}

  [[nodiscard]] VertexKind vertex_kind() const override { return VertexKind::kState; }

  /// Adds an orthogonal region; a state with >= 2 regions is orthogonal.
  Region& add_region(std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<Region>>& regions() const { return regions_; }
  [[nodiscard]] bool is_composite() const { return !regions_.empty(); }
  [[nodiscard]] bool is_orthogonal() const { return regions_.size() > 1; }
  [[nodiscard]] bool is_simple() const { return regions_.empty(); }

  void set_entry(Behavior behavior) { entry_ = std::move(behavior); }
  void set_exit(Behavior behavior) { exit_ = std::move(behavior); }
  void set_do_activity(Behavior behavior) { do_activity_ = std::move(behavior); }
  [[nodiscard]] const Behavior& entry() const { return entry_; }
  [[nodiscard]] const Behavior& exit_behavior() const { return exit_; }
  [[nodiscard]] const Behavior& do_activity() const { return do_activity_; }

  /// UML deferrable events: while this state is active, events with these
  /// names that trigger no transition are retained and recalled after the
  /// configuration changes (instead of being discarded).
  void add_deferred(std::string event_name) { deferred_.push_back(std::move(event_name)); }
  [[nodiscard]] const std::vector<std::string>& deferred() const { return deferred_; }
  [[nodiscard]] bool defers(std::string_view event_name) const {
    for (const std::string& deferred : deferred_) {
      if (deferred == event_name) return true;
    }
    return false;
  }

  /// True when `this` is `ancestor` or transitively inside it.
  [[nodiscard]] bool is_within(const State& ancestor) const;

 private:
  std::vector<std::unique_ptr<Region>> regions_;
  Behavior entry_;
  Behavior exit_;
  Behavior do_activity_;
  std::vector<std::string> deferred_;
};

/// Transition between vertices of the same state machine. An empty trigger
/// makes it a completion transition.
class Transition final {
 public:
  Transition(Vertex& source, Vertex& target) : source_(&source), target_(&target) {}
  Transition(const Transition&) = delete;
  Transition& operator=(const Transition&) = delete;

  [[nodiscard]] Vertex& source() const { return *source_; }
  [[nodiscard]] Vertex& target() const { return *target_; }

  Transition& set_trigger(std::string event_name) {
    trigger_ = std::move(event_name);
    return *this;
  }
  [[nodiscard]] const std::string& trigger() const { return trigger_; }
  [[nodiscard]] bool is_completion() const { return trigger_.empty(); }

  Transition& set_guard(Guard guard) {
    guard_ = std::move(guard);
    return *this;
  }
  Transition& set_guard(std::string text, std::function<bool(const ActionContext&)> fn) {
    return set_guard(Guard{std::move(text), std::move(fn)});
  }
  [[nodiscard]] const Guard& guard() const { return guard_; }

  Transition& set_effect(Behavior effect) {
    effect_ = std::move(effect);
    return *this;
  }
  Transition& set_effect(std::string text, std::function<void(ActionContext&)> fn) {
    return set_effect(Behavior{std::move(text), std::move(fn)});
  }
  [[nodiscard]] const Behavior& effect() const { return effect_; }

  /// Internal transitions fire without exiting/re-entering their state.
  Transition& set_internal(bool value) {
    internal_ = value;
    return *this;
  }
  [[nodiscard]] bool is_internal() const { return internal_; }

  [[nodiscard]] std::string str() const;

 private:
  Vertex* source_;
  Vertex* target_;
  std::string trigger_;
  Guard guard_;
  Behavior effect_;
  bool internal_ = false;
};

/// Container of vertices; owned by a StateMachine (top region) or a
/// composite State (orthogonal regions).
class Region final {
 public:
  Region(std::string name, StateMachine& machine, State* owner_state)
      : name_(std::move(name)), machine_(&machine), owner_state_(owner_state) {}
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] StateMachine& machine() const { return *machine_; }
  /// Composite state owning this region; nullptr for the top region.
  [[nodiscard]] State* owner_state() const { return owner_state_; }

  State& add_state(std::string name);
  FinalState& add_final(std::string name = "final");
  Pseudostate& add_pseudostate(VertexKind kind, std::string name = "");
  Pseudostate& add_initial() { return add_pseudostate(VertexKind::kInitial, "initial"); }

  /// Adds a transition; both ends must belong to this machine (any region).
  Transition& add_transition(Vertex& source, Vertex& target);

  [[nodiscard]] const std::vector<std::unique_ptr<Vertex>>& vertices() const { return vertices_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Transition>>& transitions() const {
    return transitions_;
  }

  [[nodiscard]] Pseudostate* initial() const;
  [[nodiscard]] Vertex* find_vertex(std::string_view name) const;
  /// Recursive lookup through nested regions.
  [[nodiscard]] State* find_state(std::string_view name) const;

 private:
  std::string name_;
  StateMachine* machine_;
  State* owner_state_;
  std::vector<std::unique_ptr<Vertex>> vertices_;
  std::vector<std::unique_ptr<Transition>> transitions_;
};

/// A state machine; optionally attached to a uml::Class as its classifier
/// behavior (xUML-style executable class).
class StateMachine final {
 public:
  explicit StateMachine(std::string name);
  StateMachine(const StateMachine&) = delete;
  StateMachine& operator=(const StateMachine&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Region& top() { return *top_; }
  [[nodiscard]] const Region& top() const { return *top_; }

  [[nodiscard]] uml::Class* context() const { return context_; }
  void set_context(uml::Class& context) { context_ = &context; }

  /// All states, pre-order over the region tree.
  [[nodiscard]] std::vector<const State*> all_states() const;
  [[nodiscard]] std::vector<const Transition*> all_transitions() const;
  [[nodiscard]] std::size_t state_count() const { return all_states().size(); }

  /// All vertices (states, finals, pseudostates), pre-order over the region
  /// tree in declaration order. The position of a vertex in this sequence is
  /// its stable snapshot address: two structurally identical machines assign
  /// identical indices.
  [[nodiscard]] std::vector<const Vertex*> all_vertices() const;
  /// All regions, pre-order (top region first), same stability guarantee.
  [[nodiscard]] std::vector<const Region*> all_regions() const;

 private:
  std::string name_;
  std::unique_ptr<Region> top_;
  uml::Class* context_ = nullptr;
};

}  // namespace umlsoc::statechart
