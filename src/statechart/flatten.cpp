#include "statechart/flatten.hpp"

#include <unordered_map>

#include "statechart/interpreter.hpp"

namespace umlsoc::statechart {

namespace {

class Flattener {
 public:
  Flattener(const StateMachine& machine, support::DiagnosticSink& sink)
      : machine_(machine), sink_(sink) {}

  std::optional<FlatStateMachine> run() {
    if (!check_constraints(machine_.top())) return std::nullopt;

    collect_leaves(machine_.top());
    if (flat_.states.empty()) {
      sink_.error(machine_.name(), "flatten: machine has no leaf states");
      return std::nullopt;
    }

    const Pseudostate* initial = machine_.top().initial();
    if (initial == nullptr || initial->outgoing().empty()) {
      sink_.error(machine_.name(), "flatten: top region has no initial transition");
      return std::nullopt;
    }
    const Vertex* initial_leaf = default_leaf(initial->outgoing().front()->target());
    if (initial_leaf == nullptr) return std::nullopt;
    flat_.initial_state = index_.at(initial_leaf);

    build_rows();
    if (failed_) return std::nullopt;
    return std::move(flat_);
  }

 private:
  bool check_constraints(const Region& region) {
    bool ok = true;
    for (const auto& vertex : region.vertices()) {
      switch (vertex->vertex_kind()) {
        case VertexKind::kShallowHistory:
        case VertexKind::kDeepHistory:
        case VertexKind::kChoice:
        case VertexKind::kJunction:
        case VertexKind::kTerminate:
          sink_.error(vertex->qualified_name(),
                      "flatten: " + std::string(to_string(vertex->vertex_kind())) +
                          " pseudostates are not flattenable");
          ok = false;
          break;
        case VertexKind::kState: {
          const auto& state = static_cast<const State&>(*vertex);
          if (state.is_orthogonal()) {
            sink_.error(state.qualified_name(), "flatten: orthogonal states are not flattenable");
            ok = false;
          }
          for (const Transition* transition : state.outgoing()) {
            if (transition->is_completion()) {
              sink_.error(state.qualified_name(),
                          "flatten: completion transitions are not flattenable");
              ok = false;
            }
          }
          for (const auto& subregion : state.regions()) {
            if (!check_constraints(*subregion)) ok = false;
          }
          break;
        }
        case VertexKind::kInitial:
        case VertexKind::kFinal:
          break;
      }
    }
    return ok;
  }

  void collect_leaves(const Region& region) {
    for (const auto& vertex : region.vertices()) {
      if (const auto* state = dynamic_cast<const State*>(vertex.get())) {
        if (state->is_simple()) {
          add_leaf(state, state->qualified_name());
        } else {
          for (const auto& subregion : state->regions()) collect_leaves(*subregion);
        }
      } else if (vertex->vertex_kind() == VertexKind::kFinal) {
        add_leaf(vertex.get(), vertex->qualified_name());
      }
    }
  }

  void add_leaf(const Vertex* leaf, std::string name) {
    index_[leaf] = flat_.states.size();
    flat_.states.push_back(dynamic_cast<const State*>(leaf));  // Null for finals.
    flat_.state_names.push_back(std::move(name));
    leaves_.push_back(leaf);
  }

  /// Resolves a transition target to the leaf reached by default entry.
  const Vertex* default_leaf(const Vertex& vertex) {
    const Vertex* current = &vertex;
    for (int hops = 0; hops < 64; ++hops) {
      if (current->vertex_kind() == VertexKind::kFinal) return current;
      const auto* state = dynamic_cast<const State*>(current);
      if (state == nullptr) {
        sink_.error(current->qualified_name(), "flatten: cannot default-enter this vertex");
        failed_ = true;
        return nullptr;
      }
      if (state->is_simple()) return state;
      const Region& region = *state->regions().front();
      const Pseudostate* initial = region.initial();
      if (initial == nullptr || initial->outgoing().empty()) {
        sink_.error(state->qualified_name(), "flatten: composite state without initial");
        failed_ = true;
        return nullptr;
      }
      current = &initial->outgoing().front()->target();
    }
    failed_ = true;
    return nullptr;
  }

  void build_rows() {
    for (const Vertex* leaf : leaves_) {
      const auto* leaf_state = dynamic_cast<const State*>(leaf);
      if (leaf_state == nullptr) continue;  // Finals have no outgoing rows.
      std::size_t from = index_.at(leaf);
      // Innermost-first along the ancestor chain: inner rows come first in
      // the per-key vector, preserving UML priority.
      for (const State* source = leaf_state; source != nullptr;
           source = source->containing_state()) {
        for (const Transition* transition : source->outgoing()) {
          const Vertex* to_leaf = transition->is_internal()
                                      ? leaf
                                      : default_leaf(transition->target());
          if (to_leaf == nullptr) return;
          FlatTransition row{from, transition->trigger(), index_.at(to_leaf), transition};
          std::string key = FlatStateMachine::key(from, row.trigger);
          flat_.rows_by_key[key].push_back(flat_.transitions.size());
          flat_.transitions.push_back(row);
        }
      }
    }
  }

  const StateMachine& machine_;
  support::DiagnosticSink& sink_;
  FlatStateMachine flat_;
  std::vector<const Vertex*> leaves_;
  std::unordered_map<const Vertex*, std::size_t> index_;
  bool failed_ = false;
};

}  // namespace

std::optional<FlatStateMachine> flatten(const StateMachine& machine,
                                        support::DiagnosticSink& sink) {
  return Flattener(machine, sink).run();
}

bool FlatExecutor::dispatch(const Event& event) {
  auto it = flat_->rows_by_key.find(FlatStateMachine::key(current_, event.name));
  if (it == flat_->rows_by_key.end()) return false;
  for (std::size_t row_index : it->second) {
    const FlatTransition& row = flat_->transitions[row_index];
    const Guard& guard = row.origin->guard();
    if (guard.fn != nullptr) {
      if (guard_host_ == nullptr) {
        // Without a host the guard cannot be evaluated; treat as open.
      } else {
        ActionContext context{*guard_host_, &event};
        if (!guard.fn(context)) continue;
      }
    }
    current_ = row.to;
    ++fired_;
    return true;
  }
  return false;
}

}  // namespace umlsoc::statechart
