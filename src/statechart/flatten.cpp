#include "statechart/flatten.hpp"

#include <algorithm>
#include <unordered_map>

#include "statechart/interpreter.hpp"

namespace umlsoc::statechart {

namespace {

class Flattener {
 public:
  Flattener(const StateMachine& machine, support::DiagnosticSink& sink)
      : machine_(machine), sink_(sink) {}

  std::optional<FlatStateMachine> run() {
    if (!check_constraints(machine_.top())) return std::nullopt;

    collect_leaves(machine_.top());
    if (flat_.states.empty()) {
      sink_.error(machine_.name(), "flatten: machine has no leaf states");
      return std::nullopt;
    }

    const Pseudostate* initial = machine_.top().initial();
    if (initial == nullptr || initial->outgoing().empty()) {
      sink_.error(machine_.name(), "flatten: top region has no initial transition");
      return std::nullopt;
    }
    const Vertex* initial_leaf = default_leaf(initial->outgoing().front()->target());
    if (initial_leaf == nullptr) return std::nullopt;
    flat_.initial_state = index_.at(initial_leaf);

    build_rows();
    if (failed_) return std::nullopt;
    return std::move(flat_);
  }

 private:
  bool check_constraints(const Region& region) {
    bool ok = true;
    for (const auto& vertex : region.vertices()) {
      switch (vertex->vertex_kind()) {
        case VertexKind::kShallowHistory:
        case VertexKind::kDeepHistory:
        case VertexKind::kChoice:
        case VertexKind::kJunction:
        case VertexKind::kTerminate:
          sink_.error(vertex->qualified_name(),
                      "flatten: " + std::string(to_string(vertex->vertex_kind())) +
                          " pseudostates are not flattenable");
          ok = false;
          break;
        case VertexKind::kState: {
          const auto& state = static_cast<const State&>(*vertex);
          if (state.is_orthogonal()) {
            sink_.error(state.qualified_name(), "flatten: orthogonal states are not flattenable");
            ok = false;
          }
          for (const Transition* transition : state.outgoing()) {
            if (transition->is_completion()) {
              sink_.error(state.qualified_name(),
                          "flatten: completion transitions are not flattenable");
              ok = false;
            }
          }
          for (const auto& subregion : state.regions()) {
            if (!check_constraints(*subregion)) ok = false;
          }
          break;
        }
        case VertexKind::kInitial:
        case VertexKind::kFinal:
          break;
      }
    }
    return ok;
  }

  void collect_leaves(const Region& region) {
    for (const auto& vertex : region.vertices()) {
      if (const auto* state = dynamic_cast<const State*>(vertex.get())) {
        if (state->is_simple()) {
          add_leaf(state, state->qualified_name());
        } else {
          for (const auto& subregion : state->regions()) collect_leaves(*subregion);
        }
      } else if (vertex->vertex_kind() == VertexKind::kFinal) {
        add_leaf(vertex.get(), vertex->qualified_name());
      }
    }
  }

  void add_leaf(const Vertex* leaf, std::string name) {
    index_[leaf] = flat_.states.size();
    flat_.states.push_back(dynamic_cast<const State*>(leaf));  // Null for finals.
    flat_.state_names.push_back(std::move(name));
    leaves_.push_back(leaf);
  }

  /// Resolves a transition target to the leaf reached by default entry.
  const Vertex* default_leaf(const Vertex& vertex) {
    const Vertex* current = &vertex;
    for (int hops = 0; hops < 64; ++hops) {
      if (current->vertex_kind() == VertexKind::kFinal) return current;
      const auto* state = dynamic_cast<const State*>(current);
      if (state == nullptr) {
        sink_.error(current->qualified_name(), "flatten: cannot default-enter this vertex");
        failed_ = true;
        return nullptr;
      }
      if (state->is_simple()) return state;
      const Region& region = *state->regions().front();
      const Pseudostate* initial = region.initial();
      if (initial == nullptr || initial->outgoing().empty()) {
        sink_.error(state->qualified_name(), "flatten: composite state without initial");
        failed_ = true;
        return nullptr;
      }
      current = &initial->outgoing().front()->target();
    }
    failed_ = true;
    return nullptr;
  }

  void build_rows() {
    for (const Vertex* leaf : leaves_) {
      const auto* leaf_state = dynamic_cast<const State*>(leaf);
      if (leaf_state == nullptr) continue;  // Finals have no outgoing rows.
      std::size_t from = index_.at(leaf);
      // Innermost-first along the ancestor chain: inner rows come first in
      // the per-key vector, preserving UML priority.
      for (const State* source = leaf_state; source != nullptr;
           source = source->containing_state()) {
        for (const Transition* transition : source->outgoing()) {
          const Vertex* to_leaf = transition->is_internal()
                                      ? leaf
                                      : default_leaf(transition->target());
          if (to_leaf == nullptr) return;
          FlatTransition row{from, transition->trigger(), index_.at(to_leaf), transition};
          flat_.transitions.push_back(row);
        }
      }
    }
    build_groups();
  }

  /// Builds the sorted (from, trigger) dispatch index. A stable sort keeps
  /// rows of one key in their build order, which is innermost-first.
  void build_groups() {
    flat_.row_order.resize(flat_.transitions.size());
    for (std::size_t i = 0; i < flat_.row_order.size(); ++i) flat_.row_order[i] = i;
    std::stable_sort(flat_.row_order.begin(), flat_.row_order.end(),
                     [this](std::size_t a, std::size_t b) {
                       const FlatTransition& lhs = flat_.transitions[a];
                       const FlatTransition& rhs = flat_.transitions[b];
                       if (lhs.from != rhs.from) return lhs.from < rhs.from;
                       return lhs.trigger < rhs.trigger;
                     });
    for (std::size_t i = 0; i < flat_.row_order.size(); ++i) {
      const FlatTransition& row = flat_.transitions[flat_.row_order[i]];
      if (flat_.groups.empty() || flat_.groups.back().from != row.from ||
          flat_.groups.back().trigger != row.trigger) {
        flat_.groups.push_back(FlatRowGroup{row.from, row.trigger, i, 0});
      }
      ++flat_.groups.back().row_count;
    }
  }

  const StateMachine& machine_;
  support::DiagnosticSink& sink_;
  FlatStateMachine flat_;
  std::vector<const Vertex*> leaves_;
  std::unordered_map<const Vertex*, std::size_t> index_;
  bool failed_ = false;
};

}  // namespace

std::optional<FlatStateMachine> flatten(const StateMachine& machine,
                                        support::DiagnosticSink& sink) {
  return Flattener(machine, sink).run();
}

const FlatRowGroup* FlatStateMachine::find_group(std::size_t from,
                                                 std::string_view trigger) const {
  const auto it = std::lower_bound(
      groups.begin(), groups.end(), std::make_pair(from, trigger),
      [](const FlatRowGroup& group, const std::pair<std::size_t, std::string_view>& key) {
        if (group.from != key.first) return group.from < key.first;
        return std::string_view(group.trigger) < key.second;
      });
  if (it == groups.end() || it->from != from || it->trigger != trigger) return nullptr;
  return &*it;
}

bool FlatExecutor::dispatch(const Event& event) {
  const FlatRowGroup* group = flat_->find_group(current_, event.name);
  if (group == nullptr) return false;
  for (std::size_t i = 0; i < group->row_count; ++i) {
    const std::size_t row_index = flat_->row_order[group->first_row + i];
    const FlatTransition& row = flat_->transitions[row_index];
    const Guard& guard = row.origin->guard();
    if (guard.fn != nullptr) {
      if (guard_host_ == nullptr) {
        // Without a host the guard cannot be evaluated; treat as open.
      } else {
        ActionContext context{*guard_host_, &event};
        if (!guard.fn(context)) continue;
      }
    }
    current_ = row.to;
    ++fired_;
    return true;
  }
  return false;
}

}  // namespace umlsoc::statechart
