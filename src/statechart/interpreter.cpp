#include "statechart/interpreter.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace umlsoc::statechart {

namespace {

/// True when `vertex` lies (at any depth) inside `region`.
bool contained_in(const Vertex& vertex, const Region& region) {
  const Region* current = vertex.container();
  while (current != nullptr) {
    if (current == &region) return true;
    State* owner = current->owner_state();
    current = owner == nullptr ? nullptr : owner->container();
  }
  return false;
}

}  // namespace

StateMachineInstance::StateMachineInstance(const StateMachine& machine)
    : machine_(machine),
      vertex_list_(machine.all_vertices()),
      region_list_(machine.all_regions()) {
  vertex_order_.reserve(vertex_list_.size());
  for (std::size_t i = 0; i < vertex_list_.size(); ++i) {
    vertex_order_.emplace(vertex_list_[i], static_cast<std::uint32_t>(i));
  }
  region_order_.reserve(region_list_.size());
  for (std::size_t i = 0; i < region_list_.size(); ++i) {
    region_order_.emplace(region_list_[i], static_cast<std::uint32_t>(i));
  }
}

// --- Introspection -------------------------------------------------------------

bool StateMachineInstance::is_in(std::string_view state_name) const {
  for (const State* state : config_) {
    if (state->name() == state_name) return true;
  }
  return false;
}

std::vector<std::string> StateMachineInstance::active_leaf_names() const {
  std::vector<std::string> names;
  for (const State* state : config_) {
    bool has_active_child = false;
    for (const State* other : config_) {
      if (other != state && other->is_within(*state)) has_active_child = true;
    }
    if (!has_active_child) names.push_back(state->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool StateMachineInstance::is_in_final_state() const {
  return region_in_final(machine_.top());
}

bool StateMachineInstance::region_in_final(const Region& region) const {
  for (const FinalState* final_state : active_finals_) {
    if (final_state->container() == &region) return true;
  }
  return false;
}

std::int64_t StateMachineInstance::variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? 0 : it->second;
}

void StateMachineInstance::set_variable(const std::string& name, std::int64_t value) {
  variables_[name] = value;
}

// --- Lifecycle -------------------------------------------------------------------

void StateMachineInstance::start() {
  if (started_) return;
  started_ = true;
  ActionContext context{*this, nullptr};
  default_enter_region(machine_.top(), context);
  run_completions();
  run_to_quiescence();
}

void StateMachineInstance::post(Event event) { queue_.push_back(std::move(event)); }

bool StateMachineInstance::dispatch(Event event) {
  if (terminated_) return false;
  const std::uint64_t fired_before = transitions_fired_;
  post(std::move(event));
  if (started_) run_to_quiescence();
  return transitions_fired_ != fired_before;
}

void StateMachineInstance::post_error(Event event) {
  ++errors_raised_;
  note("error-event:" + event.name);
  queue_.push_front(std::move(event));
}

bool StateMachineInstance::dispatch_error(Event event) {
  if (terminated_) return false;
  const std::uint64_t fired_before = transitions_fired_;
  post_error(std::move(event));
  if (started_) run_to_quiescence();
  const bool handled = transitions_fired_ != fired_before;
  if (!handled) ++errors_unhandled_;
  return handled;
}

void StateMachineInstance::run_to_quiescence() {
  while (!queue_.empty()) {
    Event event = std::move(queue_.front());
    queue_.pop_front();
    ++events_processed_;
    const std::size_t fired = rtc_step(event);
    // A configuration change recalls deferred events: they are retried
    // ahead of anything queued later (UML deferral semantics).
    if (fired > 0 && !deferred_pool_.empty()) {
      for (auto it = deferred_pool_.rbegin(); it != deferred_pool_.rend(); ++it) {
        queue_.push_front(std::move(*it));
      }
      deferred_pool_.clear();
    }
  }
}

// --- Checkpoint / restore ------------------------------------------------------

namespace {

InstanceSnapshot::EventRecord record_event(const Event& event) {
  return InstanceSnapshot::EventRecord{event.name, event.data, event.tag};
}

Event make_event(const InstanceSnapshot::EventRecord& record) {
  return Event{record.name, record.data, record.tag};
}

}  // namespace

InstanceSnapshot StateMachineInstance::capture() const {
  InstanceSnapshot snapshot;
  capture_into(snapshot);
  return snapshot;
}

void StateMachineInstance::capture_into(InstanceSnapshot& snapshot) const {
  snapshot.started = started_;
  snapshot.terminated = terminated_;
  snapshot.active_states.clear();
  snapshot.active_finals.clear();
  snapshot.shallow_history.clear();
  snapshot.deep_history.clear();
  snapshot.queue.clear();
  snapshot.deferred.clear();

  const auto& vertex_index = vertex_order_;
  const auto& region_index = region_order_;

  for (const State* state : config_) snapshot.active_states.push_back(vertex_index.at(state));
  std::sort(snapshot.active_states.begin(), snapshot.active_states.end());
  for (const FinalState* final_state : active_finals_) {
    snapshot.active_finals.push_back(vertex_index.at(final_state));
  }
  std::sort(snapshot.active_finals.begin(), snapshot.active_finals.end());

  for (const auto& [region, state] : shallow_history_) {
    snapshot.shallow_history.emplace_back(region_index.at(region), vertex_index.at(state));
  }
  std::sort(snapshot.shallow_history.begin(), snapshot.shallow_history.end());
  for (const auto& [region, leaves] : deep_history_) {
    std::vector<std::uint32_t> leaf_indices;
    for (const State* leaf : leaves) leaf_indices.push_back(vertex_index.at(leaf));
    snapshot.deep_history.emplace_back(region_index.at(region), std::move(leaf_indices));
  }
  std::sort(snapshot.deep_history.begin(), snapshot.deep_history.end());

  snapshot.variables.assign(variables_.begin(), variables_.end());
  std::sort(snapshot.variables.begin(), snapshot.variables.end());

  for (const Event& event : queue_) snapshot.queue.push_back(record_event(event));
  for (const Event& event : deferred_pool_) snapshot.deferred.push_back(record_event(event));

  snapshot.events_processed = events_processed_;
  snapshot.transitions_fired = transitions_fired_;
  snapshot.errors_raised = errors_raised_;
  snapshot.errors_unhandled = errors_unhandled_;
}

bool StateMachineInstance::restore(const InstanceSnapshot& snapshot,
                                   support::DiagnosticSink& sink) {
  const std::vector<const Vertex*>& vertices = vertex_list_;
  const std::vector<const Region*>& regions = region_list_;
  // Built only on the error paths; successful restores are a hot path.
  auto subject = [this] { return "statechart " + machine_.name(); };

  auto state_at = [&](std::uint32_t index) -> const State* {
    if (index >= vertices.size()) return nullptr;
    return dynamic_cast<const State*>(vertices[index]);
  };

  // Validate everything before touching instance state.
  std::vector<const State*> active;
  for (std::uint32_t index : snapshot.active_states) {
    const State* state = state_at(index);
    if (state == nullptr) {
      sink.error(subject(), "snapshot active-state index " + std::to_string(index) +
                              " does not name a state in this machine");
      return false;
    }
    active.push_back(state);
  }
  std::vector<const FinalState*> finals;
  for (std::uint32_t index : snapshot.active_finals) {
    const FinalState* final_state =
        index < vertices.size() ? dynamic_cast<const FinalState*>(vertices[index]) : nullptr;
    if (final_state == nullptr) {
      sink.error(subject(), "snapshot final-state index " + std::to_string(index) +
                              " does not name a final state in this machine");
      return false;
    }
    finals.push_back(final_state);
  }
  std::unordered_map<const Region*, const State*> shallow;
  for (const auto& [region_idx, state_idx] : snapshot.shallow_history) {
    const State* state = state_at(state_idx);
    if (region_idx >= regions.size() || state == nullptr) {
      sink.error(subject(), "snapshot shallow-history entry (" + std::to_string(region_idx) +
                              ", " + std::to_string(state_idx) + ") is out of range");
      return false;
    }
    shallow[regions[region_idx]] = state;
  }
  std::unordered_map<const Region*, std::vector<const State*>> deep;
  for (const auto& [region_idx, leaf_indices] : snapshot.deep_history) {
    if (region_idx >= regions.size()) {
      sink.error(subject(), "snapshot deep-history region index " + std::to_string(region_idx) +
                              " is out of range");
      return false;
    }
    std::vector<const State*> leaves;
    for (std::uint32_t leaf_idx : leaf_indices) {
      const State* leaf = state_at(leaf_idx);
      if (leaf == nullptr) {
        sink.error(subject(), "snapshot deep-history leaf index " + std::to_string(leaf_idx) +
                                " does not name a state in this machine");
        return false;
      }
      leaves.push_back(leaf);
    }
    deep[regions[region_idx]] = std::move(leaves);
  }
  if (snapshot.terminated && !snapshot.active_states.empty()) {
    sink.error(subject(), "snapshot is terminated but lists active states");
    return false;
  }

  // Apply.
  started_ = snapshot.started;
  terminated_ = snapshot.terminated;
  config_.clear();
  config_.insert(active.begin(), active.end());
  active_finals_.clear();
  active_finals_.insert(finals.begin(), finals.end());
  shallow_history_ = std::move(shallow);
  deep_history_ = std::move(deep);
  variables_.clear();
  variables_.insert(snapshot.variables.begin(), snapshot.variables.end());
  queue_.clear();
  for (const auto& record : snapshot.queue) queue_.push_back(make_event(record));
  deferred_pool_.clear();
  for (const auto& record : snapshot.deferred) deferred_pool_.push_back(make_event(record));
  pending_regions_.clear();
  entry_depth_ = 0;
  events_processed_ = snapshot.events_processed;
  transitions_fired_ = snapshot.transitions_fired;
  errors_raised_ = snapshot.errors_raised;
  errors_unhandled_ = snapshot.errors_unhandled;
  note("snapshot-restore");
  return true;
}

// --- Selection ----------------------------------------------------------------------

bool StateMachineInstance::state_completed(const State& state) const {
  if (state.is_simple()) return true;
  for (const auto& region : state.regions()) {
    if (!region_in_final(*region)) return false;
  }
  return true;
}

std::vector<const Transition*> StateMachineInstance::select_transitions(const Event* event) {
  // Deterministic innermost-first order: depth descending, then document
  // (pre-order) position. The pre-order index is a total order, so two
  // same-depth states — even identically named ones in sibling regions —
  // are always visited in declaration order, and two instances of the same
  // machine select identically.
  std::vector<const State*> active(config_.begin(), config_.end());
  std::sort(active.begin(), active.end(), [this](const State* a, const State* b) {
    std::size_t da = a->depth();
    std::size_t db = b->depth();
    if (da != db) return da > db;
    return vertex_order_.at(a) < vertex_order_.at(b);
  });

  ActionContext context{*this, event};
  std::vector<const Transition*> selected;
  std::unordered_set<const State*> claimed;  // Union of exit/conflict sets.

  for (const State* state : active) {
    for (const Transition* transition : state->outgoing()) {
      if (event != nullptr) {
        if (transition->trigger() != event->name) continue;
      } else {
        if (!transition->is_completion()) continue;
        if (!state_completed(*state)) continue;
      }
      const Guard& guard = transition->guard();
      if (guard.fn != nullptr && !guard.fn(context)) continue;

      // Conflict set: states this transition would exit (the whole domain
      // for external transitions, just the source for internal ones).
      std::vector<const State*> conflict_states;
      if (transition->is_internal()) {
        conflict_states.push_back(state);
      } else {
        const Region* domain = domain_of(transition->source(), transition->target());
        conflict_states = active_within(*domain);
        conflict_states.push_back(state);
      }
      bool conflicts = false;
      for (const State* exited : conflict_states) {
        if (claimed.contains(exited)) conflicts = true;
      }
      if (conflicts) continue;

      for (const State* exited : conflict_states) claimed.insert(exited);
      selected.push_back(transition);
    }
  }
  return selected;
}

// --- Structural helpers ------------------------------------------------------------

const Region* StateMachineInstance::domain_of(const Vertex& source, const Vertex& target) const {
  // Innermost region containing both vertices.
  const Region* current = source.container();
  while (current != nullptr) {
    if (contained_in(target, *current) || target.container() == current) return current;
    State* owner = current->owner_state();
    current = owner == nullptr ? nullptr : owner->container();
  }
  return &machine_.top();
}

std::vector<const State*> StateMachineInstance::active_within(const Region& scope) const {
  std::vector<const State*> result;
  for (const State* state : config_) {
    if (contained_in(*state, scope)) result.push_back(state);
  }
  return result;
}

// --- Exit phase ------------------------------------------------------------------------

void StateMachineInstance::record_history(const State& exiting) {
  for (const auto& region : exiting.regions()) {
    // Shallow: the active direct child of the region.
    const State* direct_child = nullptr;
    for (const auto& vertex : region->vertices()) {
      if (const auto* child = dynamic_cast<const State*>(vertex.get())) {
        if (config_.contains(child)) direct_child = child;
      }
    }
    if (direct_child != nullptr) shallow_history_[region.get()] = direct_child;

    // Deep: the active leaf states inside the region, in deterministic order.
    std::vector<const State*> leaves;
    for (const State* state : config_) {
      if (!contained_in(*state, *region)) continue;
      bool has_active_child = false;
      for (const State* other : config_) {
        if (other != state && other->is_within(*state)) has_active_child = true;
      }
      if (!has_active_child) leaves.push_back(state);
    }
    std::sort(leaves.begin(), leaves.end(), [this](const State* a, const State* b) {
      return vertex_order_.at(a) < vertex_order_.at(b);
    });
    if (!leaves.empty()) deep_history_[region.get()] = std::move(leaves);
  }
}

void StateMachineInstance::exit_states(const std::vector<const State*>& states,
                                       ActionContext& context) {
  // History snapshots first: children are still in the configuration.
  for (const State* state : states) {
    if (state->is_composite()) record_history(*state);
  }
  // Innermost-first exit order; document order breaks same-depth ties.
  std::vector<const State*> ordered = states;
  std::sort(ordered.begin(), ordered.end(), [this](const State* a, const State* b) {
    std::size_t da = a->depth();
    std::size_t db = b->depth();
    if (da != db) return da > db;
    return vertex_order_.at(a) < vertex_order_.at(b);
  });
  for (const State* state : ordered) {
    if (!state->exit_behavior().empty()) {
      note("exitAction:" + state->name());
      if (state->exit_behavior().fn != nullptr) state->exit_behavior().fn(context);
    }
    note("exit:" + state->name());
    config_.erase(state);
    if (listener_ != nullptr) listener_(*state, false);
  }
}

// --- Entry phase ------------------------------------------------------------------------

void StateMachineInstance::enter_single(const State& state, ActionContext& context) {
  if (config_.contains(&state)) return;
  config_.insert(&state);
  note("enter:" + state.name());
  if (!state.entry().empty()) {
    note("entryAction:" + state.name());
    if (state.entry().fn != nullptr) state.entry().fn(context);
  }
  if (!state.do_activity().empty() && state.do_activity().fn != nullptr) {
    state.do_activity().fn(context);
  }
  if (state.is_composite()) pending_regions_.push_back(&state);
  if (listener_ != nullptr) listener_(state, true);
}

void StateMachineInstance::enter_state_and_regions(const State& state, const Region& scope,
                                                   ActionContext& context) {
  enter_target(state, scope, context);
}

void StateMachineInstance::enter_target(const Vertex& vertex, const Region& scope,
                                        ActionContext& context) {
  ++entry_depth_;
  // Chain of composite states between scope (exclusive) and vertex
  // (exclusive), innermost first.
  std::vector<const State*> chain;
  if (vertex.container() != &scope) {
    for (const State* ancestor = vertex.containing_state(); ancestor != nullptr;
         ancestor = ancestor->containing_state()) {
      chain.push_back(ancestor);
      if (ancestor->container() == &scope) break;
    }
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) enter_single(**it, context);

  switch (vertex.vertex_kind()) {
    case VertexKind::kState:
      enter_single(static_cast<const State&>(vertex), context);
      break;
    case VertexKind::kFinal:
      active_finals_.insert(static_cast<const FinalState*>(&vertex));
      note("final:" + vertex.container()->name());
      break;
    case VertexKind::kShallowHistory: {
      const Region& region = *vertex.container();
      auto it = shallow_history_.find(&region);
      if (it != shallow_history_.end()) {
        note("history:restore-shallow:" + region.name());
        enter_target(*it->second, region, context);
      } else if (!vertex.outgoing().empty()) {
        const Transition& fallback = *vertex.outgoing().front();
        if (fallback.effect().fn != nullptr) fallback.effect().fn(context);
        enter_target(fallback.target(), region, context);
      } else {
        default_enter_region(region, context);
      }
      break;
    }
    case VertexKind::kDeepHistory: {
      const Region& region = *vertex.container();
      auto it = deep_history_.find(&region);
      if (it != deep_history_.end()) {
        note("history:restore-deep:" + region.name());
        restore_deep_history(region, context);
      } else if (!vertex.outgoing().empty()) {
        const Transition& fallback = *vertex.outgoing().front();
        if (fallback.effect().fn != nullptr) fallback.effect().fn(context);
        enter_target(fallback.target(), region, context);
      } else {
        default_enter_region(region, context);
      }
      break;
    }
    case VertexKind::kTerminate:
      // UML terminate: the machine ceases immediately; no exit actions run.
      terminated_ = true;
      queue_.clear();
      config_.clear();
      active_finals_.clear();
      note("terminate");
      break;
    case VertexKind::kInitial:
    case VertexKind::kChoice:
    case VertexKind::kJunction:
      // Resolved before entry; reaching one here means a broken model.
      note("error:entered-pseudostate:" + vertex.name());
      break;
  }

  --entry_depth_;
  if (entry_depth_ != 0) return;

  // Sweep (outermost call only, so deep-history restoration of sibling
  // leaves finishes before defaults run): default-enter regions of entered
  // composites that are still empty.
  while (!pending_regions_.empty()) {
    const State* composite = pending_regions_.front();
    pending_regions_.pop_front();
    for (const auto& region : composite->regions()) {
      bool region_active = region_in_final(*region);
      for (const auto& child : region->vertices()) {
        if (const auto* child_state = dynamic_cast<const State*>(child.get())) {
          if (config_.contains(child_state)) region_active = true;
        }
      }
      if (!region_active) default_enter_region(*region, context);
    }
  }
}

void StateMachineInstance::restore_deep_history(const Region& region, ActionContext& context) {
  auto it = deep_history_.find(&region);
  if (it == deep_history_.end()) {
    default_enter_region(region, context);
    return;
  }
  for (const State* leaf : it->second) enter_target(*leaf, region, context);
}

void StateMachineInstance::default_enter_region(const Region& region, ActionContext& context) {
  const Pseudostate* initial = region.initial();
  if (initial == nullptr || initial->outgoing().empty()) {
    note("warn:no-initial:" + region.name());
    return;
  }
  const Transition& transition = *initial->outgoing().front();
  ResolvedPath path = resolve_path(transition, context);
  if (path.broken) {
    note("error:unresolved-initial:" + region.name());
    return;
  }
  for (const Behavior* effect : path.effects) {
    if (effect->fn != nullptr) effect->fn(context);
  }
  enter_target(*path.final_target, region, context);
}

// --- Firing ---------------------------------------------------------------------------------

StateMachineInstance::ResolvedPath StateMachineInstance::resolve_path(
    const Transition& transition, ActionContext& context) {
  ResolvedPath path;
  const Transition* current = &transition;
  for (int hops = 0; hops < 64; ++hops) {
    if (!current->effect().empty()) path.effects.push_back(&current->effect());
    const Vertex& target = current->target();
    VertexKind kind = target.vertex_kind();
    if (kind != VertexKind::kChoice && kind != VertexKind::kJunction) {
      path.final_target = &target;
      return path;
    }
    // Choice/junction: first open guard wins; "else" is the fallback.
    const Transition* chosen = nullptr;
    const Transition* else_branch = nullptr;
    for (const Transition* branch : target.outgoing()) {
      if (branch->guard().is_else()) {
        if (else_branch == nullptr) else_branch = branch;
        continue;
      }
      if (branch->guard().fn == nullptr || branch->guard().fn(context)) {
        chosen = branch;
        break;
      }
    }
    if (chosen == nullptr) chosen = else_branch;
    if (chosen == nullptr) {
      path.broken = true;
      return path;
    }
    current = chosen;
  }
  path.broken = true;  // Pseudostate cycle.
  return path;
}

void StateMachineInstance::fire(const Transition& transition, ActionContext& context) {
  note("fire:" + transition.str());
  if (transition.is_internal()) {
    if (transition.effect().fn != nullptr) transition.effect().fn(context);
    ++transitions_fired_;
    return;
  }

  ResolvedPath path = resolve_path(transition, context);
  if (path.broken) {
    note("error:unresolved-choice:" + transition.str());
    return;
  }

  const Region* domain = domain_of(transition.source(), *path.final_target);
  std::vector<const State*> exits = active_within(*domain);
  exit_states(exits, context);

  // Clear final flags inside the domain: the region is being re-entered.
  for (auto it = active_finals_.begin(); it != active_finals_.end();) {
    if ((*it)->container() == domain || contained_in(**it, *domain)) {
      it = active_finals_.erase(it);
    } else {
      ++it;
    }
  }

  for (const Behavior* effect : path.effects) {
    if (effect->fn != nullptr) effect->fn(context);
  }

  enter_target(*path.final_target, *domain, context);
  ++transitions_fired_;
}

std::size_t StateMachineInstance::rtc_step(const Event& event) {
  note("event:" + event.name);
  std::vector<const Transition*> selected = select_transitions(&event);
  if (selected.empty()) {
    for (const State* state : config_) {
      if (state->defers(event.name)) {
        note("defer:" + event.name);
        deferred_pool_.push_back(event);
        return 0;
      }
    }
    note("discard:" + event.name);
    return 0;
  }
  ActionContext context{*this, &event};
  std::size_t fired = 0;
  for (const Transition* transition : selected) {
    // An earlier firing in the same step may have exited this source.
    const auto* source_state = dynamic_cast<const State*>(&transition->source());
    if (source_state != nullptr && !config_.contains(source_state)) continue;
    fire(*transition, context);
    ++fired;
  }
  run_completions();
  return fired;
}

void StateMachineInstance::run_completions() {
  ActionContext context{*this, nullptr};
  for (int microsteps = 0;; ++microsteps) {
    if (microsteps > kMaxMicrosteps) {
      throw std::runtime_error("state machine '" + machine_.name() +
                               "': completion livelock (more than " +
                               std::to_string(kMaxMicrosteps) + " microsteps)");
    }
    std::vector<const Transition*> selected = select_transitions(nullptr);
    if (selected.empty()) return;
    for (const Transition* transition : selected) {
      const auto* source_state = dynamic_cast<const State*>(&transition->source());
      if (source_state != nullptr && !config_.contains(source_state)) continue;
      fire(*transition, context);
    }
  }
}

}  // namespace umlsoc::statechart
