// Well-formedness checks for state machines, mirroring the constraints the
// interpreter relies on.
#pragma once

#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::statechart {

/// Validates structure (initial pseudostates, pseudostate arities, name
/// clashes, transition endpoints) and reports reachability/determinism
/// warnings. Returns true when no errors were found.
bool validate(const StateMachine& machine, support::DiagnosticSink& sink);

}  // namespace umlsoc::statechart
